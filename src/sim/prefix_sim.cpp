#include "sim/prefix_sim.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace mtg {

PrefixEngine::PrefixEngine(std::size_t memory_size, Options options)
    : memory_size_(memory_size), options_(options) {
  any_before_.push_back(0);
}

PrefixEngine::PrefixEngine(std::size_t memory_size,
                           std::vector<FaultInstance> instances,
                           const MarchTest& prefix, Options options,
                           ThreadPool* pool)
    : PrefixEngine(memory_size, options) {
  owned_ = std::move(instances);
  initialize(owned_, prefix, pool);
}

PrefixEngine::PrefixEngine(std::size_t memory_size,
                           const std::vector<FaultInstance>* instances,
                           const MarchTest& prefix, Options options,
                           ThreadPool* pool)
    : PrefixEngine(memory_size, options) {
  initialize(*instances, prefix, pool);
}

bool PrefixEngine::all_detected(
    const std::vector<PackedFaultSim::Lanes>& blocks) {
  for (const PackedFaultSim::Lanes& block : blocks) {
    if ((block.active & ~block.detected) != 0) return false;
  }
  return true;
}

void PrefixEngine::append_plan(const MarchTest& test, std::size_t from) {
  for (std::size_t e = from; e < test.elements().size(); ++e) {
    const MarchElement& element = test.elements()[e];
    traces_.push_back(compile_element_trace(element));
    std::size_t any = any_before_.back();
    if (element.order() == AddressOrder::Any) {
      ordinals_.push_back(static_cast<int>(any));
      ++any;
    } else {
      ordinals_.push_back(-1);
    }
    any_before_.push_back(any);
  }
  require(any_before_.back() <= options_.max_any_order_elements,
          "too many ⇕ elements in the generation prefix");
}

void PrefixEngine::expand_blocks(std::vector<PackedFaultSim::Lanes>& blocks,
                                 std::size_t old_combos) const {
  // Scenario sc = power_on · combos + mask (power-on major, ⇕-mask minor;
  // see sim/packed_engine.hpp).  The new ⇕ element is appended last, so it
  // takes the highest ordinal: its mask bit has weight `old_combos`, and the
  // source scenario of a new lane is found by clearing that bit.
  const std::size_t new_combos = 2 * old_combos;
  const std::size_t new_total = power_states() * new_combos;
  std::vector<PackedFaultSim::Lanes> out((new_total + 63) / 64);
  for (std::size_t nb = 0; nb < out.size(); ++nb) {
    PackedFaultSim::Lanes& dst = out[nb];
    const std::size_t base = nb * 64;
    dst.active = scenario_active_word(base, new_total);
    for (std::size_t l = 0; l < 64; ++l) {
      const std::size_t sc = base + l;
      if (sc >= new_total) break;
      const std::size_t src = (sc / new_combos) * old_combos +
                              (sc % new_combos) % old_combos;
      const PackedFaultSim::Lanes& s = blocks[src / 64];
      const std::size_t sl = src % 64;
      const std::uint64_t bit = std::uint64_t{1} << l;
      if ((s.detected >> sl) & 1u) dst.detected |= bit;
      if ((s.uniform >> sl) & 1u) dst.uniform |= bit;
      for (std::size_t slot = 0; slot < PackedFaultSim::kMaxSlots; ++slot) {
        if ((s.val[slot] >> sl) & 1u) dst.val[slot] |= bit;
      }
      for (std::size_t f = 0; f < PackedFaultSim::kMaxFps; ++f) {
        if ((s.armed[f] >> sl) & 1u) dst.armed[f] |= bit;
      }
    }
  }
  blocks = std::move(out);
}

std::size_t PrefixEngine::run_steps(
    const Item& item, std::vector<PackedFaultSim::Lanes>& blocks,
    std::size_t& combos, const Step* steps, std::size_t count,
    std::vector<std::vector<PackedFaultSim::Lanes>>* checkpoints,
    Stats& local) const {
  for (std::size_t s = 0; s < count; ++s) {
    if (checkpoints != nullptr) checkpoints->push_back(blocks);
    const Step& step = steps[s];
    if (step.ordinal >= 0) {
      expand_blocks(blocks, combos);
      combos *= 2;
      ++local.lane_expansions;
    }
    ++local.element_replays;
    bool done = true;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      PackedFaultSim::Lanes& lanes = blocks[b];
      // Frozen: detection is sticky, so a fully detected block never needs
      // another element (matching the full runner's early break; its stale
      // cell values are unobservable).
      if ((lanes.active & ~lanes.detected) == 0) continue;
      item.sim.run_element(
          lanes, *step.element, *step.trace,
          element_down_word(*step.element, step.ordinal, b * 64, combos));
      if ((lanes.active & ~lanes.detected) != 0) done = false;
    }
    if (done) return s;
  }
  return kNever;
}

void PrefixEngine::initialize(const std::vector<FaultInstance>& instances,
                              const MarchTest& prefix, ThreadPool* pool) {
  // Collapse equal-signature instances of a fault into one weighted
  // representative: an *address-free* packed simulation never reads
  // absolute addresses (see PackedFaultSim::signature), so all layout
  // instances with the same relative cell order evolve identically.
  // Address-reading instances (decoder faults) are exempt below.
  // Representatives keep the first-occurrence order of the input set.
  std::unordered_map<std::string, std::size_t> groups;
  for (const FaultInstance& inst : instances) {
    require_addresses_fit(inst, memory_size_);
    // The engine has no scalar fallback: reject oversized instances loudly
    // at entry.
    require(PackedFaultSim::supports(inst),
            "the prefix engine supports at most " +
                std::to_string(PackedFaultSim::kMaxFps) +
                " bound FPs per fault instance");
    PackedFaultSim sim(inst);
    if (!sim.address_free()) {
      // Collapsing gate: an address-reading instance (decoder fault) has no
      // address-free signature — two structurally equal instances at
      // different addresses can evolve differently (e.g. AF-na read-back
      // bits), so each one is simulated as its own weight-1 item.
      // Detection-based *dropping* stays exact for them: stickiness of
      // detection does not depend on how the fault reads addresses.
      Item item;
      item.instance = &inst;
      item.sim = sim;
      items_.push_back(std::move(item));
      continue;
    }
    std::string key = std::to_string(inst.fault_index);
    key.push_back('#');
    key += sim.signature();
    const auto inserted = groups.emplace(std::move(key), items_.size());
    if (!inserted.second) {
      ++items_[inserted.first->second].weight;
      continue;
    }
    Item item;
    item.instance = &inst;
    item.sim = sim;
    items_.push_back(std::move(item));
  }
  prefix_ = prefix;
  append_plan(prefix, 0);
  sync_items(0, 0, pool);
}

void PrefixEngine::sync_items(std::size_t common, std::size_t previous_length,
                              ThreadPool* pool) {
  std::vector<Step> tail;
  tail.reserve(prefix_.elements().size() - common);
  for (std::size_t e = common; e < prefix_.elements().size(); ++e) {
    tail.push_back(Step{&prefix_.elements()[e], &traces_[e], ordinals_[e]});
  }

  std::atomic<std::size_t> replays{0}, expansions{0};
  const auto sync = [&](std::size_t, std::size_t begin, std::size_t end) {
    Stats local;
    for (std::size_t i = begin; i < end; ++i) {
      Item& item = items_[i];
      if (item.excluded) continue;
      // Detected strictly within the common prefix: the appended/new suffix
      // replays an unchanged detection — the instance stays dropped.
      if (item.detected_at != kNever && item.detected_at < common) continue;
      if (common == 0) {
        // Syncing from scratch (construction, or a rewind diverging at the
        // first element): the state before element 0 is the power-on block.
        PackedFaultSim::Lanes lanes;
        item.sim.power_on_block(lanes, 0, power_states(), 1,
                                options_.both_power_on_states);
        item.blocks.assign(1, lanes);
        item.checkpoints.clear();
        item.done = false;
        item.detected_at = kNever;
      } else if (item.done || common < previous_length) {
        // The item's state is past `common` (frozen at detected_at + 1, or
        // a live item being rewound): restore the checkpoint before it.
        item.blocks = item.checkpoints[common];
        item.checkpoints.resize(common);  // re-recorded by run_steps below
        item.done = false;
        item.detected_at = kNever;
      }
      std::size_t combos = std::size_t{1} << any_before_[common];
      const std::size_t at = run_steps(
          item, item.blocks, combos, tail.data(), tail.size(),
          options_.record_checkpoints ? &item.checkpoints : nullptr, local);
      if (at != kNever) {
        item.detected_at = common + at;
        item.done = true;
      }
    }
    replays += local.element_replays;
    expansions += local.lane_expansions;
  };

  if (pool == nullptr) {
    sync(0, 0, items_.size());
  } else {
    pool->parallel_for(items_.size(), /*chunk=*/32, sync);
  }
  stats_.element_replays += replays.load();
  stats_.lane_expansions += expansions.load();
}

std::size_t PrefixEngine::undetected_instances() const {
  std::size_t count = 0;
  for (const Item& item : items_) count += item.done ? 0 : item.weight;
  return count;
}

std::size_t PrefixEngine::num_instances() const {
  std::size_t count = 0;
  for (const Item& item : items_) count += item.weight;
  return count;
}

std::set<std::size_t> PrefixEngine::undetected_fault_indices() const {
  std::set<std::size_t> out;
  for (const Item& item : items_) {
    if (!item.done) out.insert(item.instance->fault_index);
  }
  return out;
}

void PrefixEngine::exclude_faults(const std::set<std::size_t>& fault_indices) {
  for (Item& item : items_) {
    if (fault_indices.count(item.instance->fault_index) > 0) {
      item.done = true;
      item.excluded = true;
    }
  }
}

std::size_t PrefixEngine::undetected_scenarios() const {
  std::size_t count = 0;
  for (const Item& item : items_) {
    if (item.done) continue;
    for (const PackedFaultSim::Lanes& block : item.blocks) {
      count += lane_popcount(block.active & ~block.detected) * item.weight;
    }
  }
  return count;
}

void PrefixEngine::commit(const MarchElement& candidate,
                          const ElementTrace& trace) {
  approximate_ = true;
  const std::uint64_t down =
      candidate.order() == AddressOrder::Down ? ~std::uint64_t{0} : 0;
  for (Item& item : items_) {
    if (item.done) continue;
    for (PackedFaultSim::Lanes& block : item.blocks) {
      if ((block.active & ~block.detected) == 0) continue;  // fully detected
      item.sim.run_element(block, candidate, trace, down);
    }
    item.done = all_detected(item.blocks);
  }
}

void PrefixEngine::advance(const MarchTest& test, ThreadPool* pool) {
  require(!approximate_,
          "prefix engine: exact advance after a greedy commit()");
  const std::vector<MarchElement>& old_elements = prefix_.elements();
  const std::vector<MarchElement>& new_elements = test.elements();
  std::size_t common = 0;
  while (common < old_elements.size() && common < new_elements.size() &&
         old_elements[common] == new_elements[common]) {
    ++common;
  }
  const std::size_t previous_length = old_elements.size();
  if (common == previous_length && common == new_elements.size()) return;
  require(common == previous_length || options_.record_checkpoints,
          "prefix engine: rewinding an edited test requires checkpoints");

  traces_.resize(common);
  ordinals_.resize(common);
  any_before_.resize(common + 1);
  prefix_ = test;
  append_plan(test, common);
  sync_items(common, previous_length, pool);
}

PrefixEngine PrefixEngine::clone_undetected() const {
  require(!approximate_,
          "prefix engine: cloning requires exact prefix state");
  Options options = options_;
  options.record_checkpoints = false;
  PrefixEngine out(memory_size_, options);
  out.prefix_ = prefix_;
  out.traces_ = traces_;
  out.ordinals_ = ordinals_;
  out.any_before_ = any_before_;
  for (const Item& item : items_) {
    if (item.done) continue;
    Item copy;
    copy.instance = item.instance;  // shared: the parent must outlive us
    copy.sim = item.sim;
    copy.weight = item.weight;
    copy.blocks = item.blocks;
    out.items_.push_back(std::move(copy));
  }
  return out;
}

std::size_t PrefixEngine::dropped_instances() const {
  std::size_t count = 0;
  for (const Item& item : items_) {
    if (item.done && !item.excluded) count += item.weight;
  }
  return count;
}

bool PrefixEngine::trial_covers(std::size_t edit,
                                const MarchElement* replacement) {
  require(!approximate_ && options_.record_checkpoints,
          "prefix engine: trials require exact state with checkpoints");
  require(edit < prefix_.elements().size(),
          "prefix engine: trial edit index out of range");
  ++stats_.trials;

  // The trial plan: the (optional) replacement of element `edit`, then the
  // recorded tail.  ⇕ ordinals are renumbered for the trial's own scenario
  // space (dropping a ⇕ element shifts the tail's ordinals down).
  ElementTrace replacement_trace;
  std::vector<Step> plan;
  plan.reserve(prefix_.elements().size() - edit);
  std::size_t any = any_before_[edit];
  if (replacement != nullptr) {
    replacement_trace = compile_element_trace(*replacement);
    int ordinal = -1;
    if (replacement->order() == AddressOrder::Any) {
      ordinal = static_cast<int>(any);
      ++any;
    }
    plan.push_back(Step{replacement, &replacement_trace, ordinal});
  }
  for (std::size_t e = edit + 1; e < prefix_.elements().size(); ++e) {
    const MarchElement& element = prefix_.elements()[e];
    int ordinal = -1;
    if (element.order() == AddressOrder::Any) {
      ordinal = static_cast<int>(any);
      ++any;
    }
    plan.push_back(Step{&element, &traces_[e], ordinal});
  }

  Stats local;
  bool covered = true;
  for (const Item& item : items_) {
    if (item.excluded) continue;
    // Detected strictly before the edit: the trial replays that detection
    // unchanged (the prefix below `edit` is untouched).
    if (item.detected_at != kNever && item.detected_at < edit) continue;
    std::vector<PackedFaultSim::Lanes> scratch = item.checkpoints[edit];
    std::size_t combos = std::size_t{1} << any_before_[edit];
    if (run_steps(item, scratch, combos, plan.data(), plan.size(), nullptr,
                  local) == kNever) {
      covered = false;  // bail out at the first surviving instance
      break;
    }
  }
  stats_.element_replays += local.element_replays;
  stats_.lane_expansions += local.lane_expansions;
  return covered;
}

}  // namespace mtg
