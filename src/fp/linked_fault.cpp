#include "fp/linked_fault.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "fp/semantics.hpp"

namespace mtg {

LinkedLayout LinkedLayout::single_cell() {
  LinkedLayout layout;
  layout.num_cells = 1;
  layout.a1_pos = -1;
  layout.a2_pos = -1;
  layout.v_pos = 0;
  return layout;
}

LinkedLayout LinkedLayout::two_cell(std::int8_t a1, std::int8_t a2,
                                    std::uint8_t v) {
  LinkedLayout layout;
  layout.num_cells = 2;
  layout.a1_pos = a1;
  layout.a2_pos = a2;
  layout.v_pos = v;
  return layout;
}

LinkedLayout LinkedLayout::three_cell(std::uint8_t a1, std::uint8_t a2,
                                      std::uint8_t v) {
  LinkedLayout layout;
  layout.num_cells = 3;
  layout.a1_pos = static_cast<std::int8_t>(a1);
  layout.a2_pos = static_cast<std::int8_t>(a2);
  layout.v_pos = v;
  return layout;
}

std::string LinkedLayout::to_string() const {
  if (num_cells == 1) return "v";
  // Collect the role labels per position, then join in address order.
  std::vector<std::string> labels(num_cells);
  auto add = [&](int pos, const std::string& role) {
    if (pos < 0) return;
    if (!labels[pos].empty()) labels[pos] += '=';
    labels[pos] += role;
  };
  if (a1_pos >= 0 && a1_pos == a2_pos) {
    add(a1_pos, "a");
  } else {
    add(a1_pos, "a1");
    add(a2_pos, "a2");
  }
  add(v_pos, "v");
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += '<';
    out += labels[i];
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const LinkedLayout& layout) {
  return os << layout.to_string();
}

namespace {

void validate_layout(const FaultPrimitive& fp1, const FaultPrimitive& fp2,
                     const LinkedLayout& layout) {
  require(layout.num_cells >= 1 && layout.num_cells <= 3,
          "linked fault layout: 1..3 distinct cells");
  require((fp1.is_two_cell()) == (layout.a1_pos >= 0),
          "layout a1 position must be present iff FP1 is a two-cell FP");
  require((fp2.is_two_cell()) == (layout.a2_pos >= 0),
          "layout a2 position must be present iff FP2 is a two-cell FP");
  require(layout.v_pos < layout.num_cells, "layout victim position out of range");
  require(layout.a1_pos < static_cast<int>(layout.num_cells) &&
              layout.a2_pos < static_cast<int>(layout.num_cells),
          "layout aggressor position out of range");
  require(layout.a1_pos != static_cast<int>(layout.v_pos) ||
              layout.a1_pos < 0,
          "FP1's aggressor must differ from the victim");
  require(layout.a2_pos != static_cast<int>(layout.v_pos) ||
              layout.a2_pos < 0,
          "FP2's aggressor must differ from the victim");
  // Every position 0..num_cells-1 must be used by some role.
  std::set<int> used = {static_cast<int>(layout.v_pos)};
  if (layout.a1_pos >= 0) used.insert(layout.a1_pos);
  if (layout.a2_pos >= 0) used.insert(layout.a2_pos);
  require(used.size() == layout.num_cells,
          "layout uses " + std::to_string(used.size()) + " cells but declares " +
              std::to_string(layout.num_cells));
}

/// Applies one sensitizing operation to a good machine and a faulty machine,
/// reporting whether a read returned a value different from the fault-free
/// one.
bool apply_sense_op(const FaultPrimitive& fp, std::size_t a_cell,
                    std::size_t v_cell, MemoryState& good,
                    FaultyMemory& faulty) {
  if (fp.is_state_fault()) return false;  // fires via settling, no operation
  const std::size_t cell = fp.op_on_aggressor() ? a_cell : v_cell;
  switch (fp.sense_op()) {
    case SenseOp::W0:
      good.set(cell, Bit::Zero);
      faulty.write(cell, Bit::Zero);
      return false;
    case SenseOp::W1:
      good.set(cell, Bit::One);
      faulty.write(cell, Bit::One);
      return false;
    case SenseOp::Rd: {
      const Bit expected = good.get(cell);
      const Bit observed = faulty.read(cell);
      return observed != expected;
    }
    case SenseOp::Wt:
      faulty.wait(cell);  // the fault-free machine is unaffected by a pause
      return false;
    case SenseOp::None:
      break;
  }
  throw InternalError("apply_sense_op: unreachable");
}

}  // namespace

LinkCheck check_link(const FaultPrimitive& fp1, const FaultPrimitive& fp2,
                     const LinkedLayout& layout) {
  validate_layout(fp1, fp2, layout);
  LinkCheck result;

  // -- Structural conditions (Definitions 6/7) -------------------------
  if (fp2.fault_value() != flip(fp1.fault_value())) {
    result.reason = "F2 != not(F1): FP2 cannot mask FP1";
    return result;
  }
  if (fp2.v_state() != fp1.fault_value()) {
    result.reason = "I2 != Fv1: FP2 is not sensitized on the faulty victim";
    return result;
  }
  if (fp1.is_immediately_detecting()) {
    result.reason = "FP1 is exposed by its own sensitizing read (RDF/IRF-like)";
    return result;
  }
  if (fp1.is_state_fault() && fp2.is_state_fault()) {
    result.reason = "two state faults cannot form a well-defined link";
    return result;
  }
  result.structurally_linked = true;

  // -- Canonical chain on the semantics engine --------------------------
  const std::size_t k = layout.num_cells;
  const std::size_t v = layout.v_pos;
  const std::size_t a1 = layout.a1_pos >= 0 ? layout.a1_pos : v;
  const std::size_t a2 = layout.a2_pos >= 0 ? layout.a2_pos : v;

  MemoryState initial(k);
  initial.set(v, fp1.v_state());
  if (fp1.is_two_cell()) initial.set(a1, fp1.a_state());
  if (fp2.is_two_cell() && static_cast<int>(a2) != layout.a1_pos &&
      a2 != v) {
    initial.set(a2, fp2.a_state());
  }

  MemoryState good = initial;
  FaultyMemory faulty(k, {BoundFp(fp1, a1, v), BoundFp(fp2, a2, v)});
  faulty.power_on(initial);

  bool mismatch = false;
  mismatch |= apply_sense_op(fp1, a1, v, good, faulty);
  const bool deviation_after_fp1 = faulty.state() != good;
  mismatch |= apply_sense_op(fp2, a2, v, good, faulty);

  result.fp1_fired = faulty.fire_count(0) > 0 && deviation_after_fp1;
  result.fp2_fired = faulty.fire_count(1) > 0;
  result.fully_masked = result.fp1_fired && result.fp2_fired && !mismatch &&
                        faulty.state() == good;
  if (!result.fp1_fired) {
    result.reason = "FP1 did not fire (or caused no deviation) in the chain";
  } else if (!result.fp2_fired) {
    result.reason = "FP2 is not sensitized in the state reached by FP1";
  }
  return result;
}

LinkedFault::LinkedFault(FaultPrimitive fp1, FaultPrimitive fp2,
                         LinkedLayout layout)
    : fp1_(std::move(fp1)), fp2_(std::move(fp2)), layout_(layout) {
  const LinkCheck check = check_link(fp1_, fp2_, layout_);
  require(check.structurally_linked && check.fp1_fired && check.fp2_fired,
          "FPs are not linked (" + fp1_.notation() + " -> " + fp2_.notation() +
              " [" + layout_.to_string() + "]): " + check.reason);
  fully_masking_ = check.fully_masked;
  name_ = fp1_.name() + "→" + fp2_.name() + " [" + layout_.to_string() + "]";
}

std::ostream& operator<<(std::ostream& os, const LinkedFault& lf) {
  return os << lf.name();
}

std::vector<LinkedAfpPair> expand_linked_afps(
    const LinkedFault& lf, const std::vector<std::size_t>& cells,
    std::size_t model_cells) {
  require(cells.size() == static_cast<std::size_t>(lf.num_cells()),
          "expand_linked_afps: cell mapping size mismatch");
  require(std::is_sorted(cells.begin(), cells.end()) &&
              std::adjacent_find(cells.begin(), cells.end()) == cells.end(),
          "expand_linked_afps: cell mapping must be strictly ascending");
  for (std::size_t c : cells) {
    require(c < model_cells, "expand_linked_afps: cell index out of range");
  }

  const LinkedLayout& layout = lf.layout();
  const std::size_t v = cells[layout.v_pos];
  const std::size_t a1 = layout.a1_pos >= 0 ? cells[layout.a1_pos] : v;
  const std::size_t a2 = layout.a2_pos >= 0 ? cells[layout.a2_pos] : v;
  const FaultPrimitive& fp1 = lf.fp1();
  const FaultPrimitive& fp2 = lf.fp2();

  std::vector<std::size_t> free_cells;
  for (std::size_t c = 0; c < model_cells; ++c) {
    if (std::find(cells.begin(), cells.end(), c) == cells.end()) {
      free_cells.push_back(c);
    }
  }

  // The sensitizing op of an FP at bound cells, annotated for the fault-free
  // value read from `state`.
  auto bound_op = [](const FaultPrimitive& fp, std::size_t a_cell,
                     std::size_t v_cell,
                     const SmallState& state) -> std::vector<AddressedOp> {
    if (fp.is_state_fault()) return {};
    const std::size_t cell = fp.op_on_aggressor() ? a_cell : v_cell;
    switch (fp.sense_op()) {
      case SenseOp::W0: return {AddressedOp{cell, Op::W0}};
      case SenseOp::W1: return {AddressedOp{cell, Op::W1}};
      case SenseOp::Rd: return {AddressedOp{cell, make_read(state.get(cell))}};
      case SenseOp::Wt: return {AddressedOp{cell, Op::T}};
      case SenseOp::None: break;
    }
    throw InternalError("bound_op: unreachable");
  };

  std::vector<LinkedAfpPair> result;
  const std::size_t backgrounds = std::size_t{1} << free_cells.size();
  for (std::size_t bg = 0; bg < backgrounds; ++bg) {
    SmallState i1(model_cells);
    i1.set(v, fp1.v_state());
    if (fp1.is_two_cell()) i1.set(a1, fp1.a_state());
    if (fp2.is_two_cell() && a2 != a1 && a2 != v) i1.set(a2, fp2.a_state());
    for (std::size_t i = 0; i < free_cells.size(); ++i) {
      i1.set(free_cells[i], (bg >> i) & 1u ? Bit::One : Bit::Zero);
    }

    LinkedAfpPair pair;
    // AFP1 = (I1, Es1, Fv1, Gv1)
    pair.afp1.initial = i1;
    pair.afp1.victim = v;
    pair.afp1.aggressor = a1;
    pair.afp1.sensitize = bound_op(fp1, a1, v, i1);
    SmallState gv1 = i1;
    for (const AddressedOp& aop : pair.afp1.sensitize) {
      if (is_write(aop.op)) gv1.set(aop.cell, written_value(aop.op));
    }
    pair.afp1.good = gv1;
    SmallState fv1 = gv1;
    fv1.set(v, fp1.fault_value());
    pair.afp1.faulty = fv1;

    // Chain feasibility for FP2 in Fv1 (aggressor state may have been moved
    // by FP1's operation).
    if (fp2.is_two_cell() && fv1.get(a2) != fp2.a_state()) continue;
    MTG_INTERNAL_CHECK(fv1.get(v) == fp2.v_state(),
                       "linked AFP chain lost the I2 = Fv1 invariant");

    // AFP2 = (I2 = Fv1, Es2, Fv2, Gv2)
    pair.afp2.initial = fv1;
    pair.afp2.victim = v;
    pair.afp2.aggressor = a2;
    pair.afp2.sensitize = bound_op(fp2, a2, v, fv1);
    SmallState gv2 = fv1;
    for (const AddressedOp& aop : pair.afp2.sensitize) {
      if (is_write(aop.op)) gv2.set(aop.cell, written_value(aop.op));
    }
    pair.afp2.good = gv2;
    SmallState fv2 = gv2;
    fv2.set(v, fp2.fault_value());
    pair.afp2.faulty = fv2;

    pair.tp1 = to_test_pattern(pair.afp1);
    pair.tp2 = to_test_pattern(pair.afp2);
    result.push_back(std::move(pair));
  }
  return result;
}

}  // namespace mtg
