// SweepStore unit tests: the record codec (every corruption must be caught),
// the key scheme (every component keys the result), and the degradation
// ladder (retry → disable → store-less operation, never a crash).
#include "store/sweep_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "store/fault_injection.hpp"
#include "store/storage.hpp"

namespace mtg {
namespace {

CoverageReport sample_report() {
  CoverageReport report;
  report.test_name = "March SL";
  report.list_name = "fault list #2";
  report.test_complexity = 23;
  report.entries.push_back(
      {0, "TF↑→RDF0 [v]", 12, 12, true, ""});
  report.entries.push_back(
      {5, "WDF0→WDF1 [v]", 8, 3, false, "escape: cell 7, power-on 0"});
  report.entries.push_back({17, "plain", 0, 0, false, ""});
  return report;
}

SweepKey sample_key() {
  SweepKey key;
  key.test_hash = 0x1122334455667788ull;
  key.list_hash = 0x99AABBCCDDEEFF00ull;
  key.memory_size = 4096;
  key.max_instances_per_fault = 256;
  return key;
}

void expect_reports_equal(const CoverageReport& a, const CoverageReport& b) {
  EXPECT_EQ(a.test_name, b.test_name);
  EXPECT_EQ(a.list_name, b.list_name);
  EXPECT_EQ(a.test_complexity, b.test_complexity);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].fault_index, b.entries[i].fault_index) << i;
    EXPECT_EQ(a.entries[i].fault, b.entries[i].fault) << i;
    EXPECT_EQ(a.entries[i].instances, b.entries[i].instances) << i;
    EXPECT_EQ(a.entries[i].detected, b.entries[i].detected) << i;
    EXPECT_EQ(a.entries[i].covered, b.entries[i].covered) << i;
    EXPECT_EQ(a.entries[i].escape_description, b.entries[i].escape_description)
        << i;
  }
  EXPECT_EQ(a.summary(), b.summary());
}

// --- codec ------------------------------------------------------------------

TEST(SweepStoreCodec, RoundTripsEveryReportField) {
  const SweepKey key = sample_key();
  const CoverageReport report = sample_report();
  const std::string record = SweepStore::encode_record(key, report);
  CoverageReport decoded;
  std::string why;
  ASSERT_TRUE(SweepStore::decode_record(record, key, decoded, &why)) << why;
  expect_reports_equal(report, decoded);
}

TEST(SweepStoreCodec, RoundTripsAnEmptyReport) {
  const SweepKey key = sample_key();
  const CoverageReport empty;
  const std::string record = SweepStore::encode_record(key, empty);
  CoverageReport decoded;
  ASSERT_TRUE(SweepStore::decode_record(record, key, decoded));
  expect_reports_equal(empty, decoded);
}

TEST(SweepStoreCodec, EveryKeyComponentIsChecked) {
  const SweepKey key = sample_key();
  const std::string record =
      SweepStore::encode_record(key, sample_report());
  CoverageReport out;
  std::string why;

  SweepKey other = key;
  other.test_hash ^= 1;
  EXPECT_FALSE(SweepStore::decode_record(record, other, out, &why));
  EXPECT_EQ(why, "key mismatch");

  other = key;
  other.list_hash ^= 1;
  EXPECT_FALSE(SweepStore::decode_record(record, other, out));

  other = key;
  other.memory_size += 1;
  EXPECT_FALSE(SweepStore::decode_record(record, other, out));

  other = key;
  other.max_instances_per_fault += 1;
  EXPECT_FALSE(SweepStore::decode_record(record, other, out));

  // Engine-version invalidation: a record written by engine v never
  // satisfies a reader expecting v+1.
  other = key;
  other.engine_version = kSweepStoreEngineVersion + 1;
  EXPECT_FALSE(SweepStore::decode_record(record, other, out));
}

TEST(SweepStoreCodec, EverySingleByteFlipIsDetected) {
  // The exhaustive bit-rot sweep: flipping any one byte of a record — header,
  // key, length field, checksum or payload — must make decode fail.  The
  // header CRC covers the header, the payload CRC the payload; nothing is
  // outside a checksum.
  const SweepKey key = sample_key();
  const std::string record =
      SweepStore::encode_record(key, sample_report());
  for (std::size_t i = 0; i < record.size(); ++i) {
    std::string damaged = record;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5A);
    CoverageReport out;
    EXPECT_FALSE(SweepStore::decode_record(damaged, key, out))
        << "byte " << i << " of " << record.size()
        << " flipped but the record still decoded";
  }
}

TEST(SweepStoreCodec, EveryTruncationIsDetected) {
  // A torn write persists an arbitrary prefix; none may decode.
  const SweepKey key = sample_key();
  const std::string record =
      SweepStore::encode_record(key, sample_report());
  for (std::size_t len = 0; len < record.size(); ++len) {
    CoverageReport out;
    EXPECT_FALSE(
        SweepStore::decode_record(record.substr(0, len), key, out))
        << "prefix of " << len << " bytes decoded";
  }
  // ... and trailing garbage is rejected too.
  CoverageReport out;
  EXPECT_FALSE(SweepStore::decode_record(record + "x", key, out));
}

// --- store behaviour --------------------------------------------------------

SweepStoreOptions fast_options(std::vector<std::string>* warnings = nullptr) {
  SweepStoreOptions options;
  options.retry_backoff = std::chrono::milliseconds{0};
  if (warnings != nullptr) {
    options.warn = [warnings](const std::string& m) { warnings->push_back(m); };
  } else {
    options.warn = [](const std::string&) {};
  }
  return options;
}

TEST(SweepStore, SaveThenLoadIsAHit) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  const SweepKey key = sample_key();
  const CoverageReport report = sample_report();
  ASSERT_TRUE(store.save(key, report));
  CoverageReport out;
  ASSERT_TRUE(store.load(key, out));
  expect_reports_equal(report, out);
  const SweepStoreStats stats = store.stats();
  EXPECT_EQ(stats.saves, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  // The rename protocol leaves no .tmp behind.
  EXPECT_EQ(mem.files().count(store.record_path(key) + ".tmp"), 0u);
  EXPECT_EQ(mem.files().count(store.record_path(key)), 1u);
}

TEST(SweepStore, MissingRecordIsAMiss) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  CoverageReport out;
  EXPECT_FALSE(store.load(sample_key(), out));
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().corrupt_records, 0u);
}

TEST(SweepStore, CorruptRecordIsDetectedSkippedAndRepaired) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  const SweepKey key = sample_key();
  ASSERT_TRUE(store.save(key, sample_report()));

  // Bit rot in place: flip one payload byte of the record file.
  const std::string path = store.record_path(key);
  std::string& file = mem.files().at(path);
  file.back() = static_cast<char>(file.back() ^ 0x01);

  CoverageReport out;
  EXPECT_FALSE(store.load(key, out)) << "corrupt record returned as a hit";
  EXPECT_EQ(store.stats().corrupt_records, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  // Repair: the damaged file is gone; the next save writes a fresh one and
  // the next load hits again.
  EXPECT_EQ(mem.files().count(path), 0u);
  ASSERT_TRUE(store.save(key, sample_report()));
  EXPECT_TRUE(store.load(key, out));
}

TEST(SweepStore, TruncatedRecordIsCorruptNotACrash) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  const SweepKey key = sample_key();
  ASSERT_TRUE(store.save(key, sample_report()));
  const std::string path = store.record_path(key);
  std::string& file = mem.files().at(path);
  file.resize(file.size() / 2);  // a torn write's half record
  CoverageReport out;
  EXPECT_FALSE(store.load(key, out));
  EXPECT_EQ(store.stats().corrupt_records, 1u);
  EXPECT_EQ(mem.files().count(path), 0u);
}

TEST(SweepStore, StaleKeyInABucketIsAKeyMismatch) {
  // Two keys whose record paths collide cannot both be cached; the resident
  // record must be recognized as "not mine" (counted separately from
  // corruption) and never served.  Simulate by copying key A's record into
  // key B's path.
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  const SweepKey a = sample_key();
  SweepKey b = sample_key();
  b.memory_size = 65536;
  ASSERT_TRUE(store.save(a, sample_report()));
  mem.files()[store.record_path(b)] = mem.files().at(store.record_path(a));

  CoverageReport out;
  EXPECT_FALSE(store.load(b, out));
  EXPECT_EQ(store.stats().key_mismatches, 1u);
  EXPECT_EQ(store.stats().corrupt_records, 0u);
}

TEST(SweepStore, RemovePunchesAHole) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  ASSERT_TRUE(store.open());
  const SweepKey key = sample_key();
  ASSERT_TRUE(store.save(key, sample_report()));
  EXPECT_TRUE(store.remove(key));
  EXPECT_FALSE(store.remove(key)) << "second remove finds nothing";
  CoverageReport out;
  EXPECT_FALSE(store.load(key, out));
}

TEST(SweepStore, TransientWriteFailureIsRetriedAndSucceeds) {
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  std::vector<std::string> warnings;
  SweepStore store(faulty, "/store", fast_options(&warnings));
  ASSERT_TRUE(store.open());
  // Scheduling resets the op counter: op 1 is save's first write.  It fails
  // once (transient); the retry succeeds.
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/false);
  const SweepKey key = sample_key();
  EXPECT_TRUE(store.save(key, sample_report()));
  EXPECT_TRUE(store.enabled());
  EXPECT_EQ(store.stats().saves, 1u);
  EXPECT_GE(store.stats().save_retries, 1u);
  EXPECT_EQ(store.stats().save_failures, 0u);
  EXPECT_TRUE(warnings.empty());
  CoverageReport out;
  EXPECT_TRUE(store.load(key, out));
}

TEST(SweepStore, ExhaustedRetriesDegradeToStoreLessOperationWithWarning) {
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  std::vector<std::string> warnings;
  SweepStore store(faulty, "/store", fast_options(&warnings));
  ASSERT_TRUE(store.open());
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);

  const SweepKey key = sample_key();
  EXPECT_FALSE(store.save(key, sample_report()));
  EXPECT_FALSE(store.enabled()) << "store must disable itself";
  EXPECT_EQ(store.stats().save_failures, 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("store"), std::string::npos);

  // Disabled store: every later call is a cheap no-op, not an I/O storm.
  faulty.reset_counts();
  CoverageReport out;
  EXPECT_FALSE(store.load(key, out));
  EXPECT_FALSE(store.save(key, sample_report()));
  EXPECT_EQ(faulty.counts().total(), 0u);
}

TEST(SweepStore, FailedOpenDisablesTheStore) {
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  std::vector<std::string> warnings;
  SweepStore store(faulty, "/store", fast_options(&warnings));
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);
  EXPECT_FALSE(store.open());
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(warnings.size(), 1u);
}

TEST(SweepStoreBackoff, DelaysAreLinearInTheAttemptWithBoundedJitter) {
  // Sticky failure + 4 attempts → 3 observed backoffs.  The i-th retry's
  // delay is base*(attempt-1) + jitter with jitter in [0, base): attempt 2
  // lands in [base, 2*base), attempt 3 in [2*base, 3*base), and so on.
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  SweepStoreOptions options;
  options.max_write_attempts = 4;
  options.retry_backoff = std::chrono::milliseconds{10};
  options.warn = [](const std::string&) {};
  std::vector<std::chrono::milliseconds> delays;
  options.on_backoff = [&delays](std::chrono::milliseconds d) {
    delays.push_back(d);  // seam: observed instead of slept
  };
  SweepStore store(faulty, "/store", options);
  ASSERT_TRUE(store.open());
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);
  EXPECT_FALSE(store.save(sample_key(), sample_report()));
  ASSERT_EQ(delays.size(), 3u);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const auto floor = std::chrono::milliseconds{10} * (i + 1);
    EXPECT_GE(delays[i], floor) << "retry " << i;
    EXPECT_LT(delays[i], floor + std::chrono::milliseconds{10})
        << "retry " << i;
  }
  EXPECT_EQ(store.stats().save_retries, 3u);
}

TEST(SweepStoreBackoff, EqualSeedsReplayTheExactJitterSequence) {
  const auto observe = [](std::uint64_t seed) {
    InMemoryStorage mem;
    FaultInjectedStorage faulty(mem);
    SweepStoreOptions options;
    options.max_write_attempts = 5;
    options.retry_backoff = std::chrono::milliseconds{7};
    options.retry_jitter_seed = seed;
    options.warn = [](const std::string&) {};
    std::vector<std::chrono::milliseconds> delays;
    options.on_backoff = [&delays](std::chrono::milliseconds d) {
      delays.push_back(d);
    };
    SweepStore store(faulty, "/store", options);
    store.open();
    faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);
    store.save(sample_key(), sample_report());
    return delays;
  };
  const auto first = observe(0xC0FFEEull);
  const auto second = observe(0xC0FFEEull);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first, second) << "equal seeds must replay equal delays";
}

TEST(SweepStoreBackoff, ZeroBaseMeansZeroDelayEverywhere) {
  // The jitter scales with the base, so a zero base stays exactly zero —
  // this is what keeps the hermetic tests free of wall-clock sleeps.
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  SweepStoreOptions options = fast_options();
  options.max_write_attempts = 4;
  std::vector<std::chrono::milliseconds> delays;
  options.on_backoff = [&delays](std::chrono::milliseconds d) {
    delays.push_back(d);
  };
  SweepStore store(faulty, "/store", options);
  ASSERT_TRUE(store.open());
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);
  EXPECT_FALSE(store.save(sample_key(), sample_report()));
  ASSERT_EQ(delays.size(), 3u);
  for (const auto delay : delays) EXPECT_EQ(delay.count(), 0);
}

TEST(SweepStoreBackoff, MaxWriteAttemptsBoundsTheWriteCount) {
  // The knob mtg_cli exposes as --store-retries caps the I/O: a sticky
  // failure makes exactly max_write_attempts write attempts, then disables.
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  SweepStoreOptions options = fast_options();
  options.max_write_attempts = 5;
  SweepStore store(faulty, "/store", options);
  ASSERT_TRUE(store.open());
  faulty.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);
  EXPECT_FALSE(store.save(sample_key(), sample_report()));
  EXPECT_EQ(faulty.counts().writes, 5u);
  EXPECT_EQ(store.stats().save_retries, 4u);
  EXPECT_FALSE(store.enabled());
}

TEST(SweepStore, RecordPathIsStableAndKeyDependent) {
  InMemoryStorage mem;
  SweepStore store(mem, "/store", fast_options());
  const SweepKey key = sample_key();
  const std::string path = store.record_path(key);
  EXPECT_EQ(path, store.record_path(key));
  EXPECT_EQ(path.rfind("/store/sweep-", 0), 0u) << path;
  EXPECT_EQ(path.substr(path.size() - 4), ".rec");
  SweepKey other = key;
  other.memory_size += 1;
  EXPECT_NE(store.record_path(other), path);
}

}  // namespace
}  // namespace mtg
