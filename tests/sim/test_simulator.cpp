#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"

namespace mtg {
namespace {

FaultInstance single_instance(FaultPrimitive fp, std::size_t cell) {
  FaultInstance inst;
  inst.fps.push_back(BoundFp::at(std::move(fp), cell));
  inst.description = "test instance";
  return inst;
}

TEST(Simulator, ValidityAcceptsCatalogTests) {
  for (const MarchTest& test : all_catalog_tests()) {
    EXPECT_EQ(FaultSimulator::validity_violation(test), "") << test.name();
  }
}

TEST(Simulator, ValidityRejectsReadBeforeInit) {
  const MarchTest bad = parse_march_test("{c(r0,w0)}");
  EXPECT_NE(FaultSimulator::validity_violation(bad), "");
  EXPECT_THROW(FaultSimulator::validate(bad), Error);
}

TEST(Simulator, ValidityRejectsWrongExpectedValue) {
  const MarchTest bad = parse_march_test("{c(w0); ^(r1,w0)}");
  EXPECT_NE(FaultSimulator::validity_violation(bad), "");
}

TEST(Simulator, ValidityAllowsBareReads) {
  const MarchTest ok = parse_march_test("{c(r); c(w0); c(r0)}");
  EXPECT_EQ(FaultSimulator::validity_violation(ok), "");
}

TEST(Simulator, DetectsStuckStateFault) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  EXPECT_TRUE(
      simulator.detects(mats_plus(), single_instance(FaultPrimitive::sf(Bit::One), 2)));
  EXPECT_TRUE(
      simulator.detects(mats_plus(), single_instance(FaultPrimitive::sf(Bit::Zero), 0)));
}

TEST(Simulator, DetectsTransitionFaults) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  EXPECT_TRUE(simulator.detects(
      mats_plus(), single_instance(FaultPrimitive::tf(Bit::Zero), 1)));
  // MATS+ ends with the w0 that sensitizes TF↓ and never reads it back —
  // the classic reason March X appends the final ⇕(r0).
  EXPECT_FALSE(simulator.detects(
      mats_plus(), single_instance(FaultPrimitive::tf(Bit::One), 3)));
  EXPECT_TRUE(simulator.detects(
      march_x(), single_instance(FaultPrimitive::tf(Bit::One), 3)));
}

TEST(Simulator, MatsPlusMissesWriteDestructiveFaults) {
  // MATS+ performs only transition writes, so WDFs are never sensitized.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  EXPECT_FALSE(simulator.detects(
      mats_plus(), single_instance(FaultPrimitive::wdf(Bit::Zero), 1)));
  // March SS contains non-transition writes followed by reads.
  EXPECT_TRUE(simulator.detects(
      march_ss(), single_instance(FaultPrimitive::wdf(Bit::Zero), 1)));
}

TEST(Simulator, DeceptiveReadNeedsDoubleReads) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const auto drdf = single_instance(FaultPrimitive::drdf(Bit::Zero), 2);
  EXPECT_FALSE(simulator.detects(mats_plus(), drdf));
  EXPECT_TRUE(simulator.detects(march_ss(), drdf));   // has r0,r0 pairs
  EXPECT_TRUE(simulator.detects(march_sl(), drdf));
}

TEST(Simulator, AnyReadCatchesRdf) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  EXPECT_TRUE(simulator.detects(
      mats_plus(), single_instance(FaultPrimitive::rdf(Bit::Zero), 0)));
  EXPECT_TRUE(simulator.detects(
      mats_plus(), single_instance(FaultPrimitive::irf(Bit::One), 0)));
}

TEST(Simulator, LinkedDisturbCouplingDetectedBySl) {
  // The linked CF of Equations 12-14 is caught by March SL at every address
  // assignment (the paper's Section 6 validation flow).
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const LinkedFault lf = disturb_coupling_linked_fault();
  for (const FaultInstance& inst : instantiate(lf, 4, 0)) {
    EXPECT_TRUE(simulator.detects(march_sl(), inst)) << inst.description;
  }
}

TEST(Simulator, LinkedWdfPairEscapesClassicTests) {
  // WDF0→WDF1 on one cell: classic tests never perform the back-to-back
  // non-transition writes needed to expose either component in isolation.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultInstance inst;
  inst.fps.push_back(BoundFp::at(FaultPrimitive::wdf(Bit::Zero), 1));
  inst.fps.push_back(BoundFp::at(FaultPrimitive::wdf(Bit::One), 1));
  inst.description = "WDF0→WDF1";
  for (const MarchTest& classic : {mats_plus(), march_x(), march_y(),
                                   march_c_minus(), march_a(), march_b()}) {
    EXPECT_FALSE(simulator.detects(classic, inst)) << classic.name();
  }
  for (const MarchTest& linked_aware :
       {march_ss(), march_sl(), march_lf1(), march_abl1()}) {
    EXPECT_TRUE(simulator.detects(linked_aware, inst)) << linked_aware.name();
  }
}

TEST(Simulator, SimulateReportsScenarioDiagnostics) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  // Detected fault: event populated, no escape scenario needed.
  const auto tf_up = single_instance(FaultPrimitive::tf(Bit::Zero), 1);
  const DetectionResult hit = simulator.simulate(march_x(), tf_up);
  EXPECT_TRUE(hit.detected);
  EXPECT_TRUE(hit.first_event.has_value());
  // Escaping fault: the escape scenario is reported.
  const auto tf_down = single_instance(FaultPrimitive::tf(Bit::One), 1);
  const DetectionResult miss = simulator.simulate(mats_plus(), tf_down);
  EXPECT_FALSE(miss.detected);
  EXPECT_TRUE(miss.escape_scenario.has_value());
}

TEST(Simulator, RunScenarioReportsEventDetails) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const auto inst = single_instance(FaultPrimitive::sf(Bit::One), 2);
  // March X: {⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)} — SF1 collapses w1 results.
  const auto event =
      simulator.run_scenario(march_x(), inst, Bit::Zero, /*mask=*/0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->address, 2u);
  EXPECT_EQ(event->expected, Bit::One);
  EXPECT_EQ(event->observed, Bit::Zero);
  EXPECT_FALSE(event->to_string().empty());
}

TEST(Simulator, AnyOrderElementsMustDetectUnderBothOrders) {
  // A contrived test that detects the a<v disturb CF only when marching up:
  // sensitize at the aggressor then read the victim in the same sweep.
  const MarchTest up_only = parse_march_test("{c(w0); ^(r0,w1); ^(r1)}", "up");
  const MarchTest any_order =
      parse_march_test("{c(w0); c(r0,w1); c(r1)}", "any");
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultInstance cf;
  cf.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), /*a=*/0, /*v=*/2));
  EXPECT_TRUE(simulator.detects(up_only, cf));
  // With ⇕ the tester may pick Down, where the victim is read before the
  // aggressor is written: the fault escapes that order, so it is NOT covered.
  EXPECT_FALSE(simulator.detects(any_order, cf));
}

TEST(Simulator, AnyOrderCount) {
  EXPECT_EQ(FaultSimulator::any_order_count(mats_plus()), 1u);
  EXPECT_EQ(FaultSimulator::any_order_count(march_abl1()), 3u);
  EXPECT_EQ(FaultSimulator::any_order_count(march_sl()), 1u);
}

TEST(Simulator, OptionsValidation) {
  EXPECT_THROW(FaultSimulator(SimulatorOptions{2, true, 10}), Error);
}

TEST(Simulator, FaultFreeInstanceNeverDetected) {
  // An empty fault set produces no mismatch on any catalog test.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  FaultInstance none;
  none.description = "fault-free";
  for (const MarchTest& test : all_catalog_tests()) {
    EXPECT_FALSE(simulator.detects(test, none)) << test.name();
  }
}

}  // namespace
}  // namespace mtg
