// Example: fault-simulate the published march tests against the
// reconstructed fault lists — the calibration experiment of DESIGN.md.
//
// Usage: coverage_report [memory_size]
//
// Prints, for each catalog test and each fault list, the fault coverage the
// simulator measures, mirroring the validation flow the paper applies to its
// generated tests (Section 6).
#include <iostream>

#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

int main(int argc, char** argv) {
  using namespace mtg;

  std::size_t memory_size = 5;
  try {
    if (argc > 1) memory_size = parse_memory_size(argv[1], "memory size");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const FaultSimulator simulator(SimulatorOptions{memory_size, true, 10});

  const FaultList list1 = fault_list_1();
  const FaultList list2 = fault_list_2();
  const FaultList simple = standard_simple_static_faults();

  std::cout << "Fault lists (memory size n=" << memory_size << "):\n"
            << "  " << list1.name << ": " << list1.size() << " faults\n"
            << "  " << list2.name << ": " << list2.size() << " faults\n"
            << "  " << simple.name << ": " << simple.size() << " faults\n\n";

  for (const FaultList* list : {&list2, &list1, &simple}) {
    std::cout << "=== " << list->name << " ===\n";
    for (const MarchTest& test : all_catalog_tests()) {
      const CoverageReport report = evaluate_coverage(simulator, test, *list);
      std::cout << report.summary() << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
