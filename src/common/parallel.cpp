#include "common/parallel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mtg {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::size_t my_index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    my_index = next_worker_index_++;
  }
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || !tasks_.empty() ||
               generation_ != seen_generation;
      });
      if (!tasks_.empty()) {
        // Queued tasks win over batch participation: a parallel_for caller
        // participates itself and can finish every chunk alone, while a
        // queued task has no fallback executor.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (stopping_) {
        return;  // queue drained — now the pool may go down
      } else {
        seen_generation = generation_;
        ++in_flight_;
      }
    }
    if (task.valid()) {
      task();  // packaged_task captures any exception into its future
      continue;
    }
    run_chunks(my_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  require(!workers_.empty(),
          "ThreadPool::submit needs at least one worker thread");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(!stopping_, "ThreadPool::submit after shutdown began");
    tasks_.push_back(std::move(packaged));
  }
  work_ready_.notify_one();
  return future;
}

void ThreadPool::run_chunks(std::size_t worker_index) {
  for (;;) {
    const std::size_t begin = next_.fetch_add(chunk_);
    if (begin >= count_) return;
    const std::size_t end = std::min(count_, begin + chunk_);
    try {
      (*fn_)(worker_index, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count, std::size_t chunk,
                              const RangeFn& fn) {
  if (count == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  if (workers_.empty() || count <= chunk) {
    // Inline fast path; still serialized so worker index num_workers() is
    // never handed out concurrently (callers key workspaces off it).
    std::lock_guard<std::mutex> submit(submit_mutex_);
    fn(num_workers(), 0, count);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker that woke late for the previous batch may still be inside
    // run_chunks; the batch parameters must not change under it.
    batch_done_.wait(lock, [&] { return in_flight_ == 0; });
    fn_ = &fn;
    count_ = count;
    chunk_ = chunk;
    first_error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    in_flight_ = 1;  // the caller participates with the top worker index
    ++generation_;
  }
  work_ready_.notify_all();
  run_chunks(num_workers());

  std::unique_lock<std::mutex> lock(mutex_);
  --in_flight_;
  batch_done_.wait(lock, [&] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace mtg
