// Calibration of the reconstructed fault lists against the published march
// tests — the ground truth the paper itself provides:
//
//  * March SL (41n) was published as covering ALL static linked faults; it
//    must reach 100% on our reconstructed Fault List #1.
//  * March LF1 (11n) and the paper's March ABL1 (9n) must reach 100% on
//    Fault List #2.
//  * The paper's March ABL / RABL were generated for the authors' exact
//    list; on our slightly broader constructive reconstruction they must
//    land within a fraction of a percent of full coverage.
//  * Classic tests (MATS+, March C-) must fail on linked faults — the
//    masking motivation of the paper's introduction.
#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

namespace mtg {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simulator_ = new FaultSimulator(SimulatorOptions{5, true, 10});
    list1_ = new FaultList(fault_list_1());
    list2_ = new FaultList(fault_list_2());
  }
  static void TearDownTestSuite() {
    delete simulator_;
    delete list1_;
    delete list2_;
    simulator_ = nullptr;
    list1_ = nullptr;
    list2_ = nullptr;
  }

  static FaultSimulator* simulator_;
  static FaultList* list1_;
  static FaultList* list2_;
};

FaultSimulator* CalibrationTest::simulator_ = nullptr;
FaultList* CalibrationTest::list1_ = nullptr;
FaultList* CalibrationTest::list2_ = nullptr;

TEST_F(CalibrationTest, MarchSlCoversAllStaticLinkedFaults) {
  const CoverageReport report =
      evaluate_coverage(*simulator_, march_sl(), *list1_);
  EXPECT_TRUE(report.full_coverage()) << report.summary();
}

TEST_F(CalibrationTest, MarchLf1CoversSingleCellLinkedFaults) {
  const CoverageReport report =
      evaluate_coverage(*simulator_, march_lf1(), *list2_);
  EXPECT_TRUE(report.full_coverage()) << report.summary();
}

TEST_F(CalibrationTest, MarchAbl1CoversSingleCellLinkedFaults) {
  const CoverageReport report =
      evaluate_coverage(*simulator_, march_abl1(), *list2_);
  EXPECT_TRUE(report.full_coverage()) << report.summary();
}

TEST_F(CalibrationTest, PaperGeneratedTestsNearlyCoverOurReconstruction) {
  // Our constructive enumeration is marginally broader than the authors'
  // realistic list; March ABL/RABL must stay above 98.5% fault coverage.
  const CoverageReport abl = evaluate_coverage(*simulator_, march_abl(), *list1_);
  EXPECT_GE(abl.fault_coverage_percent(), 99.0) << abl.summary();
  const CoverageReport rabl =
      evaluate_coverage(*simulator_, march_rabl(), *list1_);
  EXPECT_GE(rabl.fault_coverage_percent(), 98.5) << rabl.summary();
}

TEST_F(CalibrationTest, PaperGeneratedTestsFullyCoverSingleCellFaults) {
  EXPECT_TRUE(
      evaluate_coverage(*simulator_, march_abl(), *list2_).full_coverage());
  EXPECT_TRUE(
      evaluate_coverage(*simulator_, march_rabl(), *list2_).full_coverage());
}

TEST_F(CalibrationTest, ClassicTestsFailOnLinkedFaults) {
  // The motivation of the paper: masking defeats classic march tests.
  for (const MarchTest& test :
       {mats_plus(), march_x(), march_y(), march_c_minus(), march_u()}) {
    const CoverageReport report = evaluate_coverage(*simulator_, test, *list2_);
    EXPECT_LT(report.fault_coverage_percent(), 100.0) << report.summary();
  }
}

TEST_F(CalibrationTest, LinkedFaultTestsOutperformClassicOnListOne) {
  const double c_minus =
      evaluate_coverage(*simulator_, march_c_minus(), *list1_)
          .fault_coverage_percent();
  const double la =
      evaluate_coverage(*simulator_, march_la(), *list1_).fault_coverage_percent();
  const double sl =
      evaluate_coverage(*simulator_, march_sl(), *list1_).fault_coverage_percent();
  EXPECT_LT(c_minus, la);
  EXPECT_LT(la, sl);
  EXPECT_DOUBLE_EQ(sl, 100.0);
}

TEST_F(CalibrationTest, MarchSsCoversAllSimpleStaticFaults) {
  const FaultList simple = standard_simple_static_faults();
  const CoverageReport report =
      evaluate_coverage(*simulator_, march_ss(), simple);
  EXPECT_TRUE(report.full_coverage()) << report.summary();
  // But the 10n March C- does not (it misses WDF/DRDF-style faults).
  EXPECT_FALSE(
      evaluate_coverage(*simulator_, march_c_minus(), simple).full_coverage());
}

TEST_F(CalibrationTest, CoverageMonotoneInMemorySize) {
  // A test covering the list on n=5 also covers it on n=7 (sanity of the
  // instance enumeration; detection only depends on relative layout).
  const FaultSimulator larger(SimulatorOptions{7, true, 10});
  EXPECT_TRUE(evaluate_coverage(larger, march_lf1(), *list2_).full_coverage());
  EXPECT_TRUE(evaluate_coverage(larger, march_abl1(), *list2_).full_coverage());
}

}  // namespace
}  // namespace mtg
