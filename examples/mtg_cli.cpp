// mtg_cli — command line front end for the march test generation library.
//
//   mtg_cli catalog
//       list the published march tests with complexity
//   mtg_cli lists [--list-file <path>] [--suite-file <path>]
//       show the built-in fault lists and their sizes; with --list-file /
//       --suite-file, also summarize the external catalog file(s)
//   mtg_cli generate <list1|list2|simple|retention|decoder> [--stats]
//   mtg_cli generate --list-file <path> [--stats]
//       generate a march test for a built-in or external fault list; --stats
//       prints the per-phase timing breakdown and the generation lap log
//   mtg_cli coverage [<test>] <list> [n]
//       fault-simulate a march test against a built-in fault list.  <test>
//       is march notation (e.g. "{c(w0); ^(r0,w1); v(r1,w0)}"), a catalog
//       test name (e.g. "March SL"), or — with --suite-file — a test name
//       from the external suite; omitted, it defaults to March SL
//   mtg_cli coverage ... --list-file <path>
//       target an external fault list (format/fault_list_text.hpp: simple,
//       linked and decoder sections) instead of a built-in one
//   mtg_cli coverage ... --suite-file <path>
//       resolve <test> by name from an external march-test suite
//   mtg_cli coverage ... --sweep 64,256,4096,65536 [--cap k]
//       memory-size sweep: coverage at every listed n, evaluated in
//       parallel; per-fault layouts are capped (deterministically sampled)
//       above --cap instances (default 4096, 0 = full enumeration)
//   mtg_cli coverage ... --store <dir>
//       persistent result cache (store/sweep_store.hpp): external catalogs
//       key by the same canonical-serialization hashes as built-ins, so
//       re-runs hit the store (0 points evaluated) with no schema change.
//       --store-retries / --store-backoff-ms tune the write-retry ladder
//   mtg_cli matrix <jobfile> [--threads <k>] [--queue-capacity <q>]
//           [--reject] [--store <dir>] [--static-prefilter]
//       batch front end of the coverage-matrix service
//       (service/matrix_service.hpp): submits every job of a 'jobs v1' file
//       (service/job_file.hpp) and streams one JSON line per completed job
//       to stdout, summary to stderr.  --reject switches the backpressure
//       policy from Block to Reject; --static-prefilter serves jobs the
//       symbolic analyzer fully resolves without simulation (byte-identical
//       reports; count on stderr); Ctrl-C cancels the remaining jobs and
//       reports the completed ones (exit 130)
//
// SIGINT/SIGTERM trip one cooperative cancel token: 'matrix' and
// 'coverage --sweep' stop in bounded time, flush completed results (and the
// store), and report a partial summary instead of dying mid-write.
//   mtg_cli lint [<test>...] [<list>] [n] [--list-file <path>]
//           [--suite-file <path>] [--werror]
//       static catalog linter (analysis/lint.hpp): flags redundant march
//       elements, dead operations, duplicate/subsumed fault records and
//       zero-instance faults at the given memory size (default 6), against
//       a built-in list (default list1) or --list-file.  Tests come from
//       the positional specs (march notation or catalog/suite names); with
//       --suite-file and no specs, every suite test is linted.  Findings
//       from catalog files carry path:line:column positions.  Findings are
//       warnings by default (exit 0); --werror exits 1 on any finding — the
//       CI catalog-check mode
//   mtg_cli lint --jobs-file <path> [--werror]
//       lint a 'jobs v1' file instead (service/job_lint.hpp): duplicate
//       (test, list, n, cap) jobs, references to tests/lists no directive
//       defines, zero/implausible deadline_ms — path:line:column anchored
//   mtg_cli optimize <suite-file> [n] [--list <universe-spec>]
//           [--list-file <path>] [--out <path>]
//       greedy minimal sub-suite preserving the suite's union static
//       coverage over a fault universe (analysis/certificate.hpp), proved
//       by the symbolic analyzer; emits a 'certificate v1' document (stdout
//       or --out) whose per-dropped-test witness rows 'verify' re-checks.
//       The universe is a closed-form spec ("list1", "simple+decoder[0,12)",
//       families simple/retention/linked1/linked2/linked3/linkedrt/
//       list1/list2; default list1) or an external --list-file
//   mtg_cli verify <certificate-file> [--list-file <path>]
//       re-check a certificate against the packed simulation engine: the
//       universe hash must match, and every witness row must hold under
//       full fault enumeration.  The universe re-materializes from the
//       embedded spec; certificates over external lists need --list-file.
//       Exits 1 when any check fails
//   mtg_cli check <path>...
//       parse catalog files (fault lists or suites), reporting
//       path:line:column-annotated errors; the CI catalog-rot guard.  Adds
//       a static-coverage summary per parsed catalog (instantiable fault
//       counts; per-suite-test verdict counts vs list1 at n=6)
//   mtg_cli dot <g0|pgcf>
//       print the Figure 2 / Figure 4 graph as GraphViz DOT
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "analysis/lint.hpp"
#include "analysis/static_analyzer.hpp"
#include "analysis/subsumption.hpp"
#include "common/cancel.hpp"
#include "common/parse.hpp"
#include "service/job_file.hpp"
#include "service/job_lint.hpp"
#include "service/matrix_service.hpp"
#include "format/catalog_io.hpp"
#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_store.hpp"

namespace {

using namespace mtg;

/// The process-wide interrupt token: SIGINT/SIGTERM trip it, and every
/// cancellable command ('matrix', 'coverage --sweep') polls it.  cancel() is
/// one lock-free CAS, so calling it from the handler is async-signal-safe.
CancelToken g_interrupt;

extern "C" void handle_interrupt(int) { g_interrupt.cancel(); }

void install_interrupt_handler() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

/// Exit status for an interrupted run: the shell convention 128 + SIGINT.
constexpr int kInterruptedExit = 130;

FaultList list_by_name(const std::string& name) {
  if (name == "list1") return fault_list_1();
  if (name == "list2") return fault_list_2();
  if (name == "simple") return standard_simple_static_faults();
  if (name == "retention") return retention_fault_list();
  if (name == "decoder") return decoder_fault_list();
  throw Error("unknown fault list '" + name +
              "' (use list1, list2, simple, retention or decoder)");
}

/// Resolves the coverage test spec: march notation when it contains an
/// element (a '(' is never part of a name), otherwise a test name looked up
/// in the external suite (when given) and then in the built-in catalog.
MarchTest resolve_test(const std::string& spec, const MarchSuite* suite) {
  if (spec.find('(') != std::string::npos) {
    return parse_march_test(spec, "cli test");
  }
  if (suite != nullptr) {
    if (const MarchTest* test = suite->find(spec)) return *test;
  }
  for (const MarchTest& test : all_catalog_tests()) {
    if (test.name() == spec) return test;
  }
  std::string message = "unknown test name '" + spec + "'";
  if (suite != nullptr) {
    message += "; the suite defines:";
    for (const MarchTest& test : suite->tests) {
      message += " \"" + test.name() + "\"";
    }
  }
  message +=
      " (pass a catalog test name or march notation like "
      "\"{c(w0); ^(r0,w1); v(r1,w0)}\")";
  throw Error(message);
}

int cmd_catalog() {
  for (const MarchTest& test : all_catalog_tests()) {
    std::cout << test.name() << " (" << test.complexity_label() << "): "
              << test.to_string() << "\n";
  }
  return 0;
}

void print_list_summary(const std::string& label, const FaultList& list) {
  std::cout << label << ": " << list.name << " — " << list.size()
            << " faults (" << list.simple.size() << " simple, "
            << list.linked.size() << " linked, " << list.decoder.size()
            << " decoder)\n";
}

int cmd_lists(const std::string& list_file, const std::string& suite_file) {
  for (const char* name : {"list1", "list2", "simple", "retention", "decoder"}) {
    print_list_summary(name, list_by_name(name));
  }
  if (!list_file.empty()) {
    print_list_summary(list_file, load_fault_list_file(list_file));
  }
  if (!suite_file.empty()) {
    const MarchSuite suite = load_march_suite_file(suite_file);
    std::cout << suite_file << ": " << suite.size() << " tests\n";
    for (const MarchTest& test : suite.tests) {
      std::cout << "  " << test.name() << " (" << test.complexity_label()
                << "): " << test.to_string() << "\n";
    }
  }
  return 0;
}

int cmd_generate(const FaultList& list, bool stats) {
  const GenerationResult result = generate_march_test(list);
  std::cout << result.test.to_string() << "\n"
            << "complexity: " << result.test.complexity_label() << "\n"
            << "cpu time:   " << result.stats.elapsed_seconds << " s\n"
            << result.certification.summary() << "\n";
  for (const std::string& name : result.uncoverable) {
    std::cout << "uncoverable: " << name << "\n";
  }
  if (stats) {
    const GenerationStats& s = result.stats;
    std::cout << "--- generation stats ---\n"
              << "phase A (greedy):        " << s.phase_a_seconds << " s ("
              << s.greedy_rounds << " rounds, " << s.working_instances
              << " instances, pool " << s.candidate_pool << ")\n"
              << "certify state prep:      " << s.cert_prep_seconds << " s ("
              << s.certify_instances << " instances)\n"
              << "phase B (certification): " << s.phase_b_seconds << " s ("
              << s.certify_iterations << " iterations, "
              << s.instances_dropped << " instances dropped)\n"
              << "phase C (minimizer):     " << s.phase_c_seconds << " s ("
              << s.minimize_trials << " trials, "
              << s.minimize_element_replays << " element replays)\n"
              << "phase B2 (re-certify):   " << s.phase_b2_seconds << " s\n"
              << "--- generation log ---\n";
    for (const std::string& line : s.log) std::cout << line << "\n";
  }
  return result.full_coverage ? 0 : 1;
}

void print_store_stats(const SweepStore& store, const std::string& path) {
  const SweepStoreStats stats = store.stats();
  std::cout << "store " << path << ": " << stats.hits << " hits, "
            << stats.misses << " misses, " << stats.saves << " saved";
  if (stats.corrupt_records > 0) {
    std::cout << ", " << stats.corrupt_records << " corrupt repaired";
  }
  if (!store.enabled()) std::cout << " (degraded: store disabled)";
  std::cout << "\n";
}

int cmd_sweep(const MarchTest& test, const FaultList& list,
              const std::string& size_list, std::size_t cap,
              const std::string& store_path,
              const SweepStoreOptions& store_options) {
  SweepOptions options;
  options.max_instances_per_fault = cap;
  options.cancel = &g_interrupt;  // Ctrl-C skips the remaining points
  PosixStorage storage;
  std::optional<SweepStore> store;
  if (!store_path.empty()) {
    store.emplace(storage, store_path, store_options);
    store->open();  // failure degrades to store-less with a warning
    options.store = &*store;
  }
  // parse_size_list (common/parse.hpp) keeps duplicates and unsorted sizes
  // as given; sweep_coverage validates the n >= 3 minimum up front and
  // throws a clean Error before any point evaluates.
  const std::vector<SweepPoint> points = sweep_coverage(
      test, list, parse_size_list(size_list, "--sweep memory size"), options);
  std::cout << test.to_string() << " vs " << list.name << " (per-fault cap "
            << cap << "):\n"
            << sweep_summary(points);
  for (const SweepPoint& point : points) {
    // Cancelled points have no report (never partial) — the summary table
    // above already marks them; full-coverage rows need no detail line.
    if (point.cancelled || point.report.full_coverage()) continue;
    std::cout << "n=" << point.memory_size << ": "
              << point.report.summary() << "\n";
  }
  if (store.has_value()) {
    std::cout << "points evaluated: " << sweep_points_evaluated(points)
              << " of " << points.size() << "\n";
    print_store_stats(*store, store_path);
  }
  if (g_interrupt.cancelled()) {
    // Completed points printed and (with --store) persisted above — the
    // re-run resumes from them; only the cancelled rows recompute.
    const std::size_t done =
        static_cast<std::size_t>(std::count_if(
            points.begin(), points.end(),
            [](const SweepPoint& p) { return !p.cancelled; }));
    std::cerr << "interrupted: " << done << " of " << points.size()
              << " sweep points completed before cancellation\n";
    return kInterruptedExit;
  }
  const bool all_covered =
      std::all_of(points.begin(), points.end(), [](const SweepPoint& p) {
        return p.report.full_coverage();
      });
  return all_covered ? 0 : 1;
}

int cmd_coverage(const MarchTest& test, const FaultList& list, std::size_t n,
                 const std::string& store_path,
                 const SweepStoreOptions& store_options) {
  if (!store_path.empty()) {
    // Route through the sweep path so the single point reads/writes the
    // store like any grid cell.  Full enumeration (cap 0) matches the
    // store-less branch below, so the printed report is byte-identical.
    PosixStorage storage;
    SweepStore store(storage, store_path, store_options);
    store.open();
    SweepOptions options;
    options.max_instances_per_fault = 0;
    options.store = &store;
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, {n}, options);
    std::cout << points[0].report.summary() << "\n"
              << analyze_coverage(test, list, n).summary() << "\n";
    print_store_stats(store, store_path);
    return points[0].report.full_coverage() ? 0 : 1;
  }
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const CoverageReport report = evaluate_coverage(simulator, test, list);
  std::cout << report.summary() << "\n"
            << analyze_coverage(test, list, n).summary() << "\n";
  return report.full_coverage() ? 0 : 1;
}

/// The static-coverage lines 'check' appends per parsed catalog: how much
/// of a fault list is even instantiable at the default memory size, and the
/// analyzer's verdict counts for every suite test against list1.
void print_check_static_summary(const std::string& path) {
  constexpr std::size_t kN = 6;
  const std::string text = read_text_file(path);
  if (detect_catalog_kind(text, path) == CatalogKind::FaultListFile) {
    const FaultList list = parse_fault_list_text(text, path);
    std::size_t instantiable = 0;
    for (const SimpleFault& fault : list.simple) {
      if (static_instance_count(fault, kN) > 0) ++instantiable;
    }
    for (const LinkedFault& fault : list.linked) {
      if (static_instance_count(fault, kN) > 0) ++instantiable;
    }
    for (const DecoderFault& fault : list.decoder) {
      if (static_instance_count(fault, kN) > 0) ++instantiable;
    }
    std::cout << "  static@n=" << kN << ": " << instantiable << " of "
              << list.size() << " faults instantiable\n";
    return;
  }
  const MarchSuite suite = parse_march_suite_text(text, path);
  const FaultList list = fault_list_1();
  for (const MarchTest& test : suite.tests) {
    std::cout << "  " << test.name() << " vs " << list.name << " @n=" << kN
              << ": " << analyze_coverage(test, list, kN).summary() << "\n";
  }
}

int cmd_check(const std::vector<std::string>& paths) {
  bool all_ok = true;
  for (const std::string& path : paths) {
    try {
      const std::string summary = check_catalog_file(path);
      std::cout << "ok " << path << ": " << summary << "\n";
      print_check_static_summary(path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

/// Prints the findings and maps them to an exit status: findings are
/// warnings unless --werror promotes them (the CI catalog-check mode).
int report_lint_findings(const std::vector<LintFinding>& findings,
                         const std::string& clean_message, bool werror) {
  for (const LintFinding& finding : findings) {
    std::cout << finding.format() << "\n";
  }
  if (findings.empty()) {
    std::cout << clean_message << "\n";
    return 0;
  }
  std::cout << findings.size() << " lint finding(s)"
            << (werror ? " (treated as errors)" : "") << "\n";
  return werror ? 1 : 0;
}

int cmd_lint_jobs(const std::string& jobs_file, bool werror) {
  JobFilePositions positions;
  const JobFile file = load_job_file(jobs_file, &positions);
  std::optional<MarchSuite> suite;
  if (!file.suite_path.empty()) suite = load_march_suite_file(file.suite_path);
  const std::vector<LintFinding> findings = lint_job_file(
      file, suite.has_value() ? &*suite : nullptr, {}, jobs_file, &positions);
  return report_lint_findings(
      findings,
      "clean: no lint findings in " + jobs_file + " (" +
          std::to_string(file.jobs.size()) + " jobs)",
      werror);
}

int cmd_lint(const std::vector<std::string>& test_specs,
             const std::string& list_name, const std::string& list_file,
             const std::string& suite_file, std::size_t n, bool werror) {
  LintOptions options;
  options.memory_size = n;
  std::vector<LintFinding> findings;

  FaultList list;
  FaultListPositions list_positions;
  if (list_file.empty()) {
    list = list_by_name(list_name);
    const auto list_findings = lint_fault_list(list, options, list_name);
    findings.insert(findings.end(), list_findings.begin(),
                    list_findings.end());
  } else {
    list = parse_fault_list_text(read_text_file(list_file), list_file,
                                 &list_positions);
    const auto list_findings =
        lint_fault_list(list, options, list_file, &list_positions);
    findings.insert(findings.end(), list_findings.begin(),
                    list_findings.end());
  }

  std::optional<MarchSuite> suite;
  std::vector<SuiteTestPosition> suite_positions;
  if (!suite_file.empty()) {
    suite = parse_march_suite_text(read_text_file(suite_file), suite_file,
                                   &suite_positions);
  }

  // Lint targets: the positional specs; with a suite and no specs, every
  // suite test.  Suite-resolved tests keep their document positions.
  struct Target {
    MarchTest test;
    const SuiteTestPosition* positions;
    std::string source;
  };
  std::vector<Target> targets;
  const auto suite_target = [&](const std::string& name)
      -> const SuiteTestPosition* {
    if (!suite.has_value()) return nullptr;
    for (std::size_t i = 0; i < suite->tests.size(); ++i) {
      if (suite->tests[i].name() == name) return &suite_positions[i];
    }
    return nullptr;
  };
  if (test_specs.empty() && suite.has_value()) {
    for (std::size_t i = 0; i < suite->tests.size(); ++i) {
      targets.push_back({suite->tests[i], &suite_positions[i], suite_file});
    }
  }
  for (const std::string& spec : test_specs) {
    const MarchTest test = resolve_test(spec, suite ? &*suite : nullptr);
    const SuiteTestPosition* positions = suite_target(test.name());
    targets.push_back(
        {test, positions, positions != nullptr ? suite_file : test.name()});
  }
  for (const Target& target : targets) {
    const auto test_findings = lint_march_test(target.test, list, options,
                                               target.source,
                                               target.positions);
    findings.insert(findings.end(), test_findings.begin(),
                    test_findings.end());
  }

  return report_lint_findings(findings,
                              "clean: no lint findings against " + list.name +
                                  " at n=" + std::to_string(n),
                              werror);
}

int cmd_optimize(const std::string& suite_path,
                 const std::string& universe_spec,
                 const std::string& list_file, std::size_t n,
                 const std::string& out_path) {
  const MarchSuite suite = load_march_suite_file(suite_path);
  FaultList universe;
  std::string spec;
  if (!list_file.empty()) {
    // External universes have no closed-form spec: the certificate pins
    // them by content hash, and 'verify' needs the same --list-file.
    universe = load_fault_list_file(list_file);
  } else {
    const FaultUniverse parsed =
        FaultUniverse::parse(universe_spec.empty() ? "list1" : universe_spec);
    universe = parsed.materialize();
    spec = parsed.spec();
  }
  const Certificate cert = optimize_suite(suite, universe, spec, n);
  const std::string text = to_canonical_string(cert);
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << text;
    out.flush();
    require(out.good(), "failed to write certificate to " + out_path);
  }
  std::size_t cover_rows = 0;
  for (const CertificateDrop& drop : cert.dropped) {
    cover_rows += drop.covers.size();
  }
  std::cerr << "optimize: kept " << cert.kept.size() << " of "
            << suite.size() << " tests over " << universe.size()
            << " faults at n=" << n << " (" << cert.dropped.size()
            << " dropped, " << cover_rows << " witness rows)\n";
  return 0;
}

int cmd_verify(const std::string& cert_path, const std::string& list_file) {
  const Certificate cert = load_certificate_file(cert_path);
  FaultList universe;
  if (!list_file.empty()) {
    universe = load_fault_list_file(list_file);
  } else {
    require(!cert.universe_spec.empty(),
            "certificate pins an external universe by hash only — pass the "
            "same fault list with --list-file");
    universe = FaultUniverse::parse(cert.universe_spec).materialize();
  }
  const CertificateCheck check = verify_certificate(cert, universe);
  for (const std::string& problem : check.problems) {
    std::cout << cert_path << ": " << problem << "\n";
  }
  std::cout << cert_path << ": " << check.summary() << "\n";
  return check.ok ? 0 : 1;
}

int cmd_dot(const std::string& which) {
  if (which == "g0") {
    std::cout << make_g0().to_dot("G0");
    return 0;
  }
  if (which == "pgcf") {
    std::cout << make_pgcf().to_dot("PGCF");
    return 0;
  }
  throw Error("unknown graph '" + which + "' (use g0 or pgcf)");
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int cmd_matrix(const std::string& path, std::size_t threads,
               std::size_t queue_capacity, bool reject, bool static_prefilter,
               const std::string& store_path,
               const SweepStoreOptions& store_options) {
  const JobFile file = load_job_file(path);
  std::optional<MarchSuite> suite;
  if (!file.suite_path.empty()) suite = load_march_suite_file(file.suite_path);
  // Catalogs load once and are shared: many jobs typically name the same
  // list, and the service's instantiation cache borrows the shared object.
  std::map<std::string, std::shared_ptr<const FaultList>> lists;
  for (const auto& [alias, list_path] : file.fault_list_files) {
    lists[alias] =
        std::make_shared<const FaultList>(load_fault_list_file(list_path));
  }
  const auto list_for = [&](const std::string& name) {
    const auto it = lists.find(name);
    if (it != lists.end()) return it->second;
    const auto list = std::make_shared<const FaultList>(list_by_name(name));
    lists.emplace(name, list);
    return list;
  };

  // Resolve every job before submitting any: a typo in job 40 should be a
  // clean file:line diagnostic, not 39 evaluations followed by an error.
  struct ResolvedJob {
    MatrixJob job;
    std::string test_display;
    std::string list_display;
  };
  std::vector<ResolvedJob> resolved;
  resolved.reserve(file.jobs.size());
  for (const JobFileRecord& record : file.jobs) {
    try {
      ResolvedJob entry;
      entry.job.test = resolve_test(record.test_spec,
                                    suite.has_value() ? &*suite : nullptr);
      entry.job.list = list_for(record.list_name);
      entry.job.memory_size = record.memory_size;
      entry.job.max_instances_per_fault = record.max_instances_per_fault;
      entry.job.deadline = record.deadline;
      // Display the spec as written: a suite/catalog name stays a name,
      // march notation stays notation (its parsed "name" is a source tag).
      entry.test_display = record.test_spec;
      entry.list_display = record.list_name;
      resolved.push_back(std::move(entry));
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(record.line) + ": " + e.what());
    }
  }

  PosixStorage storage;
  std::optional<SweepStore> store;
  if (!store_path.empty()) {
    store.emplace(storage, store_path, store_options);
    store->open();  // failure degrades to store-less with a warning
  }

  // One JSON line per terminal job, streamed from the workers as jobs land
  // (completion order, not submission order — the job id ties them back).
  std::mutex output_mutex;
  MatrixServiceOptions options;
  options.threads = threads;
  options.queue_capacity = queue_capacity;
  options.when_full =
      reject ? BackpressurePolicy::Reject : BackpressurePolicy::Block;
  options.store = store.has_value() ? &*store : nullptr;
  options.static_prefilter = static_prefilter;
  options.cancel = &g_interrupt;
  options.on_result = [&](const MatrixJobResult& result) {
    const ResolvedJob& entry = resolved[result.job_id];
    std::lock_guard<std::mutex> lock(output_mutex);
    std::cout << "{\"job\":" << result.job_id << ",\"test\":\""
              << json_escape(entry.test_display) << "\",\"list\":\""
              << json_escape(entry.list_display) << "\",\"n\":"
              << entry.job.memory_size << ",\"cap\":"
              << entry.job.max_instances_per_fault << ",\"status\":\""
              << to_string(result.status) << "\"";
    if (result.status == JobStatus::Completed) {
      std::cout << ",\"faults_covered\":" << result.report.faults_covered()
                << ",\"faults_total\":" << result.report.faults_total()
                << ",\"instances_detected\":"
                << result.report.instances_detected()
                << ",\"instances_total\":" << result.report.instances_total()
                << ",\"from_store\":"
                << (result.from_store ? "true" : "false");
    }
    if (!result.error.empty()) {
      std::cout << ",\"error\":\"" << json_escape(result.error) << "\"";
    }
    std::cout << "}\n" << std::flush;
  };

  std::vector<MatrixJobResult> results;
  {
    MatrixService service(options);
    for (const ResolvedJob& entry : resolved) {
      // After an interrupt the submission loop stops: already-queued jobs
      // drain as Cancelled, unsubmitted ones are never admitted.
      if (g_interrupt.cancelled()) break;
      service.submit(entry.job);
    }
    results = service.drain();
    const MatrixServiceStats stats = service.stats();
    std::lock_guard<std::mutex> lock(output_mutex);
    std::cerr << "matrix: " << stats.completed << " completed ("
              << stats.store_hits << " from store, " << stats.static_served
              << " statically served), " << stats.failed << " failed, "
              << stats.cancelled << " cancelled, "
              << stats.deadline_exceeded << " deadline-exceeded, "
              << stats.rejected << " rejected of " << resolved.size()
              << " jobs\n";
  }
  if (store.has_value()) print_store_stats(*store, store_path);

  if (g_interrupt.cancelled()) return kInterruptedExit;
  const bool all_completed =
      results.size() == resolved.size() &&
      std::all_of(results.begin(), results.end(),
                  [](const MatrixJobResult& r) {
                    return r.status == JobStatus::Completed;
                  });
  return all_completed ? 0 : 1;
}

int usage() {
  std::cerr
      << "usage:\n"
      << "  mtg_cli catalog\n"
      << "  mtg_cli lists [--list-file <path>] [--suite-file <path>]\n"
      << "  mtg_cli generate <list1|list2|simple|retention|decoder> "
         "[--stats]\n"
      << "  mtg_cli generate --list-file <path> [--stats]\n"
      << "  mtg_cli coverage [<test>] <list> [n] [--store <dir>]\n"
      << "  mtg_cli coverage [<test>] <list> --sweep <n1,n2,...> "
         "[--cap <instances-per-fault>] [--store <dir>]\n"
      << "    <test>: march notation, a catalog test name, or (with "
         "--suite-file) a suite\n"
      << "    test name; defaults to \"March SL\" when omitted\n"
      << "    <list>: a built-in list name, or --list-file <path> instead\n"
      << "  mtg_cli matrix <jobfile> [--threads <k>] [--queue-capacity <q>] "
         "[--reject] [--store <dir>] [--static-prefilter]\n"
      << "    batch coverage-matrix service over a 'jobs v1' file; one JSON "
         "line per job\n"
      << "  (stores: --store-retries <k> and --store-backoff-ms <ms> tune "
         "the write-retry ladder)\n"
      << "  mtg_cli lint [<test>...] [<list>] [n] [--list-file <path>] "
         "[--suite-file <path>] [--werror]\n"
      << "  mtg_cli lint --jobs-file <path> [--werror]\n"
      << "  mtg_cli optimize <suite-file> [n] [--list <universe-spec>] "
         "[--list-file <path>] [--out <path>]\n"
      << "    greedy minimal sub-suite + 'certificate v1' proof; universe "
         "spec e.g. \"simple+decoder[0,12)\"\n"
      << "  mtg_cli verify <certificate-file> [--list-file <path>]\n"
      << "    re-check a certificate against the packed simulation engine\n"
      << "  mtg_cli check <path>...\n"
      << "  mtg_cli dot <g0|pgcf>\n";
  return 2;
}

bool all_digits(const std::string& text) {
  return !text.empty() &&
         text.find_first_not_of("0123456789") == std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string command = argc > 1 ? argv[1] : "";
    if (command == "catalog") return cmd_catalog();
    if (command == "check" && argc > 2) {
      return cmd_check(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "lists" || command == "generate" ||
        command == "coverage" || command == "lint" || command == "matrix" ||
        command == "optimize" || command == "verify") {
      // Shared flag/positional split for the catalog-aware commands.
      std::vector<std::string> positional;
      std::string list_file, suite_file, sweep_sizes, store_path;
      std::string universe_spec, out_path, jobs_file;
      std::size_t cap = 4096;
      bool stats = false;
      std::size_t threads = 0, queue_capacity = 256;
      bool reject = false, werror = false, static_prefilter = false;
      SweepStoreOptions store_options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-file" && i + 1 < argc) {
          list_file = argv[++i];
        } else if (arg == "--suite-file" && i + 1 < argc) {
          suite_file = argv[++i];
        } else if (arg == "--sweep" && i + 1 < argc) {
          sweep_sizes = argv[++i];
        } else if (arg == "--cap" && i + 1 < argc) {
          cap = parse_count(argv[++i], "--cap");
        } else if (arg == "--store" && i + 1 < argc) {
          store_path = argv[++i];
        } else if (arg == "--store-retries" && i + 1 < argc) {
          const std::size_t retries =
              parse_count(argv[++i], "--store-retries");
          require(retries >= 1 && retries <= 1000,
                  "--store-retries must be between 1 and 1000");
          store_options.max_write_attempts = static_cast<int>(retries);
        } else if (arg == "--store-backoff-ms" && i + 1 < argc) {
          store_options.retry_backoff = std::chrono::milliseconds(
              parse_count(argv[++i], "--store-backoff-ms"));
        } else if (arg == "--threads" && i + 1 < argc) {
          threads = parse_count(argv[++i], "--threads");
        } else if (arg == "--queue-capacity" && i + 1 < argc) {
          queue_capacity = parse_count(argv[++i], "--queue-capacity");
          require(queue_capacity >= 1, "--queue-capacity must be >= 1");
        } else if (arg == "--reject") {
          reject = true;
        } else if (arg == "--stats") {
          stats = true;
        } else if (arg == "--werror") {
          werror = true;
        } else if (arg == "--static-prefilter") {
          static_prefilter = true;
        } else if (arg == "--list" && i + 1 < argc) {
          universe_spec = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
          out_path = argv[++i];
        } else if (arg == "--jobs-file" && i + 1 < argc) {
          jobs_file = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
          return usage();
        } else {
          positional.push_back(arg);
        }
      }

      if (command == "matrix") {
        if (positional.size() != 1 || stats || !sweep_sizes.empty() ||
            !list_file.empty() || !suite_file.empty() ||
            !universe_spec.empty() || !out_path.empty() ||
            !jobs_file.empty() || werror) {
          return usage();
        }
        install_interrupt_handler();
        return cmd_matrix(positional[0], threads, queue_capacity, reject,
                          static_prefilter, store_path, store_options);
      }
      if (threads != 0 || queue_capacity != 256 || reject ||
          static_prefilter) {
        return usage();
      }

      if (command == "optimize") {
        if (stats || werror || !sweep_sizes.empty() || !store_path.empty() ||
            !suite_file.empty() || !jobs_file.empty() ||
            (!universe_spec.empty() && !list_file.empty())) {
          return usage();
        }
        // Positionals: <suite-file> [n].
        std::string suite_path;
        std::size_t n = 6;
        for (const std::string& arg : positional) {
          if (all_digits(arg)) {
            n = parse_memory_size(arg, "memory size");
          } else if (suite_path.empty()) {
            suite_path = arg;
          } else {
            return usage();
          }
        }
        if (suite_path.empty()) return usage();
        return cmd_optimize(suite_path, universe_spec, list_file, n,
                            out_path);
      }

      if (command == "verify") {
        if (positional.size() != 1 || stats || werror ||
            !sweep_sizes.empty() || !store_path.empty() ||
            !suite_file.empty() || !jobs_file.empty() ||
            !universe_spec.empty() || !out_path.empty()) {
          return usage();
        }
        return cmd_verify(positional[0], list_file);
      }
      if (!universe_spec.empty() || !out_path.empty()) return usage();

      if (command == "lists") {
        if (!positional.empty() || stats || werror || !jobs_file.empty()) {
          return usage();
        }
        return cmd_lists(list_file, suite_file);
      }

      if (command == "lint") {
        // Positionals sort themselves: digits are the memory size, a
        // built-in list name selects the lint target, anything else is a
        // test spec (march notation or a catalog/suite test name).
        if (stats || !sweep_sizes.empty() || !store_path.empty()) {
          return usage();
        }
        if (!jobs_file.empty()) {
          // Jobs-file mode is its own lint target: the checks are about the
          // batch file's internal consistency, not any one catalog.
          if (!positional.empty() || !list_file.empty() ||
              !suite_file.empty()) {
            return usage();
          }
          return cmd_lint_jobs(jobs_file, werror);
        }
        std::vector<std::string> specs;
        std::string lint_list = "list1";
        std::size_t lint_n = 6;
        for (const std::string& arg : positional) {
          if (all_digits(arg)) {
            lint_n = parse_memory_size(arg, "memory size");
          } else if (arg == "list1" || arg == "list2" || arg == "simple" ||
                     arg == "retention" || arg == "decoder") {
            lint_list = arg;
          } else {
            specs.push_back(arg);
          }
        }
        return cmd_lint(specs, lint_list, list_file, suite_file, lint_n,
                        werror);
      }
      if (werror || !jobs_file.empty()) return usage();

      if (command == "generate") {
        if (positional.size() != (list_file.empty() ? 1 : 0)) return usage();
        const FaultList list = list_file.empty()
                                   ? list_by_name(positional[0])
                                   : load_fault_list_file(list_file);
        return cmd_generate(list, stats);
      }

      // coverage: positionals are [<test>] <list> [n], where <list> moves to
      // --list-file when given and [n] conflicts with --sweep.
      if (stats) return usage();
      std::optional<MarchSuite> suite;
      if (!suite_file.empty()) suite = load_march_suite_file(suite_file);

      std::string test_spec;
      std::string list_name;
      std::optional<std::size_t> n;
      std::vector<std::string> rest = positional;
      if (list_file.empty()) {
        // <test> <list> [n] — but tolerate a leading-list-only spelling
        // ("coverage list1") by treating a lone built-in list name as the
        // list with the default test.
        if (rest.empty()) return usage();
        if (rest.size() == 1) {
          list_name = rest[0];
        } else {
          test_spec = rest[0];
          list_name = rest[1];
          if (rest.size() == 3) {
            n = parse_memory_size(rest[2], "memory size");
          } else if (rest.size() > 3) {
            return usage();
          }
        }
      } else {
        // [<test>] [n]
        if (rest.size() == 1) {
          (all_digits(rest[0]) ? void(n = parse_memory_size(rest[0],
                                                            "memory size"))
                               : void(test_spec = rest[0]));
        } else if (rest.size() == 2) {
          test_spec = rest[0];
          n = parse_memory_size(rest[1], "memory size");
        } else if (rest.size() > 2) {
          return usage();
        }
      }

      const FaultList list = list_file.empty() ? list_by_name(list_name)
                                               : load_fault_list_file(list_file);
      const MarchTest test = test_spec.empty()
                                 ? march_sl()
                                 : resolve_test(test_spec, suite ? &*suite
                                                                 : nullptr);
      if (!sweep_sizes.empty()) {
        if (n.has_value()) return usage();  // [n] is the non-sweep form
        install_interrupt_handler();
        return cmd_sweep(test, list, sweep_sizes, cap, store_path,
                         store_options);
      }
      return cmd_coverage(test, list, n.value_or(6), store_path,
                          store_options);
    }
    if (command == "dot" && argc > 2) return cmd_dot(argv[2]);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
