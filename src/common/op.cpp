#include "common/op.hpp"

#include <ostream>
#include <sstream>

namespace mtg {

std::string to_string(Op op) {
  switch (op) {
    case Op::W0: return "w0";
    case Op::W1: return "w1";
    case Op::R0: return "r0";
    case Op::R1: return "r1";
    case Op::R: return "r";
    case Op::T: return "t";
  }
  throw InternalError("to_string(Op): unreachable");
}

Op op_from_string(std::string_view token) {
  if (token == "w0") return Op::W0;
  if (token == "w1") return Op::W1;
  if (token == "r0") return Op::R0;
  if (token == "r1") return Op::R1;
  if (token == "r") return Op::R;
  if (token == "t") return Op::T;
  throw Error("unknown memory operation token: '" + std::string(token) + "'");
}

std::ostream& operator<<(std::ostream& os, Op op) { return os << to_string(op); }

std::string to_string(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out << ',';
    out << to_string(ops[i]);
  }
  return out.str();
}

}  // namespace mtg
