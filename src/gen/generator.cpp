#include "gen/generator.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "gen/candidates.hpp"
#include "gen/minimizer.hpp"
#include "sim/fault_instance.hpp"
#include "sim/packed_engine.hpp"

namespace mtg {
namespace {

/// Greedy coverage engine: keeps, for every fault instance, the state of
/// every (power-on value, ⇕-order assignment) scenario at the end of the
/// current test prefix, so candidate march elements are evaluated
/// incrementally (no prefix re-simulation).  Scenarios live in the packed
/// engine's 64-bit lane blocks: one run_element call advances every scenario
/// of an instance at once, over its involved cells only.
class GreedyEngine {
 public:
  GreedyEngine(std::size_t memory_size, std::vector<FaultInstance> instances,
               const MarchTest& prefix, bool both_power_on_states)
      : instances_(std::move(instances)) {
    const CompiledTest compiled = compile_march_test(prefix);
    require(compiled.any_count <= 10,
            "too many ⇕ elements in the generation prefix");
    const std::size_t combos = std::size_t{1} << compiled.any_count;
    const std::size_t total = (both_power_on_states ? 2 : 1) * combos;

    items_.reserve(instances_.size());
    for (const FaultInstance& inst : instances_) {
      require_addresses_fit(inst, memory_size);
      // Unlike the simulator entry points, the greedy engine has no scalar
      // fallback: reject oversized instances loudly at entry.
      require(PackedFaultSim::supports(inst),
              "the greedy engine supports at most " +
                  std::to_string(PackedFaultSim::kMaxFps) +
                  " bound FPs per fault instance");
      Item item;
      item.instance = &inst;
      item.sim = PackedFaultSim(inst);
      for (std::size_t base = 0; base < total; base += 64) {
        PackedFaultSim::Lanes lanes;
        item.sim.power_on_block(lanes, base, total, combos,
                                both_power_on_states);
        for (std::size_t e = 0; e < prefix.elements().size(); ++e) {
          const MarchElement& element = prefix.elements()[e];
          item.sim.run_element(lanes, element, compiled.traces[e],
                               element_down_word(element,
                                                 compiled.any_ordinal[e], base,
                                                 combos));
          if (lanes.detected == lanes.active) break;
        }
        item.blocks.push_back(lanes);
      }
      item.done = all_detected(item);
      items_.push_back(std::move(item));
    }
  }

  std::size_t undetected_instances() const {
    std::size_t count = 0;
    for (const Item& item : items_) count += item.done ? 0 : 1;
    return count;
  }

  /// Fault-list indices of the instances still undetected.
  std::set<std::size_t> undetected_fault_indices() const {
    std::set<std::size_t> out;
    for (const Item& item : items_) {
      if (!item.done) out.insert(item.instance->fault_index);
    }
    return out;
  }

  /// Marks every instance of the given faults as out of scope (uncoverable).
  void exclude_faults(const std::set<std::size_t>& fault_indices) {
    for (Item& item : items_) {
      if (fault_indices.count(item.instance->fault_index) > 0) item.done = true;
    }
  }

  /// Number of undetected (instance, scenario) pairs.
  std::size_t undetected_scenarios() const {
    std::size_t count = 0;
    for (const Item& item : items_) {
      if (item.done) continue;
      for (const PackedFaultSim::Lanes& block : item.blocks) {
        count += lane_popcount(block.active & ~block.detected);
      }
    }
    return count;
  }

  /// Gain of appending the candidate: the number of (instance, scenario)
  /// pairs it newly detects.  Scenario granularity matters: an element can
  /// make progress on one power-on polarity only (the complementary
  /// polarity being handled by a later element), which instance-level
  /// counting would miss and stall on.  ⇕ candidates are evaluated in their
  /// ⇑ reading (as the scalar engine did); certification re-resolves ⇕
  /// orders exactly.
  ///
  /// `abort_below(g, remaining)` lets the caller prune hopeless candidates:
  /// it receives the gain so far and the number of unscanned scenarios and
  /// returns true to abandon the evaluation (result is then a lower bound).
  template <typename AbortFn>
  std::size_t gain(const MarchElement& candidate, const ElementTrace& trace,
                   AbortFn abort_below) const {
    const std::uint64_t down =
        candidate.order() == AddressOrder::Down ? ~std::uint64_t{0} : 0;
    std::size_t g = 0;
    std::size_t remaining = undetected_scenarios();
    for (const Item& item : items_) {
      if (item.done) continue;
      for (const PackedFaultSim::Lanes& block : item.blocks) {
        const std::size_t undetected =
            lane_popcount(block.active & ~block.detected);
        if (undetected == 0) continue;
        remaining -= undetected;
        PackedFaultSim::Lanes trial = block;  // plain-data copy
        const std::size_t newly = lane_popcount(
            item.sim.run_element(trial, candidate, trace, down));
        g += newly;
        // Match the scalar engine's abort placement: only after a failure.
        // A candidate that detects everything must return its exact gain,
        // or it could lose the score-tie g tie-break it deserves to win.
        if (newly < undetected && abort_below(g, remaining)) return g;
      }
    }
    return g;
  }

  /// Appends the candidate to the tracked prefix state.
  void commit(const MarchElement& candidate, const ElementTrace& trace) {
    const std::uint64_t down =
        candidate.order() == AddressOrder::Down ? ~std::uint64_t{0} : 0;
    for (Item& item : items_) {
      if (item.done) continue;
      for (PackedFaultSim::Lanes& block : item.blocks) {
        if ((block.active & ~block.detected) == 0) continue;  // fully detected
        item.sim.run_element(block, candidate, trace, down);
      }
      item.done = all_detected(item);
    }
  }

 private:
  struct Item {
    const FaultInstance* instance = nullptr;
    PackedFaultSim sim;  ///< the instance compiled to involved-cell slots
    std::vector<PackedFaultSim::Lanes> blocks;  ///< scenario lane state
    bool done = false;
  };

  static bool all_detected(const Item& item) {
    for (const PackedFaultSim::Lanes& block : item.blocks) {
      if ((block.active & ~block.detected) != 0) return false;
    }
    return true;
  }

  std::vector<FaultInstance> instances_;
  std::vector<Item> items_;
};

/// The greedy loop of Figure 5: append the best-scoring valid SO until the
/// engine's fault set is covered or no candidate helps.  Candidate gains are
/// evaluated in parallel on `workers` (candidates are independent; each
/// candidate's gain reduces by sum over its instance blocks); the reduction
/// runs sequentially in pool order, so the selected element — and hence the
/// generated test — is identical for every thread count.  Returns the fault
/// indices reported uncoverable (step d.i).
std::set<std::size_t> greedy_cover(GreedyEngine& engine,
                                   const std::vector<MarchElement>& pool,
                                   MarchTest& test,
                                   const GeneratorOptions& options,
                                   ThreadPool& workers,
                                   GenerationStats& stats) {
  auto final_value = [&]() -> std::optional<Bit> {
    std::optional<Bit> value;
    for (const MarchElement& e : test.elements()) {
      if (auto v = e.final_value()) value = v;
    }
    return value;
  };

  std::optional<Bit> current_final = final_value();
  std::set<std::size_t> uncoverable;
  std::size_t stalls_in_a_row = 0;

  // Element traces are order-independent; compile the pool's once.
  std::vector<ElementTrace> pool_traces;
  pool_traces.reserve(pool.size());
  for (const MarchElement& candidate : pool) {
    pool_traces.push_back(compile_element_trace(candidate));
  }

  while (engine.undetected_instances() > 0 &&
         stats.greedy_rounds < options.max_rounds) {
    // Candidates compatible with the memory state the test leaves behind.
    std::vector<std::size_t> eligible;
    eligible.reserve(pool.size());
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (auto entry = pool[c].required_entry_value()) {
        if (!current_final.has_value() || *entry != *current_final) continue;
      }
      eligible.push_back(c);
    }

    // Parallel gain scan.  Each worker prunes against its own running best
    // score — a lower bound of the global maximum, so pruning only abandons
    // candidates that cannot win.  The bound is compared strictly: a
    // candidate whose exact score ties the eventual winner is never aborted
    // (its upper bound so_far + remaining never drops *below* its exact
    // gain), so every candidate that can win the score/gain/cost tie-breaks
    // reports its exact gain and the reduction below is schedule-invariant.
    std::vector<std::size_t> gains(eligible.size(), 0);
    std::vector<double> local_best(workers.num_workers() + 1, 0.0);
    workers.parallel_for(
        eligible.size(), /*chunk=*/8,
        [&](std::size_t worker, std::size_t begin, std::size_t end) {
          double& bound = local_best[worker];
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t c = eligible[i];
            const double cost = static_cast<double>(pool[c].cost());
            gains[i] = engine.gain(
                pool[c], pool_traces[c],
                [&](std::size_t so_far, std::size_t remaining) {
                  return static_cast<double>(so_far + remaining) / cost <
                         bound;
                });
            bound = std::max(bound, static_cast<double>(gains[i]) / cost);
          }
        });

    // Deterministic reduction in pool order.
    const MarchElement* best = nullptr;
    const ElementTrace* best_trace = nullptr;
    std::size_t best_gain = 0;
    double best_score = 0.0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      const std::size_t c = eligible[i];
      const std::size_t g = gains[i];
      if (g == 0) continue;
      const MarchElement& candidate = pool[c];
      const double score =
          static_cast<double>(g) / static_cast<double>(candidate.cost());
      const bool better =
          best == nullptr || score > best_score ||
          (score == best_score &&
           (g > best_gain ||
            (g == best_gain && candidate.cost() < best->cost())));
      if (better) {
        best = &candidate;
        best_trace = &pool_traces[c];
        best_gain = g;
        best_score = score;
      }
    }

    if (best == nullptr) {
      // No candidate helps from the current memory polarity.  Some faults
      // are only sensitizable from the complementary uniform value (e.g. a
      // non-transition w0 needs an all-0 memory), so bridge once by
      // flipping the polarity with a plain write element; report the faults
      // uncoverable (step d.i of Figure 5) only when bridging stalls too.
      if (stalls_in_a_row < 2 && current_final.has_value()) {
        const MarchElement bridge(AddressOrder::Up,
                                  {make_write(flip(*current_final))});
        test.append(bridge);
        engine.commit(bridge, compile_element_trace(bridge));
        current_final = flip(*current_final);
        ++stalls_in_a_row;
        ++stats.greedy_rounds;
        stats.log.push_back("stalled; bridging polarity with " +
                            bridge.to_string());
        continue;
      }
      uncoverable = engine.undetected_fault_indices();
      engine.exclude_faults(uncoverable);
      stats.log.push_back("stalled twice; reporting " +
                          std::to_string(uncoverable.size()) +
                          " faults uncoverable");
      break;
    }

    stalls_in_a_row = 0;
    test.append(*best);
    engine.commit(*best, *best_trace);
    if (auto v = best->final_value()) current_final = v;
    ++stats.greedy_rounds;
    stats.log.push_back("appended " + best->to_string() + " (gain " +
                        std::to_string(best_gain) + ", " +
                        std::to_string(engine.undetected_instances()) +
                        " instances left)");
  }
  return uncoverable;
}

}  // namespace

GenerationResult generate_march_test(const FaultList& list,
                                     const GeneratorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  GenerationResult result;
  GenerationStats& stats = result.stats;
  const auto lap = [&](const char* phase) {
    stats.log.push_back(
        std::string(phase) + " done at t=" +
        std::to_string(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count()) +
        " s");
  };

  // The wait op only helps against retention faults; including it otherwise
  // would grow the candidate pool (and every gain scan) for nothing.
  const std::vector<MarchElement> pool = enumerate_march_elements(
      options.max_element_length, targets_retention(list));
  stats.candidate_pool = pool.size();

  // Shared gain-scan pool; the calling thread participates in every scan.
  ThreadPool workers(ThreadPool::resolve_thread_count(options.gain_threads) -
                     1);

  // Seed: the canonical initialization element ⇕(w0).
  MarchTest test("generated", {MarchElement(AddressOrder::Any, {Op::W0})});

  // -- Phase A: greedy cover on the working memory ----------------------
  std::vector<FaultInstance> working = instantiate_all(
      list, options.working_memory_size, options.max_instances_per_fault);
  stats.working_instances = working.size();
  std::set<std::size_t> uncoverable;
  {
    GreedyEngine engine(options.working_memory_size, working, test,
                        options.both_power_on_states);
    stats.log.push_back("phase A: " + std::to_string(working.size()) +
                        " instances at n=" +
                        std::to_string(options.working_memory_size));
    auto stalled = greedy_cover(engine, pool, test, options, workers, stats);
    uncoverable.insert(stalled.begin(), stalled.end());
  }
  lap("phase A (greedy)");

  // -- Phase B: certification loop (CEGIS) ------------------------------
  const FaultSimulator cert_sim(SimulatorOptions{
      options.certify_memory_size, options.both_power_on_states, 10});
  const std::vector<FaultInstance> cert_instances = instantiate_all(
      list, options.certify_memory_size, options.max_instances_per_fault);
  stats.certify_instances = cert_instances.size();

  auto certify_and_extend = [&]() {
    for (std::size_t iter = 0; iter < options.max_certify_iterations; ++iter) {
      // The test is fixed within an iteration: compile it once instead of
      // recompiling per detects() call.
      const CompiledTest compiled = compile_march_test(test);
      std::vector<FaultInstance> missed;
      for (const FaultInstance& instance : cert_instances) {
        if (uncoverable.count(instance.fault_index) > 0) continue;
        if (!cert_sim.detects_compiled(test, compiled, instance)) {
          missed.push_back(instance);
        }
      }
      if (missed.empty()) return;
      ++stats.certify_iterations;
      stats.log.push_back("certification found " +
                          std::to_string(missed.size()) +
                          " escaped instances at n=" +
                          std::to_string(options.certify_memory_size));
      GreedyEngine engine(options.certify_memory_size, std::move(missed), test,
                          options.both_power_on_states);
      auto stalled =
          greedy_cover(engine, pool, test, options, workers, stats);
      uncoverable.insert(stalled.begin(), stalled.end());
    }
  };
  certify_and_extend();
  lap("phase B (certification)");

  // -- Phase C: redundancy elimination ----------------------------------
  stats.complexity_before_minimize = test.complexity();
  if (options.minimize) {
    const FaultSimulator min_sim(SimulatorOptions{
        options.minimize_memory_size, options.both_power_on_states, 10});
    std::vector<FaultInstance> min_instances;
    for (FaultInstance& instance :
         instantiate_all(list, options.minimize_memory_size,
                         options.max_instances_per_fault)) {
      if (uncoverable.count(instance.fault_index) == 0) {
        min_instances.push_back(std::move(instance));
      }
    }
    // Rejected removals dominate the minimizer's cost and bail out at the
    // first surviving instance; scan the binding constraints (the largest,
    // last-enumerated faults) first.
    std::stable_sort(min_instances.begin(), min_instances.end(),
                     [](const FaultInstance& x, const FaultInstance& y) {
                       return x.fault_index > y.fault_index;
                     });
    test = minimize_test(min_sim, test, min_instances, &stats.log);
    lap("phase C (minimizer)");
    certify_and_extend();  // a removal may only matter at certify size
    lap("phase B2 (re-certification)");
  }

  // -- Final report ------------------------------------------------------
  result.certification = evaluate_coverage(cert_sim, test, list,
                                           options.max_instances_per_fault);
  result.full_coverage = true;
  for (const CoverageEntry& entry : result.certification.entries) {
    if (uncoverable.count(entry.fault_index) > 0) continue;
    if (!entry.covered) result.full_coverage = false;
  }
  for (std::size_t index : uncoverable) {
    result.uncoverable.push_back(fault_name(list, index));
  }
  test.set_name("Generated(" + list.name + ")");
  result.test = std::move(test);
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace mtg
