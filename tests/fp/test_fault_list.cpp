#include "fp/fault_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mtg {
namespace {

TEST(FaultList, MaskablePredicate) {
  EXPECT_TRUE(is_maskable(FaultPrimitive::tf(Bit::Zero)));
  EXPECT_TRUE(is_maskable(FaultPrimitive::wdf(Bit::One)));
  EXPECT_TRUE(is_maskable(FaultPrimitive::drdf(Bit::Zero)));
  EXPECT_TRUE(is_maskable(FaultPrimitive::sf(Bit::Zero)));
  EXPECT_FALSE(is_maskable(FaultPrimitive::rdf(Bit::Zero)));
  EXPECT_FALSE(is_maskable(FaultPrimitive::irf(Bit::One)));
  EXPECT_FALSE(is_maskable(FaultPrimitive::cfrd(Bit::Zero, Bit::One)));
}

TEST(FaultList, CanMaskPredicate) {
  // FP2 masks FP1 iff it is sensitized on the faulty victim value and flips
  // it back: v_state2 = F1 and F2 = not(F1).
  const FaultPrimitive wdf0 = FaultPrimitive::wdf(Bit::Zero);  // F1 = 1
  EXPECT_TRUE(can_mask(FaultPrimitive::rdf(Bit::One), wdf0));
  EXPECT_TRUE(can_mask(FaultPrimitive::wdf(Bit::One), wdf0));
  EXPECT_TRUE(can_mask(FaultPrimitive::drdf(Bit::One), wdf0));
  EXPECT_FALSE(can_mask(FaultPrimitive::rdf(Bit::Zero), wdf0));
  EXPECT_FALSE(can_mask(FaultPrimitive::tf(Bit::One), wdf0));  // F2 = F1
}

TEST(FaultList, SingleCellEnumerationSnapshot) {
  // 8 maskable FP1 (SF, TF, WDF, DRDF × both polarities) × 3 operation-
  // sensitized masker classes (WDF, RDF, DRDF at the faulty value) = 24.
  // SF as FP2 never survives the chain check: a state fault settles within
  // the same operation that sensitizes FP1, leaving no deviation to mask.
  const auto lf1 = enumerate_single_cell_linked_faults();
  EXPECT_EQ(lf1.size(), 24u);

  std::set<std::string> names;
  for (const LinkedFault& lf : lf1) {
    EXPECT_EQ(lf.num_cells(), 1) << lf.name();
    names.insert(lf.name());
  }
  EXPECT_EQ(names.size(), lf1.size());  // no duplicates
  EXPECT_TRUE(names.count("TF↑→RDF0 [v]"));
  EXPECT_TRUE(names.count("WDF0→WDF1 [v]"));
  EXPECT_TRUE(names.count("DRDF0→DRDF1 [v]"));
  EXPECT_TRUE(names.count("SF1→WDF0 [v]"));
  // TF as FP2 never satisfies F2 = not(F1) (its fault value equals its
  // sensitizing state).
  EXPECT_FALSE(names.count("WDF0→TF↓ [v]"));
  // SF→SF is excluded.
  EXPECT_FALSE(names.count("SF0→SF1 [v]"));
}

TEST(FaultList, TwoCellEnumerationProperties) {
  const auto lf2 = enumerate_two_cell_linked_faults();
  EXPECT_GT(lf2.size(), 100u);
  std::size_t a_below = 0;
  for (const LinkedFault& lf : lf2) {
    EXPECT_EQ(lf.num_cells(), 2) << lf.name();
    EXPECT_TRUE(is_maskable(lf.fp1())) << lf.name();
    EXPECT_TRUE(can_mask(lf.fp2(), lf.fp1())) << lf.name();
    if (lf.layout().v_pos == 1) ++a_below;
  }
  // Both address layouts are represented symmetrically.
  EXPECT_EQ(a_below * 2, lf2.size());
}

TEST(FaultList, ThreeCellEnumerationProperties) {
  const auto lf3 = enumerate_three_cell_linked_faults();
  EXPECT_GT(lf3.size(), 500u);
  for (const LinkedFault& lf : lf3) {
    EXPECT_EQ(lf.num_cells(), 3) << lf.name();
    EXPECT_TRUE(lf.fp1().is_two_cell());
    EXPECT_TRUE(lf.fp2().is_two_cell());
    EXPECT_NE(lf.layout().a1_pos, lf.layout().a2_pos) << lf.name();
  }
}

TEST(FaultList, FaultListTwoIsSingleCellOnly) {
  const FaultList list = fault_list_2();
  EXPECT_TRUE(list.simple.empty());
  EXPECT_EQ(list.linked.size(), 24u);
  EXPECT_EQ(list.size(), 24u);
}

TEST(FaultList, FaultListOneContainsAllSizes) {
  const FaultList list = fault_list_1();
  std::size_t by_cells[4] = {0, 0, 0, 0};
  for (const LinkedFault& lf : list.linked) {
    ++by_cells[lf.num_cells()];
  }
  EXPECT_EQ(by_cells[1], 24u);
  EXPECT_GT(by_cells[2], 0u);
  EXPECT_GT(by_cells[3], 0u);
  EXPECT_EQ(list.size(), by_cells[1] + by_cells[2] + by_cells[3]);
  // Reproducibility snapshot: the constructive enumeration is deterministic.
  EXPECT_EQ(list.size(), 2736u);
}

TEST(FaultList, PaperRunningExampleIsInFaultListOne) {
  const FaultList list = fault_list_1();
  bool found_equation12 = false;
  for (const LinkedFault& lf : list.linked) {
    if (lf.name() == "CFds<0w1;0>→CFds<1w0;1> [a<v]") found_equation12 = true;
  }
  EXPECT_TRUE(found_equation12);
}

TEST(FaultList, EveryLinkedFaultSatisfiesDefinitionSeven) {
  for (const LinkedFault& lf : fault_list_1().linked) {
    const LinkCheck check = check_link(lf.fp1(), lf.fp2(), lf.layout());
    EXPECT_TRUE(check.structurally_linked) << lf.name();
    EXPECT_TRUE(check.fp1_fired) << lf.name();
    EXPECT_TRUE(check.fp2_fired) << lf.name();
    EXPECT_FALSE(lf.fp1().is_immediately_detecting()) << lf.name();
  }
}

TEST(FaultList, SimpleStaticFaultListCoversTheWholeFpSpace) {
  const FaultList list = standard_simple_static_faults();
  EXPECT_TRUE(list.linked.empty());
  // 12 single-cell + 36 two-cell × 2 layouts.
  EXPECT_EQ(list.simple.size(), 12u + 72u);
  std::set<std::string> names;
  for (const SimpleFault& f : list.simple) names.insert(f.name);
  EXPECT_EQ(names.size(), list.simple.size());
}

TEST(FaultList, SimpleFaultFactoriesValidate) {
  EXPECT_THROW(SimpleFault::single(FaultPrimitive::cfst(Bit::Zero, Bit::One)),
               Error);
  EXPECT_THROW(SimpleFault::coupled(FaultPrimitive::tf(Bit::Zero), true),
               Error);
  const SimpleFault f =
      SimpleFault::coupled(FaultPrimitive::cfst(Bit::Zero, Bit::One), false);
  EXPECT_EQ(f.a_pos, 1);
  EXPECT_EQ(f.v_pos, 0);
}

// --- canonical serialization + stable hashing (sweep store keys) ------------

TEST(FaultListCanonical, IsDeterministicAndNameFree) {
  const std::string a = to_canonical_string(fault_list_1());
  const std::string b = to_canonical_string(fault_list_1());
  EXPECT_EQ(a, b);

  // The list name is presentation metadata: equal content must serialize —
  // and therefore hash — identically under any label.
  FaultList renamed = fault_list_1();
  renamed.name = "another label";
  EXPECT_EQ(to_canonical_string(renamed), a);
  EXPECT_EQ(stable_hash(renamed), stable_hash(fault_list_1()));
}

TEST(FaultListCanonical, CoversEveryFaultKind) {
  // One line per fault, all three sections present for a mixed list.
  FaultList list;
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.linked = enumerate_single_cell_linked_faults();
  list.decoder.push_back(
      DecoderFault{DecoderFaultClass::MultipleCells, 3, Bit::One});
  const std::string canonical = to_canonical_string(list);
  EXPECT_NE(canonical.find("simple <0w1/0/->"), std::string::npos);
  EXPECT_NE(canonical.find("linked <"), std::string::npos);
  EXPECT_NE(canonical.find("decoder cls=2 bit=3 wired=1"), std::string::npos);
  // Line count: header + one line per fault.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(canonical.begin(), canonical.end(), '\n'));
  EXPECT_EQ(lines, 1 + list.size());
}

TEST(FaultListCanonical, HashSeparatesTheBuiltInLists) {
  const FaultList lists[] = {fault_list_1(), fault_list_2(),
                             standard_simple_static_faults(),
                             retention_fault_list(), decoder_fault_list()};
  std::set<std::uint64_t> hashes;
  for (const FaultList& list : lists) {
    EXPECT_TRUE(hashes.insert(stable_hash(list)).second)
        << list.name << " collides with an earlier list";
  }
  // Decoder lists of different widths are different content.
  EXPECT_NE(stable_hash(decoder_fault_list(8)), stable_hash(decoder_fault_list(12)));
}

TEST(FaultListCanonical, HashIsStableAcrossRunsAndPlatforms) {
  // Golden values locking the canonical format and the FNV-1a hash: a drift
  // here silently invalidates every persisted sweep record, so it must be a
  // conscious decision (bump kSweepStoreEngineVersion when semantics move).
  EXPECT_EQ(stable_hash(fault_list_2()), 0x49BB458D5748008Aull);
  EXPECT_EQ(stable_hash(standard_simple_static_faults()),
            0xAC9DC7A0D9D7FB26ull);
  EXPECT_EQ(stable_hash(decoder_fault_list()), 0xEF9B576B39423E08ull);
}

}  // namespace
}  // namespace mtg
