// Linter for 'jobs v1' files (service/job_file.hpp) — batch-input hygiene
// checks that the parser deliberately does not enforce, reported with the
// same path:line:column diagnostics as the catalog linter.
//
// Checks:
//   * duplicate-job — two records with the same (test, list, n, cap) key:
//     the matrix service deduplicates by content hash, so the second job
//     burns a queue slot to recompute (or store-hit) the same report;
//   * undefined-reference — a test= name (a spec without '(') defined by
//     neither the bound suite nor the built-in catalog, or a list= name
//     that is neither a faultlist alias nor a built-in list name
//     (list1, list2, simple, retention, decoder);
//   * implausible-deadline — an explicit deadline_ms=0 (spells out the
//     default, disabling nothing), a sub-10ms deadline (expires while the
//     job sits in the queue), or one beyond 24h (effectively no deadline,
//     probably a unit mistake).
//
// Findings anchor to the 'job' keyword of the offending record (deadline
// findings to the deadline_ms= key) when the caller passes the
// JobFilePositions recorded at parse time.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "format/suite_text.hpp"
#include "service/job_file.hpp"

namespace mtg {

struct JobLintOptions {
  /// Deadlines below this are flagged: the service's queue latency alone
  /// exceeds them under any contention.
  std::chrono::milliseconds min_plausible_deadline{10};
  /// Deadlines above this are flagged as a probable unit mistake
  /// (milliseconds vs seconds).
  std::chrono::milliseconds max_plausible_deadline{
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::hours{24})};
};

/// Lints a parsed job file.  `suite` is the resolved suite the file's suite
/// directive names (nullptr when the file binds none — test-name checks then
/// fall back to the built-in catalog alone).  `positions`, when recorded by
/// parse_job_file_text, anchors findings to record positions.
std::vector<LintFinding> lint_job_file(
    const JobFile& file, const MarchSuite* suite,
    const JobLintOptions& options = {}, const std::string& source = "<jobs>",
    const JobFilePositions* positions = nullptr);

}  // namespace mtg
