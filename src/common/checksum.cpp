#include "common/checksum.hpp"

#include <array>

namespace mtg {

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t stable_hash64(std::string_view data) {
  std::uint64_t hash = 0xCBF29CE484222325ull;  // FNV offset basis
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ull;  // FNV prime
  }
  return hash;
}

}  // namespace mtg
