// Candidate march elements: the space of valid Sequences of Operations.
//
// Definition 11 of the paper: a Sequence of Operations is *valid* when all
// its operations are performed on the same memory cell — which is exactly
// what a march element applies to each cell in turn.  The generator searches
// over this space; we enumerate every operation sequence up to a length
// bound, with reads annotated with the value the fault-free cell holds at
// that point (tracked from the element's entry value), in both the ⇑ and ⇓
// address orders.
#pragma once

#include <cstddef>
#include <vector>

#include "march/march_element.hpp"

namespace mtg {

/// Enumerates every valid operation sequence of length 1..max_len over
/// {read-current, w0, w1} for both entry values, pruned of runs of three
/// identical operations (a static fault is sensitized by one operation and
/// observed by one read; a third identical operation in a row adds nothing),
/// deduplicated, in both address orders.  max_len = 7 yields the element
/// shapes used by the published linked-fault tests (March SL, March ABL).
///
/// With `include_wait` the alphabet additionally contains the wait op `t`
/// (needed to sensitize data-retention faults); consecutive waits are pruned
/// because decay is idempotent — a second pause with no access in between
/// adds nothing.
std::vector<MarchElement> enumerate_march_elements(std::size_t max_len,
                                                   bool include_wait = false);

}  // namespace mtg
