// Figure 4 reproduction: the pattern graph PGCF of the linked disturb
// coupling fault (Equations 12-14), plus pattern-graph construction cost
// for the full fault lists (the generator's Section 4 data structure).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fp/fault_list.hpp"
#include "memory/pattern_graph.hpp"

namespace {

void BM_BuildPgcf(benchmark::State& state) {
  for (auto _ : state) {
    mtg::PatternGraph pg = mtg::make_pgcf();
    benchmark::DoNotOptimize(pg.faulty_edges().data());
  }
}
BENCHMARK(BM_BuildPgcf);

void BM_BuildPatternGraphList2(benchmark::State& state) {
  const mtg::FaultList list = mtg::fault_list_2();
  for (auto _ : state) {
    mtg::PatternGraph pg(list);
    benchmark::DoNotOptimize(pg.faulty_edges().data());
  }
  state.counters["faulty_edges"] =
      static_cast<double>(mtg::PatternGraph(list).faulty_edges().size());
}
BENCHMARK(BM_BuildPatternGraphList2);

void BM_BuildPatternGraphList1(benchmark::State& state) {
  const mtg::FaultList list = mtg::fault_list_1();
  for (auto _ : state) {
    mtg::PatternGraph pg(list);
    benchmark::DoNotOptimize(pg.faulty_edges().data());
  }
  state.counters["faulty_edges"] =
      static_cast<double>(mtg::PatternGraph(list).faulty_edges().size());
}
BENCHMARK(BM_BuildPatternGraphList1);

void BM_EnumerateFaultList1(benchmark::State& state) {
  for (auto _ : state) {
    mtg::FaultList list = mtg::fault_list_1();
    benchmark::DoNotOptimize(list.linked.data());
  }
}
BENCHMARK(BM_EnumerateFaultList1);

}  // namespace

int main(int argc, char** argv) {
  const mtg::PatternGraph pgcf = mtg::make_pgcf();
  std::printf("Figure 4 — PGCF: %zu states (2-cell model), %zu faulty edges\n",
              pgcf.num_vertices(), pgcf.faulty_edges().size());
  for (const mtg::FaultyEdge& e : pgcf.faulty_edges()) {
    std::printf("  %s -> %s  [%s]  (TP%d of %s)\n", e.from.to_string().c_str(),
                e.to.to_string().c_str(), e.label().c_str(), e.tp_index,
                e.source.c_str());
  }
  const mtg::FaultList list1 = mtg::fault_list_1();
  std::printf("Pattern graph of Fault List #1: |Vp| = 2^%zu = %zu\n",
              mtg::PatternGraph::required_model_cells(list1),
              std::size_t{1} << mtg::PatternGraph::required_model_cells(list1));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
