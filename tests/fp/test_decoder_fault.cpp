// Address-decoder fault models (fp/decoder_fault.hpp): the fault structures,
// decoder_fault_list() and their deterministic instantiation.
#include "fp/decoder_fault.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fp/fault_list.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {
namespace {

TEST(DecoderFault, NamesAreUniqueAndClassTagged) {
  const FaultList list = decoder_fault_list();
  ASSERT_EQ(list.decoder.size(), 60u);  // 5 faults per line × 12 lines
  EXPECT_TRUE(list.simple.empty());
  EXPECT_TRUE(list.linked.empty());
  EXPECT_EQ(list.size(), 60u);
  std::set<std::string> names;
  for (const DecoderFault& fault : list.decoder) {
    names.insert(fault.name());
  }
  EXPECT_EQ(names.size(), list.decoder.size());
  EXPECT_EQ(list.decoder[0].name(), "AFna@b0");
  EXPECT_EQ(list.decoder[1].name(), "AFwc@b0");
  EXPECT_EQ(list.decoder[2].name(), "AFmc-and@b0");
  EXPECT_EQ(list.decoder[3].name(), "AFmc-or@b0");
  EXPECT_EQ(list.decoder[4].name(), "AFma@b0");
}

TEST(DecoderFault, ListSizeTracksTheAddressLineCount) {
  EXPECT_EQ(decoder_fault_list(1).decoder.size(), 5u);
  EXPECT_EQ(decoder_fault_list(3).decoder.size(), 15u);
  EXPECT_THROW(decoder_fault_list(0), Error);
}

TEST(BoundDecoderValidation, PartnerMustMirrorTheBrokenBit) {
  const DecoderFault wc{DecoderFaultClass::WrongCell, 1, Bit::Zero};
  EXPECT_NO_THROW(BoundDecoder(wc, 0, 2));
  EXPECT_NO_THROW(BoundDecoder(wc, 5, 7));
  EXPECT_THROW(BoundDecoder(wc, 0, 1), Error);  // differs in bit 0, not 1
  EXPECT_THROW(BoundDecoder(wc, 0, 0), Error);  // no partner at all

  const DecoderFault na{DecoderFaultClass::NoAccess, 1, Bit::Zero};
  EXPECT_NO_THROW(BoundDecoder(na, 3, 3));
  EXPECT_THROW(BoundDecoder(na, 3, 1), Error);  // NoAccess involves one cell
}

TEST(BoundDecoderValidation, NoAccessReadBackIsTheBrokenAddressBit) {
  const DecoderFault na{DecoderFaultClass::NoAccess, 2, Bit::Zero};
  EXPECT_EQ(BoundDecoder(na, 4, 4).no_access_read_back(), Bit::One);
  EXPECT_EQ(BoundDecoder(na, 3, 3).no_access_read_back(), Bit::Zero);
}

TEST(DecoderInstantiation, EnumeratesEveryValidCorruptedAddress) {
  const DecoderFault wc{DecoderFaultClass::WrongCell, 1, Bit::Zero};
  // n = 8 (a power of two): every address has its partner in range.
  const auto instances = instantiate(wc, 8, 0);
  ASSERT_EQ(instances.size(), 8u);
  for (const FaultInstance& inst : instances) {
    ASSERT_EQ(inst.decoders.size(), 1u);
    EXPECT_TRUE(inst.fps.empty());
    EXPECT_FALSE(inst.address_free());
    EXPECT_EQ(inst.decoders[0].v_cell, inst.decoders[0].a_cell ^ 2u);
  }
}

TEST(DecoderInstantiation, NonPowerOfTwoDropsOutOfRangePartners) {
  const DecoderFault wc{DecoderFaultClass::WrongCell, 2, Bit::Zero};
  // n = 6: a ∈ {0,1,4,5} pair across bit 2; a ∈ {2,3} would need 6/7.
  const auto instances = instantiate(wc, 6, 0);
  std::set<std::size_t> corrupted;
  for (const FaultInstance& inst : instances) {
    corrupted.insert(inst.decoders[0].a_cell);
    EXPECT_LT(inst.decoders[0].v_cell, 6u);
  }
  EXPECT_EQ(corrupted, (std::set<std::size_t>{0, 1, 4, 5}));
}

TEST(DecoderInstantiation, MissingAddressLineYieldsNoInstances) {
  const DecoderFault wc{DecoderFaultClass::WrongCell, 6, Bit::Zero};
  EXPECT_TRUE(instantiate(wc, 64, 0).empty());   // 2^6 == n: line absent
  EXPECT_EQ(instantiate(wc, 65, 0).size(), 2u);  // pairs (0,64) and (64,0)
}

TEST(DecoderInstantiation, CapIsDeterministicAndKeepsTheBoundaries) {
  const DecoderFault na{DecoderFaultClass::NoAccess, 3, Bit::Zero};
  const auto a = instantiate(na, 4096, 7, /*max_instances=*/16);
  const auto b = instantiate(na, 4096, 7, /*max_instances=*/16);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
  }
  EXPECT_EQ(a.front().decoders[0].a_cell, 0u);
  EXPECT_EQ(a.back().decoders[0].a_cell, 4095u);
}

TEST(DecoderInstantiation, InstantiateAllAppendsDecoderFaultsLast) {
  FaultList list = standard_simple_static_faults();
  const std::size_t fp_faults = fault_count(list);
  list.decoder = decoder_fault_list(2).decoder;
  EXPECT_EQ(fault_count(list), fp_faults + 10);
  EXPECT_EQ(fault_name(list, fp_faults), "AFna@b0");
  EXPECT_EQ(fault_name(list, fp_faults + 9), "AFma@b1");
  const auto instances = instantiate_all(list, 4);
  bool saw_decoder = false;
  for (const FaultInstance& inst : instances) {
    if (!inst.address_free()) {
      saw_decoder = true;
      EXPECT_GE(inst.fault_index, fp_faults);
    } else {
      EXPECT_FALSE(saw_decoder) << "decoder instances must come last";
    }
  }
  EXPECT_TRUE(saw_decoder);
}

}  // namespace
}  // namespace mtg
