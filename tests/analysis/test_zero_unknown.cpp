// Unknown-domain elimination: the symbolic analyzer must resolve every
// (catalog test, built-in list) pair — and every shipped example catalog —
// to a definite verdict.  Unknown is reserved for genuinely out-of-domain
// machines (> 4 involved cells, decoder+FP in one instance, an exhausted
// widening budget); nothing the repo ships is allowed to hit those exits.
//
// Also locks the configuration-key widening itself: forcing the analyzer
// off its BFS+dedup path (max_states = 1) onto the bounded-memory DFS walk
// must leave every verdict unchanged — widening trades memory for steps,
// never exactness.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "format/catalog_io.hpp"
#include "format/fault_list_text.hpp"
#include "format/suite_text.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

std::vector<std::pair<std::string, FaultList>> builtin_lists() {
  return {{"list1", fault_list_1()},
          {"list2", fault_list_2()},
          {"simple", standard_simple_static_faults()},
          {"retention", retention_fault_list()},
          {"decoder", decoder_fault_list()}};
}

std::filesystem::path example_catalog_dir() {
  return std::filesystem::path(MTG_TESTS_SOURCE_DIR) / ".." / "examples" /
         "catalogs";
}

TEST(ZeroUnknown, EveryCatalogTestResolvesEveryBuiltinList) {
  // Memory sizes bracket the domain: the smallest the linked3 faults fit,
  // the default, one multi-word size, and one large enough that any
  // accidental n-dependence in the state walk would show.
  const std::size_t sizes[] = {4, 6, 64, 4096};
  for (const MarchTest& test : all_catalog_tests()) {
    for (const auto& [list_name, list] : builtin_lists()) {
      for (const std::size_t n : sizes) {
        const StaticCoverage coverage = analyze_coverage(test, list, n);
        EXPECT_EQ(coverage.unknown, 0u)
            << test.name() << " vs " << list_name << " at n=" << n;
        for (const StaticCoverageEntry& entry : coverage.entries) {
          if (entry.verdict == StaticVerdict::Unknown) {
            ADD_FAILURE() << test.name() << " vs " << list_name << " at n="
                          << n << ": " << entry.fault_name << " — "
                          << entry.reason;
          }
        }
      }
    }
  }
}

TEST(ZeroUnknown, ShippedExampleCatalogsResolveDefinitely) {
  const MarchSuite suite = load_march_suite_file(
      (example_catalog_dir() / "classic.suite").string());
  ASSERT_GT(suite.size(), 0u);
  const FaultList custom = load_fault_list_file(
      (example_catalog_dir() / "custom_static.faults").string());
  ASSERT_GT(custom.size(), 0u);

  auto lists = builtin_lists();
  lists.emplace_back("custom_static.faults", custom);
  for (const MarchTest& test : suite.tests) {
    for (const auto& [list_name, list] : lists) {
      for (const std::size_t n : {std::size_t{6}, std::size_t{64}}) {
        const StaticCoverage coverage = analyze_coverage(test, list, n);
        EXPECT_EQ(coverage.unknown, 0u)
            << test.name() << " vs " << list_name << " at n=" << n;
      }
    }
  }
}

TEST(ZeroUnknown, WideningPreservesEveryVerdict) {
  // max_states = 1 forces the DFS widening on the very first element for
  // every fault; the walk is near-linear for the catalog (the only forks
  // are ⇕ orders), so the budget is never close to exhausted and every
  // verdict must equal the BFS+dedup run's.
  AnalysisOptions widened;
  widened.max_states = 1;
  for (const MarchTest& test : all_catalog_tests()) {
    for (const auto& [list_name, list] : builtin_lists()) {
      const StaticCoverage exact = analyze_coverage(test, list, 6);
      const StaticCoverage walked = analyze_coverage(test, list, 6, widened);
      ASSERT_EQ(exact.entries.size(), walked.entries.size());
      EXPECT_EQ(walked.unknown, 0u) << test.name() << " vs " << list_name;
      for (std::size_t i = 0; i < exact.entries.size(); ++i) {
        EXPECT_EQ(exact.entries[i].verdict, walked.entries[i].verdict)
            << test.name() << " vs " << list_name << ": "
            << exact.entries[i].fault_name
            << (walked.entries[i].reason.empty()
                    ? ""
                    : " — " + walked.entries[i].reason);
      }
    }
  }
}

TEST(ZeroUnknown, WideningBudgetExhaustionIsTheOnlyWideningUnknown) {
  // Starving the DFS of steps is the one legitimate widening Unknown —
  // and its reason says so, so the operator knows which knob to turn.
  AnalysisOptions starved;
  starved.max_states = 1;
  starved.widen_step_budget = 1;
  // A wait-only first element keeps both power-on configurations alive and
  // distinct (no read to detect, no write to converge the good values), so
  // a one-state cap widens right after it; with two elements still to walk
  // a one-step budget exhausts before either configuration can escape.
  const MarchTest test = parse_march_test("{^(t); ^(t); ^(t)}", "waits");
  const FaultList simple = standard_simple_static_faults();
  ASSERT_FALSE(simple.simple.empty());
  const StaticResult result =
      analyze_fault(test, simple.simple.front(), 6, starved);
  EXPECT_EQ(result.verdict, StaticVerdict::Unknown);
  EXPECT_NE(result.reason.find("widened"), std::string::npos)
      << result.reason;
}

}  // namespace
}  // namespace mtg
