#include "memory/automaton.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(MealyAutomaton, StateCount) {
  EXPECT_EQ(MealyAutomaton(1).num_states(), 2u);
  EXPECT_EQ(MealyAutomaton(2).num_states(), 4u);
  EXPECT_EQ(MealyAutomaton(3).num_states(), 8u);
  EXPECT_THROW(MealyAutomaton(0), Error);
}

TEST(MealyAutomaton, WritesUpdateTheAddressedCell) {
  const MealyAutomaton m(2);
  const SmallState s00 = SmallState::from_string("00");
  EXPECT_EQ(m.delta(s00, {0, Op::W1}).to_string(), "10");
  EXPECT_EQ(m.delta(s00, {1, Op::W1}).to_string(), "01");
  EXPECT_EQ(m.delta(SmallState::from_string("11"), {0, Op::W0}).to_string(),
            "01");
}

TEST(MealyAutomaton, ReadsAndWaitsKeepTheState) {
  const MealyAutomaton m(2);
  const SmallState s10 = SmallState::from_string("10");
  EXPECT_EQ(m.delta(s10, {0, Op::R}), s10);
  EXPECT_EQ(m.delta(s10, {1, Op::R1}), s10);
  EXPECT_EQ(m.delta(s10, {0, Op::T}), s10);
}

TEST(MealyAutomaton, OutputFunction) {
  const MealyAutomaton m(2);
  const SmallState s10 = SmallState::from_string("10");
  EXPECT_EQ(m.lambda(s10, {0, Op::R}), Bit::One);
  EXPECT_EQ(m.lambda(s10, {1, Op::R}), Bit::Zero);
  EXPECT_EQ(m.lambda(s10, {0, Op::W1}), std::nullopt);  // '-' for writes
  EXPECT_EQ(m.lambda(s10, {0, Op::T}), std::nullopt);
}

TEST(MealyAutomaton, DeltaIsTotalOverStatesAndAlphabet) {
  const MealyAutomaton m(3);
  for (std::size_t s = 0; s < m.num_states(); ++s) {
    const SmallState state(3, static_cast<std::uint16_t>(s));
    for (const AddressedOp& op : m.input_alphabet()) {
      const SmallState next = m.delta(state, op);
      EXPECT_EQ(next.num_cells(), 3u);
      if (!is_write(op.op)) {
        EXPECT_EQ(next, state);
      }
    }
  }
}

TEST(MealyAutomaton, InputAlphabetSize) {
  // w0, w1, r per cell plus the wait operation t.
  EXPECT_EQ(MealyAutomaton(2).input_alphabet().size(), 2u * 3u + 1u);
  EXPECT_EQ(MealyAutomaton(3).input_alphabet().size(), 3u * 3u + 1u);
}

TEST(MealyAutomaton, RejectsForeignStates) {
  const MealyAutomaton m(2);
  EXPECT_THROW(m.delta(SmallState(3), {0, Op::W0}), Error);
  EXPECT_THROW(m.lambda(SmallState(1), {0, Op::R}), Error);
  EXPECT_THROW(m.delta(SmallState(2), {5, Op::W0}), Error);
}

}  // namespace
}  // namespace mtg
