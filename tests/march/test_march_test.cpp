#include "march/march_test.hpp"

#include <gtest/gtest.h>

#include <set>

#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

MarchTest simple_test() {
  return parse_march_test("{c(w0); ^(r0,w1); v(r1,w0)}", "MATS+");
}

TEST(MarchTest, ComplexityIsPerCellOpCount) {
  EXPECT_EQ(simple_test().complexity(), 5u);
  EXPECT_EQ(simple_test().complexity_label(), "5n");
}

TEST(MarchTest, NameIsMetadataNotIdentity) {
  MarchTest a = simple_test();
  MarchTest b = simple_test();
  b.set_name("other");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.name(), "other");
}

TEST(MarchTest, ConsistentTestHasNoViolation) {
  EXPECT_EQ(simple_test().consistency_violation(), "");
}

TEST(MarchTest, DetectsEntryValueMismatch) {
  const MarchTest bad = parse_march_test("{c(w0); ^(r1,w0)}");
  EXPECT_NE(bad.consistency_violation(), "");
}

TEST(MarchTest, DetectsReadFromUnknownState) {
  const MarchTest bad = parse_march_test("{c(r0,w0)}");
  EXPECT_NE(bad.consistency_violation(), "");
}

TEST(MarchTest, WriteFreeElementPreservesValue) {
  const MarchTest ok = parse_march_test("{c(w1); ^(r1); v(r1,w0); c(r0)}");
  EXPECT_EQ(ok.consistency_violation(), "");
}

TEST(MarchTest, AppendGrowsComplexity) {
  MarchTest t = simple_test();
  t.append(MarchElement(AddressOrder::Any, {Op::R0}));
  EXPECT_EQ(t.complexity(), 6u);
  EXPECT_EQ(t.size(), 4u);
}

TEST(MarchTest, ToStringUsesBracesAndSemicolons) {
  EXPECT_EQ(simple_test().to_string(), "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}");
  EXPECT_EQ(simple_test().to_string(/*ascii=*/true),
            "{c(w0); ^(r0,w1); v(r1,w0)}");
}

TEST(MarchTest, EmptyTest) {
  const MarchTest t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.complexity(), 0u);
  EXPECT_EQ(t.consistency_violation(), "");
}

// --- canonical serialization + stable hashing (sweep store keys) ------------

TEST(Canonical, RoundTripsThroughParserForFullCatalog) {
  // The canonical form is the hash domain of the sweep store's record keys:
  // it must reconstruct an equal test through the parser for every published
  // test — including March G's wait ops and every address-order arrow — or
  // hashes would not identify test content.
  for (const MarchTest& test : all_catalog_tests()) {
    const std::string canonical = test.to_canonical_string();
    EXPECT_EQ(parse_march_test(canonical), test) << test.name() << ": "
                                                 << canonical;
    // Serialize-parse-serialize is a fixed point.
    EXPECT_EQ(parse_march_test(canonical).to_canonical_string(), canonical);
  }
}

TEST(Canonical, HashIgnoresTheName) {
  MarchTest a = simple_test();
  MarchTest b = simple_test();
  b.set_name("a different label for the same content");
  EXPECT_EQ(stable_hash(a), stable_hash(b));
}

TEST(Canonical, HashSeparatesTheCatalog) {
  std::set<std::uint64_t> hashes;
  for (const MarchTest& test : all_catalog_tests()) {
    EXPECT_TRUE(hashes.insert(stable_hash(test)).second)
        << test.name() << " collides with an earlier catalog test";
  }
}

TEST(Canonical, HashIsStableAcrossRunsAndPlatforms) {
  // Golden values: FNV-1a over the ASCII notation, locked so a cosmetic
  // change to the canonical format (or a platform-dependent hash) cannot
  // silently invalidate — or worse, alias — every persisted sweep record.
  EXPECT_EQ(stable_hash(mats_plus()), 0x03CE7B266A64ABA2ull);
  EXPECT_EQ(stable_hash(march_sl()), 0xB89C11834924123Cull);
  EXPECT_EQ(stable_hash(march_g()), 0xE36C01C8FCC30FBDull);
}

}  // namespace
}  // namespace mtg
