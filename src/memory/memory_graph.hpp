// The labeled directed graph G = {V, E} representing the memory model
// (Section 4, Equation 10; Figure 2 shows the 2-cell instance G0).
//
// Vertices are the 2^n memory states; each edge carries a label "x / d"
// where x is a memory operation and d the output value (λ).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "memory/automaton.hpp"

namespace mtg {

/// One fault-free edge of the memory graph.
struct GraphEdge {
  SmallState from;
  SmallState to;
  AddressedOp op;             ///< reads annotated with the value they return
  std::optional<Bit> output;  ///< λ(from, op): read value or '-' for writes

  /// The paper's label form "x / d", e.g. "w1[0] / -", "r[1] / 0".
  std::string label() const;
};

class MemoryGraph {
 public:
  /// Builds the full graph of the `num_cells`-cell fault-free memory model.
  explicit MemoryGraph(std::size_t num_cells);

  std::size_t num_cells() const noexcept { return automaton_.num_cells(); }
  std::size_t num_vertices() const noexcept { return automaton_.num_states(); }
  const MealyAutomaton& automaton() const noexcept { return automaton_; }

  const std::vector<GraphEdge>& edges() const noexcept { return edges_; }

  /// Edges leaving the state `from`.
  std::vector<GraphEdge> edges_from(const SmallState& from) const;

  /// GraphViz DOT rendering (Figure 2-style).
  std::string to_dot(const std::string& graph_name = "G0") const;

 private:
  MealyAutomaton automaton_;
  std::vector<GraphEdge> edges_;
};

/// The paper's G0: the 2-cell fault-free memory model of Figure 2.
MemoryGraph make_g0();

}  // namespace mtg
