#include "common/parse.hpp"

#include "common/error.hpp"

namespace mtg {

std::size_t parse_count(const std::string& text, const std::string& what) {
  const bool all_digits =
      !text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos;
  if (!all_digits) throw Error(what + ": bad number '" + text + "'");
  try {
    return std::stoul(text);
  } catch (const std::exception&) {  // out of range
    throw Error(what + ": number out of range '" + text + "'");
  }
}

std::size_t parse_memory_size(const std::string& text,
                              const std::string& what) {
  const std::size_t n = parse_count(text, what);
  if (n < 3) {
    throw Error(what + ": a simulated memory needs at least 3 cells, got '" +
                text + "'");
  }
  return n;
}

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& what) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    sizes.push_back(parse_count(item, what));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return sizes;
}

}  // namespace mtg
