// SweepStore — the persistent, resumable result cache for sweep grids.
//
// Production-scale sweep grids (every catalog test × every fault list × n up
// to 2^20) are too expensive to recompute per run.  The store persists each
// completed sweep point as it lands, so a re-run loads verified hits and
// recomputes only missing or invalid points — resumable partial grids.
//
// Key scheme: a record is identified by
//
//     (test_hash, list_hash, n, cap, engine_version)
//
// where test_hash/list_hash are the stable 64-bit hashes of the canonical
// serializations (march/march_test.hpp, fp/fault_list.hpp) — content
// identity, names excluded — n is the simulated memory size, cap the
// per-fault instance bound (a different cap samples different layouts, so
// it keys the result), and engine_version is kSweepStoreEngineVersion: bump
// it whenever engine semantics change and every old record silently becomes
// a miss (invalidation without migration).
//
// On-disk layout: one record file per key inside the store directory, named
// sweep-<hex of key hash>.rec.  A record is a fixed header (magic, format
// version, the full key, payload length, payload CRC-32, header CRC-32)
// followed by the serialized CoverageReport.  Updates follow the
// write-temp + sync + rename protocol, so a reader never observes a
// half-written record under POSIX rename atomicity; a crash mid-protocol
// leaves either the old record or a stray .tmp that is simply overwritten
// by the next save.
//
// Robustness ladder (never crash, never trust a bad record):
//
//  1. Checksum/version/key mismatches and short reads degrade to a miss:
//     the damaged file is removed (repair) and the caller recomputes and
//     rewrites the point.
//  2. Transient write failures retry with bounded backoff
//     (max_write_attempts × retry_backoff).
//  3. When retries are exhausted the store disables itself — store-less
//     operation with a warning — and the sweep continues computing;
//     results are byte-identical with or without a (failing) store.
//
// All methods are thread-safe (sweep points save from pool workers) and
// report by boolean + stats, never by exception: a broken store must not
// unwind a healthy computation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "sim/coverage.hpp"
#include "store/storage.hpp"

namespace mtg {

/// Bump whenever simulation semantics change what a stored CoverageReport
/// would contain: every record written by older engines becomes a miss.
inline constexpr std::uint32_t kSweepStoreEngineVersion = 1;

/// Identity of one sweep point result (see the key scheme above).
struct SweepKey {
  std::uint64_t test_hash = 0;
  std::uint64_t list_hash = 0;
  std::uint64_t memory_size = 0;
  std::uint64_t max_instances_per_fault = 0;
  std::uint32_t engine_version = kSweepStoreEngineVersion;

  friend bool operator==(const SweepKey& a, const SweepKey& b) {
    return a.test_hash == b.test_hash && a.list_hash == b.list_hash &&
           a.memory_size == b.memory_size &&
           a.max_instances_per_fault == b.max_instances_per_fault &&
           a.engine_version == b.engine_version;
  }
};

/// Cumulative store observations — the numbers the resumability and
/// fault-injection tests assert on.
struct SweepStoreStats {
  std::uint64_t hits = 0;             ///< load() returned a verified record
  std::uint64_t misses = 0;           ///< load() found nothing usable
  std::uint64_t corrupt_records = 0;  ///< records rejected by checksum/format
  std::uint64_t key_mismatches = 0;   ///< filename-hash collision or stale key
  std::uint64_t saves = 0;            ///< save() completed the rename protocol
  std::uint64_t save_retries = 0;     ///< write attempts after the first
  std::uint64_t save_failures = 0;    ///< save() gave up after all attempts
  std::uint64_t read_errors = 0;      ///< read() I/O errors (treated as miss)
};

struct SweepStoreOptions {
  /// Write attempts per save before the store degrades to store-less
  /// operation (>= 1).  mtg_cli exposes this as --store-retries.
  int max_write_attempts = 3;
  /// Base backoff before the i-th retry; the actual delay is
  ///
  ///     retry_backoff * i + jitter,   jitter ~ uniform[0, retry_backoff)
  ///
  /// — bounded linear backoff with full-cycle jitter so concurrent writers
  /// hitting the same transient failure don't retry in lock-step.  The
  /// jitter scales with the base, so a zero backoff (the tests' setting)
  /// stays exactly zero.  mtg_cli exposes the base as --store-backoff-ms.
  std::chrono::milliseconds retry_backoff{10};
  /// Seed of the deterministic per-store jitter stream (splitmix64): equal
  /// seeds replay equal jitter sequences, which is how the ladder tests
  /// assert the bounds.
  std::uint64_t retry_jitter_seed = 0x9E3779B97F4A7C15ull;
  /// Test seam: when set, called with each computed backoff delay INSTEAD of
  /// sleeping — ladder tests observe the exact delays (base, jitter bound,
  /// determinism) without wall-clock waits.
  std::function<void(std::chrono::milliseconds)> on_backoff;
  /// Degradation warnings land here; defaults to stderr when empty.
  std::function<void(const std::string&)> warn;
};

class SweepStore {
 public:
  /// A store rooted at directory `root` on `storage`; `storage` must outlive
  /// the store.  Call open() before use.
  SweepStore(Storage& storage, std::string root, SweepStoreOptions options = {});

  /// Ensures the store directory exists.  On failure the store starts
  /// disabled (every load misses, every save no-ops) and a warning is
  /// emitted — the degradation ladder's final rung.
  bool open();

  /// False once the store has degraded to store-less operation.
  bool enabled() const;

  /// Loads and verifies the record for `key`.  True only when a record with
  /// a matching key and intact checksums was read; `out` then holds the
  /// cached report.  Damaged records are removed (repair) and count as a
  /// miss — the caller recomputes and save() rewrites them.
  bool load(const SweepKey& key, CoverageReport& out);

  /// Persists `report` under `key` via write-temp + sync + rename, retrying
  /// transient failures with bounded backoff.  False when every attempt
  /// failed — the store is then disabled and a warning emitted.
  bool save(const SweepKey& key, const CoverageReport& report);

  /// Removes the record for `key` (manual invalidation; tests use this to
  /// punch holes into a grid).  True when a record existed.
  bool remove(const SweepKey& key);

  /// Full path of the record file for `key` (the .tmp sibling appends
  /// ".tmp").  Exposed so tests can damage records in place.
  std::string record_path(const SweepKey& key) const;

  SweepStoreStats stats() const;

  // -- Record codec (exposed for white-box tests) -----------------------
  /// Serializes `key` + `report` into a checksummed record.
  static std::string encode_record(const SweepKey& key,
                                   const CoverageReport& report);
  /// Strict inverse: false on any truncation, checksum, version or format
  /// violation, or when the embedded key differs from `key`.  Never throws,
  /// never reads out of bounds — this is the line of defense against torn
  /// writes and bit rot.  `why` (optional) receives the first violation.
  static bool decode_record(std::string_view record, const SweepKey& key,
                            CoverageReport& out, std::string* why = nullptr);

 private:
  void warn_locked(const std::string& message);
  /// The backoff delay before retry attempt `attempt` (>= 2): linear base
  /// plus one deterministic jitter draw from the store's stream.
  std::chrono::milliseconds backoff_delay_locked(int attempt);

  Storage& storage_;
  const std::string root_;
  const SweepStoreOptions options_;
  mutable std::mutex mutex_;
  SweepStoreStats stats_;
  std::uint64_t jitter_state_;  ///< splitmix64 state (seeded from options)
  bool disabled_ = false;
  bool opened_ = false;
};

}  // namespace mtg
