#include "gen/minimizer.hpp"

namespace mtg {

bool covers_all(const FaultSimulator& simulator, const MarchTest& test,
                const std::vector<FaultInstance>& instances) {
  if (!FaultSimulator::validity_violation(test).empty()) return false;
  return simulator.detects_all(test, instances);
}

MarchTest minimize_test(const FaultSimulator& simulator, const MarchTest& test,
                        const std::vector<FaultInstance>& instances,
                        std::vector<std::string>* log) {
  MarchTest current = test;
  const auto note = [&](const std::string& line) {
    if (log != nullptr) log->push_back(line);
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Try dropping whole elements, longest first (largest win per attempt).
    for (std::size_t i = 0; i < current.elements().size(); ++i) {
      if (current.elements().size() == 1) break;
      MarchTest trial = current;
      trial.elements().erase(trial.elements().begin() + i);
      if (covers_all(simulator, trial, instances)) {
        note("dropped element " + current.elements()[i].to_string());
        current = std::move(trial);
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // Try dropping single operations.
    for (std::size_t i = 0; i < current.elements().size() && !changed; ++i) {
      const MarchElement& element = current.elements()[i];
      if (element.ops().size() == 1) continue;  // handled by element removal
      for (std::size_t j = 0; j < element.ops().size(); ++j) {
        std::vector<Op> ops = element.ops();
        const Op removed = ops[j];
        ops.erase(ops.begin() + j);
        MarchTest trial = current;
        trial.elements()[i] = MarchElement(element.order(), std::move(ops));
        if (covers_all(simulator, trial, instances)) {
          note("dropped op " + to_string(removed) + " from " +
               element.to_string());
          current = std::move(trial);
          changed = true;
          break;
        }
      }
    }
  }
  return current;
}

}  // namespace mtg
