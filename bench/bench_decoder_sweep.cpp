// Decoder-fault memory-size sweep: the workload whose coverage curve
// genuinely depends on n (fp/decoder_fault.hpp) — a decoder fault on
// address line `bit` exists only in memories with 2^bit < n, so the
// coverable fraction of decoder_fault_list() grows with the memory size.
// Sweeps March SL (the strongest published baseline) across the size list
// and reports per-point coverage plus the wall time of the whole sweep.
//
// Usage: bench_decoder_sweep [--quick] [--json <path|->] [--cap <k>]
//   --quick   reduced size list (CI smoke)
//   --json    machine-readable per-point summary next to the ablation JSON
//   --cap     per-fault instance cap (default 256; 0 = full enumeration)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/sweep.hpp"

namespace {

void write_json(std::FILE* out, const mtg::MarchTest& test,
                const mtg::FaultList& list, std::size_t cap, double elapsed_ms,
                const std::vector<mtg::SweepPoint>& points) {
  std::fprintf(out,
               "{\n  \"test\": \"%s\", \"list\": \"%s\", \"cap\": %zu, "
               "\"elapsed_ms\": %.3f,\n  \"points\": [\n",
               test.name().c_str(), list.name.c_str(), cap, elapsed_ms);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const mtg::CoverageReport& r = points[i].report;
    std::fprintf(out,
                 "    {\"n\": %zu, \"faults_covered\": %zu, "
                 "\"faults_total\": %zu, \"fault_coverage_percent\": %.2f, "
                 "\"instances_detected\": %zu, \"instances_total\": %zu}%s\n",
                 points[i].memory_size, r.faults_covered(), r.faults_total(),
                 r.fault_coverage_percent(), r.instances_detected(),
                 r.instances_total(), i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtg;
  const char* json_path = nullptr;
  bool quick = false;
  std::size_t cap = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--cap") == 0 && i + 1 < argc) {
      try {
        cap = parse_count(argv[++i], "--cap");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_decoder_sweep [--quick] [--json <path|->] "
                   "[--cap <k>]\n");
      return 2;
    }
  }

  const MarchTest test = march_sl();
  const FaultList list = decoder_fault_list();
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{64, 256, 4096}
            : std::vector<std::size_t>{64, 256, 1024, 4096, 65536};

  SweepOptions options;
  options.max_instances_per_fault = cap;
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepPoint> points =
      sweep_coverage(test, list, sizes, options);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  std::printf("%s vs %s (per-fault cap %zu), sweep wall time %.3f ms\n",
              test.name().c_str(), list.name.c_str(), cap, elapsed_ms);
  std::printf("%s", sweep_summary(points).c_str());

  // The curve must not be flat: decoder faults are the n-dependent workload.
  bool varies = false;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].report.fault_coverage_percent() !=
        points[0].report.fault_coverage_percent()) {
      varies = true;
    }
  }
  if (!varies) {
    std::fprintf(stderr,
                 "error: decoder sweep coverage is flat across the sizes\n");
    return 1;
  }

  if (json_path != nullptr) {
    if (std::strcmp(json_path, "-") == 0) {
      write_json(stdout, test, list, cap, elapsed_ms, points);
    } else {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
      }
      write_json(out, test, list, cap, elapsed_ms, points);
      std::fclose(out);
      std::printf("JSON summary written to %s\n", json_path);
    }
  }
  return 0;
}
