#include "service/matrix_service.hpp"

#include <thread>
#include <tuple>
#include <utility>

#include "analysis/static_analyzer.hpp"
#include "sim/packed_engine.hpp"
#include "store/sweep_store.hpp"

namespace mtg {

const char* to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::Queued:
      return "queued";
    case JobStatus::Running:
      return "running";
    case JobStatus::Completed:
      return "completed";
    case JobStatus::Failed:
      return "failed";
    case JobStatus::Cancelled:
      return "cancelled";
    case JobStatus::DeadlineExceeded:
      return "deadline_exceeded";
    case JobStatus::Rejected:
      return "rejected";
  }
  return "unknown";
}

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

bool is_terminal(JobStatus status) noexcept {
  return status != JobStatus::Queued && status != JobStatus::Running;
}

}  // namespace

struct MatrixService::JobState {
  explicit JobState(const CancelToken* parent) : token(parent) {}

  MatrixJob job;
  CancelToken token;
  MatrixJobResult result;
  /// Flipped after on_result ran: wait()/drain() return only once the
  /// streaming callback for the job finished too.
  bool terminal = false;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point dispatched_at;
};

MatrixService::MatrixService(MatrixServiceOptions options)
    : options_(std::move(options)),
      service_cancel_(options_.cancel),
      pool_(ThreadPool::resolve_thread_count(options_.threads)) {
  require(options_.queue_capacity >= 1,
          "MatrixService: queue_capacity must be >= 1");
}

MatrixService::~MatrixService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    space_.notify_all();  // unblock submitters; they observe the shutdown
  }
  // One switch stops everything: queued jobs report Cancelled at dispatch,
  // running ones stop at their next cooperative check.
  service_cancel_.cancel();
  drain();
  // ~ThreadPool then drains the task queue and joins the workers while the
  // service state is still alive (pool_ is the last-declared member).
}

MatrixService::Submission MatrixService::submit(MatrixJob job) {
  require(job.list != nullptr, "MatrixService::submit: job.list is null");
  std::shared_ptr<JobState> state;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    require(!shutting_down_, "MatrixService::submit after shutdown began");
    if (queued_ >= options_.queue_capacity) {
      if (options_.when_full == BackpressurePolicy::Reject) {
        const std::size_t id = next_id_++;
        auto rejected = std::make_shared<JobState>(&service_cancel_);
        rejected->job = std::move(job);
        rejected->submitted_at = std::chrono::steady_clock::now();
        rejected->result.job_id = id;
        rejected->result.status = JobStatus::Rejected;
        jobs_.emplace(id, rejected);
        ++stats_.rejected;
        lock.unlock();
        finish(rejected, JobStatus::Rejected, "");
        return Submission{id, true};
      }
      space_.wait(lock, [&] {
        return queued_ < options_.queue_capacity || shutting_down_;
      });
      if (shutting_down_) {
        // Racing a shutdown is not caller misuse: bounce instead of throw.
        const std::size_t id = next_id_++;
        auto rejected = std::make_shared<JobState>(&service_cancel_);
        rejected->job = std::move(job);
        rejected->submitted_at = std::chrono::steady_clock::now();
        rejected->result.job_id = id;
        rejected->result.status = JobStatus::Rejected;
        jobs_.emplace(id, rejected);
        ++stats_.rejected;
        lock.unlock();
        finish(rejected, JobStatus::Rejected, "");
        return Submission{id, true};
      }
    }
    const std::size_t id = next_id_++;
    state = std::make_shared<JobState>(&service_cancel_);
    state->job = std::move(job);
    state->submitted_at = std::chrono::steady_clock::now();
    state->result.job_id = id;
    state->result.status = JobStatus::Queued;
    // The deadline clock starts at submission: queue time counts against
    // the budget (a service must not let a full queue defeat deadlines).
    state->token.set_deadline_after(state->job.deadline);
    jobs_.emplace(id, state);
    ++stats_.submitted;
    ++queued_;
  }
  pool_.submit([this, state] { run_job(state); });
  return Submission{state->result.job_id, false};
}

bool MatrixService::cancel(std::size_t job_id) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end() || is_terminal(it->second->result.status)) {
      return false;
    }
    state = it->second;
  }
  state->token.cancel();
  return true;
}

void MatrixService::cancel_all() {
  std::vector<std::shared_ptr<JobState>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, state] : jobs_) {
      if (!is_terminal(state->result.status)) live.push_back(state);
    }
  }
  for (const auto& state : live) state->token.cancel();
}

MatrixJobResult MatrixService::wait(std::size_t job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  require(it != jobs_.end(),
          "MatrixService::wait: unknown job id " + std::to_string(job_id));
  const std::shared_ptr<JobState> state = it->second;
  job_done_.wait(lock, [&] { return state->terminal; });
  return state->result;
}

std::vector<MatrixJobResult> MatrixService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] {
    for (const auto& [id, state] : jobs_) {
      if (!state->terminal) return false;
    }
    return true;
  });
  std::vector<MatrixJobResult> results;
  results.reserve(jobs_.size());
  for (const auto& [id, state] : jobs_) results.push_back(state->result);
  return results;
}

MatrixServiceStats MatrixService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MatrixService::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

void MatrixService::finish(const std::shared_ptr<JobState>& state,
                           JobStatus status, std::string error) {
  MatrixJobResult snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MatrixJobResult& result = state->result;
    result.status = status;
    result.error = std::move(error);
    if (status != JobStatus::Rejected) {
      result.run_ms =
          ms_between(state->dispatched_at, std::chrono::steady_clock::now());
    }
    switch (status) {
      case JobStatus::Completed:
        ++stats_.completed;
        break;
      case JobStatus::Failed:
        ++stats_.failed;
        break;
      case JobStatus::Cancelled:
        ++stats_.cancelled;
        break;
      case JobStatus::DeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      default:
        break;  // Rejected counted at submit; Queued/Running never finish
    }
    snapshot = result;
  }
  // Streaming callback outside the lock (it may do I/O); the terminal flag
  // flips after it returns, so wait()/drain() never overtake the stream.
  if (options_.on_result) options_.on_result(snapshot);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state->terminal = true;
  }
  job_done_.notify_all();
}

std::shared_ptr<const CompiledTest> MatrixService::compiled_for(
    const MarchTest& test, std::uint64_t test_hash, bool& cache_hit) {
  std::promise<std::shared_ptr<const CompiledTest>> promise;
  std::shared_future<std::shared_ptr<const CompiledTest>> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = compiled_cache_.find(test_hash);
    if (it != compiled_cache_.end()) {
      ++stats_.compiled_cache_hits;
      cache_hit = true;
      future = it->second;
    } else {
      ++stats_.compiled_cache_misses;
      cache_hit = false;
      owner = true;
      future = promise.get_future().share();
      compiled_cache_.emplace(test_hash, future);
    }
  }
  // Single flight: only the owner computes; concurrent jobs for the same
  // key block on the shared future instead of recompiling.
  if (!owner) return future.get();
  try {
    auto compiled =
        std::make_shared<const CompiledTest>(compile_march_test(test));
    promise.set_value(compiled);
    return compiled;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    compiled_cache_.erase(test_hash);  // a later job may retry
    throw;
  }
}

std::shared_ptr<const std::vector<FaultInstance>> MatrixService::instances_for(
    const FaultList& list, std::uint64_t list_hash, std::size_t n,
    std::size_t cap, bool& cache_hit) {
  const auto key = std::make_tuple(list_hash, static_cast<std::uint64_t>(n),
                                   static_cast<std::uint64_t>(cap));
  std::promise<std::shared_ptr<const std::vector<FaultInstance>>> promise;
  std::shared_future<std::shared_ptr<const std::vector<FaultInstance>>> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = instances_cache_.find(key);
    if (it != instances_cache_.end()) {
      ++stats_.instances_cache_hits;
      cache_hit = true;
      future = it->second;
    } else {
      ++stats_.instances_cache_misses;
      cache_hit = false;
      owner = true;
      future = promise.get_future().share();
      instances_cache_.emplace(key, future);
    }
  }
  if (!owner) return future.get();
  try {
    auto instances = std::make_shared<const std::vector<FaultInstance>>(
        instantiate_all(list, n, cap));
    promise.set_value(instances);
    return instances;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    instances_cache_.erase(key);
    throw;
  }
}

std::shared_ptr<const std::optional<CoverageReport>>
MatrixService::static_report_for(const MarchTest& test, const FaultList& list,
                                 std::uint64_t test_hash,
                                 std::uint64_t list_hash, std::size_t n,
                                 std::size_t cap) {
  const auto key = std::make_tuple(test_hash, list_hash,
                                   static_cast<std::uint64_t>(n),
                                   static_cast<std::uint64_t>(cap));
  std::promise<std::shared_ptr<const std::optional<CoverageReport>>> promise;
  std::shared_future<std::shared_ptr<const std::optional<CoverageReport>>>
      future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = static_cache_.find(key);
    if (it != static_cache_.end()) {
      future = it->second;
    } else {
      owner = true;
      future = promise.get_future().share();
      static_cache_.emplace(key, future);
    }
  }
  if (!owner) return future.get();
  try {
    AnalysisOptions analysis;
    analysis.both_power_on_states = options_.both_power_on_states;
    auto report = std::make_shared<const std::optional<CoverageReport>>(
        static_coverage_report(test, list, n, cap, analysis));
    promise.set_value(report);
    return report;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    static_cache_.erase(key);
    throw;
  }
}

void MatrixService::run_job(const std::shared_ptr<JobState>& state) {
  SchedulerFault fault;
  std::size_t dispatch_index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state->dispatched_at = std::chrono::steady_clock::now();
    state->result.queue_ms =
        ms_between(state->submitted_at, state->dispatched_at);
    --queued_;
    dispatch_index = ++dispatched_;
  }
  space_.notify_one();
  if (options_.scheduler_hook) {
    fault = options_.scheduler_hook(dispatch_index, state->result.job_id);
  }
  if (fault.action == SchedulerFaultAction::Delay && fault.delay.count() > 0) {
    std::this_thread::sleep_for(fault.delay);
  }
  if (fault.action == SchedulerFaultAction::Fail) {
    finish(state, JobStatus::Failed, "injected scheduler fault");
    return;
  }
  if (fault.action == SchedulerFaultAction::CancelBeforeRun) {
    state->token.cancel();
  }

  // A job whose token tripped while queued (cancel, deadline, shutdown)
  // terminates here without touching the engine.
  const CancelCause queued_cause = state->token.cause();
  if (queued_cause != CancelCause::None) {
    finish(state,
           queued_cause == CancelCause::DeadlineExceeded
               ? JobStatus::DeadlineExceeded
               : JobStatus::Cancelled,
           "");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state->result.status = JobStatus::Running;
  }

  const MatrixJob& job = state->job;
  try {
    // Engine failures from here on are per-job: the catch below converts
    // them into a Failed status and the service keeps serving.
    FaultSimulator::validate(job.test);
    const std::uint64_t test_hash = stable_hash(job.test);
    const std::uint64_t list_hash = stable_hash(*job.list);

    if (options_.store != nullptr) {
      SweepKey key;
      key.test_hash = test_hash;
      key.list_hash = list_hash;
      key.memory_size = job.memory_size;
      key.max_instances_per_fault = job.max_instances_per_fault;
      CoverageReport cached;
      if (options_.store->load(key, cached)) {
        // Content from the store, presentation from the job (sweep.cpp's
        // rule): the report must be byte-identical to a fresh evaluation
        // even when the record came from a run naming the test differently.
        cached.test_name = job.test.name().empty() ? job.test.to_string()
                                                   : job.test.name();
        cached.list_name = job.list->name;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          state->result.report = std::move(cached);
          state->result.from_store = true;
          ++stats_.store_hits;
        }
        finish(state, JobStatus::Completed, "");
        return;
      }
    }

    if (options_.static_prefilter &&
        FaultSimulator::any_order_count(job.test) <=
            options_.max_any_order_elements) {
      // Static serving tier: if the analyzer fully determines the report
      // (definite verdicts + analytic instance counts under the cap), serve
      // it without instantiating or simulating anything.  The ⇕-count guard
      // keeps over-limit tests on the simulated path so they Fail exactly
      // as they would without the prefilter.
      const std::shared_ptr<const std::optional<CoverageReport>> proved =
          static_report_for(job.test, *job.list, test_hash, list_hash,
                            job.memory_size, job.max_instances_per_fault);
      if (proved->has_value()) {
        if (fault.action == SchedulerFaultAction::CancelMidRun) {
          // The injected cancellation must still win: the simulated path
          // trips the token before its evaluation loop polls it.
          state->token.cancel();
        }
        state->token.check();
        CoverageReport report = **proved;
        // Content from the proof, presentation from the job (the store-hit
        // rule): the cached report is keyed by content hashes and may have
        // been proved for a differently-named twin.
        report.test_name = job.test.name().empty() ? job.test.to_string()
                                                   : job.test.name();
        report.list_name = job.list->name;
        if (options_.store != nullptr) {
          SweepKey key;
          key.test_hash = test_hash;
          key.list_hash = list_hash;
          key.memory_size = job.memory_size;
          key.max_instances_per_fault = job.max_instances_per_fault;
          if (options_.store->save(key, report)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.store_saves;
          }
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          state->result.report = std::move(report);
          state->result.served_statically = true;
          ++stats_.static_served;
        }
        finish(state, JobStatus::Completed, "");
        return;
      }
    }

    bool compiled_hit = false;
    bool instances_hit = false;
    const std::shared_ptr<const CompiledTest> compiled =
        options_.use_packed_engine
            ? compiled_for(job.test, test_hash, compiled_hit)
            : nullptr;
    const std::shared_ptr<const std::vector<FaultInstance>> instances =
        instances_for(*job.list, list_hash, job.memory_size,
                      job.max_instances_per_fault, instances_hit);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      state->result.compiled_cache_hit = compiled_hit;
      state->result.instances_cache_hit = instances_hit;
    }

    if (fault.action == SchedulerFaultAction::CancelMidRun) {
      // Trip the token after setup so the cancellation lands inside the
      // evaluation's cooperative polling path.
      state->token.cancel();
    }

    SimulatorOptions sim_options;
    sim_options.memory_size = job.memory_size;
    sim_options.both_power_on_states = options_.both_power_on_states;
    sim_options.max_any_order_elements = options_.max_any_order_elements;
    sim_options.use_packed_engine = options_.use_packed_engine;
    // Each job evaluates sequentially on its worker: the parallelism lives
    // across jobs (determinism: a report cannot depend on the worker count
    // or the dispatch schedule).
    sim_options.coverage_threads = 1;
    CoverageContext context;
    context.compiled = compiled.get();
    context.instances = instances.get();
    CoverageReport report = evaluate_coverage(
        FaultSimulator(sim_options), job.test, *job.list,
        job.max_instances_per_fault, &state->token, &context);

    if (options_.store != nullptr) {
      SweepKey key;
      key.test_hash = test_hash;
      key.list_hash = list_hash;
      key.memory_size = job.memory_size;
      key.max_instances_per_fault = job.max_instances_per_fault;
      if (options_.store->save(key, report)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_saves;
      }
      // A failed save already degraded (or disabled) the store with its own
      // warning; the job completes store-less either way.
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.instance_evaluations += report.instances_total();
      state->result.report = std::move(report);
    }
    finish(state, JobStatus::Completed, "");
  } catch (const CancelledError& e) {
    finish(state,
           e.cause() == CancelCause::DeadlineExceeded
               ? JobStatus::DeadlineExceeded
               : JobStatus::Cancelled,
           "");
  } catch (const std::exception& e) {
    finish(state, JobStatus::Failed, e.what());
  }
}

}  // namespace mtg
