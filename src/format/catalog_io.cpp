#include "format/catalog_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "format/reader.hpp"

namespace mtg {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw Error("I/O error while reading '" + path + "'");
  }
  return std::move(buffer).str();
}

CatalogKind detect_catalog_kind(std::string_view text,
                                const std::string& source) {
  LineReader reader(text, source);
  if (!reader.next()) {
    reader.fail_at_end(
        "empty document: expected a 'faultlist v1' or 'suite v1' header");
  }
  if (reader.line() == "faultlist v1") return CatalogKind::FaultListFile;
  if (reader.line() == "suite v1") return CatalogKind::SuiteFile;
  reader.fail(1, "unrecognized catalog header '" + std::string(reader.line()) +
                     "' (expected 'faultlist v1' or 'suite v1')");
}

FaultList load_fault_list_file(const std::string& path) {
  return parse_fault_list_text(read_text_file(path), path);
}

MarchSuite load_march_suite_file(const std::string& path) {
  return parse_march_suite_text(read_text_file(path), path);
}

std::string check_catalog_file(const std::string& path) {
  const std::string text = read_text_file(path);
  std::ostringstream out;
  switch (detect_catalog_kind(text, path)) {
    case CatalogKind::FaultListFile: {
      const FaultList list = parse_fault_list_text(text, path);
      out << "fault list";
      if (!list.name.empty()) out << " \"" << list.name << "\"";
      out << ": " << list.size() << " faults (" << list.simple.size()
          << " simple, " << list.linked.size() << " linked, "
          << list.decoder.size() << " decoder)";
      break;
    }
    case CatalogKind::SuiteFile: {
      const MarchSuite suite = parse_march_suite_text(text, path);
      out << "march suite: " << suite.size() << " tests (";
      for (std::size_t i = 0; i < suite.tests.size(); ++i) {
        if (i > 0) out << ", ";
        out << suite.tests[i].name() << " "
            << suite.tests[i].complexity_label();
      }
      out << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace mtg
