#include "fp/fault_primitive.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

std::string to_string(SenseOp op) {
  switch (op) {
    case SenseOp::None: return "";
    case SenseOp::W0: return "w0";
    case SenseOp::W1: return "w1";
    case SenseOp::Rd: return "r";
    case SenseOp::Wt: return "t";
  }
  throw InternalError("to_string(SenseOp): unreachable");
}

std::string to_string(FpClass c) {
  switch (c) {
    case FpClass::SF: return "SF";
    case FpClass::TF: return "TF";
    case FpClass::WDF: return "WDF";
    case FpClass::RDF: return "RDF";
    case FpClass::DRDF: return "DRDF";
    case FpClass::IRF: return "IRF";
    case FpClass::CFst: return "CFst";
    case FpClass::CFds: return "CFds";
    case FpClass::CFtr: return "CFtr";
    case FpClass::CFwd: return "CFwd";
    case FpClass::CFrd: return "CFrd";
    case FpClass::CFdr: return "CFdr";
    case FpClass::CFir: return "CFir";
    case FpClass::DRF: return "DRF";
    case FpClass::CFrt: return "CFrt";
  }
  throw InternalError("to_string(FpClass): unreachable");
}

namespace {

/// Sensitizer rendering, e.g. "0w1", "1r1", "0".
std::string sensitizer_string(Bit state, SenseOp op) {
  std::string out(1, to_char(state));
  switch (op) {
    case SenseOp::None: break;
    case SenseOp::W0: out += "w0"; break;
    case SenseOp::W1: out += "w1"; break;
    case SenseOp::Rd:
      out += 'r';
      out += to_char(state);  // a read always reads the current stored value
      break;
    case SenseOp::Wt: out += 't'; break;
  }
  return out;
}

}  // namespace

FaultPrimitive::FaultPrimitive(int num_cells, Bit a_state, SenseOp a_op,
                               Bit v_state, SenseOp v_op, Bit fault_value,
                               Tri read_result)
    : num_cells_(static_cast<std::uint8_t>(num_cells)),
      a_state_(a_state),
      a_op_(a_op),
      v_state_(v_state),
      v_op_(v_op),
      fault_value_(fault_value),
      read_result_(read_result) {
  require(num_cells == 1 || num_cells == 2,
          "a static fault primitive involves 1 or 2 cells");
  require(!(a_op != SenseOp::None && v_op != SenseOp::None),
          "a static fault primitive has at most one sensitizing operation");
  if (num_cells == 1) {
    require(a_op == SenseOp::None,
            "a single-cell fault primitive has no aggressor operation");
  }
  // A wait pauses on the cell it is "applied" to during the march sweep; the
  // retention condition lives on the decaying (victim) cell, so aggressor
  // wait sensitizers are not part of the model.
  require(a_op != SenseOp::Wt,
          "the wait sensitizer t applies to the victim cell only");
  if (v_op == SenseOp::Rd) {
    require(is_concrete(read_result),
            "a read-sensitized fault primitive must specify the read result R");
  } else {
    require(read_result == Tri::X,
            "the read result R only applies to reads of the victim");
  }
  // The FP must deviate from the fault-free behaviour: either the victim's
  // final value differs, or a victim read returns the wrong value.
  const Bit good_final =
      (v_op_ == SenseOp::W0) ? Bit::Zero
      : (v_op_ == SenseOp::W1) ? Bit::One
                               : v_state_;
  const bool state_deviates = fault_value != good_final;
  const bool read_deviates =
      v_op == SenseOp::Rd && to_bit(read_result) != v_state;
  require(state_deviates || read_deviates,
          "fault primitive describes fault-free behaviour (no deviation)");
}

FaultPrimitive FaultPrimitive::single(Bit v_state, SenseOp op, Bit fault_value,
                                      Tri read_result) {
  return FaultPrimitive(1, Bit::Zero, SenseOp::None, v_state, op, fault_value,
                        read_result);
}

FaultPrimitive FaultPrimitive::coupled(Bit a_state, SenseOp a_op, Bit v_state,
                                       SenseOp v_op, Bit fault_value,
                                       Tri read_result) {
  return FaultPrimitive(2, a_state, a_op, v_state, v_op, fault_value,
                        read_result);
}

FaultPrimitive FaultPrimitive::sf(Bit state) {
  return single(state, SenseOp::None, flip(state));
}
FaultPrimitive FaultPrimitive::tf(Bit from) {
  return single(from, from == Bit::Zero ? SenseOp::W1 : SenseOp::W0, from);
}
FaultPrimitive FaultPrimitive::wdf(Bit state) {
  return single(state, state == Bit::Zero ? SenseOp::W0 : SenseOp::W1,
                flip(state));
}
FaultPrimitive FaultPrimitive::rdf(Bit state) {
  return single(state, SenseOp::Rd, flip(state), to_tri(flip(state)));
}
FaultPrimitive FaultPrimitive::drdf(Bit state) {
  return single(state, SenseOp::Rd, flip(state), to_tri(state));
}
FaultPrimitive FaultPrimitive::irf(Bit state) {
  return single(state, SenseOp::Rd, state, to_tri(flip(state)));
}
FaultPrimitive FaultPrimitive::cfst(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, SenseOp::None, flip(v));
}
FaultPrimitive FaultPrimitive::cfds(Bit a_state, SenseOp a_op, Bit v) {
  require(a_op != SenseOp::None, "CFds needs a sensitizing aggressor operation");
  return coupled(a_state, a_op, v, SenseOp::None, flip(v));
}
FaultPrimitive FaultPrimitive::cftr(Bit a, Bit from) {
  return coupled(a, SenseOp::None, from,
                 from == Bit::Zero ? SenseOp::W1 : SenseOp::W0, from);
}
FaultPrimitive FaultPrimitive::cfwd(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, v == Bit::Zero ? SenseOp::W0 : SenseOp::W1,
                 flip(v));
}
FaultPrimitive FaultPrimitive::cfrd(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, SenseOp::Rd, flip(v), to_tri(flip(v)));
}
FaultPrimitive FaultPrimitive::cfdr(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, SenseOp::Rd, flip(v), to_tri(v));
}
FaultPrimitive FaultPrimitive::cfir(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, SenseOp::Rd, v, to_tri(flip(v)));
}
FaultPrimitive FaultPrimitive::drf(Bit state) {
  return single(state, SenseOp::Wt, flip(state));
}
FaultPrimitive FaultPrimitive::cfrt(Bit a, Bit v) {
  return coupled(a, SenseOp::None, v, SenseOp::Wt, flip(v));
}

Bit FaultPrimitive::a_state() const {
  require(is_two_cell(), "a_state: single-cell fault primitives have no aggressor");
  return a_state_;
}

Bit FaultPrimitive::good_final_victim_value() const {
  if (v_op_ == SenseOp::W0) return Bit::Zero;
  if (v_op_ == SenseOp::W1) return Bit::One;
  return v_state_;
}

bool FaultPrimitive::is_immediately_detecting() const {
  return v_op_ == SenseOp::Rd && to_bit(read_result_) != v_state_;
}

FpClass FaultPrimitive::classify() const {
  if (num_cells_ == 1) {
    if (is_state_fault()) return FpClass::SF;
    if (v_op_ == SenseOp::Wt) return FpClass::DRF;
    if (v_op_ == SenseOp::Rd) {
      if (fault_value_ == v_state_) return FpClass::IRF;
      return to_bit(read_result_) == v_state_ ? FpClass::DRDF : FpClass::RDF;
    }
    // write-sensitized
    const Bit written = (v_op_ == SenseOp::W1) ? Bit::One : Bit::Zero;
    return written == v_state_ ? FpClass::WDF : FpClass::TF;
  }
  if (is_state_fault()) return FpClass::CFst;
  if (op_on_aggressor()) return FpClass::CFds;
  if (v_op_ == SenseOp::Wt) return FpClass::CFrt;
  if (v_op_ == SenseOp::Rd) {
    if (fault_value_ == v_state_) return FpClass::CFir;
    return to_bit(read_result_) == v_state_ ? FpClass::CFdr : FpClass::CFrd;
  }
  const Bit written = (v_op_ == SenseOp::W1) ? Bit::One : Bit::Zero;
  return written == v_state_ ? FpClass::CFwd : FpClass::CFtr;
}

std::string FaultPrimitive::name() const {
  const FpClass c = classify();
  std::ostringstream out;
  out << to_string(c);
  switch (c) {
    case FpClass::SF:
    case FpClass::WDF:
    case FpClass::RDF:
    case FpClass::DRDF:
    case FpClass::IRF:
    case FpClass::DRF:
      out << to_char(v_state_);
      break;
    case FpClass::TF:
      out << (v_state_ == Bit::Zero ? "↑" : "↓");
      break;
    default:
      // coupling faults: spell out the sensitizer pair
      out << '<' << sensitizer_string(a_state_, a_op_) << ';'
          << sensitizer_string(v_state_, v_op_) << '>';
      break;
  }
  return out.str();
}

std::string FaultPrimitive::notation() const {
  std::ostringstream out;
  out << '<';
  if (is_two_cell()) {
    out << sensitizer_string(a_state_, a_op_) << ';';
  }
  out << sensitizer_string(v_state_, v_op_) << '/' << to_char(fault_value_)
      << '/' << to_char(read_result_) << '>';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const FaultPrimitive& fp) {
  return os << fp.notation();
}

namespace {

/// Cursor over the FP notation with position-carrying failures.
struct NotationScanner {
  std::string_view text;
  TextPosition origin;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("fault primitive notation error at " +
                         position_at(text, pos, origin).to_string() + ": " +
                         message + " in \"" + std::string(text) + "\"",
                     message, position_at(text, pos, origin), pos);
  }

  char peek() const { return pos < text.size() ? text[pos] : '\0'; }

  void expect(char c, const char* what) {
    if (peek() != c) fail(std::string("expected '") + c + "' (" + what + ")");
    ++pos;
  }

  Bit read_bit(const char* what) {
    const char c = peek();
    if (c != '0' && c != '1') fail(std::string("expected '0' or '1' (") + what + ")");
    ++pos;
    return bit_from_char(c);
  }

  /// One sensitizer: state bit plus optional operation (w0, w1, r<state>, t).
  void read_sensitizer(Bit& state, SenseOp& op) {
    state = read_bit("sensitizing state");
    op = SenseOp::None;
    switch (peek()) {
      case 'w':
        ++pos;
        op = read_bit("written value") == Bit::One ? SenseOp::W1 : SenseOp::W0;
        break;
      case 'r': {
        ++pos;
        // A read always reads the current stored value; notation repeats it.
        if (read_bit("read value") != state) {
          --pos;
          fail("a read sensitizer reads the cell's current value; "
               "'r' must repeat the state bit");
        }
        op = SenseOp::Rd;
        break;
      }
      case 't':
        ++pos;
        op = SenseOp::Wt;
        break;
      default:
        break;
    }
  }
};

}  // namespace

FaultPrimitive FaultPrimitive::from_notation(std::string_view text,
                                             TextPosition origin) {
  NotationScanner scanner{text, origin};
  scanner.expect('<', "a fault primitive starts with '<'");
  Bit first_state = Bit::Zero, second_state = Bit::Zero;
  SenseOp first_op = SenseOp::None, second_op = SenseOp::None;
  scanner.read_sensitizer(first_state, first_op);
  const bool two_cell = scanner.peek() == ';';
  if (two_cell) {
    ++scanner.pos;
    scanner.read_sensitizer(second_state, second_op);
  }
  scanner.expect('/', "separator before the fault value F");
  const Bit fault_value = scanner.read_bit("fault value F");
  scanner.expect('/', "separator before the read result R");
  const char r = scanner.peek();
  if (r != '0' && r != '1' && r != '-') {
    scanner.fail("expected '0', '1' or '-' (read result R)");
  }
  ++scanner.pos;
  const Tri read_result = tri_from_char(r);
  scanner.expect('>', "a fault primitive ends with '>'");
  if (scanner.pos != text.size()) {
    scanner.fail("trailing characters after fault primitive");
  }
  // Construction validation (one sensitizing operation, R on victim reads
  // only, actual deviation, ...) reports at the start of the notation.
  try {
    return two_cell ? FaultPrimitive::coupled(first_state, first_op,
                                              second_state, second_op,
                                              fault_value, read_result)
                    : FaultPrimitive::single(first_state, first_op,
                                             fault_value, read_result);
  } catch (const Error& e) {
    scanner.pos = 0;
    scanner.fail(e.what());
  }
}

}  // namespace mtg
