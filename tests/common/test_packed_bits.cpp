#include "common/packed_bits.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/state.hpp"

namespace mtg {
namespace {

TEST(PackedBits, StartsAllZero) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{64}, std::size_t{65},
                              std::size_t{130}}) {
    const PackedBits bits(n);
    EXPECT_EQ(bits.size(), n);
    EXPECT_EQ(bits.num_words(), (n + 63) / 64);
    EXPECT_TRUE(bits.none());
    EXPECT_EQ(bits.popcount(), 0u);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FALSE(bits.get(i));
  }
}

TEST(PackedBits, EmptySetIsValid) {
  const PackedBits bits(0);
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.num_words(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_EQ(bits.to_string(), "");
}

TEST(PackedBits, SetGetAcrossWordBoundaries) {
  PackedBits bits(130);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{127}, std::size_t{128},
                              std::size_t{129}}) {
    bits.set(i, true);
    EXPECT_TRUE(bits.get(i)) << "bit " << i;
  }
  EXPECT_EQ(bits.popcount(), 6u);
  EXPECT_FALSE(bits.get(1));
  EXPECT_FALSE(bits.get(65));
  bits.set(64, false);
  EXPECT_FALSE(bits.get(64));
  EXPECT_EQ(bits.popcount(), 5u);
}

TEST(PackedBits, FillMasksTheLastWord) {
  PackedBits bits(70);
  bits.fill(true);
  EXPECT_EQ(bits.popcount(), 70u);
  EXPECT_EQ(bits.word(0), ~std::uint64_t{0});
  EXPECT_EQ(bits.word(1), (std::uint64_t{1} << 6) - 1);
  bits.fill(false);
  EXPECT_TRUE(bits.none());
}

TEST(PackedBits, WordAccessRoundTrips) {
  PackedBits bits(100);
  bits.set_word(0, 0xDEADBEEFCAFEF00Dull);
  bits.set_word(1, (std::uint64_t{1} << 36) - 1);  // bits 64..99 set
  EXPECT_EQ(bits.word(0), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(bits.word(1), (std::uint64_t{1} << 36) - 1);
  EXPECT_TRUE(bits.get(99));
  // Bits beyond size() must stay zero.
  EXPECT_THROW(bits.set_word(1, std::uint64_t{1} << 36), Error);
  EXPECT_THROW(bits.word(2), Error);
}

TEST(PackedBits, EqualityIncludesSize) {
  PackedBits a(65), b(65);
  EXPECT_EQ(a, b);
  b.set(64, true);
  EXPECT_NE(a, b);
  b.set(64, false);
  EXPECT_EQ(a, b);
  const PackedBits shorter(64);
  EXPECT_NE(a, shorter);  // same word count, different bit count
}

TEST(PackedBits, ToStringMatchesMemoryState) {
  MemoryState state(67);
  state.set(0, Bit::One);
  state.set(64, Bit::One);
  state.set(66, Bit::One);
  const PackedBits bits = state.packed_bits();
  EXPECT_EQ(bits.to_string(), state.to_string());
}

TEST(PackedBits, OutOfRangeAccessesThrow) {
  PackedBits bits(64);
  EXPECT_THROW(bits.get(64), Error);
  EXPECT_THROW(bits.set(64, true), Error);
  EXPECT_THROW(bits.set_word(1, 0), Error);
}

TEST(MemoryState, PackedBitsRoundTripsBeyondOneWord) {
  // The old packed_bits() threw for n > 64; the multi-word snapshot must
  // round-trip any n exactly.
  for (const std::size_t n : {std::size_t{3}, std::size_t{64}, std::size_t{65},
                              std::size_t{200}}) {
    MemoryState state(n);
    for (std::size_t i = 0; i < n; i += 3) state.set(i, Bit::One);
    const PackedBits snapshot = state.packed_bits();
    MemoryState restored(n, Bit::One);
    restored.set_packed_bits(snapshot);
    EXPECT_EQ(restored, state) << "n=" << n;
  }
}

TEST(MemoryState, SetPackedBitsRejectsSizeMismatch) {
  MemoryState state(65);
  EXPECT_THROW(state.set_packed_bits(PackedBits(64)), Error);
}

}  // namespace
}  // namespace mtg
