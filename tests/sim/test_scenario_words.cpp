// Exhaustive unit tests of the packed engine's scenario word helpers
// (sim/packed_engine.hpp) against a naive per-scenario enumeration, plus the
// lane-word helpers (lane_popcount / lowest_lane) and their portable
// (builtin-free) twins.
//
// The naive reference restates the lane layout of the engine's file comment
// from scratch: scenario sc = power_on · combos + order_mask lives in lane
// (sc mod 64) of block (sc div 64); ⇕ element `ordinal` runs Down in sc iff
// bit `ordinal` of (sc mod combos).  Every block boundary case is covered:
// partial final blocks (total < a multiple of 64), blocks starting exactly
// at `combos`, blocks crossing `combos` mid-word, and ordinals >= 6 (where
// the ⇓ pattern is constant across a block instead of alternating).
#include <gtest/gtest.h>

#include "march/march_element.hpp"
#include "sim/packed_engine.hpp"

namespace mtg {
namespace {

TEST(ScenarioWords, MatchNaiveEnumerationExhaustively) {
  // any_count 0..8 → combos 1..256; with both power-on polarities the
  // scenario sets span sub-word totals (partial single block), exact single
  // blocks, and multi-block sets where `combos` falls on and off block
  // boundaries.
  for (std::size_t any_count = 0; any_count <= 8; ++any_count) {
    const std::size_t combos = std::size_t{1} << any_count;
    for (const std::size_t power_ons : {std::size_t{1}, std::size_t{2}}) {
      const std::size_t total = power_ons * combos;
      for (std::size_t base = 0; base < total + 64; base += 64) {
        const std::uint64_t active = scenario_active_word(base, total);
        const std::uint64_t power1 = scenario_power1_word(base, combos);
        for (std::size_t lane = 0; lane < 64; ++lane) {
          const std::size_t sc = base + lane;
          ASSERT_EQ((active >> lane) & 1u, sc < total ? 1u : 0u)
              << "active: combos=" << combos << " total=" << total
              << " base=" << base << " lane=" << lane;
          if (sc >= total) continue;  // power1/down only read under `active`
          if (power_ons == 2) {
            ASSERT_EQ((power1 >> lane) & 1u, sc >= combos ? 1u : 0u)
                << "power1: combos=" << combos << " base=" << base
                << " lane=" << lane;
          }
          const std::size_t order_mask = sc % combos;
          for (std::size_t ordinal = 0; ordinal < any_count; ++ordinal) {
            const std::uint64_t down =
                scenario_down_word(base, combos, ordinal);
            ASSERT_EQ((down >> lane) & 1u, (order_mask >> ordinal) & 1u)
                << "down: combos=" << combos << " base=" << base
                << " lane=" << lane << " ordinal=" << ordinal;
          }
        }
      }
    }
  }
}

TEST(ScenarioWords, ElementDownWordFollowsTheOrder) {
  const MarchElement up(AddressOrder::Up, {Op::R0});
  const MarchElement down(AddressOrder::Down, {Op::R0});
  const MarchElement any(AddressOrder::Any, {Op::R0});
  const std::size_t combos = 256;  // any_count = 8, ordinals 6 and 7 live
  for (std::size_t base = 0; base < 2 * combos; base += 64) {
    EXPECT_EQ(element_down_word(up, -1, base, combos), std::uint64_t{0});
    EXPECT_EQ(element_down_word(down, -1, base, combos), ~std::uint64_t{0});
    for (const int ordinal : {0, 5, 6, 7}) {
      EXPECT_EQ(element_down_word(any, ordinal, base, combos),
                scenario_down_word(base, combos,
                                   static_cast<std::size_t>(ordinal)));
    }
  }
}

TEST(LaneWords, LowestLaneIsDefinedForZero) {
  // __builtin_ctzll(0) is UB and the old portable fallback looped forever;
  // the zero word now has the defined "no lane" result 64.  (Call-site
  // audit: both packed_run uses guard with != 0 before calling — the
  // defined zero case is defence in depth, not a behaviour change.)
  EXPECT_EQ(lowest_lane(0), 64u);
  EXPECT_EQ(lowest_lane_portable(0), 64u);
}

TEST(LaneWords, HelpersMatchTheirPortableTwins) {
  // The portable branches used to be dead code in CI; exercise them
  // directly against the builtin-backed versions over single bits, dense
  // words, and mixed patterns.
  std::uint64_t patterns[] = {0,
                              1,
                              0x8000000000000000ull,
                              ~std::uint64_t{0},
                              0xAAAAAAAAAAAAAAAAull,
                              0x5555555555555555ull,
                              0xDEADBEEFCAFEF00Dull,
                              0xFFFF0000FFFF0000ull};
  for (std::size_t bit = 0; bit < 64; ++bit) {
    const std::uint64_t word = std::uint64_t{1} << bit;
    EXPECT_EQ(lowest_lane(word), bit);
    EXPECT_EQ(lowest_lane_portable(word), bit);
    EXPECT_EQ(lane_popcount(word), 1u);
    EXPECT_EQ(lane_popcount_portable(word), 1u);
    // A high bit above the lowest must not change the result.
    EXPECT_EQ(lowest_lane(word | 0x8000000000000000ull), bit < 63 ? bit : 63);
  }
  for (const std::uint64_t word : patterns) {
    EXPECT_EQ(lane_popcount_portable(word), lane_popcount(word));
    EXPECT_EQ(lowest_lane_portable(word), lowest_lane(word));
  }
}

}  // namespace
}  // namespace mtg
