// Validated command-line number parsing, shared by mtg_cli and the bench_*
// front ends so none of them falls back to std::atoi (which silently turns
// garbage into 0 — and a 0-cell simulated memory — or wraps "-1" into
// 2^64 - 1 via std::stoul).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mtg {

/// Parses a non-negative decimal count; throws mtg::Error (tagged with
/// `what`) on signs, spaces, suffixes, empty input or overflow.
std::size_t parse_count(const std::string& text, const std::string& what);

/// parse_count plus the fault simulator's minimum: a simulated memory needs
/// at least 3 cells to host three-cell faults.
std::size_t parse_memory_size(const std::string& text, const std::string& what);

/// Parses a comma-separated list of counts, e.g. "64,256,4096"; rejects
/// empty items.  Duplicates and unsorted entries are preserved verbatim —
/// sweep_coverage accepts both.
std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& what);

}  // namespace mtg
