#include "march/parser.hpp"

#include <cctype>
#include <string>

#include "common/error.hpp"

namespace mtg {
namespace {

/// Minimal cursor-based scanner over the march notation.
class Scanner {
 public:
  explicit Scanner(std::string_view text, TextPosition origin)
      : text_(text), origin_(origin) {}

  void skip_space() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == ';')) {
      ++pos_;
    }
  }

  bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  /// Consumes one address-order marker (ASCII letter or UTF-8 arrow).
  AddressOrder read_order() {
    skip_space();
    if (consume('^')) return AddressOrder::Up;
    // 'v' and 'c' are unambiguous because operations never start an element.
    if (consume('v')) return AddressOrder::Down;
    if (consume('c')) return AddressOrder::Any;
    // UTF-8 arrows: ⇑ = E2 87 91, ⇓ = E2 87 93, ⇕ = E2 87 95.
    if (pos_ + 3 <= text_.size() && static_cast<unsigned char>(text_[pos_]) == 0xE2 &&
        static_cast<unsigned char>(text_[pos_ + 1]) == 0x87) {
      unsigned char third = static_cast<unsigned char>(text_[pos_ + 2]);
      pos_ += 3;
      switch (third) {
        case 0x91: return AddressOrder::Up;
        case 0x93: return AddressOrder::Down;
        case 0x95: return AddressOrder::Any;
        default: break;
      }
      pos_ -= 3;
    }
    // A dangling operation token (e.g. a bare "t" or "r0,w1" outside any
    // element) deserves a pointed diagnostic: it is the most common way to
    // write a wait in the wrong place.
    if (pos_ < text_.size() &&
        std::isalnum(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected an address order marker (^, v, c or an arrow); "
           "operations must appear inside order(...) elements");
    }
    fail("expected an address order marker (^, v, c or an arrow)");
  }

  /// Consumes one operation token (w0, w1, r0, r1, r, t).
  Op read_op() {
    skip_space();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalnum(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) fail("expected an operation token");
    try {
      return op_from_string(text_.substr(start, pos_ - start));
    } catch (const Error& e) {
      pos_ = start;
      fail(e.what());
    }
  }

  /// Whole-document position of the next unconsumed byte.
  TextPosition position() const {
    return position_at(text_, pos_, origin_);
  }

  [[noreturn]] void fail(const std::string& message) const {
    // Offset (into the directly parsed substring) and line:column (in
    // whole-document coordinates via origin_) — once march notation comes
    // from multi-line files, the bare offset alone is useless.
    const TextPosition position = position_at(text_, pos_, origin_);
    throw ParseError("march notation error at offset " +
                         std::to_string(pos_) + " (" + position.to_string() +
                         "): " + message + " in \"" +
                         std::string(line_excerpt(text_, pos_)) + "\"",
                     message, position, pos_);
  }

 private:
  std::string_view text_;
  TextPosition origin_;
  std::size_t pos_ = 0;
};

MarchElement read_element(Scanner& scanner) {
  AddressOrder order = scanner.read_order();
  scanner.skip_space();
  scanner.expect('(');
  scanner.skip_space();
  if (scanner.peek() == ')') scanner.fail("empty march element");
  std::vector<Op> ops;
  ops.push_back(scanner.read_op());
  scanner.skip_space();
  while (scanner.consume(',')) {
    ops.push_back(scanner.read_op());
    scanner.skip_space();
  }
  if (!scanner.consume(')')) {
    scanner.fail("expected ',' or ')' (unbalanced parentheses?)");
  }
  return MarchElement(order, std::move(ops));
}

}  // namespace

MarchElement parse_march_element(std::string_view text, TextPosition origin) {
  Scanner scanner(text, origin);
  MarchElement element = read_element(scanner);
  if (!scanner.done()) scanner.fail("trailing characters after march element");
  return element;
}

MarchTest parse_march_test(std::string_view text, std::string name,
                           TextPosition origin,
                           std::vector<TextPosition>* element_positions) {
  Scanner scanner(text, origin);
  scanner.skip_space();
  const bool braced = scanner.consume('{');
  std::vector<MarchElement> elements;
  while (!scanner.done() && scanner.peek() != '}') {
    // done() leaves the cursor on the order marker of the next element.
    if (element_positions != nullptr) {
      element_positions->push_back(scanner.position());
    }
    elements.push_back(read_element(scanner));
    scanner.skip_space();
  }
  if (braced) {
    if (!scanner.consume('}')) {
      scanner.fail("expected '}' closing the march test (unbalanced braces?)");
    }
  } else if (scanner.peek() == '}') {
    scanner.fail("unmatched '}' (the march test has no opening '{')");
  }
  if (!scanner.done()) scanner.fail("trailing characters after march test");
  if (elements.empty()) {
    throw ParseError("march notation error at offset 0 (" +
                         origin.to_string() + "): march test has no elements" +
                         " in \"" + std::string(line_excerpt(text, 0)) + "\"",
                     "march test has no elements", origin, 0);
  }
  return MarchTest(std::move(name), std::move(elements));
}

}  // namespace mtg
