// Ablation of the generator's design choices (DESIGN.md experiment index):
//   * redundancy elimination on/off (the paper's "non-redundant" claim),
//   * working memory size (greedy fidelity vs speed),
//   * candidate element length bound (SO search space).
//
// Fault List #2 is swept fully; Fault List #1 ablates the minimizer only
// (its sweeps dominate runtime on a laptop-class host).
#include <cstdio>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"

namespace {

void run(const char* label, const mtg::FaultList& list,
         const mtg::GeneratorOptions& options) {
  const mtg::GenerationResult result = generate_march_test(list, options);
  std::printf("%-34s %5zun %8.2fs  %6.2f%%  rounds=%zu pool=%zu%s\n", label,
              result.test.complexity(), result.stats.elapsed_seconds,
              result.certification.fault_coverage_percent(),
              result.stats.greedy_rounds, result.stats.candidate_pool,
              result.uncoverable.empty() ? "" : "  (uncoverable reported!)");
}

}  // namespace

int main() {
  using namespace mtg;
  std::printf("%-34s %6s %9s %8s  %s\n", "configuration", "O(n)", "CPU",
              "coverage", "stats");
  std::printf("%s\n", std::string(80, '-').c_str());

  const FaultList list2 = fault_list_2();
  {
    GeneratorOptions options;
    run("L2 default", list2, options);
  }
  {
    GeneratorOptions options;
    options.minimize = false;
    run("L2 no redundancy elimination", list2, options);
  }
  for (std::size_t working : {3, 4, 5}) {
    GeneratorOptions options;
    options.working_memory_size = working;
    char label[64];
    std::snprintf(label, sizeof label, "L2 working memory n=%zu", working);
    run(label, list2, options);
  }
  for (std::size_t len : {4, 5, 6, 7}) {
    GeneratorOptions options;
    options.max_element_length = len;
    char label[64];
    std::snprintf(label, sizeof label, "L2 max element length %zu", len);
    run(label, list2, options);
  }

  const FaultList list1 = fault_list_1();
  {
    GeneratorOptions options;
    run("L1 default", list1, options);
  }
  {
    GeneratorOptions options;
    options.minimize = false;
    run("L1 no redundancy elimination", list1, options);
  }
  return 0;
}
