// The memory model of Section 4: a deterministic Mealy automaton
//
//   M = (Q, X, Y, δ, λ)
//
// for an n one-bit-cell fault-free memory.  Q = {0,1}^n are the memory
// states, X the operation alphabet of Definition 2, Y = {0, 1, -} the output
// alphabet ('-' for writes and waits), δ the state transition function and
// λ the output function.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/bit.hpp"
#include "common/state.hpp"
#include "fp/afp.hpp"  // AddressedOp

namespace mtg {

class MealyAutomaton {
 public:
  /// Model memory with `num_cells` one-bit cells (2^num_cells states).
  explicit MealyAutomaton(std::size_t num_cells);

  std::size_t num_cells() const noexcept { return num_cells_; }
  std::size_t num_states() const noexcept { return std::size_t{1} << num_cells_; }

  /// δ: the state after performing `op` in state `q`.  Reads and waits leave
  /// the state unchanged; a write updates the addressed cell.
  SmallState delta(const SmallState& q, const AddressedOp& op) const;

  /// λ: the output of performing `op` in state `q` — the read value for
  /// reads, std::nullopt ('-') for writes and waits.
  std::optional<Bit> lambda(const SmallState& q, const AddressedOp& op) const;

  /// All distinct input symbols: w0/w1/read per cell, plus the wait `t`.
  /// Reads are annotated per state when used as edge labels; here the read
  /// is represented address-only (Op::R).
  std::vector<AddressedOp> input_alphabet() const;

 private:
  void check_state(const SmallState& q) const;

  std::size_t num_cells_;
};

}  // namespace mtg
