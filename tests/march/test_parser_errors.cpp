// Parser hardening: malformed march notation must be rejected with a
// position-annotated mtg::Error, never silently mis-parsed.
#include "march/parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

/// The parser must throw an Error whose message contains `expected_part`
/// and the offending offset marker.
void expect_parse_error(const std::string& text,
                        const std::string& expected_part) {
  try {
    parse_march_test(text);
    FAIL() << "no error for \"" << text << "\"";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(expected_part), std::string::npos)
        << "\"" << text << "\" produced: " << message;
  }
}

TEST(ParserErrors, UnbalancedParentheses) {
  expect_parse_error("^(r0,w1", "unbalanced parentheses");
  expect_parse_error("{c(w0); ^(r0,w1}", "unbalanced parentheses");
  expect_parse_error("^((r0))", "expected an operation token");
  expect_parse_error("^(r0))", "expected an address order marker");
}

TEST(ParserErrors, UnbalancedBraces) {
  expect_parse_error("{c(w0); ^(r0,w1)", "expected '}'");
  expect_parse_error("c(w0)}", "unmatched '}'");
  expect_parse_error("{{c(w0)}}", "expected an address order marker");
}

TEST(ParserErrors, EmptyElementsAndTests) {
  expect_parse_error("^()", "empty march element");
  expect_parse_error("{c(w0); v()}", "empty march element");
  expect_parse_error("", "march test has no elements");
  expect_parse_error("{}", "march test has no elements");
  expect_parse_error("  ;  ", "march test has no elements");
}

TEST(ParserErrors, DanglingOperations) {
  // A bare wait (or any op) outside an element must not be skipped.
  expect_parse_error("t", "operations must appear inside order(...) elements");
  expect_parse_error("c(w0) t", "operations must appear");
  expect_parse_error("c(w0); r0,w1", "operations must appear");
  // Dangling separators inside an element.
  expect_parse_error("^(r0,)", "expected an operation token");
  expect_parse_error("^(,r0)", "expected an operation token");
  expect_parse_error("^(t,)", "expected an operation token");
}

TEST(ParserErrors, UnknownTokens) {
  expect_parse_error("^(x1)", "unknown memory operation token");
  expect_parse_error("^(r2)", "unknown memory operation token");
  expect_parse_error("^(r0w1)", "unknown memory operation token");
  expect_parse_error("^(w0) >(r0)", "expected an address order marker");
}

TEST(ParserErrors, TrailingGarbage) {
  expect_parse_error("{c(w0)} extra", "trailing characters");
  EXPECT_THROW(parse_march_element("^(r0) v(r1)"), Error);
}

TEST(ParserErrors, MessagesCarryTheOffset) {
  try {
    parse_march_test("{c(w0); ^(r0,zz)}");
    FAIL() << "no error";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("offset 13"), std::string::npos) << message;
    EXPECT_NE(message.find("{c(w0); ^(r0,zz)}"), std::string::npos) << message;
  }
}

TEST(ParserErrors, MessagesCarryLineAndColumn) {
  // Errors are ParseError (not just Error) with a structured position in
  // addition to the legacy byte offset.
  try {
    parse_march_test("{c(w0); ^(r0,zz)}");
    FAIL() << "no error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position(), (TextPosition{1, 14}));  // offset 13, 1-based col
    EXPECT_EQ(e.offset(), 13u);
    EXPECT_NE(std::string(e.what()).find("line 1, column 14"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.detail(), "unknown memory operation token: 'zz'");
  }
}

TEST(ParserErrors, MultiLineInputReportsTheRightLine) {
  // Notation spanning lines: the error lands on line 3, and the excerpt
  // quotes only that line.
  try {
    parse_march_test("{c(w0);\n^(r0,w1);\nv(r1,xx)}");
    FAIL() << "no error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position().line, 3u);
    EXPECT_EQ(e.position().column, 6u);  // 'xx' in "v(r1,xx)}"
    const std::string message = e.what();
    EXPECT_NE(message.find("line 3, column 6"), std::string::npos) << message;
    EXPECT_NE(message.find("v(r1,xx)}"), std::string::npos) << message;
    EXPECT_EQ(message.find("^(r0,w1)"), std::string::npos)
        << "excerpt quotes more than the offending line: " << message;
  }
}

TEST(ParserErrors, OriginShiftsPositionsIntoTheEnclosingDocument) {
  // A suite file embeds notation mid-line: seeding the parser with the
  // notation's document position makes diagnostics point into the file.
  try {
    parse_march_test("{c(w0); ^(r0,zz)}", "embedded", TextPosition{7, 30});
    FAIL() << "no error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position().line, 7u);
    EXPECT_EQ(e.position().column, 30u + 13u);
    EXPECT_EQ(e.offset(), 13u);  // offset stays notation-relative
  }
}

TEST(ParserErrors, WellFormedInputStillParses) {
  // Hardening must not reject the accepted grammar.
  EXPECT_NO_THROW(parse_march_test("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}"));
  EXPECT_NO_THROW(parse_march_test("c(w0) ^(r0,w1) v(r1,w0)"));
  EXPECT_NO_THROW(parse_march_test("{c(w0); c(t,r0,w1,r1)}"));
  EXPECT_NO_THROW(parse_march_test("  {  c ( w0 ) ;  ^ ( r0 , w1 ) }  "));
}

}  // namespace
}  // namespace mtg
