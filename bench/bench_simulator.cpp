// Fault simulator throughput (the substrate of the paper's Section 6
// validation, ref. [13]): march execution speed, detection cost per fault
// instance, and scaling in the simulated memory size.
#include <benchmark/benchmark.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"

namespace {

using namespace mtg;

void BM_MarchSlSingleInstance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const MarchTest test = march_sl();
  FaultInstance inst;
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), 0, n - 1));
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One), 0, n - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.detects(test, inst));
  }
  // Operations applied per detects() call: 41n ops × cells × 4 scenarios.
  state.counters["ops/call"] = static_cast<double>(41 * n * 4);
}
BENCHMARK(BM_MarchSlSingleInstance)->RangeMultiplier(2)->Range(4, 64);

void BM_FaultyMemoryOpThroughput(benchmark::State& state) {
  FaultyMemory memory(8, {BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1,
                                                       Bit::Zero),
                                  0, 7),
                          BoundFp::at(FaultPrimitive::sf(Bit::One), 3)});
  memory.power_on_uniform(Bit::Zero);
  std::size_t address = 0;
  for (auto _ : state) {
    memory.write(address & 7, (address & 8) ? Bit::One : Bit::Zero);
    benchmark::DoNotOptimize(memory.read(address & 7));
    ++address;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FaultyMemoryOpThroughput);

void BM_CoverageFaultListTwo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const FaultList list = fault_list_2();
  const MarchTest test = march_abl1();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
}
BENCHMARK(BM_CoverageFaultListTwo)->DenseRange(4, 8, 2)->Unit(benchmark::kMillisecond);

void BM_CoverageFaultListOneMarchSl(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const FaultList list = fault_list_1();
  const MarchTest test = march_sl();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
  state.counters["instances"] =
      static_cast<double>(instantiate_all(list, n).size());
}
BENCHMARK(BM_CoverageFaultListOneMarchSl)
    ->DenseRange(4, 6, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
