#include "memory/pattern_graph.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

std::string FaultyEdge::label() const { return to_string(ops); }

std::size_t PatternGraph::required_model_cells(const FaultList& list) {
  std::size_t cells = 1;
  for (const SimpleFault& f : list.simple) {
    cells = std::max(cells, static_cast<std::size_t>(f.num_cells()));
  }
  for (const LinkedFault& f : list.linked) {
    cells = std::max(cells, static_cast<std::size_t>(f.num_cells()));
  }
  return cells;
}

PatternGraph::PatternGraph(const FaultList& list, std::size_t model_cells)
    : base_(model_cells == 0 ? required_model_cells(list) : model_cells) {
  require(base_.num_cells() >= required_model_cells(list),
          "pattern graph model memory is smaller than the largest fault");
  std::size_t ordinal = 0;
  for (const SimpleFault& f : list.simple) add_simple_fault(f, ordinal++);
  for (const LinkedFault& f : list.linked) add_linked_fault(f, ordinal++);
}

namespace {

/// All strictly ascending `k`-subsets of {0, ..., n-1}.
std::vector<std::vector<std::size_t>> ascending_subsets(std::size_t n,
                                                        std::size_t k) {
  std::vector<std::vector<std::size_t>> result;
  std::vector<std::size_t> pick(k);
  // Iterative combination enumeration.
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  if (k > n) return result;
  while (true) {
    result.push_back(pick);
    // advance
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (pick[i] != i + n - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
    if (k == 0) return result;
  }
}

}  // namespace

void PatternGraph::add_simple_fault(const SimpleFault& fault,
                                    std::size_t fault_ordinal) {
  (void)fault_ordinal;
  const std::size_t k = fault.num_cells();
  for (const auto& cells : ascending_subsets(base_.num_cells(), k)) {
    const std::size_t v = cells[fault.v_pos];
    const std::size_t a = fault.a_pos >= 0 ? cells[fault.a_pos] : v;
    for (const Afp& afp : expand_afps(fault.fp, a, v, base_.num_cells())) {
      const TestPattern tp = to_test_pattern(afp);
      FaultyEdge edge{tp.initial, tp.end_state, tp.ops,
                      tp.victim,  fault.name,   1,
                      next_pair_id_++};
      faulty_edges_.push_back(std::move(edge));
    }
  }
}

void PatternGraph::add_linked_fault(const LinkedFault& fault,
                                    std::size_t fault_ordinal) {
  (void)fault_ordinal;
  const std::size_t k = fault.num_cells();
  for (const auto& cells : ascending_subsets(base_.num_cells(), k)) {
    for (const LinkedAfpPair& pair :
         expand_linked_afps(fault, cells, base_.num_cells())) {
      const std::size_t pair_id = next_pair_id_++;
      faulty_edges_.push_back(FaultyEdge{pair.tp1.initial, pair.tp1.end_state,
                                         pair.tp1.ops, pair.tp1.victim,
                                         fault.name(), 1, pair_id});
      faulty_edges_.push_back(FaultyEdge{pair.tp2.initial, pair.tp2.end_state,
                                         pair.tp2.ops, pair.tp2.victim,
                                         fault.name(), 2, pair_id});
    }
  }
}

std::string PatternGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t s = 0; s < base_.num_vertices(); ++s) {
    const SmallState state(base_.num_cells(), static_cast<std::uint16_t>(s));
    out << "  \"" << state << "\";\n";
  }
  for (const GraphEdge& e : base_.edges()) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
        << e.label() << "\"];\n";
  }
  for (const FaultyEdge& e : faulty_edges_) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
        << e.label() << "\", style=bold, penwidth=2];\n";
  }
  out << "}\n";
  return out.str();
}

LinkedFault disturb_coupling_linked_fault() {
  const FaultPrimitive fp1 = FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);
  const FaultPrimitive fp2 = FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One);
  return LinkedFault(fp1, fp2, LinkedLayout::two_cell(0, 0, 1));
}

PatternGraph make_pgcf() {
  FaultList list;
  list.name = "Linked disturb coupling fault (Equations 12-14)";
  list.linked.push_back(disturb_coupling_linked_fault());
  return PatternGraph(list, 2);
}

}  // namespace mtg
