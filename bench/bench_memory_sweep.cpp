// Memory-size sweep throughput (sim/sweep.hpp): coverage of one march test
// across n = 64 … 65536 in one call.  The packed engine's per-instance cost
// is independent of n (cell collapsing), so sweep cost tracks the per-fault
// layout cap, not the memory size — the counters make that visible.
#include <benchmark/benchmark.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace mtg;

const std::vector<std::size_t>& sweep_sizes() {
  static const std::vector<std::size_t> sizes = {64, 256, 4096, 65536};
  return sizes;
}

void BM_SweepMarchSlFaultListTwo(benchmark::State& state) {
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  SweepOptions options;
  options.max_instances_per_fault = static_cast<std::size_t>(state.range(0));
  options.threads = static_cast<std::size_t>(state.range(1));
  std::size_t instances = 0;
  for (auto _ : state) {
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, sweep_sizes(), options);
    instances = 0;
    for (const SweepPoint& point : points) {
      instances += point.report.instances_total();
    }
    benchmark::DoNotOptimize(points);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(instances * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepMarchSlFaultListTwo)
    ->ArgNames({"cap", "threads"})
    ->Args({128, 1})
    ->Args({128, 0})   // 0 = hardware concurrency
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Unit(benchmark::kMillisecond);

void BM_SingleSizeLargeN(benchmark::State& state) {
  // One n = 65536 point in isolation: the multi-word end of the sweep.
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  SweepOptions options;
  options.max_instances_per_fault = 256;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweep_coverage(test, list, {65536}, options));
  }
}
BENCHMARK(BM_SingleSizeLargeN)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
