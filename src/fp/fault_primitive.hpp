// Fault primitives — Definition 3 of the paper, following the notation of
// van de Goor & Al-Ars [12].
//
// A static fault primitive <S ; F / R> describes one deviation of the memory
// behaviour, sensitized by at most one memory operation:
//
//   * S  — the sensitizing states/operation.  For a single-cell FP, S is a
//     condition/operation on the victim itself (e.g. "0w1").  For a two-cell
//     FP, S = Sa;Sv where Sa is the aggressor part and Sv the victim part
//     (e.g. "<0w1;0>" = aggressor performs w1 from state 0 while the victim
//     holds 0).  Exactly one of Sa/Sv may carry the operation; a FP with no
//     operation at all is a *state fault* (sensitized by the states alone).
//   * F  — the value of the victim after sensitization.
//   * R  — for FPs whose sensitizing operation is a read of the victim, the
//     value returned by that read; '-' otherwise.
//
// The static single-cell taxonomy: SF (state), TF (transition), WDF (write
// destructive), RDF (read destructive), DRDF (deceptive read destructive),
// IRF (incorrect read).  The two-cell (coupling) taxonomy: CFst (state),
// CFds (disturb), CFtr (transition), CFwd (write destructive), CFrd (read
// destructive), CFdr (deceptive read destructive), CFir (incorrect read).
//
// Data-retention faults extend the space with the wait sensitizer `t`
// (Definition 2's wait operation): DRF <s t ; s̄ / -> — an un-refreshed cell
// holding s decays to s̄ during a sufficiently long pause — and its coupled
// variant CFrt <a ; v t / v̄ / -> where the decay additionally requires the
// aggressor state.  A wait is modeled as long enough for the decay to
// complete (the tester picks the pause length), so a single `t` sensitizes;
// writing the cell re-establishes its level and thereby refreshes it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <tuple>

#include "common/bit.hpp"
#include "common/text_position.hpp"

namespace mtg {

/// A sensitizing operation attached to one cell of a fault primitive.
/// `Rd` is a read of the cell's current (pre-fault) value; `Wt` is the wait
/// operation `t` pausing on the cell (data-retention sensitizer).
enum class SenseOp : std::uint8_t { None, W0, W1, Rd, Wt };

std::string to_string(SenseOp op);

/// The taxonomy class of a static fault primitive.
enum class FpClass : std::uint8_t {
  SF,    ///< state fault                       <s ; s̄ / ->
  TF,    ///< transition fault                  <s w s̄ ; s / ->
  WDF,   ///< write destructive fault           <s w s ; s̄ / ->
  RDF,   ///< read destructive fault            <s r s ; s̄ / s̄>
  DRDF,  ///< deceptive read destructive fault  <s r s ; s̄ / s>
  IRF,   ///< incorrect read fault              <s r s ; s / s̄>
  CFst,  ///< state coupling fault              <a ; v / v̄ / ->
  CFds,  ///< disturb coupling fault            <a op ; v / v̄ / ->
  CFtr,  ///< transition coupling fault         <a ; v w v̄ / v / ->
  CFwd,  ///< write destructive coupling fault  <a ; v w v / v̄ / ->
  CFrd,  ///< read destructive coupling fault   <a ; v r v / v̄ / v̄>
  CFdr,  ///< deceptive read destructive CF     <a ; v r v / v̄ / v>
  CFir,  ///< incorrect read coupling fault     <a ; v r v / v / v̄>
  DRF,   ///< data-retention fault              <s t ; s̄ / ->
  CFrt,  ///< retention coupling fault          <a ; v t / v̄ / ->
};

std::string to_string(FpClass c);

/// A static fault primitive (at most one sensitizing operation).
///
/// Construction is validated: exactly 1 or 2 cells, at most one operation,
/// read results only on victim reads, and the FP must describe an actual
/// deviation from the fault-free behaviour.
class FaultPrimitive {
 public:
  /// Single-cell FP: the sensitizing condition/operation applies to the
  /// victim itself.  `read_result` must be Tri::X unless `op == SenseOp::Rd`.
  static FaultPrimitive single(Bit v_state, SenseOp op, Bit fault_value,
                               Tri read_result = Tri::X);

  /// Two-cell FP.  At most one of `a_op` / `v_op` may be a real operation.
  static FaultPrimitive coupled(Bit a_state, SenseOp a_op, Bit v_state,
                                SenseOp v_op, Bit fault_value,
                                Tri read_result = Tri::X);

  // -- Named constructors for the standard taxonomy --------------------
  static FaultPrimitive sf(Bit state);         ///< <state ; !state / ->
  static FaultPrimitive tf(Bit from);          ///< <from w !from ; from / ->
  static FaultPrimitive wdf(Bit state);        ///< <state w state ; !state / ->
  static FaultPrimitive rdf(Bit state);        ///< <state r state ; !state / !state>
  static FaultPrimitive drdf(Bit state);       ///< <state r state ; !state / state>
  static FaultPrimitive irf(Bit state);        ///< <state r state ; state / !state>
  static FaultPrimitive cfst(Bit a, Bit v);    ///< <a ; v / !v / ->
  static FaultPrimitive cfds(Bit a_state, SenseOp a_op, Bit v);  ///< <a op ; v / !v / ->
  static FaultPrimitive cftr(Bit a, Bit from); ///< <a ; from w !from / from / ->
  static FaultPrimitive cfwd(Bit a, Bit v);    ///< <a ; v w v / !v / ->
  static FaultPrimitive cfrd(Bit a, Bit v);    ///< <a ; v r v / !v / !v>
  static FaultPrimitive cfdr(Bit a, Bit v);    ///< <a ; v r v / !v / v>
  static FaultPrimitive cfir(Bit a, Bit v);    ///< <a ; v r v / v / !v>
  static FaultPrimitive drf(Bit state);        ///< <state t ; !state / ->
  static FaultPrimitive cfrt(Bit a, Bit v);    ///< <a ; v t / !v / ->

  // -- Structure queries ------------------------------------------------
  int num_cells() const noexcept { return num_cells_; }
  bool is_two_cell() const noexcept { return num_cells_ == 2; }

  Bit a_state() const;  ///< aggressor initial state (two-cell only)
  Bit v_state() const noexcept { return v_state_; }
  SenseOp a_op() const noexcept { return a_op_; }
  SenseOp v_op() const noexcept { return v_op_; }
  Bit fault_value() const noexcept { return fault_value_; }
  Tri read_result() const noexcept { return read_result_; }

  /// True when no operation is involved (SF / CFst): the FP is sensitized by
  /// the memory *state* alone (level/edge semantics, see fp/semantics.hpp).
  bool is_state_fault() const noexcept {
    return a_op_ == SenseOp::None && v_op_ == SenseOp::None;
  }

  /// True when the sensitizing operation acts on the victim cell.
  bool op_on_victim() const noexcept { return v_op_ != SenseOp::None; }
  /// True when the sensitizing operation acts on the aggressor cell.
  bool op_on_aggressor() const noexcept { return a_op_ != SenseOp::None; }

  /// True when the FP is sensitized by the wait operation `t` (DRF / CFrt):
  /// the fault class only a march test containing waits can reach.
  bool is_retention() const noexcept { return v_op_ == SenseOp::Wt; }

  /// The sensitizing operation (None for state faults).
  SenseOp sense_op() const noexcept {
    return op_on_victim() ? v_op_ : a_op_;
  }

  /// Value of the victim on the *fault-free* machine after the sensitizing
  /// operation: the written value when the op is a write on the victim, the
  /// initial victim state otherwise.
  Bit good_final_victim_value() const;

  /// True when sensitizing the FP immediately reveals it: the sensitizing
  /// operation is a read of the victim whose result R differs from the
  /// victim's fault-free value (RDF, IRF, CFrd, CFir).  Such FPs cannot be
  /// hidden by a masking partner *when sensitized on a good-state victim*.
  bool is_immediately_detecting() const;

  /// Taxonomy classification.  Every valid static FP belongs to exactly one
  /// class.
  FpClass classify() const;

  /// Short mnemonic, e.g. "TF↑", "WDF0", "CFds<0w1;1>".
  std::string name() const;

  /// Full notation, e.g. "<0w1/0/->" (single-cell), "<0w1;0/1/->" (two-cell).
  std::string notation() const;

  /// Parses the notation() form back into a validated FP —
  /// from_notation(fp.notation()) == fp for every valid FP; the catalog
  /// fault-list reader (src/format/fault_list_text.hpp) builds on this.
  /// Throws mtg::ParseError anchored at `origin` (plus the offset of the
  /// offending byte inside `text`) on malformed notation or on an FP that
  /// fails construction validation.
  static FaultPrimitive from_notation(std::string_view text,
                                      TextPosition origin = {});

  friend bool operator==(const FaultPrimitive& x, const FaultPrimitive& y) {
    return x.num_cells_ == y.num_cells_ && x.a_state_ == y.a_state_ &&
           x.a_op_ == y.a_op_ && x.v_state_ == y.v_state_ &&
           x.v_op_ == y.v_op_ && x.fault_value_ == y.fault_value_ &&
           x.read_result_ == y.read_result_;
  }
  friend bool operator!=(const FaultPrimitive& x, const FaultPrimitive& y) {
    return !(x == y);
  }
  friend bool operator<(const FaultPrimitive& x, const FaultPrimitive& y) {
    auto key = [](const FaultPrimitive& f) {
      return std::tuple(f.num_cells_, f.a_state_, f.a_op_, f.v_state_, f.v_op_,
                        f.fault_value_, f.read_result_);
    };
    return key(x) < key(y);
  }

 private:
  FaultPrimitive(int num_cells, Bit a_state, SenseOp a_op, Bit v_state,
                 SenseOp v_op, Bit fault_value, Tri read_result);

  std::uint8_t num_cells_;
  Bit a_state_;
  SenseOp a_op_;
  Bit v_state_;
  SenseOp v_op_;
  Bit fault_value_;
  Tri read_result_;
};

std::ostream& operator<<(std::ostream& os, const FaultPrimitive& fp);

}  // namespace mtg
