// Symbolic march analyzer: static fault-coverage verdicts.
//
// A march test applied to an n-cell memory is a large but highly regular
// computation: every cell receives the same operation sequence, and a bound
// fault deviates only on its involved cells (at most three for the fault
// catalog, the corrupted address pair for decoder faults).  Operations
// addressed at a non-involved cell neither read a deviating value nor change
// any involved cell, so the detection question for one instance reduces
// *exactly* to a micro-machine over the involved cells — the same collapsing
// argument the packed engine's signature dedup rests on, used here in the
// other direction: instead of simulating 2^a scenarios over n cells, walk
// the march elements once over k <= 4 abstract cells and *branch* on every
// ⇕ element, deduplicating machine states as the branches reconverge.
//
// The abstract domain is a set of undetected machine configurations
// (faulty-cell values, fault-free values, state-fault armed flags).  Each
// march element maps every live configuration through the exact
// FaultyMemory operational semantics (fp/semantics.cpp) — sensitization on
// the pre-operation state, write effect, victim overrides in FP order,
// read-result overrides, the settle/re-arm cascade for state faults, and
// the four decoder-class deviations.  A configuration whose read mismatches
// the fault-free value is *detected* (detection is sticky) and drops out of
// the set; power-on seeds one configuration per initial content (uniform
// all-0 / all-1, matching the simulator's enumeration).
//
//   * set empties            -> Detected      (every scenario detects)
//   * a configuration runs
//     through the last
//     element undetected     -> NotDetected   (that scenario escapes)
//   * unsupported shape or
//     exhausted step budget  -> Unknown       (fall back to simulation)
//
// A frontier that outgrows the state budget does NOT give up: the walk
// *widens* from breadth-first dedup to an exact depth-first finish of the
// overflowing configurations (same per-element semantics, bounded memory),
// and only exhausting the configurable step budget of that finish yields
// Unknown.  Configuration keys make the dedup exact — future behaviour
// depends only on (faulty cells, fault-free cells, armed flags) — so for
// every catalog-shaped fault (<= 2 FPs) the budget is unreachable and the
// analyzer is total: the remaining Unknown exits are genuinely out-of-domain
// machines (> 4 involved cells, decoder faults mixed with FPs inside ONE
// instance — a combination both simulation engines refuse as well; lists
// that merely contain both kinds decompose per fault).
//
// Soundness contract: a definite verdict (Detected / NotDetected) agrees
// with both simulation engines — locked by the three-way
// static == packed == scalar differential fuzz harness
// (tests/sim/test_differential_fuzz.cpp) and the catalog-wide comparison in
// tests/analysis/.  Every Detected verdict carries a witness: the
// sensitizing fault firing and the observing read, with the concrete
// scenario (power-on content, ⇕ order choices) that exhibits them,
// printable as an explanation and replayable on the scalar simulator.
//
// Fault-level verdicts quantify over all instances at a memory size n:
// cell-array faults have one behaviour class per address layout shape
// (detection depends only on the relative order of the involved cells), and
// a decoder fault on line `bit` has at most two (the address-order side for
// the two-cell classes, the read-back bit for AFna) — all of them feasible
// exactly when 2^bit < n.  A fault with zero instances at n follows
// evaluate_coverage's convention and reports NotDetected ("no instances
// fit"), keeping static summaries comparable with CoverageReport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bit.hpp"
#include "fp/fault_list.hpp"
#include "march/march_test.hpp"
#include "sim/coverage.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {

/// Three-valued static coverage verdict.
enum class StaticVerdict : std::uint8_t {
  Detected,     ///< every scenario of every instance produces a failing read
  NotDetected,  ///< some scenario escapes (or the fault has no instances)
  Unknown,      ///< out of the analyzer's domain — fall back to simulation
};

std::string to_string(StaticVerdict verdict);

/// The explanation attached to a Detected verdict: the sensitizing fault
/// firing and the observing read, plus the concrete scenario exhibiting
/// them.  Cells are named by their *rank* among the instance's involved
/// cells in address order (rank 0 = lowest address), so one witness covers
/// every concrete layout of the fault.
struct StaticWitness {
  Bit power_on = Bit::Zero;      ///< uniform initial content of the scenario
  std::uint64_t any_mask = 0;    ///< ⇕ resolutions: bit i set = i-th ⇕ Down
  std::size_t any_count = 0;     ///< number of ⇕ elements in the test

  std::size_t observe_element = 0;  ///< element index of the failing read
  std::size_t observe_op = 0;       ///< op index within that element
  std::size_t observe_slot = 0;     ///< involved-cell rank that was read
  Bit expected = Bit::Zero;         ///< fault-free value
  Bit observed = Bit::Zero;         ///< value the faulty machine delivered

  bool has_sense = false;          ///< a fault firing was recorded
  bool sense_at_power_on = false;  ///< ... during the power-on settle
  std::size_t sense_element = 0;
  std::size_t sense_op = 0;
  std::string sense_what;  ///< FP notation (or decoder deviation) that fired

  /// One-line human-readable explanation.
  std::string to_string() const;
};

/// The result of analyzing one instance or one fault.
struct StaticResult {
  StaticVerdict verdict = StaticVerdict::Unknown;
  std::optional<StaticWitness> witness;  ///< present iff verdict == Detected
  std::string reason;  ///< NotDetected escape scenario / Unknown cause

  bool definite() const noexcept { return verdict != StaticVerdict::Unknown; }
};

struct AnalysisOptions {
  /// Must match SimulatorOptions::both_power_on_states when verdicts are
  /// compared against engine results.
  bool both_power_on_states = true;
  /// Breadth-first frontier cap.  The deduped set is bounded by
  /// #cell-values x #armed-flags (tiny), so overflowing it takes a
  /// deliberately small setting; when it happens the walk widens to the
  /// exact depth-first finish instead of giving up.
  std::size_t max_states = 4096;
  /// Element-walk budget of the widened depth-first finish (configs x
  /// elements stepped).  Exhausting it is the analyzer's only Unknown exit
  /// for in-domain machines.
  std::size_t widen_step_budget = std::size_t{1} << 22;
};

/// Static verdict for one bound instance — the same question
/// FaultSimulator::detects() answers by simulation.  Instances with more
/// than four involved cells, or combining FPs with decoder faults, come
/// back Unknown.
StaticResult analyze_instance(const MarchTest& test,
                              const FaultInstance& instance,
                              const AnalysisOptions& options = {});

/// Fault-level verdicts at memory size n: Detected iff *every* instance at
/// n is detected, NotDetected if at least one escapes or none fit.
StaticResult analyze_fault(const MarchTest& test, const SimpleFault& fault,
                           std::size_t n, const AnalysisOptions& options = {});
StaticResult analyze_fault(const MarchTest& test, const LinkedFault& fault,
                           std::size_t n, const AnalysisOptions& options = {});
StaticResult analyze_fault(const MarchTest& test, const DecoderFault& fault,
                           std::size_t n, const AnalysisOptions& options = {});

/// Number of instances instantiate() enumerates uncapped at memory size n,
/// computed analytically (no enumeration — safe for n = 2^40).  Saturates
/// at uint64 max.
std::uint64_t static_instance_count(const SimpleFault& fault, std::size_t n);
std::uint64_t static_instance_count(const LinkedFault& fault, std::size_t n);
std::uint64_t static_instance_count(const DecoderFault& fault, std::size_t n);

/// Per-fault verdicts over a whole list, in instantiate_all's fault order
/// (simple, then linked, then decoder).
struct StaticCoverageEntry {
  std::size_t fault_index = 0;
  std::string fault_name;
  StaticVerdict verdict = StaticVerdict::Unknown;
  std::uint64_t instance_count = 0;  ///< uncapped instances at n
  std::optional<StaticWitness> witness;
  std::string reason;
};

struct StaticCoverage {
  std::vector<StaticCoverageEntry> entries;
  std::size_t detected = 0;
  std::size_t not_detected = 0;
  std::size_t unknown = 0;

  /// "static: 37 detected, 2 not detected, 1 unknown (of 40 faults)".
  std::string summary() const;
};

StaticCoverage analyze_coverage(const MarchTest& test, const FaultList& list,
                                std::size_t n,
                                const AnalysisOptions& options = {});

/// The statically-served CoverageReport: when every fault of `list` resolves
/// to a definite verdict AND the instance counts the simulator would produce
/// under `max_instances_per_fault` are analytically exact, returns a report
/// byte-identical to
///   evaluate_coverage(FaultSimulator({n, ...}), test, list, cap)
/// without simulating anything.  Returns nullopt — caller falls back to
/// simulation — whenever exactness cannot be certified:
///   * any Unknown verdict, or a NotDetected fault with instances (the
///     simulated report's detected-instance split is not a fault-level
///     property),
///   * a fault whose layout does not fit the memory (instantiate() throws
///     there; the simulated job fails and the static path must not mask it),
///   * a capped FP fault in instantiate()'s seeded-random sampling tier
///     (count > 4*cap), where the kept-layout count is not analytic, or an
///     instance count saturating the uint64 range.
/// Detected faults under a cap use the sampler's exact keep counts: all
/// C(n,k) layouts when they fit the cap, exactly `cap` evenly-spaced ones in
/// the moderate tier, exactly min(count, cap) decoder addresses.
std::optional<CoverageReport> static_coverage_report(
    const MarchTest& test, const FaultList& list, std::size_t n,
    std::size_t max_instances_per_fault, const AnalysisOptions& options = {});

}  // namespace mtg
