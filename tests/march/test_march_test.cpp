#include "march/march_test.hpp"

#include <gtest/gtest.h>

#include "march/parser.hpp"

namespace mtg {
namespace {

MarchTest simple_test() {
  return parse_march_test("{c(w0); ^(r0,w1); v(r1,w0)}", "MATS+");
}

TEST(MarchTest, ComplexityIsPerCellOpCount) {
  EXPECT_EQ(simple_test().complexity(), 5u);
  EXPECT_EQ(simple_test().complexity_label(), "5n");
}

TEST(MarchTest, NameIsMetadataNotIdentity) {
  MarchTest a = simple_test();
  MarchTest b = simple_test();
  b.set_name("other");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.name(), "other");
}

TEST(MarchTest, ConsistentTestHasNoViolation) {
  EXPECT_EQ(simple_test().consistency_violation(), "");
}

TEST(MarchTest, DetectsEntryValueMismatch) {
  const MarchTest bad = parse_march_test("{c(w0); ^(r1,w0)}");
  EXPECT_NE(bad.consistency_violation(), "");
}

TEST(MarchTest, DetectsReadFromUnknownState) {
  const MarchTest bad = parse_march_test("{c(r0,w0)}");
  EXPECT_NE(bad.consistency_violation(), "");
}

TEST(MarchTest, WriteFreeElementPreservesValue) {
  const MarchTest ok = parse_march_test("{c(w1); ^(r1); v(r1,w0); c(r0)}");
  EXPECT_EQ(ok.consistency_violation(), "");
}

TEST(MarchTest, AppendGrowsComplexity) {
  MarchTest t = simple_test();
  t.append(MarchElement(AddressOrder::Any, {Op::R0}));
  EXPECT_EQ(t.complexity(), 6u);
  EXPECT_EQ(t.size(), 4u);
}

TEST(MarchTest, ToStringUsesBracesAndSemicolons) {
  EXPECT_EQ(simple_test().to_string(), "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}");
  EXPECT_EQ(simple_test().to_string(/*ascii=*/true),
            "{c(w0); ^(r0,w1); v(r1,w0)}");
}

TEST(MarchTest, EmptyTest) {
  const MarchTest t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.complexity(), 0u);
  EXPECT_EQ(t.consistency_violation(), "");
}

}  // namespace
}  // namespace mtg
