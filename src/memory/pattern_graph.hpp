// The Pattern Graph PG = {Vp, Ep ∪ Fp} (Section 4, Equation 11; Figure 4).
//
// The pattern graph is the fault-free memory graph of the k-cell model
// memory (k = the largest number of cells any target fault involves, so
// |Vp| = 2^k, as in the paper) extended with *faulty edges*: one edge per
// Test Pattern, going from the pattern's initial state I to the state the
// *faulty* machine reaches (Fv) — for linked faults, TP1's target equals
// TP2's source (I2 = Fv1), reproducing Figure 3.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "memory/memory_graph.hpp"

namespace mtg {

/// A faulty edge of the pattern graph: one Test Pattern.
struct FaultyEdge {
  SmallState from;               ///< I — pattern's initial state
  SmallState to;                 ///< Fv — faulty state reached
  std::vector<AddressedOp> ops;  ///< E followed by the observation read O
  std::size_t victim = 0;        ///< victim cell in the model
  std::string source;            ///< name of the originating fault
  int tp_index = 1;              ///< 1 = TP1, 2 = TP2 (for linked faults)
  std::size_t pair_id = 0;       ///< groups the two TPs of one linked fault

  std::string label() const;  ///< e.g. "w1[0],r0[1]"
};

class PatternGraph {
 public:
  /// Builds the pattern graph of `list` over a model memory of
  /// `model_cells` cells (0 = automatic: the largest fault size in the list).
  /// Faults are embedded at every ascending assignment of model cells.
  explicit PatternGraph(const FaultList& list, std::size_t model_cells = 0);

  /// k such that |Vp| = 2^k suffices for `list` (the paper's
  /// "2^max(#f-cells_i)" rule).
  static std::size_t required_model_cells(const FaultList& list);

  std::size_t model_cells() const noexcept { return base_.num_cells(); }
  std::size_t num_vertices() const noexcept { return base_.num_vertices(); }
  const MemoryGraph& base() const noexcept { return base_; }
  const std::vector<FaultyEdge>& faulty_edges() const noexcept {
    return faulty_edges_;
  }

  /// GraphViz DOT rendering; faulty edges are bold, as in Figure 4.
  std::string to_dot(const std::string& graph_name = "PG") const;

 private:
  void add_simple_fault(const SimpleFault& fault, std::size_t fault_ordinal);
  void add_linked_fault(const LinkedFault& fault, std::size_t fault_ordinal);

  MemoryGraph base_;
  std::vector<FaultyEdge> faulty_edges_;
  std::size_t next_pair_id_ = 0;
};

/// The PGCF of Figure 4: the pattern graph of the disturb coupling fault
/// linked with the disturb coupling fault (Equations 12–14) on the 2-cell
/// model G0.
PatternGraph make_pgcf();

/// The linked fault of Equations (12)-(14):
/// <0w1;0/1/-> → <1w0;1/0/-> with a shared aggressor below the victim.
LinkedFault disturb_coupling_linked_fault();

}  // namespace mtg
