#include "gen/generator.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "analysis/static_analyzer.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "gen/candidates.hpp"
#include "gen/minimizer.hpp"
#include "sim/fault_instance.hpp"
#include "sim/packed_engine.hpp"
#include "sim/prefix_sim.hpp"

namespace mtg {
namespace {

/// The greedy loop of Figure 5: append the best-scoring valid SO until the
/// engine's fault set is covered or no candidate helps.  Candidate gains are
/// evaluated in parallel on `workers` (candidates are independent; each
/// candidate's gain reduces by sum over its instance blocks); the reduction
/// runs sequentially in pool order, so the selected element — and hence the
/// generated test — is identical for every thread count.  Returns the fault
/// indices reported uncoverable (step d.i).
std::set<std::size_t> greedy_cover(PrefixEngine& engine,
                                   const std::vector<MarchElement>& pool,
                                   MarchTest& test,
                                   const GeneratorOptions& options,
                                   ThreadPool& workers,
                                   GenerationStats& stats) {
  auto final_value = [&]() -> std::optional<Bit> {
    std::optional<Bit> value;
    for (const MarchElement& e : test.elements()) {
      if (auto v = e.final_value()) value = v;
    }
    return value;
  };

  std::optional<Bit> current_final = final_value();
  std::set<std::size_t> uncoverable;
  std::size_t stalls_in_a_row = 0;

  // Element traces are order-independent; compile the pool's once.
  std::vector<ElementTrace> pool_traces;
  pool_traces.reserve(pool.size());
  for (const MarchElement& candidate : pool) {
    pool_traces.push_back(compile_element_trace(candidate));
  }

  while (engine.undetected_instances() > 0 &&
         stats.greedy_rounds < options.max_rounds) {
    // Candidates compatible with the memory state the test leaves behind.
    std::vector<std::size_t> eligible;
    eligible.reserve(pool.size());
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (auto entry = pool[c].required_entry_value()) {
        if (!current_final.has_value() || *entry != *current_final) continue;
      }
      eligible.push_back(c);
    }

    // The total undetected (instance, scenario) count is the same for every
    // candidate of the scan: compute the O(items × blocks) rescan once per
    // round instead of once per gain() call.
    const std::size_t undetected_before = engine.undetected_scenarios();

    // Parallel gain scan.  Each worker prunes against its own running best
    // score — a lower bound of the global maximum, so pruning only abandons
    // candidates that cannot win.  The bound is compared strictly: a
    // candidate whose exact score ties the eventual winner is never aborted
    // (its upper bound so_far + remaining never drops *below* its exact
    // gain), so every candidate that can win the score/gain/cost tie-breaks
    // reports its exact gain and the reduction below is schedule-invariant.
    std::vector<std::size_t> gains(eligible.size(), 0);
    std::vector<double> local_best(workers.num_workers() + 1, 0.0);
    workers.parallel_for(
        eligible.size(), /*chunk=*/8,
        [&](std::size_t worker, std::size_t begin, std::size_t end) {
          double& bound = local_best[worker];
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t c = eligible[i];
            const double cost = static_cast<double>(pool[c].cost());
            gains[i] = engine.gain(
                pool[c], pool_traces[c], undetected_before,
                [&](std::size_t so_far, std::size_t remaining) {
                  return static_cast<double>(so_far + remaining) / cost <
                         bound;
                });
            bound = std::max(bound, static_cast<double>(gains[i]) / cost);
          }
        });

    // Deterministic reduction in pool order.
    const MarchElement* best = nullptr;
    const ElementTrace* best_trace = nullptr;
    std::size_t best_gain = 0;
    double best_score = 0.0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      const std::size_t c = eligible[i];
      const std::size_t g = gains[i];
      if (g == 0) continue;
      const MarchElement& candidate = pool[c];
      const double score =
          static_cast<double>(g) / static_cast<double>(candidate.cost());
      const bool better =
          best == nullptr || score > best_score ||
          (score == best_score &&
           (g > best_gain ||
            (g == best_gain && candidate.cost() < best->cost())));
      if (better) {
        best = &candidate;
        best_trace = &pool_traces[c];
        best_gain = g;
        best_score = score;
      }
    }

    if (best == nullptr) {
      // No candidate helps from the current memory polarity.  Some faults
      // are only sensitizable from the complementary uniform value (e.g. a
      // non-transition w0 needs an all-0 memory), so bridge once by
      // flipping the polarity with a plain write element; report the faults
      // uncoverable (step d.i of Figure 5) only when bridging stalls too.
      if (stalls_in_a_row < 2 && current_final.has_value()) {
        const MarchElement bridge(AddressOrder::Up,
                                  {make_write(flip(*current_final))});
        test.append(bridge);
        engine.commit(bridge, compile_element_trace(bridge));
        current_final = flip(*current_final);
        ++stalls_in_a_row;
        ++stats.greedy_rounds;
        stats.log.push_back("stalled; bridging polarity with " +
                            bridge.to_string());
        continue;
      }
      uncoverable = engine.undetected_fault_indices();
      engine.exclude_faults(uncoverable);
      stats.log.push_back("stalled twice; reporting " +
                          std::to_string(uncoverable.size()) +
                          " faults uncoverable");
      break;
    }

    stalls_in_a_row = 0;
    test.append(*best);
    engine.commit(*best, *best_trace);
    if (auto v = best->final_value()) current_final = v;
    ++stats.greedy_rounds;
    stats.log.push_back("appended " + best->to_string() + " (gain " +
                        std::to_string(best_gain) + ", " +
                        std::to_string(engine.undetected_instances()) +
                        " instances left)");
  }
  return uncoverable;
}

}  // namespace

GenerationResult generate_march_test(const FaultList& list,
                                     const GeneratorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  GenerationResult result;
  GenerationStats& stats = result.stats;
  auto last_lap = t0;
  const auto lap = [&](const char* phase, double* phase_seconds) {
    const auto now = std::chrono::steady_clock::now();
    if (phase_seconds != nullptr) {
      *phase_seconds = std::chrono::duration<double>(now - last_lap).count();
    }
    last_lap = now;
    stats.log.push_back(
        std::string(phase) + " done at t=" +
        std::to_string(std::chrono::duration<double>(now - t0).count()) +
        " s");
  };

  // The wait op only helps against retention faults; including it otherwise
  // would grow the candidate pool (and every gain scan) for nothing.
  const std::vector<MarchElement> pool = enumerate_march_elements(
      options.max_element_length, targets_retention(list));
  stats.candidate_pool = pool.size();

  // Shared gain-scan pool; the calling thread participates in every scan.
  ThreadPool workers(ThreadPool::resolve_thread_count(options.gain_threads) -
                     1);
  // Certification pool: spreads the surviving certify-size instances over
  // worker threads (items are independent; all reductions run in instance
  // order, so the generated test is identical for every thread count).
  ThreadPool cert_workers(
      ThreadPool::resolve_thread_count(options.certify_threads) - 1);

  // Seed: the canonical initialization element ⇕(w0).
  MarchTest test("generated", {MarchElement(AddressOrder::Any, {Op::W0})});

  // -- Phase A: greedy cover on the working memory ----------------------
  std::vector<FaultInstance> working = instantiate_all(
      list, options.working_memory_size, options.max_instances_per_fault);
  stats.working_instances = working.size();
  std::set<std::size_t> uncoverable;
  {
    PrefixEngine engine(options.working_memory_size, std::move(working),
                        test,
                        PrefixEngine::Options{options.both_power_on_states,
                                              /*record_checkpoints=*/false});
    stats.log.push_back("phase A: " +
                        std::to_string(engine.num_instances()) +
                        " instances at n=" +
                        std::to_string(options.working_memory_size));
    auto stalled = greedy_cover(engine, pool, test, options, workers, stats);
    uncoverable.insert(stalled.begin(), stalled.end());
  }
  lap("phase A (greedy)", &stats.phase_a_seconds);

  // -- Phase B: incremental certification loop (CEGIS) ------------------
  // The persistent engine simulates every certify-size instance to the end
  // of the phase-A test exactly once (this prep is the unavoidable first
  // full-prefix simulation; checkpoints are recorded for the phase-C
  // rewind).  Every later round only replays elements appended since the
  // previous sync, and instances detected under every scenario are dropped
  // permanently: march tests grow append-only within the CEGIS loop and
  // detection is sticky, so a dropped instance can never escape again.
  // Static prefilter: faults the symbolic analyzer proves the phase-A test
  // detects need no certification instances at all — the analyzer's definite
  // verdicts agree with both engines (the three-way fuzz contract), so their
  // full-prefix simulation is pure overhead.  Decoder-fault detection
  // depends on the memory size, which the minimizer (working at its own,
  // smaller n) does not re-establish, so decoder faults are only deferred
  // when no minimizer can edit the test afterwards; cell-fault detection
  // depends only on relative cell order and survives minimization.
  std::vector<std::uint8_t> static_resolved(fault_count(list), 0);
  const AnalysisOptions analysis_options{options.both_power_on_states};
  if (options.static_prefilter) {
    const auto sp0 = std::chrono::steady_clock::now();
    const StaticCoverage pre = analyze_coverage(
        test, list, options.certify_memory_size, analysis_options);
    const std::size_t cell_faults = list.simple.size() + list.linked.size();
    for (const StaticCoverageEntry& entry : pre.entries) {
      if (entry.verdict != StaticVerdict::Detected) continue;
      if (entry.fault_index >= cell_faults && options.minimize) continue;
      if (uncoverable.count(entry.fault_index) > 0) continue;
      static_resolved[entry.fault_index] = 1;
      ++stats.static_resolved_faults;
    }
    stats.static_seconds += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - sp0).count();
    stats.log.push_back("static prefilter resolved " +
                        std::to_string(stats.static_resolved_faults) +
                        " faults before certification");
  }

  std::vector<FaultInstance> cert_instances;
  std::vector<std::uint8_t> instantiable(fault_count(list), 0);
  for (FaultInstance& instance : instantiate_all(
           list, options.certify_memory_size,
           options.max_instances_per_fault)) {
    ++stats.certify_instances;
    instantiable[instance.fault_index] = 1;
    // Faults phase A already reported uncoverable are out of scope — skip
    // them before paying their full-prefix simulation.
    if (uncoverable.count(instance.fault_index) > 0) continue;
    if (static_resolved[instance.fault_index] != 0) {
      ++stats.static_skipped_instances;
      continue;
    }
    cert_instances.push_back(std::move(instance));
  }
  // Faults with no instance at the certify size cannot be certified there
  // at all (e.g. a decoder fault on an address line the certify memory does
  // not have, 2^bit >= n): report them out of scope instead of letting the
  // final coverage report silently fail on them.
  for (std::size_t f = 0; f < instantiable.size(); ++f) {
    if (instantiable[f] == 0 && uncoverable.count(f) == 0) {
      uncoverable.insert(f);
      stats.log.push_back(
          "fault '" + fault_name(list, f) + "' has no instances at n=" +
          std::to_string(options.certify_memory_size) +
          "; out of certification scope");
    }
  }
  PrefixEngine cert_engine(
      options.certify_memory_size, std::move(cert_instances), test,
      PrefixEngine::Options{options.both_power_on_states,
                            /*record_checkpoints=*/options.minimize},
      &cert_workers);
  lap("phase B prep (persistent certify state)", &stats.cert_prep_seconds);

  auto certify_and_extend = [&]() {
    for (std::size_t iter = 0; iter < options.max_certify_iterations; ++iter) {
      // Replay the suffix appended since the last sync (a no-op on the
      // first round after prep) and scan the survivors.
      cert_engine.advance(test, &cert_workers);
      const std::size_t missed = cert_engine.undetected_instances();
      if (missed == 0) return;
      ++stats.certify_iterations;
      stats.log.push_back(
          "certification found " + std::to_string(missed) +
          " escaped instances at n=" +
          std::to_string(options.certify_memory_size) + " (" +
          std::to_string(cert_engine.dropped_instances()) +
          " instances dropped)");
      // Extend greedily from the persistent lane state: the scratch clone
      // holds exactly the escaped instances, already simulated to the end
      // of the test — no from-scratch rebuild.
      PrefixEngine scratch = cert_engine.clone_undetected();
      auto stalled =
          greedy_cover(scratch, pool, test, options, workers, stats);
      uncoverable.insert(stalled.begin(), stalled.end());
      cert_engine.exclude_faults(uncoverable);
    }
  };
  certify_and_extend();
  lap("phase B (certification)", &stats.phase_b_seconds);

  // -- Phase C: redundancy elimination ----------------------------------
  stats.complexity_before_minimize = test.complexity();
  if (options.minimize) {
    const FaultSimulator min_sim(SimulatorOptions{
        options.minimize_memory_size, options.both_power_on_states, 10});
    std::vector<FaultInstance> min_instances;
    for (FaultInstance& instance :
         instantiate_all(list, options.minimize_memory_size,
                         options.max_instances_per_fault)) {
      if (uncoverable.count(instance.fault_index) == 0) {
        min_instances.push_back(std::move(instance));
      }
    }
    // Rejected removals dominate the minimizer's cost and bail out at the
    // first surviving instance; scan the binding constraints (the largest,
    // last-enumerated faults) first.
    std::stable_sort(min_instances.begin(), min_instances.end(),
                     [](const FaultInstance& x, const FaultInstance& y) {
                       return x.fault_index > y.fault_index;
                     });
    MinimizeStats min_stats;
    test = minimize_test(min_sim, test, min_instances, &stats.log,
                         &min_stats);
    stats.minimize_trials = min_stats.trials;
    stats.minimize_element_replays = min_stats.element_replays;
    lap("phase C (minimizer)", &stats.phase_c_seconds);
    // Re-certify the minimized test.  The persistent engine rewinds to the
    // checkpoint at the longest prefix the minimizer left untouched and
    // replays only the remainder; instances detected within that prefix
    // stay dropped.
    certify_and_extend();  // a removal may only matter at certify size
    lap("phase B2 (re-certification)", &stats.phase_b2_seconds);

    // Post-minimize re-check of the prefilter: re-derive every deferred
    // fault's verdict on the minimized test.  Cell-fault detection is
    // order-relative, so a minimizer that preserved detection at its own
    // size preserved it here too and this never fires in practice — but if
    // a deferred fault did lose its static Detected, certify it the
    // ordinary way (and extend the test if instances really escape).
    if (stats.static_resolved_faults > 0) {
      const auto sp0 = std::chrono::steady_clock::now();
      const StaticCoverage post = analyze_coverage(
          test, list, options.certify_memory_size, analysis_options);
      std::set<std::size_t> lost;
      for (const StaticCoverageEntry& entry : post.entries) {
        if (static_resolved[entry.fault_index] == 0) continue;
        if (entry.verdict == StaticVerdict::Detected) continue;
        lost.insert(entry.fault_index);
      }
      stats.static_seconds += std::chrono::duration<double>(
          std::chrono::steady_clock::now() - sp0).count();
      if (!lost.empty()) {
        stats.log.push_back("static re-check: " +
                            std::to_string(lost.size()) +
                            " deferred faults lost their Detected verdict; "
                            "re-certifying");
        std::vector<FaultInstance> lost_instances;
        for (FaultInstance& instance : instantiate_all(
                 list, options.certify_memory_size,
                 options.max_instances_per_fault)) {
          if (lost.count(instance.fault_index) > 0) {
            lost_instances.push_back(std::move(instance));
          }
        }
        PrefixEngine lost_engine(
            options.certify_memory_size, std::move(lost_instances), test,
            PrefixEngine::Options{options.both_power_on_states,
                                  /*record_checkpoints=*/false},
            &cert_workers);
        auto stalled =
            greedy_cover(lost_engine, pool, test, options, workers, stats);
        uncoverable.insert(stalled.begin(), stalled.end());
      }
    }
  }
  stats.instances_dropped = cert_engine.dropped_instances();

  // -- Final report ------------------------------------------------------
  const FaultSimulator cert_sim(SimulatorOptions{
      options.certify_memory_size, options.both_power_on_states, 10});
  result.certification = evaluate_coverage(cert_sim, test, list,
                                           options.max_instances_per_fault);
  result.full_coverage = true;
  for (const CoverageEntry& entry : result.certification.entries) {
    if (uncoverable.count(entry.fault_index) > 0) continue;
    if (!entry.covered) result.full_coverage = false;
  }
  for (std::size_t index : uncoverable) {
    result.uncoverable.push_back(fault_name(list, index));
  }
  test.set_name("Generated(" + list.name + ")");
  result.test = std::move(test);
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace mtg
