// Suite-optimization certificates ('certificate v1'): machine-checkable
// proofs that a greedy minimal sub-suite preserves the full suite's union
// static coverage over a fault universe.
//
// `mtg_cli optimize` emits one; `mtg_cli verify` re-checks it against the
// PACKED SIMULATION ENGINE — the certificate is produced by the symbolic
// analyzer but never trusted on its own word, the same
// prove-then-cross-check discipline as the static == packed == scalar fuzz
// harness.
//
// Grammar (record per line; blank lines and full-line '#' comments ignored):
//
//   file      := header universe listhash n keep* (drop cover*)*
//   header    := 'certificate v1'
//   universe  := 'universe' '"' spec '"'     (FaultUniverse spec; "" when the
//                                            universe was an external list)
//   listhash  := 'list-hash' hex64           (stable_hash of the universe)
//   n         := 'n' int                     (memory size of every verdict)
//   keep      := 'keep' '"' name '"' notation
//   drop      := 'drop' '"' name '"' notation
//   cover     := 'cover' int '"' fault '"' 'by' '"' kept-name '"'
//
// Each cover row belongs to the drop record above it: it names one fault
// the dropped test detects and the kept test that also detects it.  A
// certificate is therefore self-contained modulo the universe — the kept
// and dropped tests are embedded as full notation, and the universe is
// either re-derivable from its spec or pinned by content hash.
//
// The writer is to_canonical_string(); parse(write(x)) == x exactly (names
// included), the PR 7 catalog-format contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "analysis/subsumption.hpp"
#include "format/suite_text.hpp"
#include "march/march_test.hpp"

namespace mtg {

/// One witness row: the dropped test detects `fault_name`; so does
/// `kept_test`.
struct CertificateCover {
  std::size_t fault_index = 0;  ///< index in the materialized universe
  std::string fault_name;
  std::string kept_test;

  friend bool operator==(const CertificateCover& x, const CertificateCover& y) {
    return x.fault_index == y.fault_index && x.fault_name == y.fault_name &&
           x.kept_test == y.kept_test;
  }
  friend bool operator!=(const CertificateCover& x, const CertificateCover& y) {
    return !(x == y);
  }
};

struct CertificateDrop {
  MarchTest test;
  std::vector<CertificateCover> covers;  ///< one row per fault it detects

  friend bool operator==(const CertificateDrop& x, const CertificateDrop& y) {
    return x.test == y.test && x.test.name() == y.test.name() &&
           x.covers == y.covers;
  }
  friend bool operator!=(const CertificateDrop& x, const CertificateDrop& y) {
    return !(x == y);
  }
};

struct Certificate {
  std::string universe_spec;    ///< parseable FaultUniverse spec, or ""
  std::uint64_t list_hash = 0;  ///< stable_hash of the materialized universe
  std::size_t memory_size = 6;
  std::vector<MarchTest> kept;  ///< suite order
  std::vector<CertificateDrop> dropped;

  /// Round-trip equality: names included (MarchTest::operator== alone
  /// ignores them, but a certificate's covers reference tests by name).
  friend bool operator==(const Certificate& x, const Certificate& y);
  friend bool operator!=(const Certificate& x, const Certificate& y) {
    return !(x == y);
  }
};

/// Canonical serialization; parse_certificate_text(to_canonical_string(c))
/// == c.  Throws mtg::Error on names containing newlines or '"'-quoting
/// surprises the suite format also rejects.
std::string to_canonical_string(const Certificate& cert);

/// Parses 'certificate v1'.  Throws mtg::ParseError (line:column-annotated)
/// on malformed input, records out of canonical order, or a cover row
/// before the first drop.
Certificate parse_certificate_text(std::string_view text,
                                   const std::string& source = "<string>");

/// read_text_file + parse_certificate_text with the path as source name.
Certificate load_certificate_file(const std::string& path);

/// Greedy minimal sub-suite preserving the suite's union static coverage
/// over `universe` at memory size n, with per-removed-test witnesses.
/// `universe_spec` is embedded verbatim (pass FaultUniverse::spec(), or ""
/// for an external list).  Throws mtg::Error when any (test, fault) verdict
/// comes back Unknown (the certificate would not be checkable), on empty or
/// duplicate test names, or on an empty suite.
Certificate optimize_suite(const MarchSuite& suite, const FaultList& universe,
                           const std::string& universe_spec, std::size_t n,
                           const AnalysisOptions& options = {});

/// Outcome of re-checking a certificate against the packed engine.
struct CertificateCheck {
  bool ok = true;
  std::vector<std::string> problems;   ///< empty iff ok
  std::size_t faults_checked = 0;      ///< covered-fault witnesses re-proved
  std::size_t reports_evaluated = 0;   ///< packed evaluate_coverage runs

  std::string summary() const;
};

/// Re-verifies `cert` against the packed engine: the universe hash matches,
/// every fault a dropped test covers (full enumeration, cap 0) has a cover
/// row, and every cover row names a kept test that the packed engine agrees
/// covers that fault.  Never throws on a bad certificate — problems are
/// collected; engine-level failures (an invalid embedded test) become
/// problems too.
CertificateCheck verify_certificate(const Certificate& cert,
                                    const FaultList& universe);

}  // namespace mtg
