// Execution tracing: op-by-op replay of a march test against a fault
// instance, recording both machines' states, fault firings and the first
// detection.  This is the diagnostic side of the fault simulator — the tool
// an engineer reaches for to understand *why* a fault escapes a test
// (e.g. to watch the masking of Figure 1 happen step by step).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {

/// One traced memory operation.
struct TraceStep {
  std::size_t element_index = 0;
  std::size_t address = 0;
  std::size_t op_index = 0;
  Op op = Op::R;
  std::string good_state;    ///< fault-free memory after the operation
  std::string faulty_state;  ///< faulty memory after the operation
  bool fired = false;        ///< some bound FP fired during this operation
  bool mismatch = false;     ///< a read returned a wrong value here

  std::string to_string() const;
};

struct Trace {
  MarchTest test;
  std::string instance;         ///< description of the traced fault instance
  Bit power_on = Bit::Zero;
  std::vector<TraceStep> steps;
  bool detected = false;
  std::size_t first_mismatch = 0;  ///< index into steps (valid iff detected)
  std::size_t total_fires = 0;

  /// Multi-line rendering; `only_interesting` keeps firings/mismatches and
  /// their immediate context instead of every operation.
  std::string to_string(bool only_interesting = false) const;
};

std::ostream& operator<<(std::ostream& os, const Trace& trace);

/// Replays `test` (with every ⇕ element resolved by `any_order_mask`, bit i
/// = 1 meaning the i-th ⇕ element runs Down) on an `n`-cell memory holding
/// `power_on` everywhere, with `instance` injected.
Trace trace_run(const MarchTest& test, const FaultInstance& instance,
                std::size_t n, Bit power_on, std::size_t any_order_mask = 0);

}  // namespace mtg
