#include "common/packed_bits.hpp"

#include <ostream>

#include "common/bit.hpp"
#include "common/error.hpp"

namespace mtg {

PackedBits::PackedBits(std::size_t num_bits)
    : words_((num_bits + 63) / 64, 0), num_bits_(num_bits) {}

std::uint64_t PackedBits::last_word_mask() const noexcept {
  const std::size_t tail = num_bits_ % 64;
  return tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
}

bool PackedBits::get(std::size_t bit) const {
  require(bit < num_bits_, "PackedBits::get: bit index out of range");
  return ((words_[bit / 64] >> (bit % 64)) & 1u) != 0;
}

void PackedBits::set(std::size_t bit, bool value) {
  require(bit < num_bits_, "PackedBits::set: bit index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  if (value) {
    words_[bit / 64] |= mask;
  } else {
    words_[bit / 64] &= ~mask;
  }
}

void PackedBits::fill(bool value) {
  if (words_.empty()) return;
  const std::uint64_t pattern = value ? ~std::uint64_t{0} : 0;
  for (std::uint64_t& word : words_) word = pattern;
  words_.back() &= last_word_mask();
}

std::uint64_t PackedBits::word(std::size_t index) const {
  require(index < words_.size(), "PackedBits::word: word index out of range");
  return words_[index];
}

void PackedBits::set_word(std::size_t index, std::uint64_t bits) {
  require(index < words_.size(),
          "PackedBits::set_word: word index out of range");
  if (index == words_.size() - 1) {
    require((bits & ~last_word_mask()) == 0,
            "PackedBits::set_word: bits beyond size() must be zero");
  }
  words_[index] = bits;
}

std::size_t PackedBits::popcount() const noexcept {
  std::size_t count = 0;
  for (const std::uint64_t word : words_) count += popcount64(word);
  return count;
}

bool PackedBits::none() const noexcept {
  for (const std::uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

std::string PackedBits::to_string() const {
  std::string out(num_bits_, '0');
  for (std::size_t i = 0; i < num_bits_; ++i) {
    if (get(i)) out[i] = '1';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const PackedBits& bits) {
  return os << bits.to_string();
}

}  // namespace mtg
