#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "memory/pattern_graph.hpp"

namespace mtg {
namespace {

GeneratorOptions fast_options() {
  GeneratorOptions options;
  options.working_memory_size = 4;
  options.certify_memory_size = 5;
  options.minimize_memory_size = 4;
  options.max_element_length = 5;
  return options;
}

TEST(Generator, CoversFaultListTwoBelowPublishedComplexity) {
  const GenerationResult result = generate_march_test(fault_list_2());
  EXPECT_TRUE(result.full_coverage);
  EXPECT_TRUE(result.uncoverable.empty());
  EXPECT_TRUE(result.certification.full_coverage());
  // Table 1: March ABL1 is 9n and March LF1 is 11n; the generator must do
  // at least as well.
  EXPECT_LE(result.test.complexity(), march_abl1().complexity());
  EXPECT_EQ(result.test.consistency_violation(), "");
  EXPECT_GT(result.stats.candidate_pool, 0u);
  EXPECT_GT(result.stats.greedy_rounds, 0u);
}

TEST(Generator, GeneratedTestIsIndependentlyValid) {
  const GenerationResult result = generate_march_test(fault_list_2());
  const FaultSimulator simulator(SimulatorOptions{6, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, result.test, fault_list_2());
  EXPECT_TRUE(report.full_coverage());
}

TEST(Generator, Deterministic) {
  const GenerationResult a = generate_march_test(fault_list_2());
  const GenerationResult b = generate_march_test(fault_list_2());
  EXPECT_EQ(a.test, b.test);
}

TEST(Generator, GainScanThreadCountDoesNotChangeTheTest) {
  // The parallel gain scan must keep generated tests identical for every
  // worker count: per-worker pruning only abandons candidates that cannot
  // win and the reduction runs in pool order.
  GeneratorOptions sequential = fast_options();
  sequential.gain_threads = 1;
  const GenerationResult reference =
      generate_march_test(fault_list_2(), sequential);
  for (std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    GeneratorOptions options = fast_options();
    options.gain_threads = threads;
    const GenerationResult result = generate_march_test(fault_list_2(), options);
    EXPECT_EQ(reference.test, result.test) << "gain_threads=" << threads;
    EXPECT_EQ(reference.stats.greedy_rounds, result.stats.greedy_rounds);
  }
}

TEST(Generator, CoversTheRunningExampleList) {
  FaultList list;
  list.name = "paper running example";
  list.linked.push_back(disturb_coupling_linked_fault());
  const GenerationResult result = generate_march_test(list, fast_options());
  EXPECT_TRUE(result.full_coverage);
  EXPECT_LE(result.test.complexity(), 6u);
}

TEST(Generator, CoversSimpleStaticFaults) {
  // The unlinked static fault space (March SS territory, 22n published).
  const GenerationResult result =
      generate_march_test(standard_simple_static_faults(), fast_options());
  EXPECT_TRUE(result.full_coverage);
  EXPECT_LE(result.test.complexity(), march_ss().complexity());
}

TEST(Generator, MinimizeOptionControlsRedundancyElimination) {
  GeneratorOptions no_minimize = fast_options();
  no_minimize.minimize = false;
  const GenerationResult raw = generate_march_test(fault_list_2(), no_minimize);
  const GenerationResult minimized =
      generate_march_test(fault_list_2(), fast_options());
  EXPECT_LE(minimized.test.complexity(), raw.test.complexity());
  EXPECT_EQ(raw.stats.complexity_before_minimize, raw.test.complexity());
}

TEST(Generator, PolarityBridgeCoversSameSensitizerThreeCellFaults) {
  // Regression: CFds<0w0;0>→CFds<0w0;1> needs an all-0 non-transition w0;
  // when the greedy reaches this fault with the memory at 1 it must bridge
  // the polarity instead of reporting the fault uncoverable.
  const FaultPrimitive f_a =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W0, Bit::Zero);
  const FaultPrimitive f_b =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W0, Bit::One);
  FaultList list;
  list.name = "same-sensitizer LF3";
  list.linked.emplace_back(f_a, f_b, LinkedLayout::three_cell(1, 0, 2));
  list.linked.emplace_back(f_b, f_a, LinkedLayout::three_cell(0, 1, 2));
  const GenerationResult result = generate_march_test(list, fast_options());
  EXPECT_TRUE(result.full_coverage);
  EXPECT_TRUE(result.uncoverable.empty());
}

TEST(Generator, HonorsSinglePowerOnState) {
  // With both_power_on_states = false the greedy engine, certification and
  // minimizer all require detection from the all-0 power-on only.
  GeneratorOptions single = fast_options();
  single.both_power_on_states = false;
  const GenerationResult result = generate_march_test(fault_list_2(), single);
  EXPECT_TRUE(result.full_coverage);
  EXPECT_TRUE(result.uncoverable.empty());
  // The single-polarity test certifies under a single-polarity simulator.
  SimulatorOptions sim_options;
  sim_options.memory_size = 6;
  sim_options.both_power_on_states = false;
  const CoverageReport report = evaluate_coverage(
      FaultSimulator(sim_options), result.test, fault_list_2());
  EXPECT_TRUE(report.full_coverage());
}

TEST(Generator, StaticPrefilterDoesNotChangeTheGeneratedTest) {
  // The prefilter only removes certification work the symbolic analyzer
  // already discharged — never instances that could escape and extend the
  // test — so generation must be byte-identical with it on or off, for a
  // minimized and an unminimized pipeline alike.
  for (const bool minimize : {true, false}) {
    GeneratorOptions off;
    off.minimize = minimize;
    off.static_prefilter = false;
    GeneratorOptions on = off;
    on.static_prefilter = true;
    const GenerationResult reference = generate_march_test(fault_list_2(), off);
    const GenerationResult filtered = generate_march_test(fault_list_2(), on);
    EXPECT_EQ(reference.test, filtered.test) << "minimize=" << minimize;
    EXPECT_EQ(reference.full_coverage, filtered.full_coverage);
    EXPECT_EQ(reference.uncoverable, filtered.uncoverable);
    EXPECT_EQ(reference.stats.certify_instances,
              filtered.stats.certify_instances);
    EXPECT_EQ(reference.stats.static_skipped_instances, 0u);
    // Phase A covers list 2 outright, so the analyzer discharges faults —
    // all of them when no minimizer needs the decoder faults re-checked.
    EXPECT_GT(filtered.stats.static_resolved_faults, 0u)
        << "minimize=" << minimize;
    EXPECT_GT(filtered.stats.static_skipped_instances, 0u)
        << "minimize=" << minimize;
  }
}

TEST(Generator, StatsArepopulated) {
  const GenerationResult result =
      generate_march_test(fault_list_2(), fast_options());
  EXPECT_GT(result.stats.elapsed_seconds, 0.0);
  EXPECT_GT(result.stats.working_instances, 0u);
  EXPECT_GT(result.stats.certify_instances, 0u);
  EXPECT_FALSE(result.stats.log.empty());
  EXPECT_NE(result.test.name().find("Fault List #2"), std::string::npos);
}

}  // namespace
}  // namespace mtg
