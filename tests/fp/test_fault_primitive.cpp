#include "fp/fault_primitive.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(FaultPrimitive, SingleCellTaxonomy) {
  EXPECT_EQ(FaultPrimitive::sf(Bit::Zero).classify(), FpClass::SF);
  EXPECT_EQ(FaultPrimitive::tf(Bit::Zero).classify(), FpClass::TF);
  EXPECT_EQ(FaultPrimitive::wdf(Bit::Zero).classify(), FpClass::WDF);
  EXPECT_EQ(FaultPrimitive::rdf(Bit::Zero).classify(), FpClass::RDF);
  EXPECT_EQ(FaultPrimitive::drdf(Bit::Zero).classify(), FpClass::DRDF);
  EXPECT_EQ(FaultPrimitive::irf(Bit::Zero).classify(), FpClass::IRF);
}

TEST(FaultPrimitive, TwoCellTaxonomy) {
  EXPECT_EQ(FaultPrimitive::cfst(Bit::Zero, Bit::One).classify(), FpClass::CFst);
  EXPECT_EQ(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero).classify(),
            FpClass::CFds);
  EXPECT_EQ(FaultPrimitive::cftr(Bit::One, Bit::Zero).classify(), FpClass::CFtr);
  EXPECT_EQ(FaultPrimitive::cfwd(Bit::One, Bit::Zero).classify(), FpClass::CFwd);
  EXPECT_EQ(FaultPrimitive::cfrd(Bit::One, Bit::Zero).classify(), FpClass::CFrd);
  EXPECT_EQ(FaultPrimitive::cfdr(Bit::One, Bit::Zero).classify(), FpClass::CFdr);
  EXPECT_EQ(FaultPrimitive::cfir(Bit::One, Bit::Zero).classify(), FpClass::CFir);
}

TEST(FaultPrimitive, NotationMatchesPaperExamples) {
  // The paper's running example FP = <0w1;0/1/->.
  const FaultPrimitive cfds =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);
  EXPECT_EQ(cfds.notation(), "<0w1;0/1/->");
  // Disturb coupling fault FP2 of Equation 6: <0w1;1/0/->.
  EXPECT_EQ(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::One).notation(),
            "<0w1;1/0/->");
  EXPECT_EQ(FaultPrimitive::tf(Bit::Zero).notation(), "<0w1/0/->");
  EXPECT_EQ(FaultPrimitive::rdf(Bit::One).notation(), "<1r1/0/0>");
  EXPECT_EQ(FaultPrimitive::drdf(Bit::Zero).notation(), "<0r0/1/0>");
  EXPECT_EQ(FaultPrimitive::irf(Bit::Zero).notation(), "<0r0/0/1>");
  EXPECT_EQ(FaultPrimitive::sf(Bit::One).notation(), "<1/0/->");
}

TEST(FaultPrimitive, Names) {
  EXPECT_EQ(FaultPrimitive::tf(Bit::Zero).name(), "TF↑");
  EXPECT_EQ(FaultPrimitive::tf(Bit::One).name(), "TF↓");
  EXPECT_EQ(FaultPrimitive::wdf(Bit::One).name(), "WDF1");
  EXPECT_EQ(FaultPrimitive::cfds(Bit::Zero, SenseOp::Rd, Bit::One).name(),
            "CFds<0r0;1>");
}

TEST(FaultPrimitive, ImmediateDetection) {
  // RDF/IRF (and CFrd/CFir) return a wrong value when sensitized.
  EXPECT_TRUE(FaultPrimitive::rdf(Bit::Zero).is_immediately_detecting());
  EXPECT_TRUE(FaultPrimitive::irf(Bit::One).is_immediately_detecting());
  EXPECT_TRUE(
      FaultPrimitive::cfrd(Bit::Zero, Bit::One).is_immediately_detecting());
  EXPECT_TRUE(
      FaultPrimitive::cfir(Bit::One, Bit::Zero).is_immediately_detecting());
  // DRDF/CFdr return the correct value (deceptive) — not immediate.
  EXPECT_FALSE(FaultPrimitive::drdf(Bit::Zero).is_immediately_detecting());
  EXPECT_FALSE(
      FaultPrimitive::cfdr(Bit::Zero, Bit::One).is_immediately_detecting());
  EXPECT_FALSE(FaultPrimitive::tf(Bit::Zero).is_immediately_detecting());
  EXPECT_FALSE(FaultPrimitive::sf(Bit::Zero).is_immediately_detecting());
}

TEST(FaultPrimitive, GoodFinalVictimValue) {
  EXPECT_EQ(FaultPrimitive::tf(Bit::Zero).good_final_victim_value(), Bit::One);
  EXPECT_EQ(FaultPrimitive::wdf(Bit::One).good_final_victim_value(), Bit::One);
  EXPECT_EQ(FaultPrimitive::rdf(Bit::Zero).good_final_victim_value(), Bit::Zero);
  EXPECT_EQ(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::One)
                .good_final_victim_value(),
            Bit::One);
}

TEST(FaultPrimitive, StateFaultPredicate) {
  EXPECT_TRUE(FaultPrimitive::sf(Bit::Zero).is_state_fault());
  EXPECT_TRUE(FaultPrimitive::cfst(Bit::One, Bit::Zero).is_state_fault());
  EXPECT_FALSE(FaultPrimitive::tf(Bit::Zero).is_state_fault());
  EXPECT_FALSE(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::Rd, Bit::One).is_state_fault());
}

TEST(FaultPrimitive, AggressorAccessorGuards) {
  EXPECT_THROW(FaultPrimitive::tf(Bit::Zero).a_state(), Error);
  EXPECT_EQ(FaultPrimitive::cfst(Bit::One, Bit::Zero).a_state(), Bit::One);
}

TEST(FaultPrimitive, RejectsNonDeviatingBehaviour) {
  // "write 1 onto 0 gives 1" is fault-free — not a fault primitive.
  EXPECT_THROW(
      FaultPrimitive::single(Bit::Zero, SenseOp::W1, Bit::One), Error);
  // A read returning the stored value with unchanged state is fault-free.
  EXPECT_THROW(
      FaultPrimitive::single(Bit::Zero, SenseOp::Rd, Bit::Zero, Tri::Zero),
      Error);
}

TEST(FaultPrimitive, RejectsReadResultWithoutVictimRead) {
  EXPECT_THROW(
      FaultPrimitive::single(Bit::Zero, SenseOp::W1, Bit::Zero, Tri::One),
      Error);
  // A sensitizing read must specify R.
  EXPECT_THROW(FaultPrimitive::single(Bit::Zero, SenseOp::Rd, Bit::One), Error);
}

TEST(FaultPrimitive, RejectsTwoOperations) {
  EXPECT_THROW(FaultPrimitive::coupled(Bit::Zero, SenseOp::W1, Bit::Zero,
                                       SenseOp::W0, Bit::One),
               Error);
}

TEST(FaultPrimitive, EqualityAndOrdering) {
  const FaultPrimitive a = FaultPrimitive::tf(Bit::Zero);
  const FaultPrimitive b = FaultPrimitive::tf(Bit::Zero);
  const FaultPrimitive c = FaultPrimitive::tf(Bit::One);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

}  // namespace
}  // namespace mtg
