// Regenerates Table 1 of the paper: automatic march test generation for
// Fault List #1 (single-, two- and three-cell static linked faults) and
// Fault List #2 (single-cell static linked faults), with CPU time,
// complexity, and test-length improvement over the published baselines
// (43n Al-Harbi/Gupta, 41n March SL, 11n March LF1).
//
// The absolute CPU time depends on the host and on the size of the
// reconstructed fault lists (ours enumerate the complete Definition-7
// space); the *shape* to check against the paper is: generated tests reach
// 100% coverage with lower complexity than every published baseline, in
// seconds of CPU time.
#include <cstdio>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

namespace {

double reduction_percent(std::size_t baseline, std::size_t ours) {
  return 100.0 * (static_cast<double>(baseline) - static_cast<double>(ours)) /
         static_cast<double>(baseline);
}

void print_row(const char* name, const char* list, double cpu_seconds,
               std::size_t complexity, double coverage, double vs43,
               double vs41, double vs11) {
  std::printf("%-22s %-8s %8.2f %6zun  %7.2f%%", name, list, cpu_seconds,
              complexity, coverage);
  if (vs43 >= -999) std::printf("  %6.1f%%", vs43); else std::printf("      - ");
  if (vs41 >= -999) std::printf("  %6.1f%%", vs41); else std::printf("      - ");
  if (vs11 >= -999) std::printf("  %6.1f%%", vs11); else std::printf("      - ");
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mtg;

  std::printf("Table 1 — Automatic march test generation for static linked faults\n");
  std::printf("%-22s %-8s %9s %7s %9s %8s %8s %8s\n", "March Test", "List",
              "CPU(s)", "O(n)", "coverage", "vs 43n", "vs 41nSL", "vs 11nLF1");
  std::printf("%s\n", std::string(88, '-').c_str());

  // --- Fault List #1 ----------------------------------------------------
  {
    const FaultList list1 = fault_list_1();
    const GenerationResult result = generate_march_test(list1);
    print_row("generated (List #1)", "#1", result.stats.elapsed_seconds,
              result.test.complexity(),
              result.certification.fault_coverage_percent(),
              reduction_percent(kAlHarbiGupta43nComplexity,
                                result.test.complexity()),
              reduction_percent(march_sl().complexity(),
                                result.test.complexity()),
              -1000);
    std::printf("  %s\n", result.test.to_string().c_str());

    // Published rows, re-simulated on the same reconstructed list.
    const FaultSimulator simulator;
    for (const MarchTest& test : {march_abl(), march_rabl(), march_sl()}) {
      const CoverageReport report = evaluate_coverage(simulator, test, list1);
      print_row(test.name().c_str(), "#1", 0.0, test.complexity(),
                report.fault_coverage_percent(),
                reduction_percent(kAlHarbiGupta43nComplexity,
                                  test.complexity()),
                reduction_percent(march_sl().complexity(), test.complexity()),
                -1000);
    }
  }

  // --- Fault List #2 ----------------------------------------------------
  {
    const FaultList list2 = fault_list_2();
    const GenerationResult result = generate_march_test(list2);
    print_row("generated (List #2)", "#2", result.stats.elapsed_seconds,
              result.test.complexity(),
              result.certification.fault_coverage_percent(), -1000, -1000,
              reduction_percent(march_lf1().complexity(),
                                result.test.complexity()));
    std::printf("  %s\n", result.test.to_string().c_str());

    const FaultSimulator simulator;
    for (const MarchTest& test : {march_abl1(), march_lf1()}) {
      const CoverageReport report = evaluate_coverage(simulator, test, list2);
      print_row(test.name().c_str(), "#2", 0.0, test.complexity(),
                report.fault_coverage_percent(), -1000, -1000,
                reduction_percent(march_lf1().complexity(),
                                  test.complexity()));
    }
  }

  std::printf(
      "\nPaper's Table 1 for reference: ABL 37n (1.03 s, 13.9%% vs 43n, "
      "9.7%% vs 41n), RABL 35n (1.35 s, 18.6%%, 14.6%%), ABL1 9n (0.98 s, "
      "18.1%% vs 11n LF1).\n");
  return 0;
}
