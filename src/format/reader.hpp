// Line-oriented reader underlying the catalog text formats (fault lists and
// march-test suites).
//
// The formats are record-per-line: the reader walks significant lines (blank
// lines and full-line '#' comments skipped, CRLF tolerated, surrounding
// whitespace trimmed) and threads the 1-based line number through every
// record parser, so each diagnostic lands as "<source>:<line>:<column>:
// <message>" with the offending line excerpted — the mwlinkermap idiom of a
// line-number-threaded reader with one pattern per record type.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/text_position.hpp"

namespace mtg {

/// Walks the significant lines of a catalog document.
class LineReader {
 public:
  /// `source` names the document in diagnostics (a file path, or e.g.
  /// "<string>" for in-memory input).
  LineReader(std::string_view text, std::string source);

  /// Advances to the next significant line; false at end of input.
  bool next();

  /// The current line, trimmed (valid after next() returned true).
  std::string_view line() const noexcept { return line_; }
  /// 1-based line number of the current line in the document.
  std::size_t line_number() const noexcept { return line_number_; }
  /// 1-based column of the first trimmed byte of line() in the raw line.
  std::size_t line_indent() const noexcept { return indent_; }
  const std::string& source() const noexcept { return source_; }

  /// Throws ParseError at `column` (1-based, within the *trimmed* line) of
  /// the current line: "<source>:<line>:<col>: <detail>" plus the excerpt.
  [[noreturn]] void fail(std::size_t column, const std::string& detail) const;

  /// Throws ParseError at the current (end-of-input) position — for
  /// documents that end before a required record.
  [[noreturn]] void fail_at_end(const std::string& detail) const;

 private:
  std::string_view text_;
  std::string source_;
  std::size_t cursor_ = 0;       // start of the next unread raw line
  std::string_view line_;
  std::size_t line_number_ = 0;
  std::size_t indent_ = 1;
};

}  // namespace mtg
