#include "store/storage.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mtg {

namespace {

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// --- PosixStorage -----------------------------------------------------------

StoreStatus PosixStorage::open_dir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return StoreStatus::io_error("open_dir " + path + ": " + ec.message());
  }
  return StoreStatus::okay();
}

StoreStatus PosixStorage::read(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return StoreStatus::not_found_status("read " + path + ": no such file");
    }
    return StoreStatus::io_error(errno_message("read", path));
  }
  out.clear();
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return StoreStatus::io_error(errno_message("read", path));
  return StoreStatus::okay();
}

StoreStatus PosixStorage::write(const std::string& path, std::string_view data) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return StoreStatus::io_error(errno_message("write", path));
  }
  const std::size_t put = std::fwrite(data.data(), 1, data.size(), file);
  const bool failed = put != data.size() || std::fflush(file) != 0;
  std::fclose(file);
  if (failed) return StoreStatus::io_error(errno_message("write", path));
  return StoreStatus::okay();
}

StoreStatus PosixStorage::sync(const std::string& path) {
#if defined(_WIN32)
  (void)path;  // no fsync; write() already flushed stdio buffers
  return StoreStatus::okay();
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return StoreStatus::io_error(errno_message("sync", path));
  const bool failed = ::fsync(fd) != 0;
  ::close(fd);
  if (failed) return StoreStatus::io_error(errno_message("sync", path));
  return StoreStatus::okay();
#endif
}

StoreStatus PosixStorage::rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    if (errno == ENOENT) {
      return StoreStatus::not_found_status("rename " + from + ": no such file");
    }
    return StoreStatus::io_error(errno_message("rename", from + " -> " + to));
  }
  return StoreStatus::okay();
}

StoreStatus PosixStorage::remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return StoreStatus::not_found_status("remove " + path + ": no such file");
    }
    return StoreStatus::io_error(errno_message("remove", path));
  }
  return StoreStatus::okay();
}

// --- InMemoryStorage --------------------------------------------------------

StoreStatus InMemoryStorage::open_dir(const std::string&) {
  return StoreStatus::okay();  // directories are implicit in the path map
}

StoreStatus InMemoryStorage::read(const std::string& path, std::string& out) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return StoreStatus::not_found_status("read " + path + ": no such file");
  }
  out = it->second;
  return StoreStatus::okay();
}

StoreStatus InMemoryStorage::write(const std::string& path,
                                   std::string_view data) {
  files_[path] = std::string(data);
  return StoreStatus::okay();
}

StoreStatus InMemoryStorage::sync(const std::string& path) {
  if (files_.find(path) == files_.end()) {
    return StoreStatus::io_error("sync " + path + ": no such file");
  }
  return StoreStatus::okay();
}

StoreStatus InMemoryStorage::rename(const std::string& from,
                                    const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end()) {
    return StoreStatus::not_found_status("rename " + from + ": no such file");
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return StoreStatus::okay();
}

StoreStatus InMemoryStorage::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return StoreStatus::not_found_status("remove " + path + ": no such file");
  }
  return StoreStatus::okay();
}

}  // namespace mtg
