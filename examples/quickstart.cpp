// Quickstart: generate a march test for the single-cell static linked
// faults (the paper's Fault List #2) and verify it with the fault simulator.
#include <iostream>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

int main() {
  using namespace mtg;

  // 1. Build the target fault list.
  const FaultList list = fault_list_2();
  std::cout << "Target: " << list.name << " with " << list.size()
            << " linked faults\n";
  for (const LinkedFault& lf : list.linked) {
    std::cout << "  " << lf.name() << "  (" << lf.fp1().notation() << " -> "
              << lf.fp2().notation() << ")\n";
  }

  // 2. Generate a march test covering it.
  const GenerationResult result = generate_march_test(list);
  std::cout << "\nGenerated: " << result.test.to_string() << "\n"
            << "Complexity: " << result.test.complexity_label() << "\n"
            << "Generation time: " << result.stats.elapsed_seconds << " s\n";
  if (!result.uncoverable.empty()) {
    std::cout << "Reported uncoverable faults:\n";
    for (const std::string& name : result.uncoverable) {
      std::cout << "  " << name << "\n";
    }
  }

  // 3. Certification (independent fault simulation).
  std::cout << "\n" << result.certification.summary() << "\n";

  // 4. Compare with the published 11n March LF1.
  const FaultSimulator simulator;
  const CoverageReport lf1 = evaluate_coverage(simulator, march_lf1(), list);
  std::cout << "\nBaseline " << lf1.summary() << "\n";
  return 0;
}
