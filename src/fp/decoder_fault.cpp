#include "fp/decoder_fault.hpp"

#include <sstream>

#include "common/error.hpp"

namespace mtg {

std::string to_string(DecoderFaultClass cls) {
  switch (cls) {
    case DecoderFaultClass::NoAccess:
      return "AFna";
    case DecoderFaultClass::WrongCell:
      return "AFwc";
    case DecoderFaultClass::MultipleCells:
      return "AFmc";
    case DecoderFaultClass::MultipleAddresses:
      return "AFma";
  }
  return "AF?";
}

std::string DecoderFault::name() const {
  std::string out = to_string(cls);
  if (cls == DecoderFaultClass::MultipleCells) {
    out += wired == Bit::One ? "-or" : "-and";
  }
  out += "@b" + std::to_string(bit);
  return out;
}

BoundDecoder::BoundDecoder(DecoderFault f, std::size_t a, std::size_t v)
    : fault(f), a_cell(a), v_cell(v) {
  require(fault.bit < 63, "decoder fault: address bit out of range");
  if (fault.cls == DecoderFaultClass::NoAccess) {
    require(a_cell == v_cell,
            "a NoAccess decoder fault involves only the corrupted address");
  } else {
    require(v_cell == (a_cell ^ (std::size_t{1} << fault.bit)),
            "decoder fault: partner cell must differ from the corrupted "
            "address exactly in the broken bit");
  }
}

std::string BoundDecoder::to_string() const {
  std::ostringstream out;
  out << fault.name() << " a=" << a_cell;
  if (two_cell()) out << " v=" << v_cell;
  return out.str();
}

}  // namespace mtg
