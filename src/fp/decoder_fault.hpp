// Address-decoder fault models: faults whose sensitization depends on
// address *bits*, not just on the relative order of the involved cells.
//
// The classical decoder fault taxonomy (van de Goor) distinguishes four
// functional faults of the address decode logic:
//
//   * AFna — no access:        a certain address selects no cell;
//   * AFwc — wrong cell:       a certain address selects a different cell;
//   * AFmc — multiple cells:   a certain address selects several cells;
//   * AFma — multiple addrs:   a certain cell is selected by several
//                              addresses.
//
// We model each as the localized consequence of one broken address-decode
// line `bit`: the corrupted address a and its partner v = a XOR 2^bit are the
// only cells whose behaviour deviates.  Operational semantics, per class
// (ops addressed at any other cell behave normally):
//
//   * NoAccess          — ops addressed at `a` select no cell: writes and
//     waits are dropped; a read senses the floating data line, which couples
//     to the driver of the broken address line, so it returns *bit `bit` of
//     the applied address a*.  This read-back is a function of the absolute
//     address — the property that makes decoder faults incompatible with the
//     address-free instance collapsing of the prefix engine (see
//     PackedFaultSim::signature()).
//   * WrongCell         — ops addressed at `a` are redirected wholly to `v`:
//     reads at a return v's value, writes at a write v, and cell a itself is
//     frozen at its power-on content (it is never selected).
//   * MultipleCells     — ops addressed at `a` select both a and v: writes
//     write both cells; a read senses the two cells fighting on the data
//     line, modeled as wired-OR (`wired` = 1) or wired-AND (`wired` = 0).
//   * MultipleAddresses — only the *write* decode path of `a` is corrupted:
//     writes at a land on v (cell v is written through two addresses, a and
//     v), while reads at a still return cell a — which therefore exposes its
//     stale power-on content.
//
// Decoder fault instances carry no fault primitives: the deviation is in the
// addressing, not in the cell behaviour, and combining both in one instance
// is out of scope (FaultyMemory / PackedFaultSim enforce this).  Waits at
// the broken address are inert — retention decay is a cell-level FP effect
// and no retention FP can be bound to a decoder instance.
//
// Why coverage now depends on n: a decoder fault on address line `bit`
// exists only in memories that *have* that line (2^bit < n), so the fraction
// of decoder_fault_list() that is even instantiable — and hence coverable —
// grows with the memory size.  This is what bends the sweep_coverage curve
// that is provably flat for the cell-array fault library (march elements
// treat cells uniformly, so pure-FP detection depends only on relative
// order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bit.hpp"

namespace mtg {

/// The four classical address-decoder fault classes.
enum class DecoderFaultClass : std::uint8_t {
  NoAccess,           ///< AFna — the address selects no cell
  WrongCell,          ///< AFwc — the address selects the partner cell instead
  MultipleCells,      ///< AFmc — the address selects both cells
  MultipleAddresses,  ///< AFma — writes at the address land on the partner
};

std::string to_string(DecoderFaultClass cls);

/// One abstract decoder fault: a class plus the broken address-decode line.
struct DecoderFault {
  DecoderFaultClass cls = DecoderFaultClass::NoAccess;
  /// The broken address line: the corrupted address a pairs with
  /// v = a XOR 2^bit.  The fault is instantiable only when 2^bit < n.
  std::size_t bit = 0;
  /// MultipleCells only: the wired read-back of the two fighting cells —
  /// wired-OR when One, wired-AND when Zero.  Ignored by the other classes.
  Bit wired = Bit::Zero;

  /// Mnemonic, e.g. "AFna@b3", "AFmc-or@b0".
  std::string name() const;

  friend bool operator==(const DecoderFault& x, const DecoderFault& y) {
    return x.cls == y.cls && x.bit == y.bit && x.wired == y.wired;
  }
  friend bool operator!=(const DecoderFault& x, const DecoderFault& y) {
    return !(x == y);
  }
};

/// A decoder fault bound to concrete addresses: `a_cell` is the corrupted
/// address, `v_cell` its partner a XOR 2^bit (== a_cell for NoAccess, whose
/// deviation involves no second cell).  Construction validates the pairing.
struct BoundDecoder {
  DecoderFault fault;
  std::size_t a_cell = 0;
  std::size_t v_cell = 0;

  BoundDecoder(DecoderFault f, std::size_t a, std::size_t v);

  bool two_cell() const noexcept {
    return fault.cls != DecoderFaultClass::NoAccess;
  }

  /// NoAccess read-back: bit `fault.bit` of the applied address — the
  /// address-dependent value a floating read senses (see the file comment).
  Bit no_access_read_back() const noexcept {
    return ((a_cell >> fault.bit) & 1u) != 0 ? Bit::One : Bit::Zero;
  }

  std::string to_string() const;
};

}  // namespace mtg
