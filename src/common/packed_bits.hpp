// A multi-word bitset for memory snapshots of arbitrary size.
//
// MemoryState::packed_bits()/set_packed_bits used to pack the cell contents
// into a single uint64_t, which capped every snapshot consumer (FaultyMemory
// save/restore, and with it the scalar simulator oracle) at n <= 64 cells.
// PackedBits lifts that ceiling: it is a fixed-size sequence of 64-bit words
// holding one bit per cell, with the same bit numbering (bit i = cell i,
// bit i lives in word i/64 at position i%64).  Unused high bits of the last
// word are always zero, so whole-word comparison is value comparison.
//
// This is deliberately not std::vector<bool> (no word access, no guaranteed
// layout) and not std::bitset (size fixed at compile time): snapshot sizes
// are runtime values (the simulated memory size n), and consumers want word
// granularity for cheap save/restore and comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mtg {

class PackedBits {
 public:
  PackedBits() = default;

  /// An all-zero bitset of `num_bits` bits (num_bits == 0 is valid: the
  /// empty snapshot).
  explicit PackedBits(std::size_t num_bits);

  std::size_t size() const noexcept { return num_bits_; }
  std::size_t num_words() const noexcept { return words_.size(); }

  bool get(std::size_t bit) const;
  void set(std::size_t bit, bool value);

  /// Sets every bit to `value`.
  void fill(bool value);

  /// Word `index` (bits [64*index, 64*index + 64) of the set); high bits
  /// beyond size() are zero.
  std::uint64_t word(std::size_t index) const;

  /// Overwrites word `index`; bits beyond size() must be zero (enforced).
  void set_word(std::size_t index, std::uint64_t bits);

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// True when no bit is set.
  bool none() const noexcept;

  /// Bit 0 first, e.g. "0110..." — matches MemoryState::to_string.
  std::string to_string() const;

  friend bool operator==(const PackedBits& a, const PackedBits& b) noexcept {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PackedBits& a, const PackedBits& b) noexcept {
    return !(a == b);
  }

 private:
  /// Mask of the valid bits of the last word (all-ones when size() is a
  /// multiple of 64 or the set is empty).
  std::uint64_t last_word_mask() const noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t num_bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, const PackedBits& bits);

}  // namespace mtg
