// Committed corpus of malformed catalog files (tests/format/corpus/): every
// file must be rejected with a ParseError whose message carries a
// source:line:column position — the diagnostics contract of the format
// reader.  Files are discovered at run time, so adding a regression case is
// just dropping a file into the corpus directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <regex>
#include <string>
#include <vector>

#include "common/text_position.hpp"
#include "format/catalog_io.hpp"

namespace mtg {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path(MTG_TESTS_SOURCE_DIR) / "format" / "corpus";
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(MalformedCorpus, CorpusIsPresent) {
  // Guard against a silently-empty directory (e.g. a bad source-dir macro)
  // turning the rejection test below into a vacuous pass.
  EXPECT_GE(corpus_files().size(), 14u) << "corpus dir: " << corpus_dir();
}

TEST(MalformedCorpus, EveryFileIsRejectedWithAPosition) {
  // "<path>:<line>:<column>: <detail>" somewhere in the message.
  const std::regex position_pattern{R"(:[0-9]+:[0-9]+: )"};
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    try {
      check_catalog_file(path.string());
      ADD_FAILURE() << "malformed file was accepted";
    } catch (const ParseError& e) {
      EXPECT_TRUE(std::regex_search(std::string(e.what()), position_pattern))
          << "no line:column in: " << e.what();
      EXPECT_GE(e.position().line, 1u);
      EXPECT_GE(e.position().column, 1u);
      // The formatted message names the offending file.
      EXPECT_NE(std::string(e.what()).find(path.filename().string()),
                std::string::npos)
          << "source path missing from: " << e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "expected mtg::ParseError, got: " << e.what();
    }
  }
}

}  // namespace
}  // namespace mtg
