#include "store/sweep_store.hpp"

#include <cstdio>
#include <sstream>
#include <thread>

#include "common/checksum.hpp"

namespace mtg {

namespace {

constexpr char kMagic[8] = {'M', 'T', 'G', 'S', 'W', 'E', 'E', 'P'};
constexpr std::uint32_t kFormatVersion = 1;
// magic + format + engine + test + list + n + cap + payload_size
// + payload_crc + header_crc
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4;

// --- little-endian primitives (explicit: records must be byte-stable
// across platforms) ----------------------------------------------------------

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void append_string(std::string& out, const std::string& value) {
  append_u64(out, value.size());
  out.append(value);
}

/// Bounds-checked forward reader over an untrusted byte range.  Every
/// accessor returns false on exhaustion instead of reading past the end.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool read_u32(std::uint32_t& value) {
    if (data_.size() - pos_ < 4) return false;
    value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& value) {
    if (data_.size() - pos_ < 8) return false;
    value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool read_string(std::string& value) {
    std::uint64_t size = 0;
    if (!read_u64(size)) return false;
    if (size > remaining()) return false;  // corrupt length, don't allocate
    value.assign(data_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return true;
  }

  bool read_bool(bool& value) {
    if (remaining() < 1) return false;
    const unsigned char byte = static_cast<unsigned char>(data_[pos_]);
    if (byte > 1) return false;  // anything but 0/1 is damage
    value = byte == 1;
    ++pos_;
    return true;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string encode_payload(const CoverageReport& report) {
  std::string out;
  append_string(out, report.test_name);
  append_string(out, report.list_name);
  append_u64(out, report.test_complexity);
  append_u64(out, report.entries.size());
  for (const CoverageEntry& entry : report.entries) {
    append_u64(out, entry.fault_index);
    append_string(out, entry.fault);
    append_u64(out, entry.instances);
    append_u64(out, entry.detected);
    out.push_back(entry.covered ? '\1' : '\0');
    append_string(out, entry.escape_description);
  }
  return out;
}

bool decode_payload(std::string_view payload, CoverageReport& out,
                    std::string* why) {
  const auto fail = [&](const char* message) {
    if (why != nullptr) *why = message;
    return false;
  };
  Cursor cursor(payload);
  CoverageReport report;
  std::uint64_t complexity = 0;
  std::uint64_t entry_count = 0;
  if (!cursor.read_string(report.test_name) ||
      !cursor.read_string(report.list_name) || !cursor.read_u64(complexity) ||
      !cursor.read_u64(entry_count)) {
    return fail("truncated payload header");
  }
  report.test_complexity = static_cast<std::size_t>(complexity);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    CoverageEntry entry;
    std::uint64_t fault_index = 0, instances = 0, detected = 0;
    if (!cursor.read_u64(fault_index) || !cursor.read_string(entry.fault) ||
        !cursor.read_u64(instances) || !cursor.read_u64(detected) ||
        !cursor.read_bool(entry.covered) ||
        !cursor.read_string(entry.escape_description)) {
      return fail("truncated coverage entry");
    }
    entry.fault_index = static_cast<std::size_t>(fault_index);
    entry.instances = static_cast<std::size_t>(instances);
    entry.detected = static_cast<std::size_t>(detected);
    report.entries.push_back(std::move(entry));
  }
  if (cursor.remaining() != 0) return fail("trailing bytes after payload");
  out = std::move(report);
  return true;
}

}  // namespace

// --- codec ------------------------------------------------------------------

std::string SweepStore::encode_record(const SweepKey& key,
                                      const CoverageReport& report) {
  const std::string payload = encode_payload(report);
  std::string record;
  record.reserve(kHeaderSize + payload.size());
  record.append(kMagic, sizeof kMagic);
  append_u32(record, kFormatVersion);
  append_u32(record, key.engine_version);
  append_u64(record, key.test_hash);
  append_u64(record, key.list_hash);
  append_u64(record, key.memory_size);
  append_u64(record, key.max_instances_per_fault);
  append_u64(record, payload.size());
  append_u32(record, crc32(payload));
  append_u32(record, crc32(std::string_view(record)));  // header CRC
  record.append(payload);
  return record;
}

bool SweepStore::decode_record(std::string_view record, const SweepKey& key,
                               CoverageReport& out, std::string* why) {
  const auto fail = [&](const char* message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (record.size() < kHeaderSize) return fail("short read: header truncated");
  if (record.compare(0, sizeof kMagic,
                     std::string_view(kMagic, sizeof kMagic)) != 0) {
    return fail("bad magic");
  }
  // The header CRC covers everything before it.
  Cursor cursor(record.substr(sizeof kMagic, kHeaderSize - sizeof kMagic));
  std::uint32_t format = 0, engine = 0, payload_crc = 0, header_crc = 0;
  std::uint64_t test_hash = 0, list_hash = 0, n = 0, cap = 0, payload_size = 0;
  cursor.read_u32(format);
  cursor.read_u32(engine);
  cursor.read_u64(test_hash);
  cursor.read_u64(list_hash);
  cursor.read_u64(n);
  cursor.read_u64(cap);
  cursor.read_u64(payload_size);
  cursor.read_u32(payload_crc);
  cursor.read_u32(header_crc);
  if (crc32(record.substr(0, kHeaderSize - 4)) != header_crc) {
    return fail("header checksum mismatch");
  }
  if (format != kFormatVersion) return fail("record format version mismatch");
  const SweepKey embedded{test_hash, list_hash, n, cap, engine};
  if (!(embedded == key)) return fail("key mismatch");
  if (payload_size != record.size() - kHeaderSize) {
    return fail("short read: payload truncated");
  }
  const std::string_view payload = record.substr(kHeaderSize);
  if (crc32(payload) != payload_crc) return fail("payload checksum mismatch");
  return decode_payload(payload, out, why);
}

// --- store ------------------------------------------------------------------

SweepStore::SweepStore(Storage& storage, std::string root,
                       SweepStoreOptions options)
    : storage_(storage),
      root_(std::move(root)),
      options_(std::move(options)),
      jitter_state_(options_.retry_jitter_seed) {}

std::chrono::milliseconds SweepStore::backoff_delay_locked(int attempt) {
  const auto base = options_.retry_backoff;
  if (base.count() <= 0) return std::chrono::milliseconds{0};
  // splitmix64 step — deterministic per-store jitter stream.
  jitter_state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const auto jitter = std::chrono::milliseconds(
      static_cast<std::int64_t>(z % static_cast<std::uint64_t>(base.count())));
  return base * (attempt - 1) + jitter;
}

void SweepStore::warn_locked(const std::string& message) {
  if (options_.warn) {
    options_.warn(message);
  } else {
    std::fprintf(stderr, "mtg sweep store warning: %s\n", message.c_str());
  }
}

bool SweepStore::open() {
  std::lock_guard<std::mutex> lock(mutex_);
  opened_ = true;
  const StoreStatus status = storage_.open_dir(root_);
  if (!status.ok()) {
    disabled_ = true;
    warn_locked("cannot open store directory '" + root_ + "' (" +
                status.message + "); continuing without a store");
    return false;
  }
  return true;
}

bool SweepStore::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !disabled_;
}

std::string SweepStore::record_path(const SweepKey& key) const {
  std::ostringstream name;
  name << "test=" << key.test_hash << " list=" << key.list_hash
       << " n=" << key.memory_size << " cap=" << key.max_instances_per_fault
       << " engine=" << key.engine_version;
  std::ostringstream path;
  path << root_ << "/sweep-" << std::hex << stable_hash64(name.str())
       << ".rec";
  return path.str();
}

bool SweepStore::load(const SweepKey& key, CoverageReport& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disabled_) {
    ++stats_.misses;
    return false;
  }
  const std::string path = record_path(key);
  std::string record;
  const StoreStatus status = storage_.read(path, record);
  if (!status.ok()) {
    if (!status.not_found()) ++stats_.read_errors;
    ++stats_.misses;
    return false;
  }
  std::string why;
  if (!decode_record(record, key, out, &why)) {
    if (why == "key mismatch") {
      ++stats_.key_mismatches;
    } else {
      ++stats_.corrupt_records;
    }
    // Repair: a record that cannot be trusted must not be read again.  The
    // caller recomputes the point and save() rewrites it.
    storage_.remove(path);
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  return true;
}

bool SweepStore::save(const SweepKey& key, const CoverageReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disabled_) return false;
  const std::string path = record_path(key);
  const std::string tmp = path + ".tmp";
  const std::string record = encode_record(key, report);

  std::string last_error;
  const int attempts = options_.max_write_attempts < 1
                           ? 1
                           : options_.max_write_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.save_retries;
      const std::chrono::milliseconds delay = backoff_delay_locked(attempt);
      if (options_.on_backoff) {
        options_.on_backoff(delay);  // test seam: observe, don't sleep
      } else if (delay.count() > 0) {
        std::this_thread::sleep_for(delay);
      }
    }
    // Atomic replace: the record becomes visible under its final name only
    // complete and synced; readers see the old record or the new one, never
    // a prefix.
    StoreStatus status = storage_.write(tmp, record);
    if (status.ok()) status = storage_.sync(tmp);
    if (status.ok()) status = storage_.rename(tmp, path);
    if (status.ok()) {
      ++stats_.saves;
      return true;
    }
    last_error = status.message;
  }
  storage_.remove(tmp);  // best effort: don't leave a damaged temp behind
  ++stats_.save_failures;
  disabled_ = true;
  warn_locked("persisting a sweep record failed after " +
              std::to_string(attempts) + " attempts (" + last_error +
              "); continuing without a store");
  return false;
}

bool SweepStore::remove(const SweepKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disabled_) return false;
  return storage_.remove(record_path(key)).ok();
}

SweepStoreStats SweepStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mtg
