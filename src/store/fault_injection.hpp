// FaultInjectedStorage — the adversary of the persistence layer.
//
// Wraps any Storage, counts every operation, and injects a failure at a
// scheduled operation index.  The fault-injection harness
// (tests/store/test_fault_injection.cpp) drives a whole sweep once to learn
// the operation count M, then replays it M times failing the k-th operation
// for every k ∈ [1, M] — the exhaustive "fail every failure point" sweep of
// the CalicoDB fakes (SNIPPETS.md §3) — asserting that coverage results stay
// byte-identical to the store-less run and that any record damaged mid-write
// is detected and repaired on the next run.
//
// Three failure shapes, because they damage the store differently:
//
//  * Error           — the operation does nothing and reports IOError: a
//    full-stop failure (ENOSPC, EACCES, pulled disk).
//  * TornWriteError  — a write persists only a prefix of the data, then
//    reports IOError: a crash mid-write the writer *observes*.  Non-write
//    operations degrade to plain Error.
//  * TornWriteSilent — a write persists only a prefix but reports success: a
//    crash after the ack (lost FLUSH, firmware lie).  The writer believes
//    the record is good; only the next run's checksum can catch it.
//    Non-write operations pass through unharmed (the lie is write-specific).
//
// `sticky` failures persist from the k-th operation onward (dead disk);
// non-sticky ones hit exactly once (transient — a retry succeeds), which is
// what the sweep store's bounded-backoff ladder is tested against.
//
// Counters are updated under a mutex: sweep points save from pool workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>

#include "store/storage.hpp"

namespace mtg {

/// How the scheduled fault manifests (see the file comment).
enum class StoreFaultMode : unsigned char {
  Error,
  TornWriteError,
  TornWriteSilent,
};

/// Per-operation-type counters (ops that reached this wrapper, injected or
/// not).  A snapshot type: grab copies before/after a phase and diff them to
/// assert *what* a re-run did (e.g. resumability = exactly one write per
/// recomputed point).
struct StorageOpCounts {
  std::uint64_t open_dirs = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t syncs = 0;
  std::uint64_t renames = 0;
  std::uint64_t removes = 0;
  std::uint64_t faults_injected = 0;

  std::uint64_t total() const noexcept {
    return open_dirs + reads + writes + syncs + renames + removes;
  }
};

class FaultInjectedStorage : public Storage {
 public:
  /// Wraps `base`; `base` must outlive this object.
  explicit FaultInjectedStorage(Storage& base) : base_(base) {}

  /// Schedules the fault: the `k`-th operation from now (1-based) fails with
  /// `mode`; with `sticky`, every later operation fails too.  Resets the
  /// operation counter so `k` is relative to the call.
  void fail_kth_operation(std::uint64_t k, StoreFaultMode mode,
                          bool sticky = false);

  /// Cancels any scheduled or sticky fault (the disk "comes back").
  void clear_fault();

  /// Snapshot of the operation counters.
  StorageOpCounts counts() const;

  /// Resets the counters (not the fault schedule).
  void reset_counts();

  StoreStatus open_dir(const std::string& path) override;
  StoreStatus read(const std::string& path, std::string& out) override;
  StoreStatus write(const std::string& path, std::string_view data) override;
  StoreStatus sync(const std::string& path) override;
  StoreStatus rename(const std::string& from, const std::string& to) override;
  StoreStatus remove(const std::string& path) override;

 private:
  /// Advances the op counter; true when this operation must fail.
  bool should_fail_locked();

  Storage& base_;
  mutable std::mutex mutex_;
  StorageOpCounts counts_;
  std::uint64_t ops_since_schedule_ = 0;
  std::uint64_t fail_at_ = 0;  ///< 0 = no fault scheduled
  bool sticky_ = false;
  StoreFaultMode mode_ = StoreFaultMode::Error;
};

}  // namespace mtg
