// Structural analysis of march tests.
//
// March test theory characterizes a test's detection capability by the
// operation patterns it applies per cell: transition writes, non-transition
// writes followed by a read (WDF detection), back-to-back reads (DRDF
// detection), reads of both polarities, and so on.  This analyzer derives
// those structural properties directly from the notation — a fast
// complement to the fault simulator, useful to explain *why* a test covers
// or misses a fault class and to sanity-check generated tests.
#pragma once

#include <iosfwd>
#include <string>

#include "common/bit.hpp"
#include "march/march_test.hpp"

namespace mtg {

/// Per-polarity structural capabilities of a march test (value = the cell
/// state the capability refers to, e.g. `reads_value[0]` — reads a 0).
struct MarchProfile {
  std::size_t elements = 0;
  std::size_t complexity = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t waits = 0;

  // Indexed by polarity (0/1); derived from the per-cell operation stream
  // the test applies (element sequences concatenated, entry values tracked).
  bool reads_value[2] = {false, false};           ///< some read sees value d
  bool transition_write_observed[2] = {false, false};  ///< w d̄→d ... r d (TF d̄)
  bool nontransition_write_observed[2] = {false, false};  ///< w d on d ... r (WDF)
  bool double_read[2] = {false, false};           ///< r d immediately re-read (DRDF)
  bool up_sensitizing_read[2] = {false, false};   ///< ⇑ element reads d before writes
  bool down_sensitizing_read[2] = {false, false}; ///< ⇓ element reads d before writes
  bool retention_observed[2] = {false, false};    ///< t while holding d ... r d (DRF)
  /// The classical address-decoder detection structure: an element reading
  /// value d *before any of its writes* and later writing d̄, per sweep
  /// direction.  Only the pre-write read observes the state the previous
  /// element left at other addresses (a read after an intra-element write
  /// senses that write back), so this is the shape that distinguishes
  /// address pairs regardless of order — what decoder faults
  /// (AFwc/AFmc/AFma) need; ⇕ elements count for both directions.
  bool up_read_complement_write[2] = {false, false};    ///< ⇑: r d ... w d̄
  bool down_read_complement_write[2] = {false, false};  ///< ⇓: r d ... w d̄

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const MarchProfile& profile);

/// Computes the structural profile of `test`.  The test must be consistent
/// (MarchTest::consistency_violation() empty); throws mtg::Error otherwise.
MarchProfile analyze(const MarchTest& test);

/// Structural explanations of coverage limits, derived from the profile:
/// human-readable reasons why the test is unlikely to cover the named fault
/// classes (empty = no structural objection).  These are conservative
/// heuristics, not impossibility proofs — linked-fault effects can surface
/// through reads the profile does not credit (see March RABL).
std::vector<std::string> structural_gaps(const MarchTest& test);

/// Like structural_gaps, but for the data-retention capability: reports the
/// polarities for which the test never lets a cell sit through a wait and
/// then reads it back (DRF escapes).  Kept separate from structural_gaps
/// because the classic static-fault tests (March SS/SL/...) intentionally
/// contain no waits.
std::vector<std::string> retention_gaps(const MarchTest& test);

/// Address-decoder capability gaps: the (direction, polarity) combinations
/// for which the test has no element reading d and later writing d̄ in that
/// sweep direction — the structure decoder faults need in both directions
/// (MarchProfile::up/down_read_complement_write).  Kept separate from
/// structural_gaps for the same reason as retention_gaps: many classic
/// tests intentionally do not target decoder faults.
std::vector<std::string> decoder_gaps(const MarchTest& test);

}  // namespace mtg
