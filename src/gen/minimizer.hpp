// Redundancy elimination for generated march tests.
//
// The paper claims the methodology "allows generating non-redundant March
// Tests".  The minimizer enforces this a posteriori: it repeatedly attempts
// to drop whole march elements and individual operations, keeping a removal
// whenever the shortened test remains valid and still detects every target
// fault instance.  The result is locally minimal: no single element or
// operation can be removed without losing coverage.
#pragma once

#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/simulator.hpp"

namespace mtg {

/// True when `test` is valid and detects every instance in `instances`.
bool covers_all(const FaultSimulator& simulator, const MarchTest& test,
                const std::vector<FaultInstance>& instances);

/// Returns a locally minimal test with the same coverage of `instances`.
/// Appends a human-readable action trace to `log` when non-null.
MarchTest minimize_test(const FaultSimulator& simulator, const MarchTest& test,
                        const std::vector<FaultInstance>& instances,
                        std::vector<std::string>* log = nullptr);

}  // namespace mtg
