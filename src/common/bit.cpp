#include "common/bit.hpp"

#include <ostream>

namespace mtg {

std::ostream& operator<<(std::ostream& os, Bit b) { return os << to_char(b); }

std::ostream& operator<<(std::ostream& os, Tri t) { return os << to_char(t); }

}  // namespace mtg
