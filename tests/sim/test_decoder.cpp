// Address-decoder fault simulation: scalar semantics, packed/scalar
// agreement, the n-dependent sweep curve (the acceptance golden of the
// decoder subsystem), the collapsing-soundness gate of the prefix engine,
// and the generator end of the pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fp/decoder_fault.hpp"
#include "fp/fault_list.hpp"
#include "fp/semantics.hpp"
#include "gen/generator.hpp"
#include "march/analysis.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/coverage.hpp"
#include "sim/prefix_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace mtg {
namespace {

FaultyMemory decoder_memory(std::size_t n, DecoderFaultClass cls,
                            std::size_t bit, std::size_t a, Bit wired) {
  const DecoderFault fault{cls, bit, wired};
  const std::size_t v = cls == DecoderFaultClass::NoAccess
                            ? a
                            : a ^ (std::size_t{1} << bit);
  return FaultyMemory(n, {}, {BoundDecoder(fault, a, v)});
}

// --- scalar operational semantics, class by class ---------------------------

TEST(DecoderScalar, NoAccessDropsWritesAndReadsTheAddressBit) {
  // Broken line 1, corrupted address 2 (bit set): reads at 2 return 1.
  FaultyMemory mem = decoder_memory(4, DecoderFaultClass::NoAccess, 1, 2,
                                    Bit::Zero);
  mem.power_on_uniform(Bit::Zero);
  mem.write(2, Bit::One);                   // dropped: no cell selected
  EXPECT_EQ(mem.state().get(2), Bit::Zero); // the cell itself never changed
  EXPECT_EQ(mem.read(2), Bit::One);         // address-coupled read-back
  // An address with the broken bit clear reads back 0.
  FaultyMemory low = decoder_memory(4, DecoderFaultClass::NoAccess, 1, 1,
                                    Bit::Zero);
  low.power_on_uniform(Bit::One);
  EXPECT_EQ(low.read(1), Bit::Zero);
  EXPECT_EQ(low.read(0), Bit::One);  // other addresses decode normally
}

TEST(DecoderScalar, WrongCellRedirectsBothPathsAndFreezesTheOwnCell) {
  FaultyMemory mem = decoder_memory(4, DecoderFaultClass::WrongCell, 1, 0,
                                    Bit::Zero);  // address 0 -> cell 2
  mem.power_on_uniform(Bit::One);
  mem.write(0, Bit::Zero);
  EXPECT_EQ(mem.state().get(2), Bit::Zero);  // redirected write
  EXPECT_EQ(mem.state().get(0), Bit::One);   // own cell frozen at power-on
  EXPECT_EQ(mem.read(0), Bit::Zero);         // redirected read sees cell 2
  mem.write(2, Bit::One);                    // the partner's own address works
  EXPECT_EQ(mem.read(0), Bit::One);
}

TEST(DecoderScalar, MultipleCellsWritesBothAndWiresTheReadBack) {
  FaultyMemory mem_or = decoder_memory(4, DecoderFaultClass::MultipleCells, 0,
                                       0, Bit::One);  // address 0 -> cells 0+1
  mem_or.power_on_uniform(Bit::Zero);
  mem_or.write(1, Bit::One);
  EXPECT_EQ(mem_or.read(0), Bit::One);  // wired-OR: 0 | 1
  mem_or.write(0, Bit::Zero);           // writes both cells
  EXPECT_EQ(mem_or.state().get(1), Bit::Zero);
  EXPECT_EQ(mem_or.read(0), Bit::Zero);

  FaultyMemory mem_and = decoder_memory(4, DecoderFaultClass::MultipleCells, 0,
                                        0, Bit::Zero);
  mem_and.power_on_uniform(Bit::One);
  mem_and.write(1, Bit::Zero);
  EXPECT_EQ(mem_and.read(0), Bit::Zero);  // wired-AND: 1 & 0
}

TEST(DecoderScalar, MultipleAddressesRedirectsOnlyTheWritePath) {
  FaultyMemory mem = decoder_memory(4, DecoderFaultClass::MultipleAddresses, 1,
                                    3, Bit::Zero);  // writes at 3 land on 1
  mem.power_on_uniform(Bit::Zero);
  mem.write(3, Bit::One);
  EXPECT_EQ(mem.state().get(1), Bit::One);   // partner written twice over
  EXPECT_EQ(mem.state().get(3), Bit::Zero);  // own cell never written
  EXPECT_EQ(mem.read(3), Bit::Zero);         // read path intact: stale cell 3
}

TEST(DecoderScalar, DecoderFaultsExcludeFaultPrimitives) {
  const DecoderFault fault{DecoderFaultClass::WrongCell, 0, Bit::Zero};
  EXPECT_THROW(FaultyMemory(4, {BoundFp::at(FaultPrimitive::sf(Bit::Zero), 0)},
                            {BoundDecoder(fault, 0, 1)}),
               Error);
  EXPECT_THROW(FaultyMemory(4, {},
                            {BoundDecoder(fault, 0, 1),
                             BoundDecoder(fault, 2, 3)}),
               Error);
}

// --- packed engine agreement ------------------------------------------------

TEST(DecoderPacked, MatchesScalarOnEveryCatalogTest) {
  const std::size_t n = 12;  // lines 0..3; non-power-of-two partner clipping
  SimulatorOptions options;
  options.memory_size = n;
  const FaultSimulator simulator(options);
  const auto instances = instantiate_all(decoder_fault_list(4), n);
  ASSERT_FALSE(instances.empty());
  for (const MarchTest& test : all_catalog_tests()) {
    for (const FaultInstance& inst : instances) {
      const DetectionResult packed = simulator.simulate(test, inst);
      const DetectionResult scalar = simulator.simulate_scalar(test, inst);
      ASSERT_EQ(packed.detected, scalar.detected)
          << test.name() << " / " << inst.description;
      ASSERT_EQ(packed.first_event.has_value(), scalar.first_event.has_value())
          << test.name() << " / " << inst.description;
      if (packed.first_event.has_value()) {
        EXPECT_EQ(packed.first_event->to_string(),
                  scalar.first_event->to_string())
            << test.name() << " / " << inst.description;
      }
      EXPECT_EQ(packed.escape_scenario, scalar.escape_scenario)
          << test.name() << " / " << inst.description;
      EXPECT_EQ(simulator.detects(test, inst),
                simulator.detects_scalar(test, inst))
          << test.name() << " / " << inst.description;
    }
  }
}

TEST(DecoderPacked, MultiWordMemoryAgreesAtN100) {
  // Decoder pairs spanning word boundaries (bit 6: distance 64).
  const std::size_t n = 100;
  SimulatorOptions options;
  options.memory_size = n;
  const FaultSimulator simulator(options);
  for (const FaultInstance& inst :
       instantiate_all(decoder_fault_list(7), n, /*cap=*/6)) {
    EXPECT_EQ(simulator.detects(march_sl(), inst),
              simulator.detects_scalar(march_sl(), inst))
        << inst.description;
  }
}

// --- the n-dependent sweep curve (acceptance golden) ------------------------

TEST(DecoderSweep, CoverageCurveVariesWithMemorySize) {
  // The acceptance criterion of the decoder subsystem: a catalog march test
  // swept against decoder_fault_list() over n ∈ {64, 256, 4096} must report
  // at least two distinct coverage values.  March SL detects every decoder
  // fault the memory can host, so the curve is exactly the fraction of
  // address lines present: 6/12, 8/12, 12/12.
  SweepOptions options;
  options.max_instances_per_fault = 128;
  const std::vector<SweepPoint> points = sweep_coverage(
      march_sl(), decoder_fault_list(), {64, 256, 4096}, options);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].report.fault_coverage_percent(), 100.0 * 30 / 60);
  EXPECT_DOUBLE_EQ(points[1].report.fault_coverage_percent(), 100.0 * 40 / 60);
  EXPECT_DOUBLE_EQ(points[2].report.fault_coverage_percent(), 100.0);
  std::set<double> distinct;
  for (const SweepPoint& point : points) {
    distinct.insert(point.report.fault_coverage_percent());
    // Every instantiable instance is detected: the misses are exactly the
    // faults whose address line the memory does not have.
    EXPECT_EQ(point.report.instances_detected(),
              point.report.instances_total());
    for (const CoverageEntry& entry : point.report.entries) {
      if (entry.instances == 0) {
        EXPECT_FALSE(entry.covered);
        EXPECT_EQ(entry.escape_description,
                  "no instances fit the simulated memory");
      }
    }
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(DecoderSweep, AcceptsDuplicateAndUnsortedSizeLists) {
  SweepOptions options;
  options.max_instances_per_fault = 32;
  const std::vector<SweepPoint> points = sweep_coverage(
      march_sl(), decoder_fault_list(4), {16, 8, 16}, options);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].memory_size, 16u);
  EXPECT_EQ(points[1].memory_size, 8u);
  EXPECT_EQ(points[2].memory_size, 16u);
  // Duplicate points produce byte-identical reports; order is preserved.
  EXPECT_EQ(points[0].report.summary(), points[2].report.summary());
  EXPECT_NE(points[0].report.summary(), points[1].report.summary());
}

TEST(DecoderSweep, RejectsSizesBelowTheSimulatorMinimumUpFront) {
  // The n >= 3 check runs before any point evaluates: a clean Error, not a
  // require abort from a worker mid-parallel-loop.
  try {
    sweep_coverage(march_sl(), decoder_fault_list(), {64, 2, 4096});
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(">= 3"), std::string::npos);
  }
}

// --- collapsing-soundness guards --------------------------------------------

TEST(DecoderCollapsing, SignatureRefusesAddressReadingInstances) {
  const auto instances =
      instantiate(DecoderFault{DecoderFaultClass::NoAccess, 1, Bit::Zero}, 4,
                  /*fault_index=*/0);
  ASSERT_FALSE(instances.empty());
  const PackedFaultSim sim(instances[0]);
  EXPECT_FALSE(sim.address_free());
  EXPECT_THROW(sim.signature(), Error);
  // FP instances keep their address-free signature.
  const auto fp_instances =
      instantiate(SimpleFault::single(FaultPrimitive::sf(Bit::Zero)), 4, 0);
  const PackedFaultSim fp_sim(fp_instances[0]);
  EXPECT_TRUE(fp_sim.address_free());
  EXPECT_FALSE(fp_sim.signature().empty());
}

TEST(DecoderCollapsing, PrefixEngineKeepsStructurallyEqualInstancesApart) {
  // Regression for the latent collapsing-soundness bug: the four AFna@b1
  // instances at n=4 are structurally identical (one involved cell, same
  // class), but their read-back is an *address bit* — addresses 2 and 3
  // read back 1, addresses 0 and 1 read back 0.  Against {⇕(w0); ⇑(r0)}
  // exactly the read-back-1 instances are detected.  A signature collapse
  // (which cannot see the addresses) would have merged all four into one
  // weighted representative and reported 0 or 4 undetected instead of 2.
  const std::size_t n = 4;
  const auto instances =
      instantiate(DecoderFault{DecoderFaultClass::NoAccess, 1, Bit::Zero}, n,
                  /*fault_index=*/0);
  ASSERT_EQ(instances.size(), 4u);
  const MarchTest test = parse_march_test("{c(w0); ^(r0)}", "na probe");
  PrefixEngine engine(n, &instances, test,
                      PrefixEngine::Options{/*both_power_on_states=*/true,
                                            /*record_checkpoints=*/false});
  EXPECT_EQ(engine.num_instances(), 4u);
  EXPECT_EQ(engine.num_representatives(), 4u);  // no collapsing: weight 1 each
  EXPECT_EQ(engine.undetected_instances(), 2u);

  // The engine's verdict matches the per-instance simulator term for term.
  SimulatorOptions options;
  options.memory_size = n;
  const FaultSimulator simulator(options);
  std::size_t undetected = 0;
  for (const FaultInstance& inst : instances) {
    if (!simulator.detects(test, inst)) ++undetected;
  }
  EXPECT_EQ(undetected, 2u);
}

TEST(DecoderCollapsing, PrefixEngineAdvanceAndTrialsStayExact) {
  const std::size_t n = 8;
  std::vector<FaultInstance> instances =
      instantiate_all(decoder_fault_list(3), n);
  const MarchTest full = march_sl();
  MarchTest prefix("prefix", {full.elements()[0], full.elements()[1]});

  SimulatorOptions options;
  options.memory_size = n;
  const FaultSimulator simulator(options);

  PrefixEngine engine(n, &instances, prefix,
                      PrefixEngine::Options{true, /*record_checkpoints=*/true});
  engine.advance(full);
  std::size_t undetected = 0;
  for (const FaultInstance& inst : instances) {
    if (!simulator.detects(full, inst)) ++undetected;
  }
  EXPECT_EQ(engine.undetected_instances(), undetected);

  // A drop-element trial must agree with a from-scratch simulation.
  for (const std::size_t edit : {std::size_t{1}, full.size() - 1}) {
    MarchTest edited = full;
    edited.elements().erase(edited.elements().begin() +
                            static_cast<long>(edit));
    bool expected = true;
    for (const FaultInstance& inst : instances) {
      if (!simulator.detects(edited, inst)) {
        expected = false;
        break;
      }
    }
    EXPECT_EQ(engine.trial_covers(edit, nullptr), expected) << "edit " << edit;
  }
}

// --- coverage, analysis and generation --------------------------------------

TEST(DecoderCoverage, MissingAddressLinesAreReportedUncovered) {
  SimulatorOptions options;
  options.memory_size = 4;  // lines 0 and 1 only
  const CoverageReport report = evaluate_coverage(
      FaultSimulator(options), march_sl(), decoder_fault_list(3));
  ASSERT_EQ(report.entries.size(), 15u);
  for (const CoverageEntry& entry : report.entries) {
    const bool line_present = entry.fault.find("@b2") == std::string::npos;
    EXPECT_EQ(entry.covered, line_present) << entry.fault;
    if (!line_present) {
      EXPECT_EQ(entry.instances, 0u) << entry.fault;
      EXPECT_EQ(entry.escape_description,
                "no instances fit the simulated memory");
    }
  }
  EXPECT_FALSE(report.full_coverage());
}

TEST(DecoderAnalysis, ReadComplementWriteStructureAndGaps) {
  // March SL has r…w-complement elements of both polarities in both sweep
  // directions; MATS+ has only ⇑(r0,w1) and ⇓(r1,w0).
  EXPECT_TRUE(decoder_gaps(march_sl()).empty());
  const MarchProfile mats = analyze(mats_plus());
  EXPECT_TRUE(mats.up_read_complement_write[0]);
  EXPECT_FALSE(mats.up_read_complement_write[1]);
  EXPECT_TRUE(mats.down_read_complement_write[1]);
  EXPECT_FALSE(mats.down_read_complement_write[0]);
  EXPECT_EQ(decoder_gaps(mats_plus()).size(), 2u);
  // ⇕ elements count for both directions.
  const MarchProfile any = analyze(
      parse_march_test("{c(w0); c(r0,w1); c(r1,w0)}", "any probe"));
  EXPECT_TRUE(any.up_read_complement_write[0]);
  EXPECT_TRUE(any.down_read_complement_write[0]);
  EXPECT_TRUE(any.up_read_complement_write[1]);
  EXPECT_TRUE(any.down_read_complement_write[1]);
  // A read *after* an intra-element write senses that write back, not the
  // previous element's content: ⇑(w0,r0,w1) must not be credited (it
  // misses most AFwc/AFmc pairs, unlike a real ⇑(r0,…,w1)).
  const MarchProfile rewrite = analyze(
      parse_march_test("{c(w0); ^(w0,r0,w1)}", "rewrite probe"));
  EXPECT_FALSE(rewrite.up_read_complement_write[0]);
  EXPECT_FALSE(rewrite.down_read_complement_write[0]);
}

TEST(DecoderGeneration, GeneratorCoversEveryCertifiableDecoderFault) {
  // End-to-end: the generator must produce a test covering every decoder
  // fault the certify memory can host, reporting the others out of scope.
  const GenerationResult result = generate_march_test(decoder_fault_list(4));
  EXPECT_TRUE(result.full_coverage);
  // Certify size 6 hosts lines 0..2; every line-3 fault is out of scope.
  std::set<std::string> uncoverable(result.uncoverable.begin(),
                                    result.uncoverable.end());
  EXPECT_EQ(uncoverable, (std::set<std::string>{
                             "AFna@b3", "AFwc@b3", "AFmc-and@b3",
                             "AFmc-or@b3", "AFma@b3"}));
  for (const CoverageEntry& entry : result.certification.entries) {
    if (uncoverable.count(entry.fault) == 0) {
      EXPECT_TRUE(entry.covered) << entry.fault;
    }
  }
  // The covering structure decoder faults need: reads of both polarities
  // followed by complement writes (the generated {⇕(w0); ⇑(r0,w1); ⇑(r1,w0)}
  // shape or stronger).
  const MarchProfile profile = analyze(result.test);
  EXPECT_TRUE(profile.up_read_complement_write[0]);
  EXPECT_TRUE(profile.up_read_complement_write[1]);
}

TEST(DecoderGeneration, MixedListsSimulateDecoderAndFpFaultsTogether) {
  // A list mixing cell-array and decoder faults exercises both item kinds in
  // one engine (collapsed FP items + weight-1 decoder items).
  FaultList list = fault_list_2();
  list.decoder = decoder_fault_list(2).decoder;
  const GenerationResult result = generate_march_test(list);
  EXPECT_TRUE(result.full_coverage);
  EXPECT_TRUE(result.uncoverable.empty());
}

}  // namespace
}  // namespace mtg
