#include "fp/semantics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

FaultyMemory single_fault_memory(std::size_t n, FaultPrimitive fp,
                                 std::size_t cell, Bit power_on) {
  FaultyMemory memory(n, {BoundFp::at(std::move(fp), cell)});
  memory.power_on_uniform(power_on);
  return memory;
}

TEST(FaultyMemory, FaultFreeBehaviour) {
  FaultyMemory memory(4);
  memory.power_on_uniform(Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::Zero);
  memory.write(2, Bit::One);
  EXPECT_EQ(memory.read(2), Bit::One);
  EXPECT_EQ(memory.read(1), Bit::Zero);
  memory.write(2, Bit::Zero);
  EXPECT_EQ(memory.read(2), Bit::Zero);
  memory.wait(0);
  EXPECT_EQ(memory.state().to_string(), "0000");
  EXPECT_EQ(memory.total_fires(), 0u);
}

TEST(FaultyMemory, BoundFpValidatesAddresses) {
  EXPECT_THROW(BoundFp(FaultPrimitive::tf(Bit::Zero), 0, 1), Error);
  EXPECT_THROW(BoundFp(FaultPrimitive::cfst(Bit::Zero, Bit::Zero), 1, 1), Error);
  EXPECT_THROW(FaultyMemory(2, {BoundFp::at(FaultPrimitive::tf(Bit::Zero), 5)}),
               Error);
}

// --- single-cell FP truth tables ------------------------------------------

TEST(FaultyMemory, TransitionFaultUp) {
  // TF↑ <0w1/0/->: the 0→1 transition fails.
  auto memory = single_fault_memory(2, FaultPrimitive::tf(Bit::Zero), 1,
                                    Bit::Zero);
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.read(1), Bit::Zero);  // transition failed
  EXPECT_EQ(memory.fire_count(0), 1u);
  // A write on another cell does not sensitize it.
  memory.write(0, Bit::One);
  EXPECT_EQ(memory.read(0), Bit::One);
}

TEST(FaultyMemory, TransitionFaultNotSensitizedFromOtherState) {
  // TF↑ fires only on w1 when the cell holds 0.
  auto memory =
      single_fault_memory(2, FaultPrimitive::tf(Bit::Zero), 1, Bit::One);
  memory.write(1, Bit::One);  // 1w1: no transition
  EXPECT_EQ(memory.read(1), Bit::One);
  EXPECT_EQ(memory.fire_count(0), 0u);
}

TEST(FaultyMemory, WriteDestructiveFault) {
  // WDF0 <0w0/1/->: a non-transition w0 flips the cell.
  auto memory =
      single_fault_memory(2, FaultPrimitive::wdf(Bit::Zero), 0, Bit::Zero);
  memory.write(0, Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::One);
  // The transition write 1→0 does not fire it.
  memory.write(0, Bit::Zero);  // cell holds 1: transition → fine
  EXPECT_EQ(memory.read(0), Bit::Zero);
}

TEST(FaultyMemory, ReadDestructiveFault) {
  // RDF0 <0r0/1/1>: the read flips the cell AND returns the flipped value.
  auto memory =
      single_fault_memory(2, FaultPrimitive::rdf(Bit::Zero), 0, Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::One);                  // wrong value returned
  EXPECT_EQ(memory.state().get(0), Bit::One);           // cell flipped
}

TEST(FaultyMemory, DeceptiveReadDestructiveFault) {
  // DRDF0 <0r0/1/0>: the read returns the CORRECT value but flips the cell.
  auto memory =
      single_fault_memory(2, FaultPrimitive::drdf(Bit::Zero), 0, Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::Zero);        // deceptively correct
  EXPECT_EQ(memory.state().get(0), Bit::One);  // but the cell flipped
  EXPECT_EQ(memory.read(0), Bit::One);         // second read exposes it
}

TEST(FaultyMemory, IncorrectReadFault) {
  // IRF0 <0r0/0/1>: wrong value returned, cell intact.
  auto memory =
      single_fault_memory(2, FaultPrimitive::irf(Bit::Zero), 0, Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::One);
  EXPECT_EQ(memory.state().get(0), Bit::Zero);
  EXPECT_EQ(memory.read(0), Bit::One);  // still wrong on every read
}

TEST(FaultyMemory, StateFaultFiresOnPowerOn) {
  // SF1 <1/0/->: the cell cannot hold 1.
  auto memory =
      single_fault_memory(2, FaultPrimitive::sf(Bit::One), 0, Bit::One);
  EXPECT_EQ(memory.state().get(0), Bit::Zero);  // decayed at power-on
  EXPECT_EQ(memory.fire_count(0), 1u);
}

TEST(FaultyMemory, StateFaultIsEdgeTriggeredAndRearms) {
  auto memory =
      single_fault_memory(2, FaultPrimitive::sf(Bit::One), 0, Bit::Zero);
  EXPECT_EQ(memory.fire_count(0), 0u);
  memory.write(0, Bit::One);  // condition becomes true → fires
  EXPECT_EQ(memory.state().get(0), Bit::Zero);
  EXPECT_EQ(memory.fire_count(0), 1u);
  memory.write(0, Bit::One);  // re-armed → fires again
  EXPECT_EQ(memory.state().get(0), Bit::Zero);
  EXPECT_EQ(memory.fire_count(0), 2u);
}

// --- two-cell FP truth tables ----------------------------------------------

TEST(FaultyMemory, DisturbCouplingFault) {
  // CFds <0w1;0/1/->: w1 on the aggressor (from 0) flips the victim (0→1).
  FaultyMemory memory(
      3, {BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero),
                  /*a=*/0, /*v=*/2)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::One);
  EXPECT_EQ(memory.state().get(2), Bit::One);  // victim flipped
  EXPECT_EQ(memory.state().get(0), Bit::One);  // aggressor wrote normally
  // Write on a non-aggressor cell does not fire it.
  memory.power_on_uniform(Bit::Zero);
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.state().get(2), Bit::Zero);
}

TEST(FaultyMemory, ReadDisturbCouplingFault) {
  // CFds <0r0;1/0/->: reading the aggressor disturbs the victim.
  FaultyMemory memory(
      2, {BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::Rd, Bit::One),
                  /*a=*/0, /*v=*/1)});
  memory.power_on(MemoryState(2));
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.read(0), Bit::Zero);        // aggressor reads fine
  EXPECT_EQ(memory.state().get(1), Bit::Zero);  // victim disturbed
}

TEST(FaultyMemory, TransitionCouplingFault) {
  // CFtr <1;0w1/0/->: with the aggressor at 1, the victim's 0→1 write fails.
  FaultyMemory memory(2, {BoundFp(FaultPrimitive::cftr(Bit::One, Bit::Zero),
                                  /*a=*/0, /*v=*/1)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::One);
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.state().get(1), Bit::Zero);  // transition failed
  // With the aggressor at 0 the write succeeds.
  memory.power_on_uniform(Bit::Zero);
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.state().get(1), Bit::One);
}

TEST(FaultyMemory, StateCouplingFaultLevelSemantics) {
  // CFst <1;0/1/->: while the aggressor holds 1, the victim cannot hold 0.
  FaultyMemory memory(2, {BoundFp(FaultPrimitive::cfst(Bit::One, Bit::Zero),
                                  /*a=*/0, /*v=*/1)});
  memory.power_on_uniform(Bit::Zero);
  EXPECT_EQ(memory.state().get(1), Bit::Zero);  // aggressor is 0: no fire
  memory.write(0, Bit::One);                    // condition becomes true
  EXPECT_EQ(memory.state().get(1), Bit::One);
  memory.write(1, Bit::Zero);  // victim rewritten to 0 → condition again
  EXPECT_EQ(memory.state().get(1), Bit::One);
  memory.write(0, Bit::Zero);  // aggressor released
  memory.write(1, Bit::Zero);
  EXPECT_EQ(memory.state().get(1), Bit::Zero);
}

TEST(FaultyMemory, DeceptiveReadDestructiveCoupling) {
  // CFdr <1;0r0/1/0>.
  FaultyMemory memory(2, {BoundFp(FaultPrimitive::cfdr(Bit::One, Bit::Zero),
                                  /*a=*/0, /*v=*/1)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::One);
  EXPECT_EQ(memory.read(1), Bit::Zero);        // deceptively correct
  EXPECT_EQ(memory.state().get(1), Bit::One);  // flipped
}

// --- linked fault masking (the paper's Section 3 example) ------------------

TEST(FaultyMemory, LinkedDisturbCouplingMasksPerFigure1) {
  // FP1 = <0w1;0/1/-> on a1, FP2 = <0w1;1/0/-> on a2, shared victim v.
  // Performing 0w1 on a1 flips v to 1; performing 0w1 on a2 flips it back —
  // the fault effect is masked (Figure 1 / Equation 6).
  FaultyMemory memory(
      3, {BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero),
                  /*a=*/0, /*v=*/2),
          BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::One),
                  /*a=*/1, /*v=*/2)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::One);
  EXPECT_EQ(memory.state().get(2), Bit::One);  // FP1 sensitized
  memory.write(1, Bit::One);
  EXPECT_EQ(memory.state().get(2), Bit::Zero);  // FP2 masked the effect
  EXPECT_EQ(memory.fire_count(0), 1u);
  EXPECT_EQ(memory.fire_count(1), 1u);
  EXPECT_EQ(memory.total_fires(), 2u);
}

TEST(FaultyMemory, LinkedWdfRdfHidesEveryVictimRead) {
  // WDF0 → RDF1 on one cell: w0-on-0 flips the cell to 1, but any read of
  // the (faulty) 1 returns 0 and restores the cell — the classic fully
  // masking single-cell link.
  FaultyMemory memory(1, {BoundFp::at(FaultPrimitive::wdf(Bit::Zero), 0),
                          BoundFp::at(FaultPrimitive::rdf(Bit::One), 0)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::Zero);                   // WDF0 fires
  EXPECT_EQ(memory.state().get(0), Bit::One);
  EXPECT_EQ(memory.read(0), Bit::Zero);         // RDF1 intercepts: looks fine
  EXPECT_EQ(memory.state().get(0), Bit::Zero);  // and restores the cell
}

// --- snapshots --------------------------------------------------------------

TEST(FaultyMemory, PackedSnapshotsRoundTrip) {
  FaultyMemory memory(4, {BoundFp::at(FaultPrimitive::sf(Bit::One), 2)});
  memory.power_on_uniform(Bit::Zero);
  memory.write(0, Bit::One);
  memory.write(2, Bit::One);  // SF1 fires, disarms until condition drops
  const PackedBits state = memory.packed_state();
  const std::uint32_t armed = memory.packed_armed();

  memory.write(1, Bit::One);
  memory.set_packed_state(state);
  memory.set_packed_armed(armed);
  EXPECT_EQ(memory.packed_state(), state);
  EXPECT_EQ(memory.packed_armed(), armed);
  EXPECT_EQ(memory.state().get(0), Bit::One);
  EXPECT_EQ(memory.state().get(1), Bit::Zero);
}

TEST(FaultyMemory, PackedSnapshotsRoundTripBeyondOneWord) {
  // 130 cells span three snapshot words; the old single-uint64_t snapshot
  // hard-failed here.  Touch cells in every word, including both word
  // boundaries (63/64 and 127/128).
  const std::size_t n = 130;
  FaultyMemory memory(n, {BoundFp::at(FaultPrimitive::sf(Bit::One), 127)});
  memory.power_on_uniform(Bit::Zero);
  for (const std::size_t cell : {std::size_t{0}, std::size_t{63},
                                 std::size_t{64}, std::size_t{128},
                                 std::size_t{129}}) {
    memory.write(cell, Bit::One);
  }
  memory.write(127, Bit::One);  // SF1 fires: the victim decays back to 0
  EXPECT_EQ(memory.state().get(127), Bit::Zero);
  const PackedBits state = memory.packed_state();
  EXPECT_EQ(state.size(), n);
  EXPECT_EQ(state.popcount(), 5u);

  memory.write(64, Bit::Zero);
  memory.write(129, Bit::Zero);
  memory.set_packed_state(state);
  memory.set_packed_armed(memory.packed_armed());
  EXPECT_EQ(memory.packed_state(), state);
  for (const std::size_t cell : {std::size_t{0}, std::size_t{63},
                                 std::size_t{64}, std::size_t{128},
                                 std::size_t{129}}) {
    EXPECT_EQ(memory.state().get(cell), Bit::One) << "cell " << cell;
  }
  EXPECT_EQ(memory.state().get(1), Bit::Zero);
  EXPECT_EQ(memory.state().get(127), Bit::Zero);
}

TEST(FaultyMemory, PowerOnResetsFireCounts) {
  auto memory =
      single_fault_memory(2, FaultPrimitive::wdf(Bit::Zero), 0, Bit::Zero);
  memory.write(0, Bit::Zero);
  EXPECT_EQ(memory.fire_count(0), 1u);
  memory.power_on_uniform(Bit::Zero);
  EXPECT_EQ(memory.fire_count(0), 0u);
}

}  // namespace
}  // namespace mtg
