// Cooperative cancellation with deadlines.
//
// A CancelToken is the one-way switch a long-running computation polls at
// chunk granularity: once it trips — by an explicit cancel() or by an
// attached deadline passing — every subsequent cause()/check() observes the
// same, first cause (a token never "un-cancels", and a deadline racing an
// explicit cancel latches exactly one winner).  check() converts the trip
// into a CancelledError, which unwinds through the thread pool's exception
// plumbing (common/parallel.hpp captures and rethrows on the submitting
// thread), so a cancelled evaluate_coverage/sweep_coverage stops in bounded
// time and never produces a partial report.
//
// Tokens chain: a token constructed with a parent also trips when the parent
// does (cause Cancelled).  The matrix service gives every job its own token
// (per-job cancel + deadline) parented to one service-wide token (shutdown,
// SIGINT), so one switch stops everything without touching per-job state.
//
// cancel() is a single lock-free atomic compare-exchange: it is safe to call
// from a POSIX signal handler (the mtg_cli SIGINT path does exactly that).
// set_deadline() publishes through an atomic too, but is meant to be called
// before the token is shared with the computation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/error.hpp"

namespace mtg {

/// Why a token tripped.  None means "still live".
enum class CancelCause : unsigned char {
  None = 0,
  Cancelled = 1,         ///< explicit cancel() (or a parent token tripping)
  DeadlineExceeded = 2,  ///< the attached deadline passed
};

inline const char* to_string(CancelCause cause) noexcept {
  switch (cause) {
    case CancelCause::Cancelled:
      return "cancelled";
    case CancelCause::DeadlineExceeded:
      return "deadline exceeded";
    case CancelCause::None:
      break;
  }
  return "not cancelled";
}

/// Thrown by CancelToken::check() at a cooperative cancellation point.
class CancelledError : public Error {
 public:
  explicit CancelledError(CancelCause cause)
      : Error(std::string("computation ") + to_string(cause)), cause_(cause) {}

  CancelCause cause() const noexcept { return cause_; }

 private:
  CancelCause cause_;
};

class CancelToken {
 public:
  CancelToken() = default;
  /// A token that also trips (cause Cancelled) when `parent` trips.
  /// `parent` must outlive this token.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Attaches an absolute deadline; cause() reports DeadlineExceeded once it
  /// passes.  Call before sharing the token with the computation.
  void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
    deadline_ns_.store(when.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Convenience: a deadline `budget` from now (no-op for a zero budget —
  /// "no deadline", not "already expired").
  void set_deadline_after(std::chrono::milliseconds budget) noexcept {
    if (budget.count() > 0) {
      set_deadline(std::chrono::steady_clock::now() + budget);
    }
  }

  /// Trips the token (first cause wins).  Lock-free and async-signal-safe.
  void cancel() noexcept { latch(CancelCause::Cancelled); }

  /// The latched cause, tripping the deadline / consulting the parent first
  /// as needed.  None while the token is live.
  CancelCause cause() const noexcept {
    const auto latched = static_cast<CancelCause>(
        cause_.load(std::memory_order_acquire));
    if (latched != CancelCause::None) return latched;
    if (parent_ != nullptr && parent_->cause() != CancelCause::None) {
      latch(CancelCause::Cancelled);
      return static_cast<CancelCause>(cause_.load(std::memory_order_acquire));
    }
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      latch(CancelCause::DeadlineExceeded);
      return static_cast<CancelCause>(cause_.load(std::memory_order_acquire));
    }
    return CancelCause::None;
  }

  bool cancelled() const noexcept { return cause() != CancelCause::None; }

  /// The cooperative cancellation point: throws CancelledError once the
  /// token tripped, returns otherwise.
  void check() const {
    const CancelCause why = cause();
    if (why != CancelCause::None) throw CancelledError(why);
  }

 private:
  /// First cause wins: a concurrent cancel() and deadline trip latch exactly
  /// one value, and it never changes afterwards.
  void latch(CancelCause cause) const noexcept {
    unsigned char expected = 0;
    cause_.compare_exchange_strong(expected,
                                   static_cast<unsigned char>(cause),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  }

  const CancelToken* parent_ = nullptr;
  mutable std::atomic<unsigned char> cause_{0};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock ns; 0 = none
};

}  // namespace mtg
