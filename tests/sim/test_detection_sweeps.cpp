// Parameterized detection sweeps: exhaustive fault × test matrices pinning
// down the detection capability of the library's published tests.
#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

namespace mtg {
namespace {

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

// --- every simple static fault is covered by March SS and March SL ---------

class SimpleFaultSweep : public ::testing::TestWithParam<SimpleFault> {};

TEST_P(SimpleFaultSweep, CoveredByMarchSs) {
  const FaultSimulator simulator(SimulatorOptions{5, true, 10});
  const SimpleFault& fault = GetParam();
  for (const FaultInstance& inst : instantiate(fault, 5, 0)) {
    EXPECT_TRUE(simulator.detects(march_ss(), inst)) << inst.description;
  }
}

TEST_P(SimpleFaultSweep, CoveredByMarchSl) {
  const FaultSimulator simulator(SimulatorOptions{5, true, 10});
  const SimpleFault& fault = GetParam();
  for (const FaultInstance& inst : instantiate(fault, 5, 0)) {
    EXPECT_TRUE(simulator.detects(march_sl(), inst)) << inst.description;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSimpleStaticFaults, SimpleFaultSweep,
    ::testing::ValuesIn(standard_simple_static_faults().simple),
    [](const ::testing::TestParamInfo<SimpleFault>& param_info) {
      return sanitize(param_info.param.name) + "_" + std::to_string(param_info.index);
    });

// --- every single-cell linked fault is covered by the linked-fault tests ---

class SingleCellLinkedSweep : public ::testing::TestWithParam<LinkedFault> {};

TEST_P(SingleCellLinkedSweep, CoveredByAbl1AndLf1AndSl) {
  const FaultSimulator simulator(SimulatorOptions{5, true, 10});
  for (const MarchTest& test : {march_abl1(), march_lf1(), march_sl()}) {
    for (const FaultInstance& inst : instantiate(GetParam(), 5, 0)) {
      EXPECT_TRUE(simulator.detects(test, inst))
          << test.name() << " vs " << inst.description;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultListTwo, SingleCellLinkedSweep,
    ::testing::ValuesIn(enumerate_single_cell_linked_faults()),
    [](const ::testing::TestParamInfo<LinkedFault>& param_info) {
      return sanitize(param_info.param.name()) + "_" + std::to_string(param_info.index);
    });

// --- no catalog test ever raises a false alarm ------------------------------

class FalseAlarmSweep : public ::testing::TestWithParam<MarchTest> {};

TEST_P(FalseAlarmSweep, FaultFreeMemoryPasses) {
  // A march test must pass on a fault-free memory for every power-on value
  // and every ⇕ order assignment (otherwise it rejects good parts).
  const FaultSimulator simulator(SimulatorOptions{6, true, 10});
  FaultInstance none;
  none.description = "fault-free";
  const DetectionResult result = simulator.simulate(GetParam(), none);
  EXPECT_FALSE(result.detected);
  EXPECT_FALSE(result.first_event.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogTests, FalseAlarmSweep,
    ::testing::ValuesIn(all_catalog_tests()),
    [](const ::testing::TestParamInfo<MarchTest>& param_info) {
      return sanitize(param_info.param.name());
    });

// --- detection is layout-symmetric ------------------------------------------

class LayoutSymmetrySweep : public ::testing::TestWithParam<LinkedFault> {};

TEST_P(LayoutSymmetrySweep, SlCoversEveryAddressAssignment) {
  // March SL applies its elements in both orders, so coverage must not
  // depend on where the fault's cells sit in the address space.
  const FaultSimulator simulator(SimulatorOptions{6, true, 10});
  for (const FaultInstance& inst : instantiate(GetParam(), 6, 0)) {
    EXPECT_TRUE(simulator.detects(march_sl(), inst)) << inst.description;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TwoCellSample, LayoutSymmetrySweep,
    ::testing::ValuesIn([] {
      // A deterministic sample of the two-cell linked faults (every 10th) —
      // the full list is exercised by the calibration integration test.
      std::vector<LinkedFault> sample;
      const auto all = enumerate_two_cell_linked_faults();
      for (std::size_t i = 0; i < all.size(); i += 10) sample.push_back(all[i]);
      return sample;
    }()),
    [](const ::testing::TestParamInfo<LinkedFault>& param_info) {
      return sanitize(param_info.param.name()) + "_" + std::to_string(param_info.index);
    });

}  // namespace
}  // namespace mtg
