#include "fp/afp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fp/fp_library.hpp"

namespace mtg {
namespace {

// Section 2 of the paper: FP = <0w1;0/1/-> on a 2-cell memory yields
//   AFP1 = (00, w0_1, 11, 10)  (aggressor = cell 0)
//   AFP2 = (00, w1_1, 11, 01)  (aggressor = cell 1)
TEST(Afp, PaperExampleBothInstantiations) {
  const FaultPrimitive fp =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);

  const auto afp1 = expand_afps(fp, /*a=*/0, /*v=*/1, /*model=*/2);
  ASSERT_EQ(afp1.size(), 1u);
  EXPECT_EQ(afp1[0].initial.to_string(), "00");
  EXPECT_EQ(to_string(afp1[0].sensitize), "w1[0]");
  EXPECT_EQ(afp1[0].faulty.to_string(), "11");
  EXPECT_EQ(afp1[0].good.to_string(), "10");

  const auto afp2 = expand_afps(fp, /*a=*/1, /*v=*/0, /*model=*/2);
  ASSERT_EQ(afp2.size(), 1u);
  EXPECT_EQ(afp2[0].initial.to_string(), "00");
  EXPECT_EQ(to_string(afp2[0].sensitize), "w1[1]");
  EXPECT_EQ(afp2[0].faulty.to_string(), "11");
  EXPECT_EQ(afp2[0].good.to_string(), "01");
}

// Definition 5 example: the AFPs above are covered by
//   TP1 = (00, w0_1, r1_0)  and  TP2 = (00, w1_1, r0_0)
// (read the victim, expecting the fault-free value).
TEST(TestPattern, PaperExampleTestPatterns) {
  const FaultPrimitive fp =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);

  const auto afp1 = expand_afps(fp, 0, 1, 2);
  const TestPattern tp1 = to_test_pattern(afp1[0]);
  EXPECT_EQ(tp1.initial.to_string(), "00");
  EXPECT_EQ(to_string(tp1.ops), "w1[0],r0[1]");
  EXPECT_EQ(tp1.end_state.to_string(), "11");
  EXPECT_EQ(tp1.victim, 1u);

  const auto afp2 = expand_afps(fp, 1, 0, 2);
  const TestPattern tp2 = to_test_pattern(afp2[0]);
  EXPECT_EQ(to_string(tp2.ops), "w1[1],r0[0]");
}

TEST(Afp, BackgroundEnumeration) {
  // A single-cell FP on a 3-cell model leaves two free cells → 4 AFPs.
  const auto afps = expand_afps(FaultPrimitive::tf(Bit::Zero), 1, 1, 3);
  EXPECT_EQ(afps.size(), 4u);
  for (const Afp& afp : afps) {
    EXPECT_EQ(afp.initial.get(1), Bit::Zero);       // victim state fixed
    EXPECT_EQ(afp.faulty.get(1), Bit::Zero);        // transition failed
    EXPECT_EQ(afp.good.get(1), Bit::One);           // fault-free transition
    EXPECT_EQ(afp.initial.get(0), afp.faulty.get(0));  // background kept
    EXPECT_EQ(afp.initial.get(2), afp.faulty.get(2));
  }
}

TEST(Afp, StateFaultHasEmptySensitization) {
  const auto afps = expand_afps(FaultPrimitive::sf(Bit::One), 0, 0, 1);
  ASSERT_EQ(afps.size(), 1u);
  EXPECT_TRUE(afps[0].sensitize.empty());
  EXPECT_EQ(afps[0].initial.to_string(), "1");
  EXPECT_EQ(afps[0].faulty.to_string(), "0");
  EXPECT_EQ(afps[0].good.to_string(), "1");
  const TestPattern tp = to_test_pattern(afps[0]);
  EXPECT_EQ(to_string(tp.ops), "r1[0]");
}

TEST(Afp, SensitizingReadAnnotatedWithFaultFreeValue) {
  const auto afps = expand_afps(FaultPrimitive::drdf(Bit::One), 0, 0, 1);
  ASSERT_EQ(afps.size(), 1u);
  EXPECT_EQ(to_string(afps[0].sensitize), "r1[0]");
  const TestPattern tp = to_test_pattern(afps[0]);
  // Observation read expects the fault-free value (still 1).
  EXPECT_EQ(to_string(tp.ops), "r1[0],r1[0]");
}

TEST(Afp, ValidationGuards) {
  const FaultPrimitive single = FaultPrimitive::tf(Bit::Zero);
  const FaultPrimitive coupled =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);
  EXPECT_THROW(expand_afps(single, 0, 1, 2), Error);   // 1-cell FP: a == v
  EXPECT_THROW(expand_afps(coupled, 1, 1, 2), Error);  // 2-cell FP: a != v
  EXPECT_THROW(expand_afps(coupled, 0, 2, 2), Error);  // out of range
}

TEST(Afp, EveryStaticFpExpandsConsistently) {
  // Property: Gv differs from Fv exactly at the victim (or the FP is a pure
  // read fault), for every FP in the static library on the 2-cell model.
  for (const FaultPrimitive& fp : all_static_fps()) {
    const std::size_t a = fp.is_two_cell() ? 0 : 1;
    for (const Afp& afp : expand_afps(fp, a, 1, 2)) {
      for (std::size_t cell = 0; cell < 2; ++cell) {
        if (cell == afp.victim) continue;
        EXPECT_EQ(afp.faulty.get(cell), afp.good.get(cell)) << fp.notation();
      }
      const bool state_deviates =
          afp.faulty.get(afp.victim) != afp.good.get(afp.victim);
      EXPECT_TRUE(state_deviates || fp.is_immediately_detecting())
          << fp.notation();
    }
  }
}

}  // namespace
}  // namespace mtg
