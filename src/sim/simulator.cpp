#include "sim/simulator.hpp"

#include <sstream>

#include "common/error.hpp"
#include "sim/packed_engine.hpp"

namespace mtg {
namespace {

/// Runs the packed engine when the options and the instance allow it;
/// std::nullopt sends the caller to the scalar reference path.
std::optional<PackedOutcome> try_packed_run(const SimulatorOptions& options,
                                            const MarchTest& test,
                                            const FaultInstance& instance,
                                            bool stop_at_first_escape) {
  if (!options.use_packed_engine || !PackedFaultSim::supports(instance)) {
    return std::nullopt;
  }
  require(
      FaultSimulator::any_order_count(test) <= options.max_any_order_elements,
      "too many ⇕ elements to enumerate order assignments");
  require_addresses_fit(instance, options.memory_size);
  const CompiledTest compiled = compile_march_test(test);
  const PackedFaultSim sim(instance);
  return packed_run(test, compiled, sim, options.both_power_on_states,
                    stop_at_first_escape);
}

}  // namespace

std::string DetectionEvent::to_string() const {
  std::ostringstream out;
  out << "element #" << element_index << ", cell " << address << ", op #"
      << op_index << ": read " << observed << ", expected " << expected;
  return out.str();
}

FaultSimulator::FaultSimulator(SimulatorOptions options) : options_(options) {
  require(options_.memory_size >= 3,
          "the simulator needs at least 3 cells to host three-cell faults");
}

std::string FaultSimulator::validity_violation(const MarchTest& test) {
  // Symbolic fault-free machine: every cell starts unknown ('-').
  // March elements keep all cells in lock-step, so one symbolic value
  // suffices per sweep position; we still model cells individually to stay
  // faithful for exotic hand-written tests.
  std::vector<Tri> cells(4, Tri::X);  // 4 cells are enough to be faithful
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    const MarchElement& element = test.elements()[e];
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
      for (std::size_t i = 0; i < element.ops().size(); ++i) {
        const Op op = element.ops()[i];
        if (is_write(op)) {
          cells[cell] = to_tri(written_value(op));
        } else if (is_read(op)) {
          const auto expected = expected_value(op);
          if (!expected.has_value()) continue;  // bare read: no claim
          if (cells[cell] == Tri::X) {
            return "element #" + std::to_string(e) + " (" +
                   element.to_string() + "), op #" + std::to_string(i) +
                   ": reads an expected value from an undetermined cell";
          }
          if (to_bit(cells[cell]) != *expected) {
            return "element #" + std::to_string(e) + " (" +
                   element.to_string() + "), op #" + std::to_string(i) +
                   ": expects " + std::string(1, to_char(*expected)) +
                   " but the fault-free machine holds " +
                   std::string(1, to_char(cells[cell]));
          }
        }
      }
    }
  }
  return {};
}

void FaultSimulator::validate(const MarchTest& test) {
  const std::string violation = validity_violation(test);
  require(violation.empty(),
          "march test '" + test.name() + "' is invalid: " + violation);
}

std::size_t FaultSimulator::any_order_count(const MarchTest& test) {
  std::size_t count = 0;
  for (const MarchElement& e : test.elements()) {
    if (e.order() == AddressOrder::Any) ++count;
  }
  return count;
}

std::optional<DetectionEvent> FaultSimulator::run_scenario(
    const MarchTest& test, const FaultInstance& instance, Bit power_on,
    std::size_t any_order_mask) const {
  const std::size_t n = options_.memory_size;
  FaultyMemory faulty(n, instance.fps, instance.decoders);
  faulty.power_on_uniform(power_on);
  MemoryState good(n, power_on);

  std::size_t any_index = 0;
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    const MarchElement& element = test.elements()[e];
    AddressOrder order = element.order();
    if (order == AddressOrder::Any) {
      order = (any_order_mask >> any_index) & 1u ? AddressOrder::Down
                                                 : AddressOrder::Up;
      ++any_index;
    }
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t address =
          order == AddressOrder::Up ? step : n - 1 - step;
      for (std::size_t i = 0; i < element.ops().size(); ++i) {
        const Op op = element.ops()[i];
        if (is_write(op)) {
          const Bit value = written_value(op);
          good.set(address, value);
          faulty.write(address, value);
        } else if (is_read(op)) {
          const Bit expected = good.get(address);
          const Bit observed = faulty.read(address);
          if (observed != expected) {
            return DetectionEvent{e, address, i, expected, observed};
          }
        } else {
          faulty.wait(address);
        }
      }
    }
  }
  return std::nullopt;
}

DetectionResult FaultSimulator::simulate(const MarchTest& test,
                                         const FaultInstance& instance) const {
  if (const auto outcome = try_packed_run(options_, test, instance,
                                          /*stop_at_first_escape=*/false)) {
    DetectionResult result;
    result.detected = outcome->all_detected;
    if (outcome->first_detected.has_value()) {
      // Replay the lowest detecting scenario on the scalar machine for the
      // op-level diagnostics (one scenario — cheap).
      result.first_event =
          run_scenario(test, instance, outcome->first_detected->first,
                       outcome->first_detected->second);
    }
    result.escape_scenario = outcome->first_escape;
    return result;
  }
  return simulate_scalar(test, instance);
}

DetectionResult FaultSimulator::simulate_scalar(
    const MarchTest& test, const FaultInstance& instance) const {
  const std::size_t any_count = any_order_count(test);
  require(any_count <= options_.max_any_order_elements,
          "too many ⇕ elements to enumerate order assignments");
  const std::size_t combos = std::size_t{1} << any_count;

  DetectionResult result;
  result.detected = true;
  std::vector<Bit> power_ons = {Bit::Zero};
  if (options_.both_power_on_states) power_ons.push_back(Bit::One);

  for (Bit power_on : power_ons) {
    for (std::size_t mask = 0; mask < combos; ++mask) {
      const auto event = run_scenario(test, instance, power_on, mask);
      if (event.has_value()) {
        if (!result.first_event.has_value()) result.first_event = event;
      } else {
        result.detected = false;
        if (!result.escape_scenario.has_value()) {
          result.escape_scenario = std::make_pair(power_on, mask);
        }
      }
    }
  }
  return result;
}

bool FaultSimulator::detects(const MarchTest& test,
                             const FaultInstance& instance) const {
  if (const auto outcome = try_packed_run(options_, test, instance,
                                          /*stop_at_first_escape=*/true)) {
    return outcome->all_detected;
  }
  return detects_scalar(test, instance);
}

bool FaultSimulator::detects_all(
    const MarchTest& test, const std::vector<FaultInstance>& instances) const {
  if (!options_.use_packed_engine) {
    for (const FaultInstance& instance : instances) {
      if (!detects_scalar(test, instance)) return false;
    }
    return true;
  }
  const CompiledTest compiled = compile_march_test(test);
  for (const FaultInstance& instance : instances) {
    if (!detects_compiled(test, compiled, instance)) return false;
  }
  return true;
}

bool FaultSimulator::detects_compiled(const MarchTest& test,
                                      const CompiledTest& compiled,
                                      const FaultInstance& instance) const {
  require(compiled.any_count <= options_.max_any_order_elements,
          "too many ⇕ elements to enumerate order assignments");
  if (!options_.use_packed_engine || !PackedFaultSim::supports(instance)) {
    return detects_scalar(test, instance);
  }
  require_addresses_fit(instance, options_.memory_size);
  const PackedFaultSim sim(instance);
  return packed_run(test, compiled, sim, options_.both_power_on_states,
                    /*stop_at_first_escape=*/true)
      .all_detected;
}

bool FaultSimulator::detects_scalar(const MarchTest& test,
                                    const FaultInstance& instance) const {
  // Fast path of simulate(): bail out on the first escaping scenario.
  const std::size_t any_count = any_order_count(test);
  require(any_count <= options_.max_any_order_elements,
          "too many ⇕ elements to enumerate order assignments");
  const std::size_t combos = std::size_t{1} << any_count;
  std::vector<Bit> power_ons = {Bit::Zero};
  if (options_.both_power_on_states) power_ons.push_back(Bit::One);
  for (Bit power_on : power_ons) {
    for (std::size_t mask = 0; mask < combos; ++mask) {
      if (!run_scenario(test, instance, power_on, mask).has_value()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mtg
