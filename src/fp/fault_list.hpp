// Fault lists: the target sets of the generation algorithm.
//
// The paper evaluates two lists of *realistic static linked faults* taken
// from Hamdioui et al. [10]:
//
//   * Fault List #1 — single-, two- and three-cell static linked faults;
//   * Fault List #2 — the single-cell static linked faults only.
//
// We rebuild these constructively (the original tables are not in the
// reproduced paper): starting from the complete static FP space we keep every
// ordered pair (FP1, FP2) that satisfies the linking conditions of
// Definitions 6/7 — F2 = not(F1), FP2 sensitized in the state Fv1 the faulty
// memory reaches after FP1 (I2 = Fv1), FP1 maskable — over every address
// layout.  This matches the paper's claim of targeting "the complete set of
// Static Linked Faults".  See DESIGN.md, "Substitutions", for calibration
// against the published March SL / March ABL tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fp/decoder_fault.hpp"
#include "fp/fault_primitive.hpp"
#include "fp/linked_fault.hpp"

namespace mtg {

/// A simple (un-linked) fault: one FP plus its address layout.
struct SimpleFault {
  FaultPrimitive fp;
  std::int8_t a_pos = -1;  ///< aggressor position (-1 for single-cell FPs)
  std::uint8_t v_pos = 0;  ///< victim position
  std::string name;

  int num_cells() const noexcept { return fp.num_cells(); }

  static SimpleFault single(FaultPrimitive fp);
  /// Two-cell simple fault; `aggressor_below` selects the a<v layout.
  static SimpleFault coupled(FaultPrimitive fp, bool aggressor_below);

  /// Content equality: the name is presentation metadata (it is derived from
  /// the FP and layout by the factories) and does not participate.
  friend bool operator==(const SimpleFault& x, const SimpleFault& y) {
    return x.fp == y.fp && x.a_pos == y.a_pos && x.v_pos == y.v_pos;
  }
  friend bool operator!=(const SimpleFault& x, const SimpleFault& y) {
    return !(x == y);
  }
};

/// A named list of target faults (simple, linked and/or address-decoder).
struct FaultList {
  std::string name;
  std::vector<SimpleFault> simple;
  std::vector<LinkedFault> linked;
  std::vector<DecoderFault> decoder;

  std::size_t size() const noexcept {
    return simple.size() + linked.size() + decoder.size();
  }

  /// Content equality, name excluded (metadata, like MarchTest::operator==):
  /// two lists that serialize to the same canonical string compare equal —
  /// parse(to_canonical_string(x)) == x is the round-trip contract of the
  /// catalog text format (src/format/fault_list_text.hpp).
  friend bool operator==(const FaultList& x, const FaultList& y) {
    return x.simple == y.simple && x.linked == y.linked &&
           x.decoder == y.decoder;
  }
  friend bool operator!=(const FaultList& x, const FaultList& y) {
    return !(x == y);
  }
};

/// FP1 candidates: FPs whose sensitization does not expose them on the spot.
bool is_maskable(const FaultPrimitive& fp);

/// FP2 candidates for a given FP1: v_state == F1 and F == not(F1).
bool can_mask(const FaultPrimitive& fp2, const FaultPrimitive& fp1);

/// All single-cell static linked faults (both FPs on the victim cell).
std::vector<LinkedFault> enumerate_single_cell_linked_faults();

/// All two-cell static linked faults: same-aggressor CF pairs, CF linked
/// with a single-cell FP, and single-cell FP linked with a CF; each in both
/// the a<v and v<a layouts.
std::vector<LinkedFault> enumerate_two_cell_linked_faults();

/// All three-cell static linked faults: CF pairs with distinct aggressors,
/// in all six address orderings of (a1, a2, v).
std::vector<LinkedFault> enumerate_three_cell_linked_faults();

/// Single-cell linked faults with a retention FP on at least one side of the
/// link (e.g. TF↑→DRF0: a pause masks the transition fault, or DRF0→WDF1:
/// a write destroys the decayed value).  Pairs without a wait sensitizer
/// belong to enumerate_single_cell_linked_faults().
std::vector<LinkedFault> enumerate_retention_linked_faults();

/// True when any FP of the list (simple or linked) carries the wait
/// sensitizer `t` — the generator then proposes wait ops as candidates.
bool targets_retention(const FaultList& list);

/// Fault List #2 of the paper: single-cell static linked faults.
FaultList fault_list_2();

/// Fault List #1 of the paper: single-, two- and three-cell static LFs.
FaultList fault_list_1();

/// All simple (un-linked) static faults: the 12 single-cell FPs plus the 36
/// two-cell FPs in both layouts — the target of March SS; provided for the
/// library's broader use and for baseline experiments.
FaultList standard_simple_static_faults();

/// Data-retention faults: the simple DRF/CFrt faults (CFrt in both layouts)
/// plus the retention linked faults.  Only tests containing `t` ops can
/// cover this list.
FaultList retention_fault_list();

/// Canonical serialization of `list`: one line per fault, built from the
/// primitive fields only (FP notation, numeric layout positions, decoder
/// class/bit/wired), with the list name excluded — it is presentation
/// metadata, and two lists with equal content must serialize identically.
/// Deterministic across runs and platforms; the domain of stable_hash().
/// Format drift is locked by golden hashes in tests/fp/test_fault_list.cpp.
std::string to_canonical_string(const FaultList& list);

/// Stable 64-bit content hash (FNV-1a over to_canonical_string(list)) —
/// one half of the sweep store's record key (store/sweep_store.hpp).
std::uint64_t stable_hash(const FaultList& list);

/// Address-decoder faults (fp/decoder_fault.hpp): the four classical decoder
/// fault classes — no access, wrong cell, multiple cells (wired-AND and
/// wired-OR) and multiple addresses — on every address line
/// bit ∈ [0, max_address_bits).  A fault on line `bit` has instances only in
/// memories with 2^bit < n, so coverage of this list genuinely varies with
/// the simulated memory size (the default 12 lines span n up to 4096).
FaultList decoder_fault_list(std::size_t max_address_bits = 12);

}  // namespace mtg
