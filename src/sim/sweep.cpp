#include "sim/sweep.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace mtg {

std::vector<SweepPoint> sweep_coverage(const MarchTest& test,
                                       const FaultList& list,
                                       const std::vector<std::size_t>& sizes,
                                       const SweepOptions& options) {
  FaultSimulator::validate(test);
  for (const std::size_t n : sizes) {
    require(n >= 3, "sweep_coverage: every memory size must be >= 3, got " +
                        std::to_string(n));
  }

  std::vector<SweepPoint> points(sizes.size());
  const auto evaluate = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      SimulatorOptions sim_options;
      sim_options.memory_size = sizes[i];
      sim_options.both_power_on_states = options.both_power_on_states;
      sim_options.max_any_order_elements = options.max_any_order_elements;
      sim_options.use_packed_engine = options.use_packed_engine;
      // Each point evaluates sequentially on its worker: the parallelism
      // lives across sweep points, not inside them.
      sim_options.coverage_threads = 1;
      points[i].memory_size = sizes[i];
      points[i].report = evaluate_coverage(FaultSimulator(sim_options), test,
                                           list,
                                           options.max_instances_per_fault);
    }
  };

  // The caller participates (coverage.cpp's pattern), so the pool only needs
  // workers for the other sweep points; single-point sweeps and threads == 1
  // skip pool construction entirely.
  const std::size_t threads = ThreadPool::resolve_thread_count(options.threads);
  const std::size_t workers =
      std::min(threads - 1, sizes.size() > 0 ? sizes.size() - 1 : 0);
  if (workers == 0) {
    evaluate(0, 0, sizes.size());
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(sizes.size(), /*chunk=*/1, evaluate);
  }
  return points;
}

std::string sweep_summary(const std::vector<SweepPoint>& points) {
  std::ostringstream out;
  out << "      n   faults covered   instances detected   coverage\n";
  for (const SweepPoint& point : points) {
    const CoverageReport& r = point.report;
    out << std::setw(7) << point.memory_size << "   " << std::setw(6)
        << r.faults_covered() << "/" << r.faults_total() << "        "
        << std::setw(8) << r.instances_detected() << "/" << r.instances_total()
        << "        " << std::fixed << std::setprecision(2)
        << r.fault_coverage_percent() << "%\n";
  }
  return out.str();
}

}  // namespace mtg
