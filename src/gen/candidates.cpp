#include "gen/candidates.hpp"

#include <algorithm>
#include <set>

namespace mtg {
namespace {

void dfs(std::vector<Op>& seq, Bit value, std::size_t max_len,
         bool include_wait, std::set<std::vector<Op>>& out) {
  if (!seq.empty()) out.insert(seq);
  if (seq.size() >= max_len) return;

  const auto run_of_two = [&](Op op) {
    const std::size_t len = seq.size();
    return len >= 2 && seq[len - 1] == op && seq[len - 2] == op;
  };

  std::vector<Op> alphabet = {make_read(value), Op::W0, Op::W1};
  if (include_wait) alphabet.push_back(Op::T);
  for (Op op : alphabet) {
    if (run_of_two(op)) continue;  // three identical ops in a row are useless
    // Consecutive waits are idempotent: the first pause already decayed
    // every retention victim this cell visit can decay.
    if (is_wait(op) && !seq.empty() && is_wait(seq.back())) continue;
    seq.push_back(op);
    dfs(seq, is_write(op) ? written_value(op) : value, max_len, include_wait,
        out);
    seq.pop_back();
  }
}

}  // namespace

std::vector<MarchElement> enumerate_march_elements(std::size_t max_len,
                                                   bool include_wait) {
  std::set<std::vector<Op>> sequences;
  for (Bit entry : {Bit::Zero, Bit::One}) {
    std::vector<Op> seq;
    dfs(seq, entry, max_len, include_wait, sequences);
  }
  std::vector<MarchElement> pool;
  pool.reserve(sequences.size() * 2);
  for (const auto& seq : sequences) {
    pool.emplace_back(AddressOrder::Up, seq);
    pool.emplace_back(AddressOrder::Down, seq);
  }
  return pool;
}

}  // namespace mtg
