// Fault coverage evaluation: a march test against a whole fault list.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/fault_instance.hpp"
#include "sim/simulator.hpp"

namespace mtg {

class CancelToken;       // common/cancel.hpp
struct CompiledTest;     // sim/packed_engine.hpp

/// Per-fault coverage outcome.
struct CoverageEntry {
  std::size_t fault_index = 0;
  std::string fault;               ///< fault name
  std::size_t instances = 0;       ///< concrete instances simulated
  std::size_t detected = 0;        ///< instances detected
  bool covered = false;            ///< all instances detected
  std::string escape_description;  ///< an undetected instance, if any
};

struct CoverageReport {
  std::string test_name;
  std::string list_name;
  std::size_t test_complexity = 0;
  std::vector<CoverageEntry> entries;

  std::size_t faults_total() const noexcept { return entries.size(); }
  std::size_t faults_covered() const;
  std::size_t instances_total() const;
  std::size_t instances_detected() const;

  /// True when the report covers no faults at all — an empty fault list.
  /// Coverage of nothing is reported as 0% and not-full (not the vacuous
  /// 100%/full a plain ratio would claim); summary() flags it explicitly.
  bool empty() const noexcept { return entries.empty(); }
  bool full_coverage() const {
    return !empty() && faults_covered() == faults_total();
  }

  /// Fault coverage in percent, at fault granularity (0 for an empty list).
  double fault_coverage_percent() const;
  /// Fault coverage in percent, at instance granularity (0 with no
  /// instances).
  double instance_coverage_percent() const;

  /// Names of uncovered faults.
  std::vector<std::string> missed_faults() const;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const CoverageReport& report);

/// Precomputed evaluation artifacts the matrix service shares across jobs
/// (service/matrix_service.hpp).  Both pointers are optional; when set they
/// MUST match the (test, list, memory size, cap) of the call — the service
/// guarantees that by keying its caches on the canonical-form stable hashes.
/// The borrowed artifacts are read-only and may be shared by any number of
/// concurrent evaluations.
struct CoverageContext {
  /// compile_march_test(test) — the compiled traces and ⇕ numbering
  /// (packed path only; the scalar path ignores it).
  const CompiledTest* compiled = nullptr;
  /// instantiate_all(list, memory_size, max_instances_per_fault).
  const std::vector<FaultInstance>* instances = nullptr;
};

/// Simulates every instance of every fault of `list` against `test`.
/// `max_instances_per_fault` bounds the instantiation for large memories
/// (0 = full enumeration; see instantiate_all): per-fault verdicts then
/// refer to the deterministic layout sample, not the full layout space.
///
/// `cancel` (optional) is polled at chunk granularity: once the token trips,
/// the evaluation throws CancelledError in bounded time — a handful of
/// instance simulations — and NO report is produced (an interrupted
/// evaluation never returns partial counts).  `context` (optional) supplies
/// pre-compiled artifacts; see CoverageContext.
CoverageReport evaluate_coverage(const FaultSimulator& simulator,
                                 const MarchTest& test, const FaultList& list,
                                 std::size_t max_instances_per_fault = 0,
                                 const CancelToken* cancel = nullptr,
                                 const CoverageContext* context = nullptr);

}  // namespace mtg
