#include "fp/fp_library.hpp"

namespace mtg {

std::vector<FaultPrimitive> all_single_cell_static_fps() {
  std::vector<FaultPrimitive> fps;
  for (Bit s : {Bit::Zero, Bit::One}) {
    fps.push_back(FaultPrimitive::sf(s));
    fps.push_back(FaultPrimitive::tf(s));
    fps.push_back(FaultPrimitive::wdf(s));
    fps.push_back(FaultPrimitive::rdf(s));
    fps.push_back(FaultPrimitive::drdf(s));
    fps.push_back(FaultPrimitive::irf(s));
  }
  return fps;
}

std::vector<std::pair<Bit, SenseOp>> cfds_aggressor_sensitizers() {
  return {{Bit::Zero, SenseOp::W0}, {Bit::Zero, SenseOp::W1},
          {Bit::One, SenseOp::W0},  {Bit::One, SenseOp::W1},
          {Bit::Zero, SenseOp::Rd}, {Bit::One, SenseOp::Rd}};
}

std::vector<FaultPrimitive> all_two_cell_static_fps() {
  std::vector<FaultPrimitive> fps;
  for (Bit a : {Bit::Zero, Bit::One}) {
    for (Bit v : {Bit::Zero, Bit::One}) {
      fps.push_back(FaultPrimitive::cfst(a, v));
      fps.push_back(FaultPrimitive::cfwd(a, v));
      fps.push_back(FaultPrimitive::cfrd(a, v));
      fps.push_back(FaultPrimitive::cfdr(a, v));
      fps.push_back(FaultPrimitive::cfir(a, v));
    }
    for (Bit from : {Bit::Zero, Bit::One}) {
      fps.push_back(FaultPrimitive::cftr(a, from));
    }
  }
  for (const auto& [a_state, a_op] : cfds_aggressor_sensitizers()) {
    for (Bit v : {Bit::Zero, Bit::One}) {
      fps.push_back(FaultPrimitive::cfds(a_state, a_op, v));
    }
  }
  return fps;
}

std::vector<FaultPrimitive> all_static_fps() {
  std::vector<FaultPrimitive> fps = all_single_cell_static_fps();
  std::vector<FaultPrimitive> two = all_two_cell_static_fps();
  fps.insert(fps.end(), two.begin(), two.end());
  return fps;
}

std::vector<FaultPrimitive> all_retention_fps() {
  std::vector<FaultPrimitive> fps;
  for (Bit s : {Bit::Zero, Bit::One}) fps.push_back(FaultPrimitive::drf(s));
  for (Bit a : {Bit::Zero, Bit::One}) {
    for (Bit v : {Bit::Zero, Bit::One}) {
      fps.push_back(FaultPrimitive::cfrt(a, v));
    }
  }
  return fps;
}

std::vector<FaultPrimitive> all_fps() {
  std::vector<FaultPrimitive> fps = all_static_fps();
  std::vector<FaultPrimitive> retention = all_retention_fps();
  fps.insert(fps.end(), retention.begin(), retention.end());
  return fps;
}

}  // namespace mtg
