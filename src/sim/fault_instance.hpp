// Fault instantiation: binding abstract faults (FP + relative address
// layout) to concrete addresses of an n-cell memory.
//
// A fault model with a k-cell layout yields one instance per strictly
// ascending assignment of k distinct addresses to its layout positions, so
// every relative address order the layout describes is exercised at every
// position in the memory (including the boundary cells, which matters for
// march address-order corner cases).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "fp/semantics.hpp"

namespace mtg {

/// A concrete fault: one or two FPs — or one bound decoder fault — bound to
/// addresses of the simulated memory.  `fault_index` identifies the
/// originating entry of the fault list (simple faults first, then linked,
/// then decoder faults).
struct FaultInstance {
  std::vector<BoundFp> fps;
  /// At most one bound decoder fault; mutually exclusive with `fps`
  /// (fp/decoder_fault.hpp — the deviation is in the addressing).
  std::vector<BoundDecoder> decoders;
  std::size_t fault_index = 0;
  std::string description;

  /// True when simulating the instance never reads absolute cell addresses
  /// — the precondition of the prefix engine's signature-based instance
  /// collapsing (PackedFaultSim::signature()).  Decoder faults read
  /// addresses by construction.
  bool address_free() const noexcept { return decoders.empty(); }
};

/// Instances of a simple fault on an `n`-cell memory.  `max_instances`
/// bounds the enumeration for large memories (0 = unlimited): when the full
/// ascending-subset enumeration exceeds the bound, a deterministic
/// boundary-biased sample of at most `max_instances` layouts is used instead
/// — always including the lowest ({0..k-1}) and highest ({n-k..n-1})
/// layouts, with the rest evenly spaced or drawn from a seeded PRNG (the
/// seed depends only on fault_index, n and k, so sampling is identical
/// across runs and thread counts).
std::vector<FaultInstance> instantiate(const SimpleFault& fault, std::size_t n,
                                       std::size_t fault_index,
                                       std::size_t max_instances = 0);

/// Instances of a linked fault on an `n`-cell memory (same `max_instances`
/// contract as the simple-fault overload).
std::vector<FaultInstance> instantiate(const LinkedFault& fault, std::size_t n,
                                       std::size_t fault_index,
                                       std::size_t max_instances = 0);

/// Instances of a decoder fault on an `n`-cell memory: one per corrupted
/// address a < n whose partner a XOR 2^bit also fits (every a for NoAccess).
/// Returns no instances — not an error — when the memory has no address
/// line `bit` (2^bit >= n): the fault cannot exist there, and
/// evaluate_coverage reports it uncovered at that size.  Above
/// `max_instances` the enumeration keeps a deterministic evenly-spaced
/// sample that always includes the lowest and highest valid addresses.
std::vector<FaultInstance> instantiate(const DecoderFault& fault,
                                       std::size_t n, std::size_t fault_index,
                                       std::size_t max_instances = 0);

/// Instances of every fault in the list; fault_index follows the list order
/// (all simple faults, then all linked faults, then all decoder faults).
/// `max_instances_per_fault` applies the per-fault bound described at
/// instantiate().
std::vector<FaultInstance> instantiate_all(
    const FaultList& list, std::size_t n,
    std::size_t max_instances_per_fault = 0);

/// Number of faults in the list (simple + linked) == 1 + max fault_index.
std::size_t fault_count(const FaultList& list);

/// Name of fault #index in the flattened (simple, then linked) order.
std::string fault_name(const FaultList& list, std::size_t index);

}  // namespace mtg
