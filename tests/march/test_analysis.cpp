#include "march/analysis.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

TEST(Analysis, CountsOperations) {
  const MarchProfile p = analyze(march_c_minus());
  EXPECT_EQ(p.complexity, 10u);
  EXPECT_EQ(p.elements, 6u);
  EXPECT_EQ(p.reads, 5u);
  EXPECT_EQ(p.writes, 5u);
  EXPECT_EQ(p.waits, 0u);
  const MarchProfile g = analyze(march_g());
  EXPECT_EQ(g.waits, 2u);
}

TEST(Analysis, MatsPlusProfile) {
  // {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)} — transition writes observed both ways,
  // no WDF exposure, no double reads.
  const MarchProfile p = analyze(mats_plus());
  EXPECT_TRUE(p.reads_value[0]);
  EXPECT_TRUE(p.reads_value[1]);
  EXPECT_TRUE(p.transition_write_observed[1]);  // w1 then r1
  EXPECT_FALSE(p.transition_write_observed[0]); // final w0 never read back
  EXPECT_FALSE(p.nontransition_write_observed[0]);
  EXPECT_FALSE(p.nontransition_write_observed[1]);
  EXPECT_FALSE(p.double_read[0]);
  EXPECT_FALSE(p.double_read[1]);
}

TEST(Analysis, MarchSsProfileIsComplete) {
  // March SS was designed for all static simple faults: every structural
  // capability must be present.
  const MarchProfile p = analyze(march_ss());
  for (int d = 0; d < 2; ++d) {
    EXPECT_TRUE(p.reads_value[d]) << d;
    EXPECT_TRUE(p.transition_write_observed[d]) << d;
    EXPECT_TRUE(p.nontransition_write_observed[d]) << d;
    EXPECT_TRUE(p.double_read[d]) << d;
    EXPECT_TRUE(p.up_sensitizing_read[d]) << d;
    EXPECT_TRUE(p.down_sensitizing_read[d]) << d;
  }
  EXPECT_TRUE(structural_gaps(march_ss()).empty());
  EXPECT_TRUE(structural_gaps(march_sl()).empty());
}

TEST(Analysis, GapsExplainSimulatorMisses) {
  // The analyzer's structural gaps agree with the simulator: MATS+ misses
  // WDFs and DRDFs, and the gap list says so.
  const auto gaps = structural_gaps(mats_plus());
  EXPECT_FALSE(gaps.empty());
  bool mentions_wdf = false;
  bool mentions_drdf = false;
  for (const std::string& gap : gaps) {
    if (gap.find("WDF") != std::string::npos) mentions_wdf = true;
    if (gap.find("DRDF") != std::string::npos) mentions_drdf = true;
  }
  EXPECT_TRUE(mentions_wdf);
  EXPECT_TRUE(mentions_drdf);
}

TEST(Analysis, AnyOrderElementCountsForBothDirections) {
  const MarchTest t = parse_march_test("{c(w0); c(r0,w1); c(r1,w0)}");
  const MarchProfile p = analyze(t);
  EXPECT_TRUE(p.up_sensitizing_read[0]);
  EXPECT_TRUE(p.down_sensitizing_read[0]);
  EXPECT_TRUE(p.up_sensitizing_read[1]);
  EXPECT_TRUE(p.down_sensitizing_read[1]);
}

TEST(Analysis, RejectsInconsistentTests) {
  EXPECT_THROW(analyze(parse_march_test("{c(w0); ^(r1,w0)}")), Error);
}

TEST(Analysis, CatalogLinkedFaultTestsHaveNoStructuralGaps) {
  for (const MarchTest& test : {march_ss(), march_sl(), march_abl()}) {
    EXPECT_TRUE(structural_gaps(test).empty()) << test.name();
  }
}

TEST(Analysis, GapsAreHeuristicsNotProofs) {
  // March RABL covers Fault List #1 at ~99% despite lacking a ⇓ element
  // that starts with r0 — the faults surface through other reads.  The gap
  // list is a conservative indicator, not an impossibility proof.
  const auto gaps = structural_gaps(march_rabl());
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_NE(gaps[0].find("⇓"), std::string::npos);
}

}  // namespace
}  // namespace mtg
