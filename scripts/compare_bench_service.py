#!/usr/bin/env python3
"""Compare a fresh BENCH_service.json against the committed baseline.

Usage: compare_bench_service.py <current.json> <baseline.json> [--factor 2.0]

Emits a GitHub Actions `::warning::` annotation for every per-thread-count
timing that regressed by more than the factor, and for shape drift (job
count, cache miss counts, instance evaluations).  Timing warnings never fail
the job — CI runners are noisy, so a slowdown is a flag for a human, not a
gate; the hard gates (every job completes, shared artifacts computed exactly
once) live inside bench_service itself, which exits nonzero when they break.

Exit codes: 0 = compared (with or without warnings), 2 = malformed input.
"""

import argparse
import json
import sys


def warn(message: str) -> None:
    print(f"::warning ::{message}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if data.get("bench") != "matrix_service":
        print(f"error: {path} is not a matrix_service summary",
              file=sys.stderr)
        sys.exit(2)
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="regression threshold (default: 2.0x)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    warnings = 0
    baseline_threads = {t["threads"]: t for t in baseline.get("threads", [])}
    for timing in current.get("threads", []):
        ref = baseline_threads.get(timing["threads"])
        if ref is None:
            warn(f"threads={timing['threads']}: no baseline to compare "
                 "against")
            warnings += 1
            continue
        cur_ms = timing.get("ms", 0.0)
        ref_ms = ref.get("ms", 0.0)
        if ref_ms > 0 and cur_ms > args.factor * ref_ms:
            warn(f"threads={timing['threads']}: {cur_ms:.3f} ms vs baseline "
                 f"{ref_ms:.3f} ms (>{args.factor:.1f}x regression)")
            warnings += 1

    # Shape drift: correctness signals, not noise.  bench_service already
    # hard-fails on the ones that matter (completion, single-flight misses);
    # these catch a silently changed workload so stale baselines get
    # refreshed instead of quietly comparing different work.
    for field in ("jobs", "compiled_cache_misses", "instances_cache_misses",
                  "instance_evaluations"):
        if current.get(field, 0) != baseline.get(field, 0):
            warn(f"{field} changed: {current.get(field)} vs baseline "
                 f"{baseline.get(field)} (workload drift — refresh the "
                 "baseline)")
            warnings += 1

    if warnings == 0:
        fastest = min((t.get("ms", 0.0) for t in current.get("threads", [])),
                      default=0.0)
        print(f"OK: within {args.factor:.1f}x of baseline "
              f"(fastest pass {fastest:.3f} ms)")
    else:
        print(f"{warnings} warning(s) — see annotations above")
    return 0


if __name__ == "__main__":
    sys.exit(main())
