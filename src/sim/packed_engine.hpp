// The packed fault-simulation engine: scenario packing + cell collapsing.
//
// This is the shared substrate behind FaultSimulator::detects/simulate,
// evaluate_coverage and the generator's greedy engine.  It produces verdicts
// bit-identical to the scalar reference machine (fp/semantics.hpp executed
// by FaultSimulator::run_scenario) while cutting the cost per fault instance
// from O(ops × n × scenarios) to O(ops × k) word operations, k ≤ 3.
//
// -- Scenario packing (lane layout) -----------------------------------------
//
// A fault instance must be detected under every power-on content in
// {all-0, all-1} and every assignment of concrete orders to the test's ⇕
// elements.  With `a` ⇕ elements and P power-on values there are
// S = P · 2^a scenarios.  Scenario index
//
//     sc = power_on · 2^a + order_mask        (bit j of order_mask = 1
//                                              ⇔ the j-th ⇕ element runs ⇓)
//
// matches FaultSimulator's enumeration order (power-on major, mask minor).
// Scenario sc maps to lane (sc mod 64) of block (sc div 64); every lane of a
// block advances simultaneously through one bitwise word update per memory
// operation.  Lane state is three word families:
//
//   val[slot]  — the faulty machine's value of involved cell `slot`
//   armed[f]   — the edge-trigger flag of state fault f
//   detected   — sticky flag: some read already mismatched in this lane
//
// All fault-primitive semantics (sensitization on the pre-op state, victim
// forcing, read-result overrides, state-fault settle/re-arm fixpoints)
// translate to AND/OR/NOT on these words, because each rule is a pointwise
// function of per-lane bits.  Blocks are plain structs held on the stack:
// the per-scenario FaultyMemory/MemoryState heap allocations of the scalar
// path disappear entirely.
//
// -- Cell collapsing (soundness argument) ------------------------------------
//
// A fault instance binds at most kMaxFps fault primitives, touching at most
// 2·kMaxFps distinct cells (the *involved* cells; ≤ 3 for every instance the
// fault library produces).  Only those cells need simulation:
//
//  1. FPs force only their victim cell, and sensitization conditions read
//     only aggressor/victim states — all involved cells.  An uninvolved cell
//     therefore receives exactly the fault-free sequence of writes, so its
//     faulty value equals its good value at every point of the run, and a
//     read of it can never mismatch.
//  2. An operation addressed at an uninvolved cell cannot fire an
//     op-sensitized FP (the sensitizing address is involved), and cannot
//     fire a state fault either: the scalar machine maintains the invariant
//     "armed ⇒ condition false" at the end of every apply()/power_on()
//     (settle runs to fixpoint, then re-arm only arms false conditions), and
//     an op on an uninvolved cell changes no involved cell, so no condition
//     can have become true.  Wait operations (`t`) are addressed at the
//     visited cell like reads and writes (fp/semantics.hpp): a wait at an
//     uninvolved cell sensitizes nothing (retention FPs decay their victim,
//     an involved cell) and changes no state, while a wait at an involved
//     cell is replayed exactly.  Skipping uninvolved-cell operations is
//     therefore exact, not an approximation.
//  3. Positional correction: within a march element the involved cells must
//     be visited in sweep order — ascending addresses for ⇑ lanes,
//     descending for ⇓ lanes.  run_element() partitions the lanes of a block
//     into the two order groups and replays the element once per group with
//     all updates masked to that group, which preserves the exact relative
//     order of involved-cell visits in every lane.  Operations on the
//     uninvolved cells *between* them are skipped per (2).
//
// Address-decoder instances (fp/decoder_fault.hpp) are cell-collapsed the
// same way — every deviation they introduce is confined to the corrupted
// address and its partner, so (1)–(3) go through verbatim — but unlike FP
// instances their behaviour is *address-aware*: the compiled machine keeps
// the absolute involved addresses (e.g. the AF-na read-back is a bit of the
// corrupted address), not just their relative order.  That is why
// signature(), the prefix engine's instance-collapsing key, refuses them:
// see address_free().
//
// -- Shared good-machine trace ----------------------------------------------
//
// March elements apply the same operation sequence to every cell, so the
// fault-free machine is uniform at every element boundary and the value a
// read expects depends only on (element, op index) and possibly the power-on
// value — never on the address, the ⇕ orders, or the fault instance.
// compile_march_test() precomputes this trace once per test; every instance,
// scenario and thread shares it, replacing the scalar path's per-scenario
// MemoryState good machine with one constant word per read.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bit.hpp"
#include "march/march_test.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {

/// Symbolic good-machine value: the fault-free memory holds either a known
/// constant or whatever uniform value the previous element left behind
/// (ultimately the power-on value).
enum class TraceVal : std::uint8_t { Prev, Zero, One };

/// Good-machine trace of one march element, independent of address order and
/// memory size (see the file comment).
struct ElementTrace {
  /// Per operation: the fault-free value of the visited cell just before
  /// the operation executes (the value a read expects).
  std::vector<TraceVal> pre;
  /// The uniform fault-free value of every cell after the element.
  TraceVal final_value = TraceVal::Prev;
};

ElementTrace compile_element_trace(const MarchElement& element);

/// A march test compiled for packed execution: per-element good-machine
/// traces plus the ⇕-element numbering that defines the scenario lanes.
struct CompiledTest {
  std::vector<ElementTrace> traces;  ///< one per march element
  std::vector<int> any_ordinal;      ///< per element: ⇕ ordinal, or -1
  std::size_t any_count = 0;         ///< number of ⇕ elements
};

CompiledTest compile_march_test(const MarchTest& test);

// -- Scenario lane words -----------------------------------------------------
// Blocks are 64-lane windows [base, base+64) over the scenario indices
// described in the file comment; `base` is always a multiple of 64 and
// `combos` = 2^any_count.

/// Lanes of block `base` that carry a scenario (total = P·combos).
std::uint64_t scenario_active_word(std::size_t base, std::size_t total);

/// Lanes of block `base` whose scenario powers on all-1 (sc >= combos).
std::uint64_t scenario_power1_word(std::size_t base, std::size_t combos);

/// Lanes of block `base` in which ⇕ element `ordinal` runs Down.
std::uint64_t scenario_down_word(std::size_t base, std::size_t combos,
                                 std::size_t ordinal);

/// Lanes of block `base` in which `element` sweeps Down: all/none for fixed
/// orders, the scenario word for ⇕ (`any_ordinal` = CompiledTest::any_ordinal).
std::uint64_t element_down_word(const MarchElement& element, int any_ordinal,
                                std::size_t base, std::size_t combos);

/// Number of set bits (detected lanes etc.).
std::size_t lane_popcount(std::uint64_t word) noexcept;

/// Index of the lowest set bit, or 64 ("no lane") for a zero word.  The
/// zero case is explicitly defined — it used to be undefined behaviour
/// (__builtin_ctzll(0)) and a portable-fallback infinite loop.
std::size_t lowest_lane(std::uint64_t word) noexcept;

/// Builtin-free implementations behind lane_popcount/lowest_lane: the
/// compiled-in path on non-GNU toolchains, and unit-tested directly on every
/// toolchain so the fallback branch is never dead code in CI.
std::size_t lane_popcount_portable(std::uint64_t word) noexcept;
std::size_t lowest_lane_portable(std::uint64_t word) noexcept;

// -- The packed machine ------------------------------------------------------

/// Throws unless every bound FP of `instance` addresses a cell of an
/// `n`-cell memory.  The packed engine never indexes the memory, so every
/// packed entry point calls this to keep the scalar machine's bounds
/// contract (FaultyMemory's constructor) intact.
void require_addresses_fit(const FaultInstance& instance, std::size_t n);

/// One fault instance compiled for packed execution: its involved cells are
/// renamed to dense slots and its fault primitives preprocessed into
/// slot-indexed bit tests.  Construction is allocation-free.
class PackedFaultSim {
 public:
  static constexpr std::size_t kMaxFps = 4;
  static constexpr std::size_t kMaxSlots = 2 * kMaxFps;

  /// True when the instance fits the packed representation (every instance
  /// the fault library instantiates does; callers fall back to the scalar
  /// machine otherwise).  Decoder instances are supported when they respect
  /// the one-decoder-no-FPs shape FaultyMemory enforces.
  static bool supports(const FaultInstance& instance) noexcept {
    return instance.fps.size() <= kMaxFps && instance.decoders.size() <= 1 &&
           (instance.decoders.empty() || instance.fps.empty());
  }

  /// Fault-free machine (no fault primitives, no involved cells).
  PackedFaultSim() = default;

  /// Compiles `instance`; requires supports(instance).
  explicit PackedFaultSim(const FaultInstance& instance);

  std::size_t num_slots() const noexcept { return num_slots_; }
  /// Memory address of involved cell `slot` (slots are address-ascending).
  std::size_t slot_address(std::size_t slot) const { return cells_[slot]; }

  /// True when the compiled machine never reads absolute cell addresses —
  /// its lane evolution depends only on the relative (slot) order of the
  /// involved cells.  All FP instances qualify; decoder instances do not
  /// (their semantics are defined on address bits).  This is the enforced
  /// precondition of signature() and of the prefix engine's instance
  /// collapsing.
  bool address_free() const noexcept { return !has_decoder_; }

  /// Canonical byte string of the compiled fault structure — the slot count
  /// and every lowered FP field — *excluding* the involved-cell addresses.
  /// For address-free instances the simulation never reads the addresses
  /// (power_on/run_element touch cells only through their dense slot
  /// indices, and slots are address-ascending), so two instances with equal
  /// signatures have bit-identical lane evolutions against every test: the
  /// layout only contributes its relative order, which the slot numbering
  /// captures.  The prefix engine (sim/prefix_sim.hpp) collapses
  /// equal-signature instances of a fault into one weighted item.
  ///
  /// Throws (and asserts) unless address_free(): an address-reading
  /// instance — today, any decoder fault — has no address-free signature,
  /// and collapsing two of them with equal structure but different
  /// addresses would silently produce wrong weighted counts (e.g. two AF-na
  /// instances whose read-back bits differ).
  std::string signature() const;

  /// Per-block lane state; plain data, copyable (the greedy engine's trial
  /// evaluation relies on cheap copies).
  struct Lanes {
    std::uint64_t active = 0;    ///< lanes carrying a scenario
    std::uint64_t detected = 0;  ///< sticky detection flags
    std::uint64_t uniform = 0;   ///< good-machine uniform value per lane
    std::array<std::uint64_t, kMaxSlots> val{};   ///< faulty involved cells
    std::array<std::uint64_t, kMaxFps> armed{};   ///< state-fault edge flags
  };

  /// Initialises a block: every lane holds its power-on value everywhere,
  /// state faults settle once and re-arm (scalar power_on semantics).
  void power_on(Lanes& lanes, std::uint64_t active,
                std::uint64_t power1) const;

  /// power_on() for scenario block `base` of a P·combos scenario set
  /// (total = P·combos): computes the active and power-on lane words.
  void power_on_block(Lanes& lanes, std::size_t base, std::size_t total,
                      std::size_t combos, bool both_power_on_states) const;

  /// Replays one march element over every active lane; lanes with their bit
  /// set in `down` sweep ⇓, the others ⇑.  `trace` must be the element's
  /// compiled trace and `lanes.uniform` the good machine's entry value.
  /// Returns the lanes newly detected during this element.
  std::uint64_t run_element(Lanes& lanes, const MarchElement& element,
                            const ElementTrace& trace,
                            std::uint64_t down) const;

 private:
  /// A fault primitive lowered to slot-indexed bit tests.
  struct Fp {
    std::uint8_t v_slot = 0;      ///< victim slot
    std::uint8_t a_slot = 0;      ///< aggressor slot (== v_slot if 1-cell)
    std::uint8_t sense_slot = 0;  ///< slot the sensitizing op must address
    bool two_cell = false;
    bool state_fault = false;
    bool op_on_victim = false;
    SenseOp sense = SenseOp::None;
    bool v_state_one = false;  ///< sensitizing victim state
    bool a_state_one = false;  ///< sensitizing aggressor state (2-cell)
    bool fault_one = false;    ///< F — forced victim value
    bool read_one = false;     ///< R — returned value on a victim read
  };

  /// Lanes (of `within`) whose pre-op state matches the FP's sensitizing
  /// states.
  std::uint64_t condition_word(const Lanes& lanes, const Fp& fp) const;

  void apply_op(Lanes& lanes, Op op, std::size_t slot, std::uint64_t group,
                std::uint64_t expected) const;
  void settle_state_faults(Lanes& lanes, std::uint64_t group,
                           std::array<std::uint64_t, kMaxFps>& fired) const;
  void rearm_state_faults(Lanes& lanes, std::uint64_t group) const;

  /// Decoder-op dispatch of apply_op (has_decoder_ machines only).
  void apply_decoder_op(Lanes& lanes, Op op, std::size_t slot,
                        std::uint64_t group, std::uint64_t expected) const;

  std::array<std::size_t, kMaxSlots> cells_{};  ///< involved addresses, asc
  std::size_t num_slots_ = 0;
  std::array<Fp, kMaxFps> fps_{};
  std::size_t num_fps_ = 0;
  bool has_state_fault_ = false;

  // -- Address-decoder instance (mutually exclusive with fps_) ----------
  bool has_decoder_ = false;
  DecoderFaultClass decoder_cls_ = DecoderFaultClass::NoAccess;
  std::uint8_t decoder_a_slot_ = 0;  ///< slot of the corrupted address
  std::uint8_t decoder_v_slot_ = 0;  ///< slot of the partner cell
  /// NoAccess: the address-coupled read-back bit; MultipleCells: wired-OR.
  bool decoder_read_one_ = false;
};

// -- Full-test runner --------------------------------------------------------

/// Verdict of running every scenario of one instance against one test.
struct PackedOutcome {
  bool all_detected = true;  ///< detected in every scenario (covered)
  /// Lowest detecting scenario (power-on, ⇕-order mask), if any.
  std::optional<std::pair<Bit, std::size_t>> first_detected;
  /// Lowest escaping scenario, if any.
  std::optional<std::pair<Bit, std::size_t>> first_escape;
};

/// Runs every (power-on, ⇕-order) scenario of `instance` against `test`.
/// `compiled` must be compile_march_test(test).  With `stop_at_first_escape`
/// the run aborts at the first block containing an undetected scenario (the
/// detects() fast path); first_detected is then only valid up to that block.
PackedOutcome packed_run(const MarchTest& test, const CompiledTest& compiled,
                         const PackedFaultSim& sim, bool both_power_on_states,
                         bool stop_at_first_escape);

}  // namespace mtg
