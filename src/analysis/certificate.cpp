#include "analysis/certificate.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "format/catalog_io.hpp"
#include "format/reader.hpp"
#include "march/parser.hpp"
#include "sim/coverage.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

std::size_t skip_ws(std::string_view line, std::size_t pos) {
  const std::size_t next = line.find_first_not_of(" \t", pos);
  return next == std::string_view::npos ? line.size() : next;
}

std::string_view read_token(std::string_view line, std::size_t& pos) {
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
  return line.substr(begin, pos - begin);
}

/// Reads a quoted string at `pos` (must point at '"'); '\"' and '\\'
/// escape.  Leaves `pos` just past the closing quote.
std::string read_quoted(const LineReader& reader, std::size_t& pos,
                        const char* what) {
  const std::string_view line = reader.line();
  if (pos >= line.size() || line[pos] != '"') {
    reader.fail(pos + 1,
                std::string("expected '\"' opening the quoted ") + what);
  }
  ++pos;
  std::string value;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\') {
      if (pos + 1 >= line.size() ||
          (line[pos + 1] != '"' && line[pos + 1] != '\\')) {
        reader.fail(pos + 1, std::string("bad escape in ") + what +
                                 " (only \\\" and \\\\ exist)");
      }
      ++pos;
    }
    value += line[pos];
    ++pos;
  }
  if (pos >= line.size()) {
    reader.fail(line.size() + 1, std::string("unterminated quoted ") + what);
  }
  ++pos;
  return value;
}

std::size_t read_number(const LineReader& reader, std::size_t& pos,
                        const char* what) {
  const std::string_view line = reader.line();
  const std::size_t begin = pos;
  std::size_t value = 0;
  while (pos < line.size() &&
         line[pos] >= '0' && line[pos] <= '9') {
    const std::size_t digit = static_cast<std::size_t>(line[pos] - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      reader.fail(begin + 1, std::string(what) + " value is out of range");
    }
    value = value * 10 + digit;
    ++pos;
  }
  if (pos == begin) {
    reader.fail(pos + 1, std::string("expected a number for the ") + what);
  }
  return value;
}

std::uint64_t read_hex64(const LineReader& reader, std::size_t& pos,
                         const char* what) {
  const std::string_view line = reader.line();
  const std::size_t begin = pos;
  std::uint64_t value = 0;
  while (pos < line.size()) {
    const char c = line[pos];
    int digit = -1;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      break;
    }
    if (pos - begin >= 16) {
      reader.fail(begin + 1, std::string(what) + " has more than 16 digits");
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
    ++pos;
  }
  if (pos == begin) {
    reader.fail(pos + 1,
                std::string("expected lowercase hex digits for the ") + what);
  }
  return value;
}

std::string quoted(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '\n') {
      throw Error("certificate: a name containing a newline is not "
                  "representable in the text format");
    }
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

/// Parses the test embedded in a keep/drop record; march-notation errors
/// surface in whole-document coordinates.
MarchTest read_test_record(const LineReader& reader, std::size_t pos,
                           const char* what) {
  std::size_t cursor = skip_ws(reader.line(), pos);
  const std::string name = read_quoted(reader, cursor, what);
  cursor = skip_ws(reader.line(), cursor);
  if (cursor >= reader.line().size()) {
    reader.fail(cursor + 1,
                std::string("expected march notation after the ") + what);
  }
  const TextPosition origin{reader.line_number(),
                            reader.line_indent() + cursor};
  return parse_march_test(reader.line().substr(cursor), name, origin);
}

std::string test_line(const char* keyword, const MarchTest& test) {
  return std::string(keyword) + " " + quoted(test.name()) + " " +
         test.to_canonical_string();
}

}  // namespace

bool operator==(const Certificate& x, const Certificate& y) {
  if (x.universe_spec != y.universe_spec || x.list_hash != y.list_hash ||
      x.memory_size != y.memory_size || x.kept.size() != y.kept.size() ||
      x.dropped != y.dropped) {
    return false;
  }
  for (std::size_t i = 0; i < x.kept.size(); ++i) {
    if (x.kept[i] != y.kept[i] || x.kept[i].name() != y.kept[i].name()) {
      return false;
    }
  }
  return true;
}

std::string to_canonical_string(const Certificate& cert) {
  std::ostringstream out;
  out << "certificate v1\n";
  out << "universe " << quoted(cert.universe_spec) << "\n";
  out << "list-hash " << hex64(cert.list_hash) << "\n";
  out << "n " << cert.memory_size << "\n";
  for (const MarchTest& test : cert.kept) {
    out << test_line("keep", test) << "\n";
  }
  for (const CertificateDrop& drop : cert.dropped) {
    out << test_line("drop", drop.test) << "\n";
    for (const CertificateCover& cover : drop.covers) {
      out << "cover " << cover.fault_index << " " << quoted(cover.fault_name)
          << " by " << quoted(cover.kept_test) << "\n";
    }
  }
  return out.str();
}

Certificate parse_certificate_text(std::string_view text,
                                   const std::string& source) {
  LineReader reader(text, source);
  if (!reader.next()) {
    reader.fail_at_end("empty document: expected 'certificate v1' header");
  }
  if (reader.line() != "certificate v1") {
    if (reader.line().substr(0, 11) == "certificate") {
      reader.fail(13, "unsupported certificate format version (this reader "
                      "understands 'certificate v1')");
    }
    reader.fail(1, "expected 'certificate v1' header, got '" +
                       std::string(reader.line()) + "'");
  }

  Certificate cert;
  // The three metadata records are required, in canonical order.
  const auto expect_record = [&reader](const char* keyword) -> std::size_t {
    if (!reader.next()) {
      reader.fail_at_end(std::string("expected '") + keyword + "' record");
    }
    std::size_t pos = 0;
    const std::string_view found = read_token(reader.line(), pos);
    if (found != keyword) {
      reader.fail(1, std::string("expected '") + keyword + "' record, got '" +
                         std::string(found) + "'");
    }
    return skip_ws(reader.line(), pos);
  };
  {
    std::size_t pos = expect_record("universe");
    cert.universe_spec = read_quoted(reader, pos, "universe spec");
  }
  {
    std::size_t pos = expect_record("list-hash");
    cert.list_hash = read_hex64(reader, pos, "list-hash");
  }
  {
    std::size_t pos = expect_record("n");
    cert.memory_size = read_number(reader, pos, "n");
    if (cert.memory_size < 3) {
      reader.fail(1, "n must be >= 3 (simulated memory size)");
    }
  }

  bool saw_drop = false;
  while (reader.next()) {
    std::size_t pos = 0;
    const std::string_view keyword = read_token(reader.line(), pos);
    if (keyword == "keep") {
      if (saw_drop) {
        reader.fail(1, "keep records must come before the first drop "
                       "(canonical order)");
      }
      cert.kept.push_back(read_test_record(reader, pos, "kept test name"));
    } else if (keyword == "drop") {
      saw_drop = true;
      CertificateDrop drop;
      drop.test = read_test_record(reader, pos, "dropped test name");
      cert.dropped.push_back(std::move(drop));
    } else if (keyword == "cover") {
      if (!saw_drop) {
        reader.fail(1, "cover row before the first drop record (each cover "
                       "belongs to the drop above it)");
      }
      CertificateCover cover;
      pos = skip_ws(reader.line(), pos);
      cover.fault_index = read_number(reader, pos, "fault index");
      pos = skip_ws(reader.line(), pos);
      cover.fault_name = read_quoted(reader, pos, "fault name");
      pos = skip_ws(reader.line(), pos);
      const std::size_t by_column = pos + 1;
      if (read_token(reader.line(), pos) != "by") {
        reader.fail(by_column, "expected 'by' between the fault and the "
                               "kept-test name");
      }
      pos = skip_ws(reader.line(), pos);
      cover.kept_test = read_quoted(reader, pos, "kept-test name");
      pos = skip_ws(reader.line(), pos);
      if (pos < reader.line().size()) {
        reader.fail(pos + 1, "trailing characters after the cover row");
      }
      cert.dropped.back().covers.push_back(std::move(cover));
    } else {
      reader.fail(1, "unknown record '" + std::string(keyword) +
                         "' (expected: keep, drop or cover)");
    }
  }
  return cert;
}

Certificate load_certificate_file(const std::string& path) {
  return parse_certificate_text(read_text_file(path), path);
}

Certificate optimize_suite(const MarchSuite& suite, const FaultList& universe,
                           const std::string& universe_spec, std::size_t n,
                           const AnalysisOptions& options) {
  require(!suite.tests.empty(), "optimize_suite: the suite is empty");
  for (std::size_t i = 0; i < suite.tests.size(); ++i) {
    require(!suite.tests[i].name().empty(),
            "optimize_suite: every test needs a name (covers reference kept "
            "tests by name)");
    for (std::size_t j = i + 1; j < suite.tests.size(); ++j) {
      require(suite.tests[i].name() != suite.tests[j].name(),
              "optimize_suite: duplicate test name '" + suite.tests[i].name() +
                  "'");
    }
  }

  // Per-test symbolic verdict sets; the certificate refuses to exist unless
  // every verdict is definite.
  const std::size_t faults = fault_count(universe);
  std::vector<std::vector<char>> covered(suite.tests.size(),
                                         std::vector<char>(faults, 0));
  for (std::size_t t = 0; t < suite.tests.size(); ++t) {
    const StaticCoverage coverage =
        analyze_coverage(suite.tests[t], universe, n, options);
    for (const StaticCoverageEntry& entry : coverage.entries) {
      if (entry.verdict == StaticVerdict::Unknown) {
        throw Error("optimize_suite: '" + suite.tests[t].name() +
                    "' vs " + entry.fault_name +
                    " is Unknown — the certificate would not be checkable (" +
                    entry.reason + ")");
      }
      covered[t][entry.fault_index] =
          entry.verdict == StaticVerdict::Detected ? 1 : 0;
    }
  }

  std::vector<char> remaining(faults, 0);
  for (std::size_t f = 0; f < faults; ++f) {
    for (std::size_t t = 0; t < suite.tests.size(); ++t) {
      if (covered[t][f] != 0) {
        remaining[f] = 1;
        break;
      }
    }
  }

  // Greedy set cover: most new faults per pick, ties to the earliest suite
  // position (deterministic, and it favours the suite's own ordering).
  std::vector<char> picked(suite.tests.size(), 0);
  std::size_t uncovered =
      static_cast<std::size_t>(std::count(remaining.begin(), remaining.end(),
                                          static_cast<char>(1)));
  while (uncovered > 0) {
    std::size_t best = suite.tests.size();
    std::size_t best_gain = 0;
    for (std::size_t t = 0; t < suite.tests.size(); ++t) {
      if (picked[t] != 0) continue;
      std::size_t gain = 0;
      for (std::size_t f = 0; f < faults; ++f) {
        if (remaining[f] != 0 && covered[t][f] != 0) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    require(best < suite.tests.size(),
            "optimize_suite: internal error — uncovered faults with no "
            "covering test");
    picked[best] = 1;
    for (std::size_t f = 0; f < faults; ++f) {
      if (covered[best][f] != 0 && remaining[f] != 0) {
        remaining[f] = 0;
        --uncovered;
      }
    }
  }

  Certificate cert;
  cert.universe_spec = universe_spec;
  cert.list_hash = stable_hash(universe);
  cert.memory_size = n;
  std::vector<std::size_t> kept_indices;
  for (std::size_t t = 0; t < suite.tests.size(); ++t) {
    if (picked[t] != 0) {
      cert.kept.push_back(suite.tests[t]);
      kept_indices.push_back(t);
    }
  }
  for (std::size_t t = 0; t < suite.tests.size(); ++t) {
    if (picked[t] != 0) continue;
    CertificateDrop drop;
    drop.test = suite.tests[t];
    for (std::size_t f = 0; f < faults; ++f) {
      if (covered[t][f] == 0) continue;
      for (std::size_t k = 0; k < kept_indices.size(); ++k) {
        if (covered[kept_indices[k]][f] != 0) {
          CertificateCover cover;
          cover.fault_index = f;
          cover.fault_name = fault_name(universe, f);
          cover.kept_test = cert.kept[k].name();
          drop.covers.push_back(std::move(cover));
          break;
        }
      }
    }
    cert.dropped.push_back(std::move(drop));
  }
  return cert;
}

std::string CertificateCheck::summary() const {
  std::ostringstream out;
  if (ok) {
    out << "certificate verified: " << faults_checked
        << " covered-fault witnesses re-proved by the packed engine across "
        << reports_evaluated << " coverage reports";
  } else {
    out << "certificate REJECTED (" << problems.size() << " problem"
        << (problems.size() == 1 ? "" : "s") << ")";
    for (const std::string& problem : problems) {
      out << "\n  " << problem;
    }
  }
  return out.str();
}

CertificateCheck verify_certificate(const Certificate& cert,
                                    const FaultList& universe) {
  CertificateCheck check;
  const auto problem = [&check](std::string message) {
    check.ok = false;
    check.problems.push_back(std::move(message));
  };

  if (stable_hash(universe) != cert.list_hash) {
    problem("universe hash mismatch: certificate pins " +
            hex64(cert.list_hash) + ", the supplied list hashes to " +
            hex64(stable_hash(universe)));
    return check;  // verdicts against a different universe prove nothing
  }
  const std::size_t faults = fault_count(universe);

  for (std::size_t i = 0; i < cert.kept.size(); ++i) {
    if (cert.kept[i].name().empty()) {
      problem("kept test #" + std::to_string(i) + " has no name");
    }
    for (std::size_t j = i + 1; j < cert.kept.size(); ++j) {
      if (cert.kept[i].name() == cert.kept[j].name()) {
        problem("duplicate kept test name '" + cert.kept[i].name() + "'");
      }
    }
  }
  if (!check.ok) return check;

  SimulatorOptions sim_options;
  sim_options.memory_size = cert.memory_size;
  const FaultSimulator simulator(sim_options);

  // Packed coverage of every kept test, once; covers reference them by name.
  std::map<std::string, CoverageReport> kept_reports;
  for (const MarchTest& test : cert.kept) {
    try {
      kept_reports.emplace(test.name(),
                           evaluate_coverage(simulator, test, universe,
                                             /*max_instances_per_fault=*/0));
      ++check.reports_evaluated;
    } catch (const std::exception& e) {
      problem("kept test '" + test.name() + "' failed to evaluate: " +
              e.what());
      return check;
    }
  }

  for (const CertificateDrop& drop : cert.dropped) {
    CoverageReport dropped_report;
    try {
      dropped_report = evaluate_coverage(simulator, drop.test, universe,
                                         /*max_instances_per_fault=*/0);
      ++check.reports_evaluated;
    } catch (const std::exception& e) {
      problem("dropped test '" + drop.test.name() +
              "' failed to evaluate: " + e.what());
      continue;
    }

    std::vector<char> witnessed(faults, 0);
    for (const CertificateCover& cover : drop.covers) {
      if (cover.fault_index >= faults) {
        problem("'" + drop.test.name() + "': cover row names fault index " +
                std::to_string(cover.fault_index) + " of a " +
                std::to_string(faults) + "-fault universe");
        continue;
      }
      if (witnessed[cover.fault_index] != 0) {
        problem("'" + drop.test.name() + "': duplicate cover row for fault " +
                cover.fault_name);
        continue;
      }
      witnessed[cover.fault_index] = 1;
      const std::string canonical = fault_name(universe, cover.fault_index);
      if (cover.fault_name != canonical) {
        problem("'" + drop.test.name() + "': cover row calls fault " +
                std::to_string(cover.fault_index) + " '" + cover.fault_name +
                "' but the universe names it '" + canonical + "'");
        continue;
      }
      if (!dropped_report.entries[cover.fault_index].covered) {
        problem("'" + drop.test.name() + "': cover row claims it detects " +
                cover.fault_name +
                " but the packed engine says it does not");
        continue;
      }
      const auto kept_it = kept_reports.find(cover.kept_test);
      if (kept_it == kept_reports.end()) {
        problem("'" + drop.test.name() + "': cover row names unknown kept "
                "test '" + cover.kept_test + "'");
        continue;
      }
      if (!kept_it->second.entries[cover.fault_index].covered) {
        problem("'" + drop.test.name() + "': kept test '" + cover.kept_test +
                "' does not cover " + cover.fault_name +
                " under the packed engine — the witness is wrong");
        continue;
      }
      ++check.faults_checked;
    }

    // Union preservation is exactly: every fault the dropped test covers
    // has a (verified) witness row.
    for (std::size_t f = 0; f < faults; ++f) {
      if (dropped_report.entries[f].covered && witnessed[f] == 0) {
        problem("'" + drop.test.name() + "': covers " +
                dropped_report.entries[f].fault +
                " but the certificate has no witness row for it — dropping "
                "the test would lose coverage the certificate does not "
                "account for");
      }
    }
  }
  return check;
}

}  // namespace mtg
