// Parser hardening: malformed march notation must be rejected with a
// position-annotated mtg::Error, never silently mis-parsed.
#include "march/parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

/// The parser must throw an Error whose message contains `expected_part`
/// and the offending offset marker.
void expect_parse_error(const std::string& text,
                        const std::string& expected_part) {
  try {
    parse_march_test(text);
    FAIL() << "no error for \"" << text << "\"";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(expected_part), std::string::npos)
        << "\"" << text << "\" produced: " << message;
  }
}

TEST(ParserErrors, UnbalancedParentheses) {
  expect_parse_error("^(r0,w1", "unbalanced parentheses");
  expect_parse_error("{c(w0); ^(r0,w1}", "unbalanced parentheses");
  expect_parse_error("^((r0))", "expected an operation token");
  expect_parse_error("^(r0))", "expected an address order marker");
}

TEST(ParserErrors, UnbalancedBraces) {
  expect_parse_error("{c(w0); ^(r0,w1)", "expected '}'");
  expect_parse_error("c(w0)}", "unmatched '}'");
  expect_parse_error("{{c(w0)}}", "expected an address order marker");
}

TEST(ParserErrors, EmptyElementsAndTests) {
  expect_parse_error("^()", "empty march element");
  expect_parse_error("{c(w0); v()}", "empty march element");
  expect_parse_error("", "march test has no elements");
  expect_parse_error("{}", "march test has no elements");
  expect_parse_error("  ;  ", "march test has no elements");
}

TEST(ParserErrors, DanglingOperations) {
  // A bare wait (or any op) outside an element must not be skipped.
  expect_parse_error("t", "operations must appear inside order(...) elements");
  expect_parse_error("c(w0) t", "operations must appear");
  expect_parse_error("c(w0); r0,w1", "operations must appear");
  // Dangling separators inside an element.
  expect_parse_error("^(r0,)", "expected an operation token");
  expect_parse_error("^(,r0)", "expected an operation token");
  expect_parse_error("^(t,)", "expected an operation token");
}

TEST(ParserErrors, UnknownTokens) {
  expect_parse_error("^(x1)", "unknown memory operation token");
  expect_parse_error("^(r2)", "unknown memory operation token");
  expect_parse_error("^(r0w1)", "unknown memory operation token");
  expect_parse_error("^(w0) >(r0)", "expected an address order marker");
}

TEST(ParserErrors, TrailingGarbage) {
  expect_parse_error("{c(w0)} extra", "trailing characters");
  EXPECT_THROW(parse_march_element("^(r0) v(r1)"), Error);
}

TEST(ParserErrors, MessagesCarryTheOffset) {
  try {
    parse_march_test("{c(w0); ^(r0,zz)}");
    FAIL() << "no error";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("offset 13"), std::string::npos) << message;
    EXPECT_NE(message.find("{c(w0); ^(r0,zz)}"), std::string::npos) << message;
  }
}

TEST(ParserErrors, WellFormedInputStillParses) {
  // Hardening must not reject the accepted grammar.
  EXPECT_NO_THROW(parse_march_test("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}"));
  EXPECT_NO_THROW(parse_march_test("c(w0) ^(r0,w1) v(r1,w0)"));
  EXPECT_NO_THROW(parse_march_test("{c(w0); c(t,r0,w1,r1)}"));
  EXPECT_NO_THROW(parse_march_test("  {  c ( w0 ) ;  ^ ( r0 , w1 ) }  "));
}

}  // namespace
}  // namespace mtg
