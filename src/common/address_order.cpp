#include "common/address_order.hpp"

#include <ostream>

#include "common/error.hpp"

namespace mtg {

std::string to_symbol(AddressOrder order) {
  switch (order) {
    case AddressOrder::Up: return "⇑";    // ⇑
    case AddressOrder::Down: return "⇓";  // ⇓
    case AddressOrder::Any: return "⇕";   // ⇕
  }
  throw InternalError("to_symbol(AddressOrder): unreachable");
}

char to_ascii(AddressOrder order) {
  switch (order) {
    case AddressOrder::Up: return '^';
    case AddressOrder::Down: return 'v';
    case AddressOrder::Any: return 'c';
  }
  throw InternalError("to_ascii(AddressOrder): unreachable");
}

AddressOrder address_order_from_string(std::string_view token) {
  if (token == "^" || token == "⇑" || token == "up") return AddressOrder::Up;
  if (token == "v" || token == "⇓" || token == "down") return AddressOrder::Down;
  if (token == "c" || token == "⇕" || token == "any") return AddressOrder::Any;
  throw Error("unknown address order token: '" + std::string(token) + "'");
}

std::ostream& operator<<(std::ostream& os, AddressOrder order) {
  return os << to_symbol(order);
}

}  // namespace mtg
