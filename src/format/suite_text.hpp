// Text format for named march-test suites: catalogs of march tests the
// binary has never seen, runnable by name through mtg_cli --suite-file.
//
// Grammar (record per line; blank lines and full-line '#' comments ignored):
//
//   file   := header test+
//   header := 'suite v1'
//   test   := 'test' '"' name '"' notation
//   name   := quoted string; '\"' and '\\' escape '"' and '\'
//   notation := march notation (march/parser.hpp), e.g. {c(w0); ^(r0,w1)}
//
// The writer is to_canonical_string(): ASCII march notation (the exact
// MarchTest::to_canonical_string() form), names quoted —
// parse_march_suite_text(to_canonical_string(x)) == x round-trips exactly,
// names included.  March-notation errors inside a record surface in
// whole-document coordinates (the parser is seeded with the notation's
// line:column), so "catalog.suite:7:31: ..." points into the file, not into
// an element substring.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/text_position.hpp"
#include "march/march_test.hpp"

namespace mtg {

/// A named, ordered collection of march tests.  Names are unique (the
/// parser rejects duplicates; build code should keep them unique too).
struct MarchSuite {
  std::vector<MarchTest> tests;

  std::size_t size() const noexcept { return tests.size(); }

  /// The test named `name`, or nullptr.
  const MarchTest* find(std::string_view name) const;

  /// Round-trip equality: element-wise MarchTest equality *plus* names —
  /// unlike bare MarchTest::operator==, a suite is a name -> test catalog,
  /// so renaming a record is a content change.
  friend bool operator==(const MarchSuite& x, const MarchSuite& y);
  friend bool operator!=(const MarchSuite& x, const MarchSuite& y) {
    return !(x == y);
  }
};

/// Canonical serialization: 'suite v1' plus one canonical test record per
/// line.  parse_march_suite_text(to_canonical_string(s)) == s.  Throws
/// mtg::Error on names containing newlines (unrepresentable).
std::string to_canonical_string(const MarchSuite& suite);

/// Document positions of one suite record: the 'test' keyword plus each
/// march element's address-order marker — the anchors the catalog linter
/// (analysis/lint.hpp) attaches redundant-element diagnostics to.
struct SuiteTestPosition {
  TextPosition record;
  std::vector<TextPosition> elements;
};

/// Parses the suite text format.  Throws mtg::ParseError
/// (line:column-annotated) on malformed input, duplicate names, or an empty
/// suite (a suite must carry at least one test).  A non-null `positions`
/// receives one entry per test, index-aligned with MarchSuite::tests.
MarchSuite parse_march_suite_text(std::string_view text,
                                  const std::string& source = "<string>",
                                  std::vector<SuiteTestPosition>* positions =
                                      nullptr);

}  // namespace mtg
