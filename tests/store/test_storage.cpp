// The Storage interface contract: PosixStorage and InMemoryStorage must be
// interchangeable (the fault-injection harness runs hermetically on the
// in-memory fake but the CLI/bench run on POSIX files), and
// FaultInjectedStorage must count and fail operations exactly as scheduled.
#include "store/storage.hpp"

#include <gtest/gtest.h>

#include "store/fault_injection.hpp"

namespace mtg {
namespace {

// Behaviour every Storage implementation must share.  `root` is a fresh
// directory the implementation may populate.
void exercise_storage_contract(Storage& storage, const std::string& root) {
  ASSERT_TRUE(storage.open_dir(root).ok());
  ASSERT_TRUE(storage.open_dir(root).ok()) << "open_dir must be idempotent";

  const std::string path = root + "/file";
  std::string content;

  // Reading a file that does not exist is NotFound, not a hard error.
  EXPECT_TRUE(storage.read(path, content).not_found());

  // Write / read round trip, including NUL bytes (records are binary).
  const std::string data("binary\0payload\xFF", 15);
  ASSERT_TRUE(storage.write(path, data).ok());
  ASSERT_TRUE(storage.read(path, content).ok());
  EXPECT_EQ(content, data);
  EXPECT_TRUE(storage.sync(path).ok());

  // Overwrite truncates.
  ASSERT_TRUE(storage.write(path, "short").ok());
  ASSERT_TRUE(storage.read(path, content).ok());
  EXPECT_EQ(content, "short");

  // Rename replaces the destination atomically and removes the source.
  const std::string other = root + "/other";
  ASSERT_TRUE(storage.write(other, "loser").ok());
  ASSERT_TRUE(storage.rename(path, other).ok());
  EXPECT_TRUE(storage.read(path, content).not_found());
  ASSERT_TRUE(storage.read(other, content).ok());
  EXPECT_EQ(content, "short");

  // Renaming a missing source is NotFound.
  EXPECT_TRUE(storage.rename(root + "/missing", other).not_found());

  // Remove, then removing again is NotFound.
  ASSERT_TRUE(storage.remove(other).ok());
  EXPECT_TRUE(storage.remove(other).not_found());
  EXPECT_TRUE(storage.read(other, content).not_found());
}

TEST(PosixStorage, SatisfiesTheContract) {
  PosixStorage storage;
  exercise_storage_contract(storage,
                            testing::TempDir() + "mtg_storage_contract");
}

TEST(PosixStorage, OpenDirCreatesNestedDirectories) {
  PosixStorage storage;
  const std::string nested = testing::TempDir() + "mtg_nested/a/b/c";
  ASSERT_TRUE(storage.open_dir(nested).ok());
  ASSERT_TRUE(storage.write(nested + "/probe", "x").ok());
  std::string content;
  ASSERT_TRUE(storage.read(nested + "/probe", content).ok());
  EXPECT_EQ(content, "x");
}

TEST(InMemoryStorage, SatisfiesTheContract) {
  InMemoryStorage storage;
  exercise_storage_contract(storage, "/mem");
  EXPECT_TRUE(storage.files().empty()) << "contract ends with an empty root";
}

// --- FaultInjectedStorage ---------------------------------------------------

TEST(FaultInjection, CountsEveryOperationByType) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  std::string content;
  storage.open_dir("/d");
  storage.write("/d/a", "1");
  storage.write("/d/b", "2");
  storage.sync("/d/a");
  storage.read("/d/a", content);
  storage.rename("/d/a", "/d/c");
  storage.remove("/d/c");
  const StorageOpCounts counts = storage.counts();
  EXPECT_EQ(counts.open_dirs, 1u);
  EXPECT_EQ(counts.writes, 2u);
  EXPECT_EQ(counts.syncs, 1u);
  EXPECT_EQ(counts.reads, 1u);
  EXPECT_EQ(counts.renames, 1u);
  EXPECT_EQ(counts.removes, 1u);
  EXPECT_EQ(counts.total(), 7u);
  EXPECT_EQ(counts.faults_injected, 0u);
}

TEST(FaultInjection, TransientFaultHitsExactlyTheKthOperation) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  storage.fail_kth_operation(2, StoreFaultMode::Error, /*sticky=*/false);
  EXPECT_TRUE(storage.write("/a", "1").ok());        // op 1
  EXPECT_FALSE(storage.write("/b", "2").ok());       // op 2: injected
  EXPECT_TRUE(storage.write("/b", "2").ok());        // op 3: recovered
  EXPECT_EQ(storage.counts().faults_injected, 1u);
  EXPECT_EQ(base.files().count("/b"), 1u);
}

TEST(FaultInjection, StickyFaultFailsEverythingFromKOn) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  storage.fail_kth_operation(2, StoreFaultMode::Error, /*sticky=*/true);
  EXPECT_TRUE(storage.write("/a", "1").ok());
  std::string content;
  EXPECT_FALSE(storage.write("/b", "2").ok());
  EXPECT_FALSE(storage.read("/a", content).ok());
  EXPECT_FALSE(storage.remove("/a").ok());
  EXPECT_EQ(storage.counts().faults_injected, 3u);
  storage.clear_fault();
  EXPECT_TRUE(storage.read("/a", content).ok());
}

TEST(FaultInjection, TornWriteErrorPersistsAPrefixAndReportsFailure) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  storage.fail_kth_operation(1, StoreFaultMode::TornWriteError);
  EXPECT_FALSE(storage.write("/a", "0123456789").ok());
  EXPECT_EQ(base.files().at("/a"), "01234") << "half the bytes must land";
}

TEST(FaultInjection, TornWriteSilentPersistsAPrefixButClaimsSuccess) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  storage.fail_kth_operation(1, StoreFaultMode::TornWriteSilent);
  EXPECT_TRUE(storage.write("/a", "0123456789").ok())
      << "the firmware lie: success reported, data torn";
  EXPECT_EQ(base.files().at("/a"), "01234");
}

TEST(FaultInjection, SilentModeLeavesNonWriteOperationsUnharmed) {
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  ASSERT_TRUE(storage.write("/a", "x").ok());
  storage.fail_kth_operation(1, StoreFaultMode::TornWriteSilent);
  std::string content;
  EXPECT_TRUE(storage.read("/a", content).ok());
  EXPECT_EQ(content, "x");
}

}  // namespace
}  // namespace mtg
