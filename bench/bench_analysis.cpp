// Symbolic analyzer benchmark (analysis/static_analyzer.hpp):
//   * raw verdict throughput — analyze_coverage over catalog tests and
//     fault lists (the linter's and prefilter's unit of work),
//   * generator speedup from the static certification prefilter — the same
//     list generated with static_prefilter off and on; the prefilter
//     discharges statically-Detected faults before the persistent engine
//     pays their full-prefix simulation, so the win shows up in the
//     cert-prep + B + B2 window while the generated test stays identical.
//
// --json <path|-> writes a machine-readable summary (BENCH_analysis.json in
// the CI bench-smoke job); --quick runs a reduced matrix.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"

namespace {

struct AnalyzerRecord {
  std::string test;
  std::string list;
  std::size_t faults = 0;
  std::size_t detected = 0;
  std::size_t unknown = 0;
  double seconds = 0.0;
};

struct GenerationRecord {
  std::string list;
  bool prefilter = false;
  mtg::GenerationResult result;
};

std::vector<AnalyzerRecord>& analyzer_records() {
  static std::vector<AnalyzerRecord> all;
  return all;
}

std::vector<GenerationRecord>& generation_records() {
  static std::vector<GenerationRecord> all;
  return all;
}

void run_analyzer(const mtg::MarchTest& test, const char* list_name,
                  const mtg::FaultList& list) {
  const auto t0 = std::chrono::steady_clock::now();
  const mtg::StaticCoverage coverage = analyze_coverage(test, list, 6);
  AnalyzerRecord record;
  record.test = test.name();
  record.list = list_name;
  record.faults = coverage.entries.size();
  record.detected = coverage.detected;
  record.unknown = coverage.unknown;
  record.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%-14s vs %-8s %6zu faults  %8.2f us/fault  (%zu detected, "
              "%zu unknown)\n",
              record.test.c_str(), list_name, record.faults,
              1e6 * record.seconds /
                  static_cast<double>(record.faults > 0 ? record.faults : 1),
              record.detected, record.unknown);
  analyzer_records().push_back(std::move(record));
}

double cert_window(const mtg::GenerationStats& s) {
  return s.cert_prep_seconds + s.phase_b_seconds + s.phase_b2_seconds;
}

void run_generation(const char* list_name, const mtg::FaultList& list,
                    bool prefilter) {
  mtg::GeneratorOptions options;
  options.static_prefilter = prefilter;
  mtg::GenerationResult result = generate_march_test(list, options);
  const mtg::GenerationStats& s = result.stats;
  std::printf("%-8s prefilter=%-3s  total %8.3fs  cert window %8.3fs  "
              "(%zu faults resolved, %zu instances skipped, analyzer %.4fs)\n",
              list_name, prefilter ? "on" : "off", s.elapsed_seconds,
              cert_window(s), s.static_resolved_faults,
              s.static_skipped_instances, s.static_seconds);
  GenerationRecord record;
  record.list = list_name;
  record.prefilter = prefilter;
  record.result = std::move(result);
  generation_records().push_back(std::move(record));
}

double unknown_rate() {
  std::size_t faults = 0;
  std::size_t unknown = 0;
  for (const AnalyzerRecord& r : analyzer_records()) {
    faults += r.faults;
    unknown += r.unknown;
  }
  return faults > 0 ? static_cast<double>(unknown) / static_cast<double>(faults)
                    : 0.0;
}

void write_json(std::FILE* out) {
  std::fprintf(out,
               "{\n  \"bench\": \"analysis\",\n  \"unknown_rate\": %.6f,\n"
               "  \"analyzer\": [\n",
               unknown_rate());
  for (std::size_t i = 0; i < analyzer_records().size(); ++i) {
    const AnalyzerRecord& r = analyzer_records()[i];
    std::fprintf(out,
                 "    {\"test\": \"%s\", \"list\": \"%s\", \"faults\": %zu, "
                 "\"detected\": %zu, \"unknown\": %zu, \"seconds\": %.6f}%s\n",
                 r.test.c_str(), r.list.c_str(), r.faults, r.detected,
                 r.unknown, r.seconds,
                 i + 1 < analyzer_records().size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"generation\": [\n");
  for (std::size_t i = 0; i < generation_records().size(); ++i) {
    const GenerationRecord& r = generation_records()[i];
    const mtg::GenerationStats& s = r.result.stats;
    std::fprintf(
        out,
        "    {\"list\": \"%s\", \"prefilter\": %s, \"elapsed_s\": %.6f, "
        "\"cert_prep_s\": %.6f, \"phase_b_s\": %.6f, \"phase_b2_s\": %.6f,\n"
        "     \"static_s\": %.6f, \"static_resolved_faults\": %zu, "
        "\"static_skipped_instances\": %zu, \"certify_instances\": %zu, "
        "\"complexity\": %zu}%s\n",
        r.list.c_str(), r.prefilter ? "true" : "false", s.elapsed_seconds,
        s.cert_prep_seconds, s.phase_b_seconds, s.phase_b2_seconds,
        s.static_seconds, s.static_resolved_faults,
        s.static_skipped_instances, s.certify_instances,
        r.result.test.complexity(),
        i + 1 < generation_records().size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtg;
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_analysis [--quick] [--json <path|->]\n");
      return 2;
    }
  }

  std::printf("--- analyzer throughput (n=6) ---\n");
  const FaultList list2 = fault_list_2();
  const FaultList simple = standard_simple_static_faults();
  for (const MarchTest& test :
       {march_ss(), march_sl(), march_c_minus(), march_abl1()}) {
    run_analyzer(test, "list2", list2);
    run_analyzer(test, "simple", simple);
  }
  if (!quick) {
    const FaultList list1 = fault_list_1();
    for (const MarchTest& test : {march_sl(), march_lf1(), march_abl1()}) {
      run_analyzer(test, "list1", list1);
    }
  }

  std::printf("--- generator static-prefilter ablation ---\n");
  run_generation("list2", list2, false);
  run_generation("list2", list2, true);
  run_generation("simple", simple, false);
  run_generation("simple", simple, true);
  if (!quick) {
    const FaultList list1 = fault_list_1();
    run_generation("list1", list1, false);
    run_generation("list1", list1, true);
  }
  for (std::size_t i = 1; i < generation_records().size(); i += 2) {
    const GenerationRecord& off = generation_records()[i - 1];
    const GenerationRecord& on = generation_records()[i];
    if (off.result.test != on.result.test) {
      std::fprintf(stderr,
                   "prefilter changed the generated test for %s — the "
                   "identity contract is broken\n",
                   on.list.c_str());
      return 1;
    }
    const double off_window = cert_window(off.result.stats);
    const double on_window = cert_window(on.result.stats);
    std::printf("%-8s cert-window speedup: %.2fx (%.3fs -> %.3fs)\n",
                on.list.c_str(),
                on_window > 0.0 ? off_window / on_window : 0.0, off_window,
                on_window);
  }

  // Zero-Unknown gate: every shipped (test, list) pair must resolve to a
  // definite verdict; a nonzero rate means the analyzer's domain regressed.
  if (unknown_rate() > 0.0) {
    std::fprintf(stderr,
                 "unknown_rate %.6f != 0 — an analyzer verdict regressed to "
                 "Unknown\n",
                 unknown_rate());
    return 1;
  }

  if (json_path != nullptr) {
    if (std::strcmp(json_path, "-") == 0) {
      write_json(stdout);
    } else {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
      }
      write_json(out);
      std::fclose(out);
      std::printf("JSON summary written to %s\n", json_path);
    }
  }
  return 0;
}
