// Example: watch the linked-fault masking of Figure 1 happen operation by
// operation, then watch March SL break the masking.
#include <iostream>

#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace mtg;

  // The linked disturb coupling fault of Equations 6/12: aggressor at cell
  // 0, victim at cell 2 (cells i < j < k of Figure 1 collapse to a shared
  // aggressor here, the two-cell variant the paper models on G0).
  FaultInstance inst;
  inst.fps.push_back(
      BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), 0, 2));
  inst.fps.push_back(
      BoundFp(FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One), 0, 2));
  inst.description = "CFds<0w1;0>→CFds<1w0;1> (a=0, v=2)";

  // A blind test: sensitizes FP1, lets FP2 mask it, reads nothing in between.
  const MarchTest blind =
      parse_march_test("{c(w0); ^(w1); ^(w0); c(r0)}", "blind test");
  std::cout << "--- the masking (fault escapes) ---\n"
            << trace_run(blind, inst, 3, Bit::Zero).to_string() << "\n";

  // March SL reads the victim between the two sensitizations.
  std::cout << "--- March SL breaks the masking (interesting steps only) ---\n"
            << trace_run(march_sl(), inst, 3, Bit::Zero)
                   .to_string(/*only_interesting=*/true);
  return 0;
}
