// Catalog linter built on the symbolic march analyzer: position-bearing
// warnings for march tests, fault-list catalogs and march-test suites.
//
// Checks:
//   * redundant-element — a march element whose removal keeps the test
//     well-formed and leaves every fault's static verdict unchanged (all
//     verdicts definite before and after — Unknown never licenses a
//     removal claim);
//   * dead-op — the same property at single-operation granularity, for
//     elements that are not redundant outright;
//   * duplicate-fault — a catalog record content-equal to an earlier one;
//   * subsumed-fault — a record semantically equal to an earlier one
//     despite textual differences (e.g. decoder faults of a non-AFmc class
//     differing only in the `wired` field, which their semantics ignore);
//   * zero-instances — a fault with no instances at the linted memory size
//     (e.g. a decoder fault on address line `bit` with 2^bit >= n).
//
// Findings carry the document position of the offending record or element
// when the linted object came from a catalog file (the PR 7 TextPosition
// plumbing), so they print as "path:line:column: warning: ..." and drop
// straight into editors and CI annotations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "common/text_position.hpp"
#include "format/fault_list_text.hpp"
#include "format/suite_text.hpp"

namespace mtg {

struct LintFinding {
  std::string source;  ///< file path, or a pseudo-source like "<test>"
  std::optional<TextPosition> position;
  std::string category;  ///< kebab-case check name, e.g. "redundant-element"
  std::string message;

  /// "source:line:column: warning: [category] message" (position-less
  /// findings omit the line:column part).
  std::string format() const;
};

struct LintOptions {
  /// Memory size the verdicts and instance counts are evaluated at.
  std::size_t memory_size = 6;
  /// Skip the per-operation dead-op sweep (the most expensive check).
  bool check_dead_ops = true;
  AnalysisOptions analysis;
};

/// Catalog-level checks (duplicate, subsumed, zero-instances) over a fault
/// list.  `positions` (when the list came from a file) anchors findings to
/// record positions.
std::vector<LintFinding> lint_fault_list(
    const FaultList& list, const LintOptions& options,
    const std::string& source = "<list>",
    const FaultListPositions* positions = nullptr);

/// Test-level checks (redundant-element, dead-op) of `test` against the
/// target fault list.  `positions` (when the test came from a suite file)
/// anchors findings to element positions.
std::vector<LintFinding> lint_march_test(
    const MarchTest& test, const FaultList& list, const LintOptions& options,
    const std::string& source = "<test>",
    const SuiteTestPosition* positions = nullptr);

}  // namespace mtg
