#include "analysis/lint.hpp"

#include <sstream>

#include "sim/simulator.hpp"

namespace mtg {
namespace {

void add_finding(std::vector<LintFinding>& findings,
                 const std::string& source,
                 const std::optional<TextPosition>& position,
                 std::string category, std::string message) {
  LintFinding finding;
  finding.source = source;
  finding.position = position;
  finding.category = std::move(category);
  finding.message = std::move(message);
  findings.push_back(std::move(finding));
}

std::optional<TextPosition> record_position(
    const std::vector<TextPosition>* section, std::size_t index) {
  if (section == nullptr || index >= section->size()) return std::nullopt;
  return (*section)[index];
}

/// Semantic equality for catalog records: exact content equality, except
/// that decoder classes other than AFmc ignore the `wired` field (their
/// read-back never arbitrates two fighting cells), so records differing
/// only there subsume each other.
bool decoder_semantically_equal(const DecoderFault& x, const DecoderFault& y) {
  if (x.cls != y.cls || x.bit != y.bit) return false;
  if (x.cls == DecoderFaultClass::MultipleCells) return x.wired == y.wired;
  return true;
}

/// True when the candidate test is well-formed: non-empty, internally
/// consistent, and valid for the fault-free machine (every r0/r1 reads a
/// determined matching value).
bool test_well_formed(const MarchTest& test) {
  if (test.elements().empty()) return false;
  if (!test.consistency_violation().empty()) return false;
  return FaultSimulator::validity_violation(test).empty();
}

/// The per-fault verdict vector `redundancy` compares, or nullopt when any
/// verdict is Unknown (an indefinite verdict never licenses a removal
/// claim).
std::optional<std::vector<StaticVerdict>> definite_verdicts(
    const MarchTest& test, const FaultList& list, const LintOptions& options) {
  const StaticCoverage coverage =
      analyze_coverage(test, list, options.memory_size, options.analysis);
  if (coverage.unknown > 0) return std::nullopt;
  std::vector<StaticVerdict> verdicts;
  verdicts.reserve(coverage.entries.size());
  for (const StaticCoverageEntry& entry : coverage.entries) {
    verdicts.push_back(entry.verdict);
  }
  return verdicts;
}

}  // namespace

std::string LintFinding::format() const {
  std::ostringstream out;
  out << source;
  if (position.has_value()) {
    out << ":" << position->line << ":" << position->column;
  }
  out << ": warning: [" << category << "] " << message;
  return out.str();
}

std::vector<LintFinding> lint_fault_list(const FaultList& list,
                                         const LintOptions& options,
                                         const std::string& source,
                                         const FaultListPositions* positions) {
  std::vector<LintFinding> findings;
  const std::vector<TextPosition>* simple_pos =
      positions != nullptr ? &positions->simple : nullptr;
  const std::vector<TextPosition>* linked_pos =
      positions != nullptr ? &positions->linked : nullptr;
  const std::vector<TextPosition>* decoder_pos =
      positions != nullptr ? &positions->decoder : nullptr;

  for (std::size_t j = 0; j < list.simple.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (list.simple[i] == list.simple[j]) {
        add_finding(findings, source, record_position(simple_pos, j),
                    "duplicate-fault",
                    "simple fault '" + list.simple[j].name +
                        "' duplicates record #" + std::to_string(i));
        break;
      }
    }
  }
  for (std::size_t j = 0; j < list.linked.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (list.linked[i] == list.linked[j]) {
        add_finding(findings, source, record_position(linked_pos, j),
                    "duplicate-fault",
                    "linked fault '" + list.linked[j].name() +
                        "' duplicates record #" + std::to_string(i));
        break;
      }
    }
  }
  for (std::size_t j = 0; j < list.decoder.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (list.decoder[i] == list.decoder[j]) {
        add_finding(findings, source, record_position(decoder_pos, j),
                    "duplicate-fault",
                    "decoder fault '" + list.decoder[j].name() +
                        "' duplicates record #" + std::to_string(i));
        break;
      }
      if (decoder_semantically_equal(list.decoder[i], list.decoder[j])) {
        add_finding(
            findings, source, record_position(decoder_pos, j),
            "subsumed-fault",
            "decoder fault '" + list.decoder[j].name() +
                "' is subsumed by record #" + std::to_string(i) + " ('" +
                list.decoder[i].name() +
                "'): the " + to_string(list.decoder[j].cls) +
                " class ignores the wired field");
        break;
      }
    }
  }

  const std::string at_n = " at n=" + std::to_string(options.memory_size);
  for (std::size_t i = 0; i < list.simple.size(); ++i) {
    if (static_instance_count(list.simple[i], options.memory_size) == 0) {
      add_finding(findings, source, record_position(simple_pos, i),
                  "zero-instances",
                  "simple fault '" + list.simple[i].name +
                      "' has no instances" + at_n);
    }
  }
  for (std::size_t i = 0; i < list.linked.size(); ++i) {
    if (static_instance_count(list.linked[i], options.memory_size) == 0) {
      add_finding(findings, source, record_position(linked_pos, i),
                  "zero-instances",
                  "linked fault '" + list.linked[i].name() +
                      "' has no instances" + at_n);
    }
  }
  for (std::size_t i = 0; i < list.decoder.size(); ++i) {
    const DecoderFault& fault = list.decoder[i];
    if (static_instance_count(fault, options.memory_size) == 0) {
      std::string hint;
      if (fault.bit < 63) {
        hint = " (first instantiable at n=" +
               std::to_string((std::size_t{1} << fault.bit) + 1) + ")";
      }
      add_finding(findings, source, record_position(decoder_pos, i),
                  "zero-instances",
                  "decoder fault '" + fault.name() + "' has no instances" +
                      at_n + hint);
    }
  }
  return findings;
}

std::vector<LintFinding> lint_march_test(const MarchTest& test,
                                         const FaultList& list,
                                         const LintOptions& options,
                                         const std::string& source,
                                         const SuiteTestPosition* positions) {
  std::vector<LintFinding> findings;
  if (!test_well_formed(test)) return findings;
  const std::optional<std::vector<StaticVerdict>> baseline =
      definite_verdicts(test, list, options);
  if (!baseline.has_value()) return findings;

  const auto element_position =
      [positions](std::size_t index) -> std::optional<TextPosition> {
    if (positions == nullptr || index >= positions->elements.size()) {
      return std::nullopt;
    }
    return positions->elements[index];
  };
  const auto verdicts_unchanged = [&](const MarchTest& trial) {
    if (!test_well_formed(trial)) return false;
    const std::optional<std::vector<StaticVerdict>> trial_verdicts =
        definite_verdicts(trial, list, options);
    return trial_verdicts.has_value() && *trial_verdicts == *baseline;
  };

  std::vector<bool> element_redundant(test.elements().size(), false);
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    MarchTest trial = test;
    trial.elements().erase(trial.elements().begin() + static_cast<long>(e));
    if (!verdicts_unchanged(trial)) continue;
    element_redundant[e] = true;
    add_finding(findings, source, element_position(e), "redundant-element",
                "element #" + std::to_string(e) + " " +
                    test.elements()[e].to_string() + " of test '" +
                    test.name() +
                    "' is removable: no static verdict changes against "
                    "list '" +
                    list.name + "'");
  }

  if (!options.check_dead_ops) return findings;
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    if (element_redundant[e]) continue;  // already reported wholesale
    const MarchElement& element = test.elements()[e];
    if (element.ops().size() == 1) continue;  // would be redundant-element
    for (std::size_t i = 0; i < element.ops().size(); ++i) {
      std::vector<Op> ops = element.ops();
      ops.erase(ops.begin() + static_cast<long>(i));
      MarchTest trial = test;
      trial.elements()[e] = MarchElement(element.order(), std::move(ops));
      if (!verdicts_unchanged(trial)) continue;
      add_finding(findings, source, element_position(e), "dead-op",
                  "op #" + std::to_string(i) + " (" +
                      to_string(element.ops()[i]) + ") of element #" +
                      std::to_string(e) + " " + element.to_string() +
                      " in test '" + test.name() +
                      "' is dead: removable with no static verdict changes");
    }
  }
  return findings;
}

}  // namespace mtg
