// The complete space of static fault primitives.
//
// Single-cell static FPs (12):
//   SF0 SF1, TF↑ TF↓, WDF0 WDF1, RDF0 RDF1, DRDF0 DRDF1, IRF0 IRF1.
// Two-cell static FPs (36):
//   CFst (4), CFds (6 aggressor sensitizers × 2 victim states = 12),
//   CFtr (4), CFwd (4), CFrd (4), CFdr (4), CFir (4).
//
// These counts match the standard static FP space of van de Goor & Al-Ars
// [12] (their "#FP = 12 single-cell, 36 two-cell" enumeration).
//
// Data-retention FPs (6) extend the space with the wait sensitizer `t`:
//   DRF0 DRF1 plus the 4 coupled CFrt variants.  They are kept out of the
// static counts above (which the literature fixes at 12 + 36) and exposed
// through all_retention_fps().
#pragma once

#include <vector>

#include "fp/fault_primitive.hpp"

namespace mtg {

/// All 12 single-cell static fault primitives.
std::vector<FaultPrimitive> all_single_cell_static_fps();

/// All 36 two-cell static fault primitives.
std::vector<FaultPrimitive> all_two_cell_static_fps();

/// The union of the two sets above (48 FPs).
std::vector<FaultPrimitive> all_static_fps();

/// The 6 data-retention fault primitives: DRF0, DRF1 and the four CFrt
/// coupled variants.  Only reachable by march tests containing `t` ops.
std::vector<FaultPrimitive> all_retention_fps();

/// all_static_fps() plus all_retention_fps() (54 FPs) — the full primitive
/// space the simulator models.
std::vector<FaultPrimitive> all_fps();

/// The six aggressor sensitizers used by disturb coupling faults:
/// 0w0, 0w1, 1w0, 1w1, 0r0, 1r1 as (state, op) pairs.
std::vector<std::pair<Bit, SenseOp>> cfds_aggressor_sensitizers();

}  // namespace mtg
