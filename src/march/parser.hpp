// Parser for the textual march notation.
//
// Accepted grammar (whitespace tolerant, ';' between elements optional):
//
//   test    := '{'? element ( ';'? element )* '}'?
//   element := order '(' op ( ',' op )* ')'
//   order   := '^' | 'v' | 'c' | '⇑' | '⇓' | '⇕'
//   op      := 'w0' | 'w1' | 'r0' | 'r1' | 'r' | 't'
//
// Examples:
//   "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}"
//   "c(w0) ^(r0,w1) v(r1,w0)"
#pragma once

#include <string>
#include <string_view>

#include "march/march_test.hpp"

namespace mtg {

/// Parses a march test from its textual notation.  Throws mtg::Error with a
/// position-annotated message on malformed input.
MarchTest parse_march_test(std::string_view text, std::string name = {});

/// Parses a single march element, e.g. "⇑(r0,w1)".
MarchElement parse_march_element(std::string_view text);

}  // namespace mtg
