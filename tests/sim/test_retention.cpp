// Data-retention (t-op) fault modeling: DRF/CFrt semantics on the scalar
// machine, scalar/packed detection agreement, catalog behaviour (classic
// tests without waits miss retention faults; March G catches them) and the
// generator's ability to emit t-bearing tests for retention-only lists.
#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "fp/fp_library.hpp"
#include "fp/semantics.hpp"
#include "gen/generator.hpp"
#include "march/analysis.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/coverage.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

SimulatorOptions packed_options(std::size_t n) {
  return SimulatorOptions{n, true, 10, /*use_packed_engine=*/true, 1};
}

SimulatorOptions scalar_options(std::size_t n) {
  return SimulatorOptions{n, true, 10, /*use_packed_engine=*/false, 1};
}

TEST(Retention, FaultPrimitiveTaxonomy) {
  const FaultPrimitive drf0 = FaultPrimitive::drf(Bit::Zero);
  EXPECT_EQ(drf0.classify(), FpClass::DRF);
  EXPECT_EQ(drf0.name(), "DRF0");
  EXPECT_EQ(drf0.notation(), "<0t/1/->");
  EXPECT_TRUE(drf0.is_retention());
  EXPECT_FALSE(drf0.is_immediately_detecting());

  const FaultPrimitive cfrt = FaultPrimitive::cfrt(Bit::One, Bit::Zero);
  EXPECT_EQ(cfrt.classify(), FpClass::CFrt);
  EXPECT_EQ(cfrt.notation(), "<1;0t/1/->");
  EXPECT_TRUE(cfrt.is_retention());

  // No static FP is a retention FP.
  for (const FaultPrimitive& fp : all_static_fps()) {
    EXPECT_FALSE(fp.is_retention()) << fp.notation();
  }
  EXPECT_EQ(all_retention_fps().size(), 6u);
  EXPECT_EQ(all_fps().size(), 54u);
}

TEST(Retention, WaitSensitizerIsVictimOnly) {
  // Aggressor wait sensitizers are not part of the model.
  EXPECT_THROW(FaultPrimitive::coupled(Bit::Zero, SenseOp::Wt, Bit::Zero,
                                       SenseOp::None, Bit::One),
               Error);
  // A "retention fault" that decays to the held value is no deviation.
  EXPECT_THROW(
      FaultPrimitive::single(Bit::Zero, SenseOp::Wt, Bit::Zero), Error);
}

TEST(Retention, DrfDecaysOnWaitAndRefreshesOnWrite) {
  // DRF0 <0t/1/->: an un-refreshed cell holding 0 decays to 1.
  FaultyMemory memory(3, {BoundFp::at(FaultPrimitive::drf(Bit::Zero), 1)});
  memory.power_on_uniform(Bit::Zero);

  memory.wait(0);  // pause on another cell: the victim keeps its value
  EXPECT_EQ(memory.state().to_string(), "000");

  memory.wait(1);  // the victim decays
  EXPECT_EQ(memory.state().to_string(), "010");
  EXPECT_EQ(memory.fire_count(0), 1u);

  memory.wait(1);  // decay is idempotent
  EXPECT_EQ(memory.state().to_string(), "010");
  EXPECT_EQ(memory.fire_count(0), 1u);

  memory.write(1, Bit::Zero);  // refresh re-establishes the level ...
  EXPECT_EQ(memory.state().to_string(), "000");
  memory.wait(1);  // ... and the next pause decays it again
  EXPECT_EQ(memory.state().to_string(), "010");
  EXPECT_EQ(memory.fire_count(0), 2u);
}

TEST(Retention, CfrtRequiresAggressorState) {
  // CFrt <1;0t/1/->: the victim decays only while the aggressor holds 1.
  FaultyMemory memory(
      2, {BoundFp(FaultPrimitive::cfrt(Bit::One, Bit::Zero), 0, 1)});
  memory.power_on_uniform(Bit::Zero);
  memory.wait(1);
  EXPECT_EQ(memory.state().to_string(), "00");  // aggressor at 0: no decay
  memory.write(0, Bit::One);
  memory.wait(1);
  EXPECT_EQ(memory.state().to_string(), "11");  // aggressor at 1: decay
}

TEST(Retention, ClassicTestsMissButMarchGDetects) {
  // The acceptance scenario: a DRF escapes every classic march test without
  // waits and is caught by March G's retention pauses — on both engines.
  for (Bit s : {Bit::Zero, Bit::One}) {
    const SimpleFault fault = SimpleFault::single(FaultPrimitive::drf(s));
    for (std::size_t n : {4u, 6u}) {
      const FaultSimulator packed(packed_options(n));
      const FaultSimulator scalar(scalar_options(n));
      for (const FaultInstance& instance : instantiate(fault, n, 0)) {
        for (const MarchTest& test :
             {mats_plus(), march_c_minus(), march_ss(), march_sl()}) {
          ASSERT_FALSE(test.contains_wait());
          EXPECT_FALSE(packed.detects(test, instance))
              << test.name() << " vs " << instance.description;
          EXPECT_FALSE(scalar.detects(test, instance));
        }
        ASSERT_TRUE(march_g().contains_wait());
        EXPECT_TRUE(packed.detects(march_g(), instance))
            << instance.description;
        EXPECT_TRUE(scalar.detects(march_g(), instance));
      }
    }
  }
}

TEST(Retention, MarchGCoversSimpleDrfs) {
  FaultList drfs;
  drfs.name = "simple DRFs";
  drfs.simple.push_back(SimpleFault::single(FaultPrimitive::drf(Bit::Zero)));
  drfs.simple.push_back(SimpleFault::single(FaultPrimitive::drf(Bit::One)));

  const FaultSimulator simulator(packed_options(6));
  EXPECT_TRUE(evaluate_coverage(simulator, march_g(), drfs).full_coverage());
  EXPECT_FALSE(
      evaluate_coverage(simulator, march_sl(), drfs).full_coverage());
}

TEST(Retention, RetentionFaultListTargetsRetention) {
  const FaultList list = retention_fault_list();
  EXPECT_TRUE(targets_retention(list));
  EXPECT_GE(list.simple.size(), 10u);  // 2 DRF + 4 CFrt in both layouts
  EXPECT_FALSE(list.linked.empty());
  EXPECT_FALSE(targets_retention(fault_list_1()));
  EXPECT_FALSE(targets_retention(fault_list_2()));
  EXPECT_FALSE(targets_retention(standard_simple_static_faults()));
}

TEST(Retention, LinkedRetentionFaultsChainThroughWaits) {
  // DRF as FP1 masked by a static FP, and vice versa, must both appear.
  const auto linked = enumerate_retention_linked_faults();
  bool drf_first = false;
  bool drf_second = false;
  for (const LinkedFault& lf : linked) {
    EXPECT_TRUE(lf.fp1().is_retention() || lf.fp2().is_retention());
    if (lf.fp1().is_retention()) drf_first = true;
    if (lf.fp2().is_retention()) drf_second = true;
  }
  EXPECT_TRUE(drf_first);
  EXPECT_TRUE(drf_second);
}

TEST(Retention, RetentionGapsReflectWaits) {
  const auto sl_gaps = retention_gaps(march_sl());
  ASSERT_EQ(sl_gaps.size(), 2u);  // no waits at all: both polarities escape
  EXPECT_TRUE(retention_gaps(march_g()).empty());
  const MarchProfile g = analyze(march_g());
  EXPECT_TRUE(g.retention_observed[0]);
  EXPECT_TRUE(g.retention_observed[1]);
}

TEST(Retention, GeneratorEmitsWaitOpsForRetentionFaults) {
  // The generator must propose t ops when (and only when) the target list
  // contains retention faults, and fully cover a retention-only list.
  GeneratorOptions options;
  options.working_memory_size = 3;
  options.certify_memory_size = 5;
  options.minimize_memory_size = 4;
  options.max_element_length = 4;

  const GenerationResult result =
      generate_march_test(retention_fault_list(), options);
  EXPECT_TRUE(result.test.contains_wait());
  EXPECT_TRUE(result.full_coverage);
  EXPECT_TRUE(result.uncoverable.empty());
  EXPECT_EQ(result.test.consistency_violation(), "");

  // Independent certification on a fresh simulator at a different size.
  const FaultSimulator simulator(packed_options(6));
  EXPECT_TRUE(evaluate_coverage(simulator, result.test, retention_fault_list())
                  .full_coverage());

  // A static-only list keeps the candidate pool wait-free.
  const GenerationResult static_result =
      generate_march_test(fault_list_2(), options);
  EXPECT_FALSE(static_result.test.contains_wait());
}

}  // namespace
}  // namespace mtg
