// CancelToken unit tests plus the cooperative-cancellation contract of the
// evaluation engines: a tripped token stops evaluate_coverage/sweep_coverage
// in bounded time, the first cause wins and sticks, and an interrupted
// computation never yields a partial report — completed sweep points stay
// byte-identical to an uninterrupted run.
#include "common/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_store.hpp"

namespace mtg {
namespace {

TEST(CancelToken, StartsLiveAndLatchesCancel) {
  CancelToken token;
  EXPECT_EQ(token.cause(), CancelCause::None);
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());

  token.cancel();
  EXPECT_EQ(token.cause(), CancelCause::Cancelled);
  EXPECT_TRUE(token.cancelled());
  try {
    token.check();
    FAIL() << "check() must throw once the token tripped";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::Cancelled);
  }
}

TEST(CancelToken, FirstCauseWins) {
  // Explicit cancel first: the deadline passing later must not rewrite it.
  CancelToken token;
  token.cancel();
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(token.cause(), CancelCause::Cancelled);

  // Deadline first: a later cancel() must not rewrite it either.
  CancelToken expired;
  expired.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_EQ(expired.cause(), CancelCause::DeadlineExceeded);
  expired.cancel();
  EXPECT_EQ(expired.cause(), CancelCause::DeadlineExceeded);
}

TEST(CancelToken, ZeroBudgetMeansNoDeadline) {
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds(0));
  EXPECT_EQ(token.cause(), CancelCause::None);
}

TEST(CancelToken, DeadlineTripsAfterTheBudget) {
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(token.cause(), CancelCause::DeadlineExceeded);
}

TEST(CancelToken, ChildTripsWithParent) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_EQ(child.cause(), CancelCause::Cancelled);
  // The child latched: it stays tripped even if queried again.
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelToken, ChildKeepsItsOwnCause) {
  CancelToken parent;
  CancelToken child(&parent);
  child.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(child.cause(), CancelCause::DeadlineExceeded);
  EXPECT_EQ(parent.cause(), CancelCause::None);  // never propagates upward
  parent.cancel();
  EXPECT_EQ(child.cause(), CancelCause::DeadlineExceeded);  // latched
}

TEST(CancelToken, GrandparentChainTrips) {
  CancelToken grandparent;
  CancelToken parent(&grandparent);
  CancelToken child(&parent);
  grandparent.cancel();
  EXPECT_TRUE(child.cancelled());
}

// --- the engines' cooperative-cancellation contract -------------------------

TEST(CancelEvaluate, PreCancelledTokenThrowsBeforeEvaluating) {
  CancelToken token;
  token.cancel();
  for (const bool packed : {true, false}) {
    SimulatorOptions options;
    options.memory_size = 6;
    options.use_packed_engine = packed;
    options.coverage_threads = 1;
    EXPECT_THROW(evaluate_coverage(FaultSimulator(options), march_sl(),
                                   fault_list_1(), 0, &token),
                 CancelledError)
        << (packed ? "packed" : "scalar");
  }
}

TEST(CancelEvaluate, DeadlineInterruptsMidEvaluationInBoundedTime) {
  // A workload that takes well over the deadline (March SL against list 2 at
  // n=4096 is tens of milliseconds even on fast hardware) must stop a few
  // chunks after the deadline passes — and produce no report at all.
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds(1));
  SimulatorOptions options;
  options.memory_size = 4096;
  options.coverage_threads = 2;
  const auto start = std::chrono::steady_clock::now();
  try {
    evaluate_coverage(FaultSimulator(options), march_sl(), fault_list_2(), 0,
                      &token);
    FAIL() << "a 1ms deadline must interrupt a multi-ten-ms evaluation";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::DeadlineExceeded);
  }
  // Bounded-latency assertion, deliberately generous for loaded CI machines:
  // the poll happens every chunk (16 instances), so even slow hardware stops
  // orders of magnitude below an uncancelled run.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);
}

TEST(CancelEvaluate, CancelFromAnotherThreadStopsTheEvaluation) {
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.cancel();
  });
  SimulatorOptions options;
  options.memory_size = 4096;
  options.coverage_threads = 2;
  bool interrupted = false;
  CancelCause cause = CancelCause::None;
  try {
    evaluate_coverage(FaultSimulator(options), march_sl(), fault_list_2(), 0,
                      &token);
  } catch (const CancelledError& e) {
    interrupted = true;
    cause = e.cause();
  }
  canceller.join();  // before any assertion that could return early
  EXPECT_TRUE(interrupted) << "the cancel must land mid-evaluation";
  EXPECT_EQ(cause, CancelCause::Cancelled);
}

TEST(CancelSweep, PreCancelledTokenMarksEveryPointCancelled) {
  CancelToken token;
  token.cancel();
  SweepOptions options;
  options.cancel = &token;
  options.threads = 2;
  const auto points =
      sweep_coverage(march_sl(), fault_list_1(), {4, 5, 6}, options);
  ASSERT_EQ(points.size(), 3u);
  for (const SweepPoint& point : points) {
    EXPECT_TRUE(point.cancelled);
    EXPECT_TRUE(point.report.entries.empty()) << "no partial reports";
  }
}

TEST(CancelSweep, CompletedPointsStayByteIdentical) {
  // Reference run: no cancellation.  List 2 keeps the per-point cost in the
  // milliseconds while the growing sizes still give the racing cancel a
  // mid-sweep window to land in.
  SweepOptions plain;
  plain.threads = 1;
  const std::vector<std::size_t> sizes = {64, 128, 256, 512, 1024, 2048};
  const auto reference = sweep_coverage(march_sl(), fault_list_2(), sizes,
                                        plain);

  // Interrupted run: a racing cancel lands at an arbitrary point boundary.
  CancelToken token;
  SweepOptions interrupted;
  interrupted.threads = 1;
  interrupted.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.cancel();
  });
  const auto points = sweep_coverage(march_sl(), fault_list_2(), sizes,
                                     interrupted);
  canceller.join();

  // Whatever completed must match the reference byte for byte (the store
  // codec is the byte-level serialization of a report); whatever didn't must
  // be absent, not partial.
  const SweepKey key;  // any fixed key: only the payload bytes matter
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].cancelled) {
      EXPECT_TRUE(points[i].report.entries.empty());
      continue;
    }
    EXPECT_EQ(SweepStore::encode_record(key, points[i].report),
              SweepStore::encode_record(key, reference[i].report))
        << "point " << i;
  }
}

}  // namespace
}  // namespace mtg
