// March tests (Definition 10): a named sequence of march elements.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "march/march_element.hpp"

namespace mtg {

class MarchTest {
 public:
  MarchTest() = default;
  MarchTest(std::string name, std::vector<MarchElement> elements);

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<MarchElement>& elements() const noexcept { return elements_; }
  std::vector<MarchElement>& elements() noexcept { return elements_; }

  bool empty() const noexcept { return elements_.empty(); }
  std::size_t size() const noexcept { return elements_.size(); }

  void append(MarchElement element) { elements_.push_back(std::move(element)); }

  /// The test complexity coefficient: total operations applied per memory
  /// cell.  A march test of complexity c performs c*n operations on an
  /// n-cell memory; the literature writes this as "cn" (e.g. March SL is 41n).
  std::size_t complexity() const noexcept;

  /// "41n"-style complexity label.
  std::string complexity_label() const;

  /// True when some element contains the wait op `t` — a prerequisite for
  /// covering data-retention faults.
  bool contains_wait() const noexcept;

  /// Structural well-formedness check: every element's expected entry value
  /// (first read before any write) must match the previous element's final
  /// value, and the first element must not expect a value on the
  /// power-on (unknown) memory.  Returns an explanation of the first
  /// violation, or an empty string when consistent.
  ///
  /// Note this is a necessary condition only; full validation against the
  /// fault-free machine is done by sim::FaultSimulator::validate.
  std::string consistency_violation() const;

  /// Notation form: "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}".
  std::string to_string(bool ascii = false) const;

  /// Canonical serialization: the deterministic ASCII notation form, e.g.
  /// "{c(w0); ^(r0,w1); v(r1,w0)}".  Round-trips through the parser —
  /// parse_march_test(t.to_canonical_string()) == t — and excludes the name
  /// (metadata, like operator==), so equal tests serialize identically and
  /// stable_hash() keys derived from it are stable across runs and
  /// platforms.  Locked by tests/march/test_march_test.cpp.
  std::string to_canonical_string() const { return to_string(/*ascii=*/true); }

  friend bool operator==(const MarchTest& a, const MarchTest& b) {
    return a.elements_ == b.elements_;  // the name is metadata
  }
  friend bool operator!=(const MarchTest& a, const MarchTest& b) {
    return !(a == b);
  }

 private:
  std::string name_;
  std::vector<MarchElement> elements_;
};

std::ostream& operator<<(std::ostream& os, const MarchTest& mt);

/// Stable 64-bit content hash (FNV-1a over to_canonical_string()): equal
/// tests hash equally regardless of their names, across runs and platforms.
/// One half of the sweep store's record key (store/sweep_store.hpp).
std::uint64_t stable_hash(const MarchTest& test);

}  // namespace mtg
