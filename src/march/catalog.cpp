#include "march/catalog.hpp"

#include "common/error.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

MarchTest make(const char* name, const char* notation, std::size_t complexity) {
  MarchTest test = parse_march_test(notation, name);
  MTG_INTERNAL_CHECK(test.complexity() == complexity,
                     std::string("catalog test ") + name + " has complexity " +
                         test.complexity_label() + ", expected " +
                         std::to_string(complexity) + "n");
  MTG_INTERNAL_CHECK(test.consistency_violation().empty(),
                     std::string("catalog test ") + name + " is inconsistent: " +
                         test.consistency_violation());
  return test;
}

}  // namespace

MarchTest mats_plus() {
  return make("MATS+", "{c(w0); ^(r0,w1); v(r1,w0)}", 5);
}

MarchTest march_x() {
  return make("March X", "{c(w0); ^(r0,w1); v(r1,w0); c(r0)}", 6);
}

MarchTest march_y() {
  return make("March Y", "{c(w0); ^(r0,w1,r1); v(r1,w0,r0); c(r0)}", 8);
}

MarchTest march_c_minus() {
  return make("March C-",
              "{c(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); c(r0)}", 10);
}

MarchTest march_a() {
  return make("March A",
              "{c(w0); ^(r0,w1,w0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); v(r0,w1,w0)}",
              15);
}

MarchTest march_b() {
  return make("March B",
              "{c(w0); ^(r0,w1,r1,w0,r0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); "
              "v(r0,w1,w0)}",
              17);
}

MarchTest march_u() {
  return make("March U",
              "{c(w0); ^(r0,w1,r1,w0); ^(r0,w1); v(r1,w0,r0,w1); v(r1,w0)}", 13);
}

MarchTest march_g() {
  // van de Goor's March G; the two `t` waits are the data-retention pauses
  // (Definition 2's wait operation).
  return make("March G",
              "{c(w0); ^(r0,w1,r1,w0,r0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); "
              "v(r0,w1,w0); c(t,r0,w1,r1); c(t,r1,w0,r0)}",
              25);  // 23n + 2 delays; our cost model counts the waits
}

MarchTest pmovi() {
  return make("PMOVI",
              "{v(w0); ^(r0,w1,r1); ^(r1,w0,r0); v(r0,w1,r1); v(r1,w0,r0)}",
              13);
}

MarchTest march_lr() {
  return make("March LR",
              "{c(w0); v(r0,w1); ^(r1,w0,r0,w1); ^(r1,w0); ^(r0,w1,r1,w0); ^(r0)}",
              14);
}

MarchTest march_la() {
  return make("March LA",
              "{c(w0); ^(r0,w1,w0,w1,r1); ^(r1,w0,w1,w0,r0); v(r0,w1,w0,w1,r1); "
              "v(r1,w0,w1,w0,r0); v(r0)}",
              22);
}

MarchTest march_ss() {
  return make("March SS",
              "{c(w0); ^(r0,r0,w0,r0,w1); ^(r1,r1,w1,r1,w0); v(r0,r0,w0,r0,w1); "
              "v(r1,r1,w1,r1,w0); c(r0)}",
              22);
}

MarchTest march_sl() {
  return make("March SL",
              "{c(w0); ^(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1); "
              "^(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0); "
              "v(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1); "
              "v(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0)}",
              41);
}

MarchTest march_lf1() {
  // Reconstruction of the 11n March LF1 [16]; validated against Fault List
  // #2 by the fault simulator (see tests/test_calibration.cpp).
  return make("March LF1",
              "{c(w0); c(r0,w0,r0,r0,w1); c(r1,w1,r1,r1,w0)}", 11);
}

MarchTest march_abl() {
  // Paper Table 1, row "ABL" (Fault List #1, 37n).
  return make("March ABL",
              "{c(w0); ^(r0,r0,w0,r0,w1,w1,r1); ^(r1,r1,w1,r1,w0,w0,r0); "
              "v(r0,w1); v(r1,w0); v(r0,r0,w0,r0,w1,w1,r1); "
              "v(r1,r1,w1,r1,w0,w0,r0); ^(r0,w1); ^(r1,w0)}",
              37);
}

MarchTest march_rabl() {
  // Paper Table 1, row "RABL" (Fault List #1, 35n).
  return make("March RABL",
              "{c(w0); ^(r0,r0,w0,r0); ^(r0,w1,r1,r1,w1,r1,w0,r0); ^(r0,w1); "
              "v(r1,r1,w1,r1,w0,r0,w0,r0); ^(w1); "
              "^(r1,r1,w1,r1,w0,r0,r0,w0,r0,w1,r1)}",
              35);
}

MarchTest march_abl1() {
  // Paper Table 1, row "ABL1" (Fault List #2, 9n).
  return make("March ABL1", "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0)}", 9);
}

std::vector<MarchTest> all_catalog_tests() {
  return {mats_plus(),  march_x(),   march_y(),  march_c_minus(), march_a(),
          march_b(),    march_u(),   march_g(),  pmovi(),         march_lr(),
          march_la(),   march_ss(),  march_sl(), march_lf1(),     march_abl(),
          march_rabl(), march_abl1()};
}

std::vector<MarchTest> linked_fault_catalog_tests() {
  return {march_lr(), march_la(), march_sl(), march_lf1(), march_abl(),
          march_rabl(), march_abl1()};
}

std::vector<MarchTest> retention_catalog_tests() {
  std::vector<MarchTest> tests;
  for (MarchTest& test : all_catalog_tests()) {
    if (test.contains_wait()) tests.push_back(std::move(test));
  }
  return tests;
}

}  // namespace mtg
