// The round-trip contract of the catalog text formats:
//
//   parse(to_canonical_string(x)) == x
//
// for every built-in fault list (all three sections: simple, linked,
// decoder) and for a suite of every catalog march test — and the stable
// hashes survive the trip, so an external catalog that serializes equal to
// a built-in keys into the same sweep-store records.
#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "fp/fp_library.hpp"
#include "format/fault_list_text.hpp"
#include "format/suite_text.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

std::vector<FaultList> builtin_lists() {
  return {fault_list_1(), fault_list_2(), standard_simple_static_faults(),
          retention_fault_list(), decoder_fault_list()};
}

TEST(FormatRoundTrip, EveryBuiltinFaultListSurvivesExactly) {
  for (const FaultList& list : builtin_lists()) {
    SCOPED_TRACE(list.name);
    const std::string text = to_canonical_string(list);
    const FaultList reparsed = parse_fault_list_text(text, list.name);
    EXPECT_EQ(reparsed, list);
    // Exact canonical fixpoint: writing the reparsed list reproduces the
    // text byte for byte, so hashes (= sweep-store keys) are preserved.
    EXPECT_EQ(to_canonical_string(reparsed), text);
    EXPECT_EQ(stable_hash(reparsed), stable_hash(list));
  }
}

TEST(FormatRoundTrip, FaultListSectionsSurviveIndividually) {
  const FaultList list = fault_list_1();
  const FaultList reparsed =
      parse_fault_list_text(to_canonical_string(list));
  ASSERT_EQ(reparsed.simple.size(), list.simple.size());
  ASSERT_EQ(reparsed.linked.size(), list.linked.size());
  for (std::size_t i = 0; i < list.simple.size(); ++i) {
    EXPECT_EQ(reparsed.simple[i], list.simple[i]) << "simple #" << i;
    // Factory-rebuilt records reproduce the derived display names too.
    EXPECT_EQ(reparsed.simple[i].name, list.simple[i].name) << "simple #" << i;
  }
  for (std::size_t i = 0; i < list.linked.size(); ++i) {
    EXPECT_EQ(reparsed.linked[i], list.linked[i]) << "linked #" << i;
  }
}

TEST(FormatRoundTrip, DecoderSectionSurvives) {
  const FaultList list = decoder_fault_list();
  ASSERT_FALSE(list.decoder.empty());
  const FaultList reparsed =
      parse_fault_list_text(to_canonical_string(list));
  ASSERT_EQ(reparsed.decoder.size(), list.decoder.size());
  for (std::size_t i = 0; i < list.decoder.size(); ++i) {
    EXPECT_EQ(reparsed.decoder[i], list.decoder[i]) << "decoder #" << i;
  }
}

TEST(FormatRoundTrip, EveryFaultPrimitiveNotationSurvives) {
  for (const FaultPrimitive& fp : all_fps()) {
    SCOPED_TRACE(fp.notation());
    EXPECT_EQ(FaultPrimitive::from_notation(fp.notation()), fp);
  }
}

TEST(FormatRoundTrip, SuiteOfEveryCatalogTestSurvivesExactly) {
  MarchSuite suite;
  suite.tests = all_catalog_tests();
  const std::string text = to_canonical_string(suite);
  const MarchSuite reparsed = parse_march_suite_text(text, "catalog");
  EXPECT_EQ(reparsed, suite);  // includes names
  EXPECT_EQ(to_canonical_string(reparsed), text);
  for (std::size_t i = 0; i < suite.tests.size(); ++i) {
    EXPECT_EQ(stable_hash(reparsed.tests[i]), stable_hash(suite.tests[i]))
        << suite.tests[i].name();
  }
}

TEST(FormatRoundTrip, SuiteNamesNeedingEscapesSurvive) {
  MarchSuite suite;
  suite.tests.push_back(
      parse_march_test("{c(w0); ^(r0,w1)}", R"(quoted "name" with \ inside)"));
  const MarchSuite reparsed =
      parse_march_suite_text(to_canonical_string(suite));
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed.tests[0].name(), R"(quoted "name" with \ inside)");
  EXPECT_EQ(reparsed, suite);
}

TEST(FormatRoundTrip, ListNameDirectiveIsMetadataOnly) {
  const std::string text =
      "faultlist v1\nname My list\nsimple <0/1/-> a_pos=-1 v_pos=0\n";
  const FaultList list = parse_fault_list_text(text);
  EXPECT_EQ(list.name, "My list");
  FaultList anonymous = list;
  anonymous.name.clear();
  // Names are metadata: they change neither equality nor the store key.
  EXPECT_EQ(anonymous, list);
  EXPECT_EQ(stable_hash(anonymous), stable_hash(list));
}

}  // namespace
}  // namespace mtg
