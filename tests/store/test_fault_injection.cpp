// The fault-injection harness for the persistent sweep store (ISSUE: the
// crash-safety acceptance bar).  A sweep is driven once against a counting
// storage to learn its operation count M, then replayed failing the k-th
// storage operation for every k ∈ [1, M], every failure shape and both
// stickiness settings, asserting two invariants:
//
//  1. coverage results are byte-identical with and without a (possibly
//     failing) store — a damaged or unavailable store only ever costs
//     recomputation, never correctness;
//  2. a store damaged mid-write is always detected, skipped, and repaired on
//     the next run — after one clean run the grid resumes fully warm.
//
// MTG_STORE_FAULT_POINTS=<n> caps the number of k values swept per
// configuration (the sanitizer CI job runs a reduced sweep); the randomized
// harness follows the differential-fuzz replay conventions: every failure
// prints its seed and MTG_FUZZ_SEED=<seed> replays exactly that case.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/march_test.hpp"
#include "sim/sweep.hpp"
#include "store/fault_injection.hpp"
#include "store/storage.hpp"
#include "store/sweep_store.hpp"

namespace mtg {
namespace {

// Small, fast, but real workload: every store code path (miss, save, hit)
// fires, and two points exercise ordering.
const std::vector<std::size_t>& workload_sizes() {
  static const std::vector<std::size_t> sizes = {6, 8};
  return sizes;
}
constexpr std::size_t kCap = 4;

SweepOptions workload_options(SweepStore* store = nullptr) {
  SweepOptions options;
  options.max_instances_per_fault = kCap;
  options.threads = 1;  // deterministic storage-operation ordering
  options.store = store;
  return options;
}

// The byte-identity yardstick: the full human-readable rendering of the
// grid, per-point summaries included (they embed names, counts, escapes).
std::string grid_string(const std::vector<SweepPoint>& points) {
  std::string out = sweep_summary(points);
  for (const SweepPoint& point : points) {
    out += point.report.summary();
    out += '\n';
  }
  return out;
}

std::string store_less_baseline(const MarchTest& test, const FaultList& list) {
  return grid_string(
      sweep_coverage(test, list, workload_sizes(), workload_options()));
}

SweepStoreOptions quiet_options(std::vector<std::string>* warnings = nullptr) {
  SweepStoreOptions options;
  options.retry_backoff = std::chrono::milliseconds{0};
  if (warnings != nullptr) {
    options.warn = [warnings](const std::string& m) { warnings->push_back(m); };
  } else {
    options.warn = [](const std::string&) {};
  }
  return options;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// Number of storage operations one cold store-backed sweep performs — the
// size of the failure-point space the exhaustive test enumerates.
std::uint64_t measure_operation_count(const MarchTest& test,
                                      const FaultList& list) {
  InMemoryStorage mem;
  FaultInjectedStorage counting(mem);
  SweepStore store(counting, "/store", quiet_options());
  EXPECT_TRUE(store.open());
  sweep_coverage(test, list, workload_sizes(), workload_options(&store));
  return counting.counts().total();
}

const char* mode_name(StoreFaultMode mode) {
  switch (mode) {
    case StoreFaultMode::Error:
      return "Error";
    case StoreFaultMode::TornWriteError:
      return "TornWriteError";
    case StoreFaultMode::TornWriteSilent:
      return "TornWriteSilent";
  }
  return "?";
}

// One full crash-recovery scenario: fail the k-th operation during a cold
// store-backed sweep, then prove the three-run invariant chain.
void run_failure_scenario(const MarchTest& test, const FaultList& list,
                          const std::string& baseline, std::uint64_t k,
                          StoreFaultMode mode, bool sticky,
                          const std::string& label) {
  InMemoryStorage mem;
  FaultInjectedStorage faulty(mem);
  std::vector<std::string> warnings;

  // Run 1 — the fault fires somewhere inside open/load/save.  Whatever it
  // hits (including the store's own open), results must not move.
  {
    SweepStore store(faulty, "/store", quiet_options(&warnings));
    faulty.fail_kth_operation(k, mode, sticky);
    store.open();  // may fail under injection; the sweep must not care
    const auto points =
        sweep_coverage(test, list, workload_sizes(), workload_options(&store));
    ASSERT_EQ(grid_string(points), baseline)
        << label << ": a failing store changed the results";
  }

  // Run 2 — the disk "comes back".  Any record damaged by run 1 (torn
  // prefixes, silently acked half-writes) must be detected, skipped, and
  // repaired; results still identical.
  faulty.clear_fault();
  {
    SweepStore store(faulty, "/store", quiet_options(&warnings));
    ASSERT_TRUE(store.open()) << label;
    const auto points =
        sweep_coverage(test, list, workload_sizes(), workload_options(&store));
    ASSERT_EQ(grid_string(points), baseline)
        << label << ": recovery run changed the results";
    ASSERT_EQ(store.stats().save_failures, 0u)
        << label << ": recovery run could not rewrite the store";
  }

  // Run 3 — the store is now fully healed: a warm resume evaluates nothing.
  {
    SweepStore store(faulty, "/store", quiet_options(&warnings));
    ASSERT_TRUE(store.open()) << label;
    const auto points =
        sweep_coverage(test, list, workload_sizes(), workload_options(&store));
    ASSERT_EQ(sweep_points_evaluated(points), 0u)
        << label << ": store not fully repaired after a clean run";
    ASSERT_EQ(grid_string(points), baseline) << label;
  }
}

TEST(StoreFaultInjection, EveryFailurePointEveryModeKeepsResultsIdentical) {
  const MarchTest test = mats_plus();
  const FaultList list = fault_list_2();
  const std::string baseline = store_less_baseline(test, list);
  const std::uint64_t ops = measure_operation_count(test, list);
  ASSERT_GE(ops, workload_sizes().size() * 4)
      << "workload too small to exercise the store";

  // MTG_STORE_FAULT_POINTS caps the k values per configuration (sanitizer CI
  // runs a strided sweep); unset = exhaustive.
  const std::uint64_t max_points = env_u64("MTG_STORE_FAULT_POINTS", ops);
  const std::uint64_t stride =
      max_points == 0 ? 1 : (ops + max_points - 1) / max_points;

  for (const StoreFaultMode mode :
       {StoreFaultMode::Error, StoreFaultMode::TornWriteError,
        StoreFaultMode::TornWriteSilent}) {
    for (const bool sticky : {false, true}) {
      for (std::uint64_t k = 1; k <= ops; k += stride) {
        const std::string label = std::string("fail op ") + std::to_string(k) +
                                  "/" + std::to_string(ops) + " mode=" +
                                  mode_name(mode) +
                                  (sticky ? " sticky" : " transient");
        run_failure_scenario(test, list, baseline, k, mode, sticky, label);
        if (HasFatalFailure()) return;
      }
      // The boundary case k = ops (the very last operation) is always swept.
      if ((ops - 1) % stride != 0) {
        run_failure_scenario(test, list, baseline, ops, mode, sticky,
                             std::string("fail last op mode=") +
                                 mode_name(mode));
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(StoreFaultInjection, RandomizedFaultScheduleKeepsInvariants) {
  // Randomized complement of the exhaustive sweep: arbitrary k (including
  // past-the-end schedules that never fire), random shape and stickiness.
  // Replay conventions match the differential fuzz harness: MTG_FUZZ_SEED
  // replays one case, MTG_FUZZ_CASES rescales the sweep.
  const MarchTest test = mats_plus();
  const FaultList list = fault_list_2();
  const std::string baseline = store_less_baseline(test, list);
  const std::uint64_t ops = measure_operation_count(test, list);

  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_FUZZ_CASES", 1500) / 50;

  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : 0x57DEu + i;
    // splitmix64: small, seed-stable across platforms (no std::mt19937
    // distribution variance).
    std::uint64_t state = seed;
    const auto next = [&state]() {
      state += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    const std::uint64_t k = 1 + next() % (ops + ops / 2);  // may never fire
    const StoreFaultMode mode = static_cast<StoreFaultMode>(next() % 3);
    const bool sticky = next() % 2 == 0;
    run_failure_scenario(
        test, list, baseline, k, mode, sticky,
        "seed " + std::to_string(seed) +
            " (replay: MTG_FUZZ_SEED=" + std::to_string(seed) + ")");
    if (HasFatalFailure()) return;
  }
}

TEST(StoreFaultInjection, ResumeRecomputesOnlyMissingAndCorruptPoints) {
  // The resumability contract (ISSUE satellite): punch one hole into a
  // complete grid, corrupt one record in place, and prove — by storage
  // operation counts — that the re-run recomputes exactly those two points
  // and nothing else, with a final grid byte-identical to store-less.
  const MarchTest test = mats_plus();
  const FaultList list = fault_list_2();
  const std::vector<std::size_t> sizes = {6, 8, 12, 16};

  SweepOptions options = workload_options();
  const std::string baseline =
      grid_string(sweep_coverage(test, list, sizes, options));

  InMemoryStorage mem;
  FaultInjectedStorage counting(mem);

  SweepKey key;
  key.test_hash = stable_hash(test);
  key.list_hash = stable_hash(list);
  key.max_instances_per_fault = kCap;

  std::string dropped_path, corrupted_path;
  {
    SweepStore store(counting, "/store", quiet_options());
    ASSERT_TRUE(store.open());
    options.store = &store;
    const auto points = sweep_coverage(test, list, sizes, options);
    ASSERT_EQ(sweep_points_evaluated(points), sizes.size());
    ASSERT_EQ(grid_string(points), baseline);
    ASSERT_EQ(store.stats().saves, sizes.size());

    // Drop the n=8 record entirely...
    key.memory_size = 8;
    dropped_path = store.record_path(key);
    ASSERT_TRUE(store.remove(key));
    // ...and flip one byte of the n=12 record in place (bit rot / torn tail).
    key.memory_size = 12;
    corrupted_path = store.record_path(key);
    std::string& record = mem.files().at(corrupted_path);
    record[record.size() - 1] = static_cast<char>(record.back() ^ 0x40);
  }

  counting.reset_counts();
  {
    SweepStore store(counting, "/store", quiet_options());
    ASSERT_TRUE(store.open());
    options.store = &store;
    const auto points = sweep_coverage(test, list, sizes, options);

    // Exactly the missing and the corrupt point were recomputed.
    EXPECT_EQ(sweep_points_evaluated(points), 2u);
    EXPECT_TRUE(points[0].from_store) << "n=6 should be a hit";
    EXPECT_TRUE(points[3].from_store) << "n=16 should be a hit";
    EXPECT_EQ(grid_string(points), baseline);

    const SweepStoreStats stats = store.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.corrupt_records, 1u);

    // The operation counts agree: one probe per point, one full
    // write-sync-rename per recomputed point, one repair removal.
    const StorageOpCounts counts = counting.counts();
    EXPECT_EQ(counts.open_dirs, 1u);
    EXPECT_EQ(counts.reads, sizes.size());
    EXPECT_EQ(counts.writes, 2u);
    EXPECT_EQ(counts.syncs, 2u);
    EXPECT_EQ(counts.renames, 2u);
    EXPECT_EQ(counts.removes, 1u);
    EXPECT_EQ(mem.files().count(dropped_path), 1u) << "hole not refilled";
    EXPECT_EQ(mem.files().count(corrupted_path), 1u) << "record not repaired";
  }

  // Fully warm now: zero evaluations, zero writes.
  counting.reset_counts();
  {
    SweepStore store(counting, "/store", quiet_options());
    ASSERT_TRUE(store.open());
    options.store = &store;
    const auto points = sweep_coverage(test, list, sizes, options);
    EXPECT_EQ(sweep_points_evaluated(points), 0u);
    EXPECT_EQ(grid_string(points), baseline);
    EXPECT_EQ(counting.counts().writes, 0u);
  }
}

TEST(StoreFaultInjection, StoreBackedSweepIsByteIdenticalAcrossThreadCounts) {
  // The store must not break the sweep's thread-count independence: pool
  // workers save/load concurrently, results land in size-list order.
  const MarchTest test = mats_plus();
  const FaultList list = fault_list_2();
  const std::vector<std::size_t> sizes = {6, 8, 12, 16, 20, 24};

  SweepOptions options = workload_options();
  const std::string baseline =
      grid_string(sweep_coverage(test, list, sizes, options));

  InMemoryStorage mem;
  SweepStore store(mem, "/store", quiet_options());
  ASSERT_TRUE(store.open());
  options.store = &store;
  options.threads = 4;
  const auto cold = sweep_coverage(test, list, sizes, options);
  EXPECT_EQ(grid_string(cold), baseline);

  const auto warm = sweep_coverage(test, list, sizes, options);
  EXPECT_EQ(sweep_points_evaluated(warm), 0u);
  EXPECT_EQ(grid_string(warm), baseline);
}

}  // namespace
}  // namespace mtg
