#include "memory/memory_graph.hpp"

#include <sstream>

namespace mtg {

std::string GraphEdge::label() const {
  std::string out = to_string(op);
  out += " / ";
  out += output.has_value() ? std::string(1, to_char(*output)) : "-";
  return out;
}

MemoryGraph::MemoryGraph(std::size_t num_cells) : automaton_(num_cells) {
  for (std::size_t s = 0; s < automaton_.num_states(); ++s) {
    const SmallState from(num_cells, static_cast<std::uint16_t>(s));
    for (AddressedOp op : automaton_.input_alphabet()) {
      // Annotate reads with the value they return in this state, matching
      // the labels of Figure 2 (e.g. "r[i] / 0" only exists where cell i is 0).
      if (op.op == Op::R) op.op = make_read(from.get(op.cell));
      GraphEdge edge{from, automaton_.delta(from, op), op,
                     automaton_.lambda(from, op)};
      edges_.push_back(std::move(edge));
    }
  }
}

std::vector<GraphEdge> MemoryGraph::edges_from(const SmallState& from) const {
  std::vector<GraphEdge> out;
  for (const GraphEdge& e : edges_) {
    if (e.from == from) out.push_back(e);
  }
  return out;
}

std::string MemoryGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t s = 0; s < num_vertices(); ++s) {
    const SmallState state(num_cells(), static_cast<std::uint16_t>(s));
    out << "  \"" << state << "\";\n";
  }
  for (const GraphEdge& e : edges_) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
        << e.label() << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

MemoryGraph make_g0() { return MemoryGraph(2); }

}  // namespace mtg
