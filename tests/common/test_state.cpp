#include "common/state.hpp"

#include <gtest/gtest.h>

namespace mtg {
namespace {

TEST(SmallState, DefaultsToAllZero) {
  const SmallState s(3);
  EXPECT_EQ(s.num_cells(), 3u);
  EXPECT_EQ(s.index(), 0u);
  EXPECT_EQ(s.to_string(), "000");
}

TEST(SmallState, LowestAddressFirstStringConvention) {
  // Definition 4: "the first value corresponds to the ... lowest address".
  SmallState s(3);
  s.set(0, Bit::One);
  EXPECT_EQ(s.to_string(), "100");
  s.set(2, Bit::One);
  EXPECT_EQ(s.to_string(), "101");
}

TEST(SmallState, FromStringRoundTrip) {
  for (const char* text : {"0", "1", "01", "10", "0101", "11111"}) {
    EXPECT_EQ(SmallState::from_string(text).to_string(), text);
  }
  EXPECT_THROW(SmallState::from_string(""), Error);
  EXPECT_THROW(SmallState::from_string("012"), Error);
}

TEST(SmallState, IndexIsPackedBits) {
  // cell i maps to bit i of index().
  const SmallState s = SmallState::from_string("101");
  EXPECT_EQ(s.index(), 0b101u);
  EXPECT_EQ(SmallState(3, 0b011).to_string(), "110");
}

TEST(SmallState, GetSetFlip) {
  SmallState s(2);
  s.set(1, Bit::One);
  EXPECT_EQ(s.get(0), Bit::Zero);
  EXPECT_EQ(s.get(1), Bit::One);
  s.flip(0);
  EXPECT_EQ(s.get(0), Bit::One);
  s.flip(0);
  EXPECT_EQ(s.get(0), Bit::Zero);
  EXPECT_THROW(s.get(2), Error);
  EXPECT_THROW(s.set(5, Bit::One), Error);
}

TEST(SmallState, Uniform) {
  EXPECT_EQ(SmallState::uniform(4, Bit::One).to_string(), "1111");
  EXPECT_EQ(SmallState::uniform(4, Bit::Zero).to_string(), "0000");
}

TEST(SmallState, Comparisons) {
  EXPECT_EQ(SmallState::from_string("01"), SmallState::from_string("01"));
  EXPECT_NE(SmallState::from_string("01"), SmallState::from_string("10"));
  EXPECT_NE(SmallState(2), SmallState(3));
  EXPECT_LT(SmallState(2, 1), SmallState(2, 2));
}

TEST(SmallState, RejectsBadSizes) {
  EXPECT_THROW(SmallState(0), Error);
  EXPECT_THROW(SmallState(17), Error);
  EXPECT_THROW(SmallState(2, 4), Error);  // bits out of range
}

TEST(MemoryState, InitialValue) {
  const MemoryState zero(4);
  EXPECT_EQ(zero.to_string(), "0000");
  const MemoryState one(4, Bit::One);
  EXPECT_EQ(one.to_string(), "1111");
  EXPECT_THROW(MemoryState(0), Error);
}

TEST(MemoryState, SetGetFlipFill) {
  MemoryState s(3);
  s.set(1, Bit::One);
  EXPECT_EQ(s.get(1), Bit::One);
  EXPECT_EQ(s.to_string(), "010");
  s.flip(2);
  EXPECT_EQ(s.to_string(), "011");
  s.fill(Bit::One);
  EXPECT_EQ(s.to_string(), "111");
}

TEST(MemoryState, Equality) {
  MemoryState a(3), b(3);
  EXPECT_EQ(a, b);
  b.set(0, Bit::One);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mtg
