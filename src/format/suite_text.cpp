#include "format/suite_text.hpp"

#include <sstream>

#include "common/error.hpp"
#include "format/reader.hpp"
#include "march/parser.hpp"

namespace mtg {

const MarchTest* MarchSuite::find(std::string_view name) const {
  for (const MarchTest& test : tests) {
    if (test.name() == name) return &test;
  }
  return nullptr;
}

bool operator==(const MarchSuite& x, const MarchSuite& y) {
  if (x.tests.size() != y.tests.size()) return false;
  for (std::size_t i = 0; i < x.tests.size(); ++i) {
    if (x.tests[i] != y.tests[i]) return false;
    if (x.tests[i].name() != y.tests[i].name()) return false;
  }
  return true;
}

std::string to_canonical_string(const MarchSuite& suite) {
  std::ostringstream out;
  out << "suite v1\n";
  for (const MarchTest& test : suite.tests) {
    require(test.name().find('\n') == std::string::npos &&
                test.name().find('\r') == std::string::npos,
            "suite serialization: test name contains a line break: '" +
                test.name() + "'");
    out << "test \"";
    for (const char c : test.name()) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\" " << test.to_canonical_string() << "\n";
  }
  return out.str();
}

namespace {

/// Reads the quoted name of a 'test' record starting at `pos` (which must
/// point at the opening '"' within the trimmed line); leaves `pos` just
/// past the closing quote.
std::string read_quoted_name(const LineReader& reader, std::size_t& pos) {
  const std::string_view line = reader.line();
  if (pos >= line.size() || line[pos] != '"') {
    reader.fail(pos + 1, "expected '\"' opening the quoted test name");
  }
  ++pos;
  std::string name;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\') {
      if (pos + 1 >= line.size() ||
          (line[pos + 1] != '"' && line[pos + 1] != '\\')) {
        reader.fail(pos + 1,
                    "bad escape in test name (only \\\" and \\\\ exist)");
      }
      ++pos;
    }
    name += line[pos];
    ++pos;
  }
  if (pos >= line.size()) {
    reader.fail(line.size() + 1, "unterminated quoted test name");
  }
  ++pos;  // closing quote
  return name;
}

}  // namespace

MarchSuite parse_march_suite_text(std::string_view text,
                                  const std::string& source,
                                  std::vector<SuiteTestPosition>* positions) {
  LineReader reader(text, source);
  if (!reader.next()) {
    reader.fail_at_end("empty document: expected 'suite v1' header");
  }
  if (reader.line() != "suite v1") {
    if (reader.line().substr(0, 5) == "suite") {
      reader.fail(6, "unsupported suite format version (this reader "
                     "understands 'suite v1')");
    }
    reader.fail(1, "expected 'suite v1' header, got '" +
                       std::string(reader.line()) + "'");
  }
  MarchSuite suite;
  while (reader.next()) {
    const std::string_view line = reader.line();
    const std::string_view keyword = line.substr(0, line.find_first_of(" \t"));
    if (keyword != "test") {
      reader.fail(1, "unknown record '" + std::string(keyword) +
                         "' (expected: test \"<name>\" <march notation>)");
    }
    std::size_t pos = line.find_first_not_of(" \t", 4);
    if (pos == std::string_view::npos) {
      reader.fail(5, "expected '\"' opening the quoted test name");
    }
    const std::string name = read_quoted_name(reader, pos);
    if (suite.find(name) != nullptr) {
      reader.fail(1, "duplicate test name \"" + name + "\" in suite");
    }
    pos = line.find_first_not_of(" \t", pos);
    if (pos == std::string_view::npos) {
      reader.fail(line.size() + 1,
                  "expected march notation after the test name");
    }
    // Seed the march parser with the notation's document position so its
    // line:column diagnostics point into this file.
    TextPosition origin{reader.line_number(),
                        reader.line_indent() + pos};
    try {
      SuiteTestPosition record_positions;
      record_positions.record =
          TextPosition{reader.line_number(), reader.line_indent()};
      suite.tests.push_back(parse_march_test(
          line.substr(pos), name, origin,
          positions != nullptr ? &record_positions.elements : nullptr));
      if (positions != nullptr) {
        positions->push_back(std::move(record_positions));
      }
    } catch (const ParseError& e) {
      // Re-anchor under the document's source name; position is already in
      // whole-document coordinates thanks to the origin.
      throw ParseError(source + ":" + std::to_string(e.position().line) + ":" +
                           std::to_string(e.position().column) + ": " +
                           e.detail() + "\n  | " + std::string(line),
                       e.detail(), e.position(), e.offset());
    }
  }
  if (suite.tests.empty()) {
    reader.fail_at_end("suite contains no tests (at least one 'test' record "
                       "is required)");
  }
  return suite;
}

}  // namespace mtg
