// The soundness lock at catalog scale: every definite static verdict must
// agree with the packed engine (whose equality with the scalar engine is
// locked by the differential fuzz harness), and a sampled subset is checked
// against the scalar reference directly.  Random-test coverage of the same
// contract lives in tests/sim/test_differential_fuzz.cpp (three-way
// static == packed == scalar per fuzzed instance).
#include <gtest/gtest.h>

#include "analysis/static_analyzer.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

/// Fault lists that exercise every analyzer branch: simple single/two-cell,
/// linked 1-3 cell, retention and all four decoder classes.
std::vector<FaultList> lock_lists() {
  return {fault_list_2(), standard_simple_static_faults(),
          retention_fault_list(), decoder_fault_list(4)};
}

class StaticVsEngines : public ::testing::TestWithParam<MarchTest> {};

TEST_P(StaticVsEngines, DefiniteVerdictsMatchPackedCoverage) {
  const MarchTest& test = GetParam();
  SimulatorOptions sim_options;
  sim_options.memory_size = 6;
  const FaultSimulator simulator(sim_options);
  AnalysisOptions analysis_options;
  analysis_options.both_power_on_states = sim_options.both_power_on_states;

  for (const FaultList& list : lock_lists()) {
    const CoverageReport report =
        evaluate_coverage(simulator, test, list, /*max_instances_per_fault=*/0);
    const StaticCoverage statics =
        analyze_coverage(test, list, sim_options.memory_size,
                         analysis_options);
    ASSERT_EQ(report.entries.size(), statics.entries.size());
    for (std::size_t i = 0; i < statics.entries.size(); ++i) {
      const StaticCoverageEntry& entry = statics.entries[i];
      if (entry.verdict == StaticVerdict::Unknown) continue;
      const bool statically_covered =
          entry.verdict == StaticVerdict::Detected;
      EXPECT_EQ(statically_covered, report.entries[i].covered)
          << "list '" << list.name << "', fault '" << entry.fault_name
          << "' (#" << i << "): static verdict " << to_string(entry.verdict)
          << " vs packed coverage, test " << test.to_string()
          << (entry.witness.has_value()
                  ? "\n  witness: " + entry.witness->to_string()
                  : "\n  reason: " + entry.reason);
    }
  }
}

TEST_P(StaticVsEngines, SampledVerdictsMatchScalarEngine) {
  const MarchTest& test = GetParam();
  SimulatorOptions sim_options;
  sim_options.memory_size = 4;
  sim_options.use_packed_engine = false;  // force the scalar reference
  const FaultSimulator simulator(sim_options);
  AnalysisOptions analysis_options;

  // Instance-level spot check against the scalar engine: every 7th instance
  // of fault list 2 plus all decoder instances (the branches the packed
  // check above reaches only via fault-level aggregation).
  FaultList list = fault_list_2();
  for (const DecoderFault& fault : decoder_fault_list(4).decoder) {
    list.decoder.push_back(fault);
  }
  const std::vector<FaultInstance> instances =
      instantiate_all(list, sim_options.memory_size,
                      /*max_instances_per_fault=*/0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (i % 7 != 0 && instances[i].decoders.empty()) continue;
    const StaticResult result =
        analyze_instance(test, instances[i], analysis_options);
    if (!result.definite()) continue;
    const bool expected = simulator.detects_scalar(test, instances[i]);
    EXPECT_EQ(result.verdict == StaticVerdict::Detected, expected)
        << "instance '" << instances[i].description << "' (#" << i
        << "): static verdict " << to_string(result.verdict)
        << " vs scalar engine, test " << test.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, StaticVsEngines, ::testing::ValuesIn(all_catalog_tests()),
    [](const ::testing::TestParamInfo<MarchTest>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mtg
