// mtg_cli — command line front end for the march test generation library.
//
//   mtg_cli catalog
//       list the published march tests with complexity
//   mtg_cli lists
//       show the built-in fault lists and their sizes
//   mtg_cli generate <list1|list2|simple|retention|decoder> [--stats]
//       generate a march test for a built-in fault list; --stats prints the
//       per-phase timing breakdown and the generation lap log
//   mtg_cli coverage "<march notation>" <list1|list2|simple|retention|decoder> [n]
//       fault-simulate a march test (e.g. "{c(w0); ^(r0,w1); v(r1,w0)}")
//   mtg_cli coverage "<march notation>" <list> --sweep 64,256,4096,65536
//       memory-size sweep: coverage at every listed n, evaluated in
//       parallel; per-fault layouts are capped (deterministically sampled)
//       above --cap instances (default 4096, 0 = full enumeration).  The
//       decoder list is the one whose curve varies with n.
//   mtg_cli coverage ... --store <dir>
//       persistent result cache (store/sweep_store.hpp): completed points
//       are persisted as they land and verified hits skip recomputation on
//       re-runs.  A missing/damaged/read-only store degrades to plain
//       recomputation with a warning — results are identical either way.
//   mtg_cli dot <g0|pgcf>
//       print the Figure 2 / Figure 4 graph as GraphViz DOT
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_store.hpp"

namespace {

using namespace mtg;

FaultList list_by_name(const std::string& name) {
  if (name == "list1") return fault_list_1();
  if (name == "list2") return fault_list_2();
  if (name == "simple") return standard_simple_static_faults();
  if (name == "retention") return retention_fault_list();
  if (name == "decoder") return decoder_fault_list();
  throw Error("unknown fault list '" + name +
              "' (use list1, list2, simple, retention or decoder)");
}

int cmd_catalog() {
  for (const MarchTest& test : all_catalog_tests()) {
    std::cout << test.name() << " (" << test.complexity_label() << "): "
              << test.to_string() << "\n";
  }
  return 0;
}

int cmd_lists() {
  for (const char* name : {"list1", "list2", "simple", "retention", "decoder"}) {
    const FaultList list = list_by_name(name);
    std::cout << name << ": " << list.name << " — " << list.size()
              << " faults (" << list.simple.size() << " simple, "
              << list.linked.size() << " linked, " << list.decoder.size()
              << " decoder)\n";
  }
  return 0;
}

int cmd_generate(const std::string& list_name, bool stats) {
  const FaultList list = list_by_name(list_name);
  const GenerationResult result = generate_march_test(list);
  std::cout << result.test.to_string() << "\n"
            << "complexity: " << result.test.complexity_label() << "\n"
            << "cpu time:   " << result.stats.elapsed_seconds << " s\n"
            << result.certification.summary() << "\n";
  for (const std::string& name : result.uncoverable) {
    std::cout << "uncoverable: " << name << "\n";
  }
  if (stats) {
    const GenerationStats& s = result.stats;
    std::cout << "--- generation stats ---\n"
              << "phase A (greedy):        " << s.phase_a_seconds << " s ("
              << s.greedy_rounds << " rounds, " << s.working_instances
              << " instances, pool " << s.candidate_pool << ")\n"
              << "certify state prep:      " << s.cert_prep_seconds << " s ("
              << s.certify_instances << " instances)\n"
              << "phase B (certification): " << s.phase_b_seconds << " s ("
              << s.certify_iterations << " iterations, "
              << s.instances_dropped << " instances dropped)\n"
              << "phase C (minimizer):     " << s.phase_c_seconds << " s ("
              << s.minimize_trials << " trials, "
              << s.minimize_element_replays << " element replays)\n"
              << "phase B2 (re-certify):   " << s.phase_b2_seconds << " s\n"
              << "--- generation log ---\n";
    for (const std::string& line : s.log) std::cout << line << "\n";
  }
  return result.full_coverage ? 0 : 1;
}

void print_store_stats(const SweepStore& store, const std::string& path) {
  const SweepStoreStats stats = store.stats();
  std::cout << "store " << path << ": " << stats.hits << " hits, "
            << stats.misses << " misses, " << stats.saves << " saved";
  if (stats.corrupt_records > 0) {
    std::cout << ", " << stats.corrupt_records << " corrupt repaired";
  }
  if (!store.enabled()) std::cout << " (degraded: store disabled)";
  std::cout << "\n";
}

int cmd_sweep(const std::string& notation, const std::string& list_name,
              const std::string& size_list, std::size_t cap,
              const std::string& store_path) {
  const MarchTest test = parse_march_test(notation, "cli test");
  const FaultList list = list_by_name(list_name);
  SweepOptions options;
  options.max_instances_per_fault = cap;
  PosixStorage storage;
  std::optional<SweepStore> store;
  if (!store_path.empty()) {
    store.emplace(storage, store_path);
    store->open();  // failure degrades to store-less with a warning
    options.store = &*store;
  }
  // parse_size_list (common/parse.hpp) keeps duplicates and unsorted sizes
  // as given; sweep_coverage validates the n >= 3 minimum up front and
  // throws a clean Error before any point evaluates.
  const std::vector<SweepPoint> points = sweep_coverage(
      test, list, parse_size_list(size_list, "--sweep memory size"), options);
  std::cout << test.to_string() << " vs " << list.name << " (per-fault cap "
            << cap << "):\n"
            << sweep_summary(points);
  for (const SweepPoint& point : points) {
    if (point.report.full_coverage()) continue;
    std::cout << "n=" << point.memory_size << ": "
              << point.report.summary() << "\n";
  }
  if (store.has_value()) print_store_stats(*store, store_path);
  const bool all_covered =
      std::all_of(points.begin(), points.end(), [](const SweepPoint& p) {
        return p.report.full_coverage();
      });
  return all_covered ? 0 : 1;
}

int cmd_coverage(const std::string& notation, const std::string& list_name,
                 std::size_t n, const std::string& store_path) {
  const MarchTest test = parse_march_test(notation, "cli test");
  const FaultList list = list_by_name(list_name);
  if (!store_path.empty()) {
    // Route through the sweep path so the single point reads/writes the
    // store like any grid cell.  Full enumeration (cap 0) matches the
    // store-less branch below, so the printed report is byte-identical.
    PosixStorage storage;
    SweepStore store(storage, store_path);
    store.open();
    SweepOptions options;
    options.max_instances_per_fault = 0;
    options.store = &store;
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, {n}, options);
    std::cout << points[0].report.summary() << "\n";
    print_store_stats(store, store_path);
    return points[0].report.full_coverage() ? 0 : 1;
  }
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const CoverageReport report = evaluate_coverage(simulator, test, list);
  std::cout << report.summary() << "\n";
  return report.full_coverage() ? 0 : 1;
}

int cmd_dot(const std::string& which) {
  if (which == "g0") {
    std::cout << make_g0().to_dot("G0");
    return 0;
  }
  if (which == "pgcf") {
    std::cout << make_pgcf().to_dot("PGCF");
    return 0;
  }
  throw Error("unknown graph '" + which + "' (use g0 or pgcf)");
}

int usage() {
  std::cerr << "usage:\n"
            << "  mtg_cli catalog\n"
            << "  mtg_cli lists\n"
            << "  mtg_cli generate <list1|list2|simple|retention|decoder> "
               "[--stats]\n"
            << "  mtg_cli coverage \"<march notation>\" "
               "<list1|list2|simple|retention|decoder> [n] [--store <dir>]\n"
            << "  mtg_cli coverage \"<march notation>\" <list> "
               "--sweep <n1,n2,...> [--cap <instances-per-fault>] "
               "[--store <dir>]\n"
            << "  mtg_cli dot <g0|pgcf>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string command = argc > 1 ? argv[1] : "";
    if (command == "catalog") return cmd_catalog();
    if (command == "lists") return cmd_lists();
    if (command == "generate" && argc > 2) {
      const bool stats = argc > 3 && std::string(argv[3]) == "--stats";
      if (argc > (stats ? 4 : 3)) return usage();
      return cmd_generate(argv[2], stats);
    }
    if (command == "coverage" && argc > 3) {
      std::string sweep_sizes;
      std::string store_path;
      std::size_t cap = 4096;
      std::optional<std::size_t> n;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sweep" && i + 1 < argc) {
          sweep_sizes = argv[++i];
        } else if (arg == "--cap" && i + 1 < argc) {
          cap = parse_count(argv[++i], "--cap");
        } else if (arg == "--store" && i + 1 < argc) {
          store_path = argv[++i];
        } else if (!n.has_value() && !arg.empty() && arg[0] != '-') {
          n = parse_memory_size(arg, "memory size");
        } else {
          return usage();
        }
      }
      if (!sweep_sizes.empty()) {
        if (n.has_value()) return usage();  // [n] is the non-sweep form
        return cmd_sweep(argv[2], argv[3], sweep_sizes, cap, store_path);
      }
      return cmd_coverage(argv[2], argv[3], n.value_or(6), store_path);
    }
    if (command == "dot" && argc > 2) return cmd_dot(argv[2]);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
