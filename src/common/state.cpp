#include "common/state.hpp"

#include <cassert>
#include <ostream>

#include "common/error.hpp"

namespace mtg {

SmallState::SmallState(std::size_t num_cells) : SmallState(num_cells, 0) {}

SmallState::SmallState(std::size_t num_cells, std::uint16_t bits)
    : bits_(bits), num_cells_(static_cast<std::uint8_t>(num_cells)) {
  require(num_cells >= 1 && num_cells <= kMaxCells,
          "SmallState supports 1.." + std::to_string(kMaxCells) + " cells, got " +
              std::to_string(num_cells));
  require(num_cells == kMaxCells || bits < (1u << num_cells),
          "SmallState bits out of range for cell count");
}

SmallState SmallState::from_string(std::string_view text) {
  require(!text.empty(), "SmallState::from_string: empty string");
  SmallState s(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) s.set(i, bit_from_char(text[i]));
  return s;
}

Bit SmallState::get(std::size_t cell) const {
  require(cell < num_cells_, "SmallState::get: cell index out of range");
  return (bits_ >> cell) & 1u ? Bit::One : Bit::Zero;
}

void SmallState::set(std::size_t cell, Bit value) {
  require(cell < num_cells_, "SmallState::set: cell index out of range");
  if (value == Bit::One) {
    bits_ = static_cast<std::uint16_t>(bits_ | (1u << cell));
  } else {
    bits_ = static_cast<std::uint16_t>(bits_ & ~(1u << cell));
  }
}

void SmallState::flip(std::size_t cell) { set(cell, mtg::flip(get(cell))); }

SmallState SmallState::uniform(std::size_t num_cells, Bit value) {
  SmallState s(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i) s.set(i, value);
  return s;
}

std::string SmallState::to_string() const {
  std::string out(num_cells_, '0');
  for (std::size_t i = 0; i < num_cells_; ++i) out[i] = to_char(get(i));
  return out;
}

std::ostream& operator<<(std::ostream& os, const SmallState& s) {
  return os << s.to_string();
}

MemoryState::MemoryState(std::size_t num_cells, Bit value)
    : cells_(num_cells, static_cast<std::uint8_t>(to_int(value))) {
  require(num_cells >= 1, "MemoryState needs at least one cell");
}

Bit MemoryState::get(std::size_t address) const {
  assert(address < cells_.size() && "MemoryState::get: address out of range");
  return cells_[address] ? Bit::One : Bit::Zero;
}

void MemoryState::set(std::size_t address, Bit value) {
  assert(address < cells_.size() && "MemoryState::set: address out of range");
  cells_[address] = static_cast<std::uint8_t>(to_int(value));
}

void MemoryState::flip(std::size_t address) { set(address, mtg::flip(get(address))); }

void MemoryState::fill(Bit value) {
  for (auto& c : cells_) c = static_cast<std::uint8_t>(to_int(value));
}

PackedBits MemoryState::packed_bits() const {
  PackedBits bits(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] != 0) bits.set(i, true);
  }
  return bits;
}

void MemoryState::set_packed_bits(const PackedBits& bits) {
  require(bits.size() == cells_.size(),
          "set_packed_bits: snapshot size mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] = bits.get(i) ? 1 : 0;
  }
}

std::string MemoryState::to_string() const {
  std::string out(cells_.size(), '0');
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = to_char(get(i));
  return out;
}

std::ostream& operator<<(std::ostream& os, const MemoryState& s) {
  return os << s.to_string();
}

}  // namespace mtg
