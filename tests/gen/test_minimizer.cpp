#include "gen/minimizer.hpp"

#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

std::vector<FaultInstance> instances_for(const FaultList& list, std::size_t n) {
  return instantiate_all(list, n);
}

TEST(Minimizer, CoversAllAgreesWithCoverage) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  EXPECT_TRUE(covers_all(simulator, march_abl1(), instances));
  EXPECT_FALSE(covers_all(simulator, mats_plus(), instances));
}

TEST(Minimizer, CoversAllRejectsInvalidTests) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const MarchTest invalid = parse_march_test("{c(r1)}", "bad");
  EXPECT_FALSE(covers_all(simulator, invalid, {}));
}

TEST(Minimizer, RemovesRedundantElements) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);

  // ABL1 padded with useless work.
  MarchTest padded = parse_march_test(
      "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0); c(r0,w1); c(r1,w0)}", "padded");
  ASSERT_TRUE(covers_all(simulator, padded, instances));

  std::vector<std::string> log;
  const MarchTest minimized = minimize_test(simulator, padded, instances, &log);
  EXPECT_LT(minimized.complexity(), padded.complexity());
  EXPECT_LE(minimized.complexity(), march_abl1().complexity());
  EXPECT_TRUE(covers_all(simulator, minimized, instances));
  EXPECT_FALSE(log.empty());
}

TEST(Minimizer, MinimalTestIsAFixpoint) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  const MarchTest once = minimize_test(simulator, march_abl1(), instances);
  const MarchTest twice = minimize_test(simulator, once, instances);
  EXPECT_EQ(once, twice);
  EXPECT_TRUE(covers_all(simulator, once, instances));
}

TEST(Minimizer, PreservesCoverageProperty) {
  // Property: for several tests and lists, minimization never loses
  // coverage and never increases complexity.
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instances_for(list, 4);
  for (const MarchTest& test : {march_abl1(), march_lf1(), march_ss()}) {
    const MarchTest minimized = minimize_test(simulator, test, instances);
    EXPECT_LE(minimized.complexity(), test.complexity()) << test.name();
    EXPECT_TRUE(covers_all(simulator, minimized, instances)) << test.name();
  }
}

TEST(Minimizer, DropsOpsInsideElements) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  // Cover only the transition faults; the double reads are redundant.
  FaultList list;
  list.name = "tf only";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::One)));
  const auto instances = instances_for(list, 4);
  const MarchTest bloated =
      parse_march_test("{c(w0); ^(r0,r0,w1,r1,r1); ^(r1,w0,r0)}", "bloated");
  const MarchTest minimized =
      minimize_test(simulator, bloated, instances, nullptr);
  EXPECT_LT(minimized.complexity(), bloated.complexity());
  EXPECT_TRUE(covers_all(simulator, minimized, instances));
}

}  // namespace
}  // namespace mtg
