#include "service/job_lint.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>

#include "march/catalog.hpp"

namespace mtg {

namespace {

bool builtin_list_name(const std::string& name) {
  return name == "list1" || name == "list2" || name == "simple" ||
         name == "retention" || name == "decoder";
}

std::optional<TextPosition> job_position(const JobFilePositions* positions,
                                         std::size_t index) {
  if (positions == nullptr || index >= positions->jobs.size()) return {};
  return positions->jobs[index];
}

std::optional<TextPosition> deadline_position(
    const JobFilePositions* positions, std::size_t index) {
  if (positions == nullptr || index >= positions->deadlines.size()) return {};
  return positions->deadlines[index];
}

}  // namespace

std::vector<LintFinding> lint_job_file(const JobFile& file,
                                       const MarchSuite* suite,
                                       const JobLintOptions& options,
                                       const std::string& source,
                                       const JobFilePositions* positions) {
  std::vector<LintFinding> findings;
  const auto add = [&](std::optional<TextPosition> position,
                       std::string category, std::string message) {
    findings.push_back(LintFinding{source, position, std::move(category),
                                   std::move(message)});
  };

  std::set<std::string> catalog_names;
  for (const MarchTest& test : all_catalog_tests()) {
    catalog_names.insert(test.name());
  }
  std::set<std::string> aliases;
  for (const auto& [alias, path] : file.fault_list_files) {
    aliases.insert(alias);
  }

  // Key of a job as the matrix service's caches see it: everything that
  // determines the report's content.
  using JobKey = std::tuple<std::string, std::string, std::size_t, std::size_t>;
  std::map<JobKey, std::size_t> first_seen;  // key -> job-file line

  for (std::size_t i = 0; i < file.jobs.size(); ++i) {
    const JobFileRecord& job = file.jobs[i];

    const JobKey key{job.test_spec, job.list_name, job.memory_size,
                     job.max_instances_per_fault};
    const auto [it, inserted] = first_seen.emplace(key, job.line);
    if (!inserted) {
      add(job_position(positions, i), "duplicate-job",
          "job duplicates the job on line " + std::to_string(it->second) +
              " (same test, list, n and cap — the matrix service computes "
              "one report and serves both)");
    }

    // A '(' never appears in a test name, so a spec without one is a name
    // to resolve — exactly the front end's rule.
    if (job.test_spec.find('(') == std::string::npos) {
      const bool in_suite =
          suite != nullptr && suite->find(job.test_spec) != nullptr;
      if (!in_suite && catalog_names.count(job.test_spec) == 0) {
        add(job_position(positions, i), "undefined-reference",
            "test '" + job.test_spec +
                "' is defined by neither the bound suite nor the built-in "
                "catalog");
      }
    }

    if (!builtin_list_name(job.list_name) &&
        aliases.count(job.list_name) == 0) {
      add(job_position(positions, i), "undefined-reference",
          "list '" + job.list_name +
              "' is neither a faultlist alias nor a built-in list name "
              "(list1, list2, simple, retention, decoder)");
    }

    if (job.deadline_given) {
      const auto pos = [&] {
        auto p = deadline_position(positions, i);
        return p ? p : job_position(positions, i);
      }();
      if (job.deadline.count() == 0) {
        add(pos, "implausible-deadline",
            "explicit deadline_ms=0 spells out the default (no deadline) — "
            "drop the field or give a real deadline");
      } else if (job.deadline < options.min_plausible_deadline) {
        add(pos, "implausible-deadline",
            "deadline_ms=" + std::to_string(job.deadline.count()) +
                " is shorter than the service's queue latency — the job "
                "will expire before it runs");
      } else if (job.deadline > options.max_plausible_deadline) {
        add(pos, "implausible-deadline",
            "deadline_ms=" + std::to_string(job.deadline.count()) +
                " exceeds 24 hours — probably a unit mistake (the field is "
                "milliseconds)");
      }
    }
  }

  return findings;
}

}  // namespace mtg
