#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mtg {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), /*chunk=*/7,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) ++hits[i];
                    });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, WorkerIndicesStayInRange) {
  ThreadPool pool(2);
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(64, 1, [&](std::size_t worker, std::size_t, std::size_t) {
    if (worker > pool.num_workers()) out_of_range = true;
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::size_t sum = 0;  // no synchronisation needed: inline execution
  pool.parallel_for(10, 3, [&](std::size_t, std::size_t begin,
                               std::size_t end) { sum += end - begin; });
  EXPECT_EQ(sum, 10u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(101, 4, [&](std::size_t, std::size_t begin,
                                  std::size_t end) { covered += end - begin; });
    ASSERT_EQ(covered.load(), 101u) << "round " << round;
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t, std::size_t begin, std::size_t) {
                          if (begin == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(32, 4, [&](std::size_t, std::size_t begin,
                               std::size_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 32u);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5u);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);
}

}  // namespace
}  // namespace mtg
