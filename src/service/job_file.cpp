#include "service/job_file.hpp"

#include <cctype>
#include <cstdint>

#include "common/error.hpp"
#include "format/catalog_io.hpp"
#include "format/reader.hpp"

namespace mtg {

namespace {

std::size_t skip_ws(std::string_view line, std::size_t pos) {
  const std::size_t next = line.find_first_not_of(" \t", pos);
  return next == std::string_view::npos ? line.size() : next;
}

/// Reads a bare token (run of non-whitespace); leaves `pos` past it.
std::string_view read_token(std::string_view line, std::size_t& pos) {
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
  return line.substr(begin, pos - begin);
}

/// Reads a quoted string starting at `pos` (which must point at the opening
/// '"'); '\"' and '\\' escape.  Leaves `pos` just past the closing quote.
std::string read_quoted(const LineReader& reader, std::size_t& pos,
                        const char* what) {
  const std::string_view line = reader.line();
  if (pos >= line.size() || line[pos] != '"') {
    reader.fail(pos + 1,
                std::string("expected '\"' opening the quoted ") + what);
  }
  ++pos;
  std::string value;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\') {
      if (pos + 1 >= line.size() ||
          (line[pos + 1] != '"' && line[pos + 1] != '\\')) {
        reader.fail(pos + 1, std::string("bad escape in ") + what +
                                 " (only \\\" and \\\\ exist)");
      }
      ++pos;
    }
    value += line[pos];
    ++pos;
  }
  if (pos >= line.size()) {
    reader.fail(line.size() + 1, std::string("unterminated quoted ") + what);
  }
  ++pos;  // closing quote
  return value;
}

/// Parses a non-negative decimal integer token at `pos`.
std::size_t read_number(const LineReader& reader, std::size_t& pos,
                        const char* what) {
  const std::string_view line = reader.line();
  const std::size_t begin = pos;
  std::size_t value = 0;
  while (pos < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[pos]))) {
    const std::size_t digit = static_cast<std::size_t>(line[pos] - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      reader.fail(begin + 1, std::string(what) + " value is out of range");
    }
    value = value * 10 + digit;
    ++pos;
  }
  if (pos == begin) {
    reader.fail(pos + 1, std::string("expected a number for ") + what);
  }
  if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
    reader.fail(pos + 1, std::string("trailing characters after the ") + what +
                             " value");
  }
  return value;
}

bool valid_alias(std::string_view alias) {
  if (alias.empty()) return false;
  for (const char c : alias) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

JobFileRecord parse_job_record(const LineReader& reader,
                               std::optional<TextPosition>* deadline_pos) {
  const std::string_view line = reader.line();
  JobFileRecord job;
  job.line = reader.line_number();
  bool saw_test = false, saw_list = false, saw_n = false;
  bool saw_cap = false, saw_deadline = false;
  std::size_t pos = skip_ws(line, 3);  // past 'job'
  while (pos < line.size()) {
    const std::size_t key_begin = pos;
    const std::size_t eq = line.find('=', pos);
    if (eq == std::string_view::npos) {
      reader.fail(pos + 1,
                  "expected key=value (test=, list=, n=, cap=, deadline_ms=)");
    }
    const std::string_view key = line.substr(pos, eq - pos);
    pos = eq + 1;
    if (key == "test") {
      if (saw_test) reader.fail(key_begin + 1, "duplicate test= field");
      saw_test = true;
      job.test_spec = read_quoted(reader, pos, "test spec");
      if (job.test_spec.empty()) {
        reader.fail(key_begin + 1, "test= spec must not be empty");
      }
    } else if (key == "list") {
      if (saw_list) reader.fail(key_begin + 1, "duplicate list= field");
      saw_list = true;
      const std::string_view name = read_token(line, pos);
      if (name.empty()) {
        reader.fail(pos + 1, "expected a fault-list name after list=");
      }
      job.list_name = std::string(name);
    } else if (key == "n") {
      if (saw_n) reader.fail(key_begin + 1, "duplicate n= field");
      saw_n = true;
      job.memory_size = read_number(reader, pos, "n=");
      if (job.memory_size < 3) {
        reader.fail(key_begin + 1, "n= must be >= 3 (simulated memory size)");
      }
    } else if (key == "cap") {
      if (saw_cap) reader.fail(key_begin + 1, "duplicate cap= field");
      saw_cap = true;
      job.max_instances_per_fault = read_number(reader, pos, "cap=");
    } else if (key == "deadline_ms") {
      if (saw_deadline) {
        reader.fail(key_begin + 1, "duplicate deadline_ms= field");
      }
      saw_deadline = true;
      job.deadline_given = true;
      if (deadline_pos != nullptr) {
        *deadline_pos = TextPosition{reader.line_number(),
                                     reader.line_indent() + key_begin};
      }
      job.deadline =
          std::chrono::milliseconds(read_number(reader, pos, "deadline_ms="));
    } else {
      reader.fail(key_begin + 1,
                  "unknown job field '" + std::string(key) +
                      "=' (expected test=, list=, n=, cap=, deadline_ms=)");
    }
    pos = skip_ws(line, pos);
  }
  if (!saw_test) reader.fail(1, "job record is missing the test= field");
  if (!saw_list) reader.fail(1, "job record is missing the list= field");
  if (!saw_n) reader.fail(1, "job record is missing the n= field");
  return job;
}

}  // namespace

JobFile parse_job_file_text(std::string_view text, const std::string& source,
                            JobFilePositions* positions) {
  LineReader reader(text, source);
  if (!reader.next()) {
    reader.fail_at_end("empty document: expected 'jobs v1' header");
  }
  if (reader.line() != "jobs v1") {
    if (reader.line().substr(0, 4) == "jobs") {
      reader.fail(5, "unsupported jobs format version (this reader "
                     "understands 'jobs v1')");
    }
    reader.fail(1, "expected 'jobs v1' header, got '" +
                       std::string(reader.line()) + "'");
  }
  JobFile file;
  bool saw_suite = false;
  while (reader.next()) {
    const std::string_view line = reader.line();
    std::size_t pos = 0;
    const std::string_view keyword = read_token(line, pos);
    if (keyword == "suite") {
      if (!file.jobs.empty()) {
        reader.fail(1, "directives must come before the first job record");
      }
      if (saw_suite) {
        reader.fail(1, "duplicate suite directive (a job file binds at most "
                       "one suite)");
      }
      saw_suite = true;
      pos = skip_ws(line, pos);
      file.suite_path = read_quoted(reader, pos, "suite path");
      pos = skip_ws(line, pos);
      if (pos < line.size()) {
        reader.fail(pos + 1, "trailing characters after the suite path");
      }
    } else if (keyword == "faultlist") {
      if (!file.jobs.empty()) {
        reader.fail(1, "directives must come before the first job record");
      }
      pos = skip_ws(line, pos);
      const std::size_t alias_column = pos + 1;
      const std::string_view alias = read_token(line, pos);
      if (!valid_alias(alias)) {
        reader.fail(alias_column,
                    "expected an alias (letters, digits, '_', '-') after "
                    "'faultlist'");
      }
      for (const auto& [existing, path] : file.fault_list_files) {
        if (existing == alias) {
          reader.fail(alias_column,
                      "duplicate faultlist alias '" + std::string(alias) + "'");
        }
      }
      pos = skip_ws(line, pos);
      std::string path = read_quoted(reader, pos, "faultlist path");
      pos = skip_ws(line, pos);
      if (pos < line.size()) {
        reader.fail(pos + 1, "trailing characters after the faultlist path");
      }
      file.fault_list_files.emplace_back(std::string(alias), std::move(path));
    } else if (keyword == "job") {
      std::optional<TextPosition>* deadline_slot = nullptr;
      if (positions != nullptr) {
        positions->jobs.push_back(
            TextPosition{reader.line_number(), reader.line_indent()});
        positions->deadlines.emplace_back();
        deadline_slot = &positions->deadlines.back();
      }
      file.jobs.push_back(parse_job_record(reader, deadline_slot));
    } else {
      reader.fail(1, "unknown record '" + std::string(keyword) +
                         "' (expected: suite, faultlist or job)");
    }
  }
  if (file.jobs.empty()) {
    reader.fail_at_end("job file contains no jobs (at least one 'job' record "
                       "is required)");
  }
  return file;
}

JobFile load_job_file(const std::string& path, JobFilePositions* positions) {
  JobFile file = parse_job_file_text(read_text_file(path), path, positions);
  // Relative directive paths resolve against the job file's own directory,
  // so a job file travels with its catalogs.
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    const std::string dir = path.substr(0, slash + 1);
    const auto resolve = [&](std::string& p) {
      if (!p.empty() && p.front() != '/') p = dir + p;
    };
    resolve(file.suite_path);
    for (auto& [alias, list_path] : file.fault_list_files) resolve(list_path);
  }
  return file;
}

}  // namespace mtg
