// Line/column positions for text diagnostics.
//
// Everything that parses user-supplied text (the march notation parser, the
// fault-list / march-suite catalog readers under src/format/) reports errors
// through ParseError, which carries a structured 1-based line:column position
// next to the formatted message.  Positions are *byte* columns: multi-byte
// UTF-8 sequences (the march arrows ⇑⇓⇕) count one column per byte, which is
// what editors' goto-offset commands and `awk`-style tooling expect from
// plain-text files.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace mtg {

/// A 1-based line/column position inside a text document.  The default
/// {1, 1} names the first byte; parsers embedded into a larger document
/// (e.g. a march notation substring on line 7 of a suite file) are seeded
/// with the position of their first byte so their diagnostics come out in
/// whole-document coordinates.
struct TextPosition {
  std::size_t line = 1;
  std::size_t column = 1;

  /// "line 3, column 14" (human form; the machine form is "3:14").
  std::string to_string() const;

  friend bool operator==(const TextPosition& a, const TextPosition& b) {
    return a.line == b.line && a.column == b.column;
  }
  friend bool operator!=(const TextPosition& a, const TextPosition& b) {
    return !(a == b);
  }
};

/// Position of byte `offset` within `text`, assuming `text` itself starts at
/// `origin`.  Offsets past the end name the one-past-last position.
TextPosition position_at(std::string_view text, std::size_t offset,
                         TextPosition origin = {});

/// The full line of `text` containing byte `offset` (no trailing newline),
/// for error excerpts.  Only exact for offsets on the first line when the
/// text is a mid-line substring of a larger document — callers embedding
/// substrings should excerpt from the enclosing document instead.
std::string_view line_excerpt(std::string_view text, std::size_t offset);

/// A malformed-input error carrying a structured position.  what() is the
/// fully formatted human-readable message (position and excerpt included);
/// detail() is the bare explanation, so wrappers that re-anchor the error
/// into an enclosing document (march notation inside a suite file) can
/// re-format without duplicating position text.
class ParseError : public Error {
 public:
  ParseError(const std::string& formatted, std::string detail,
             TextPosition position, std::size_t offset)
      : Error(formatted),
        detail_(std::move(detail)),
        position_(position),
        offset_(offset) {}

  const std::string& detail() const noexcept { return detail_; }
  const TextPosition& position() const noexcept { return position_; }
  /// Byte offset into the directly parsed text (the element substring for
  /// march notation) — kept alongside line:column for tooling that seeks.
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::string detail_;
  TextPosition position_;
  std::size_t offset_;
};

}  // namespace mtg
