#include "march/march_element.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

MarchElement::MarchElement(AddressOrder order, std::vector<Op> ops)
    : order_(order), ops_(std::move(ops)) {
  require(!ops_.empty(), "a march element needs at least one operation");
}

std::optional<Bit> MarchElement::final_value() const {
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (is_write(*it)) return written_value(*it);
  }
  return std::nullopt;
}

std::optional<Bit> MarchElement::required_entry_value() const {
  for (Op op : ops_) {
    if (is_write(op)) return std::nullopt;  // first write hides the entry value
    if (auto expected = expected_value(op)) return expected;
  }
  return std::nullopt;
}

std::string MarchElement::to_string(bool ascii) const {
  std::ostringstream out;
  if (ascii) {
    out << to_ascii(order_);
  } else {
    out << to_symbol(order_);
  }
  out << '(' << mtg::to_string(ops_) << ')';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const MarchElement& me) {
  return os << me.to_string();
}

}  // namespace mtg
