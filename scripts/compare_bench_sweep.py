#!/usr/bin/env python3
"""Compare a fresh BENCH_sweep.json against the committed baseline.

Usage: compare_bench_sweep.py <current.json> <baseline.json> [--factor 2.0]

Emits a GitHub Actions `::warning::` annotation for every cold/warm timing
(total and per sweep point, matched by n) that regressed by more than the
factor, and for correctness-shape drift (warm evaluations, instance counts).
Timing warnings never fail the job — CI runners are noisy, so a slowdown is
a flag for a human, not a gate; the hard gates (warm run evaluates nothing,
grids byte-identical) live inside bench_memory_sweep itself, which exits
nonzero when they break.

Exit codes: 0 = compared (with or without warnings), 2 = malformed input.
"""

import argparse
import json
import sys


def warn(message: str) -> None:
    print(f"::warning ::{message}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if data.get("bench") != "memory_sweep_store":
        print(f"error: {path} is not a memory_sweep_store summary",
              file=sys.stderr)
        sys.exit(2)
    return data


def compare_timing(label: str, current: float, baseline: float,
                   factor: float) -> bool:
    if baseline <= 0 or current <= factor * baseline:
        return False
    warn(f"{label}: {current:.3f} ms vs baseline {baseline:.3f} ms "
         f"(>{factor:.1f}x regression)")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="regression threshold (default: 2.0x)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    warnings = 0
    warnings += compare_timing("sweep-store cold total",
                               current.get("cold_ms", 0.0),
                               baseline.get("cold_ms", 0.0), args.factor)
    warnings += compare_timing("sweep-store warm total",
                               current.get("warm_ms", 0.0),
                               baseline.get("warm_ms", 0.0), args.factor)

    baseline_points = {p["n"]: p for p in baseline.get("points", [])}
    for point in current.get("points", []):
        ref = baseline_points.get(point["n"])
        if ref is None:
            warn(f"n={point['n']}: no baseline point to compare against")
            warnings += 1
            continue
        for phase in ("cold_ms", "warm_ms"):
            warnings += compare_timing(
                f"n={point['n']} {phase.removesuffix('_ms')}",
                point.get(phase, 0.0), ref.get(phase, 0.0), args.factor)

    # Shape drift: these are correctness signals, not noise, but the bench
    # binary already hard-fails on the one that matters (warm evaluations).
    if current.get("evaluations_warm", 0) != baseline.get(
            "evaluations_warm", 0):
        warn(f"warm evaluations changed: {current.get('evaluations_warm')} "
             f"vs baseline {baseline.get('evaluations_warm')}")
        warnings += 1
    if current.get("instances", 0) != baseline.get("instances", 0):
        warn(f"instance count changed: {current.get('instances')} vs "
             f"baseline {baseline.get('instances')} "
             "(workload drift — refresh the baseline)")
        warnings += 1

    if warnings == 0:
        print(f"OK: within {args.factor:.1f}x of baseline "
              f"(cold {current.get('cold_ms', 0.0):.3f} ms, "
              f"warm {current.get('warm_ms', 0.0):.3f} ms)")
    else:
        print(f"{warnings} warning(s) — see annotations above")
    return 0


if __name__ == "__main__":
    sys.exit(main())
