// 'jobs v1' parser tests: good documents round into records, malformed ones
// fail with line:column diagnostics pointing at the offending byte.
#include "service/job_file.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/text_position.hpp"

namespace mtg {
namespace {

TEST(JobFileParse, ParsesDirectivesAndJobs) {
  const JobFile file = parse_job_file_text(
      "# a comment\n"
      "jobs v1\n"
      "suite \"classic.suite\"\n"
      "faultlist custom \"custom.faults\"\n"
      "\n"
      "job test=\"MATS+\" list=simple n=8\n"
      "job test=\"{c(w0); ^(r0,w1)}\" list=custom n=64 cap=256 "
      "deadline_ms=5000\n");
  EXPECT_EQ(file.suite_path, "classic.suite");
  ASSERT_EQ(file.fault_list_files.size(), 1u);
  EXPECT_EQ(file.fault_list_files[0].first, "custom");
  EXPECT_EQ(file.fault_list_files[0].second, "custom.faults");
  ASSERT_EQ(file.jobs.size(), 2u);

  EXPECT_EQ(file.jobs[0].test_spec, "MATS+");
  EXPECT_EQ(file.jobs[0].list_name, "simple");
  EXPECT_EQ(file.jobs[0].memory_size, 8u);
  EXPECT_EQ(file.jobs[0].max_instances_per_fault, 4096u);  // default cap
  EXPECT_EQ(file.jobs[0].deadline.count(), 0);             // default: none
  EXPECT_EQ(file.jobs[0].line, 6u);

  EXPECT_EQ(file.jobs[1].test_spec, "{c(w0); ^(r0,w1)}");
  EXPECT_EQ(file.jobs[1].list_name, "custom");
  EXPECT_EQ(file.jobs[1].memory_size, 64u);
  EXPECT_EQ(file.jobs[1].max_instances_per_fault, 256u);
  EXPECT_EQ(file.jobs[1].deadline.count(), 5000);
}

TEST(JobFileParse, FieldsAcceptAnyOrderAndEscapedQuotes) {
  const JobFile file = parse_job_file_text(
      "jobs v1\n"
      "job n=8 list=list1 test=\"say \\\"hi\\\"\"\n");
  ASSERT_EQ(file.jobs.size(), 1u);
  EXPECT_EQ(file.jobs[0].test_spec, "say \"hi\"");
}

/// Expects `text` to fail parsing with a diagnostic at line:column carrying
/// `needle` in its message.
void expect_error_at(const std::string& text, std::size_t line,
                     std::size_t column, const std::string& needle) {
  try {
    parse_job_file_text(text, "jobs.test");
    FAIL() << "expected ParseError containing '" << needle << "'";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position().line, line) << e.what();
    EXPECT_EQ(e.position().column, column) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("jobs.test:"), std::string::npos)
        << "diagnostics carry the source name: " << e.what();
  }
}

TEST(JobFileParse, RejectsMissingHeader) {
  expect_error_at("job test=\"x\" list=l n=8\n", 1, 1, "jobs v1");
  expect_error_at("jobs v2\n", 1, 5, "version");
}

TEST(JobFileParse, RejectsEmptyAndJoblessDocuments) {
  EXPECT_THROW(parse_job_file_text(""), ParseError);
  EXPECT_THROW(parse_job_file_text("jobs v1\n"), ParseError);
  EXPECT_THROW(parse_job_file_text("jobs v1\nsuite \"s\"\n"), ParseError);
}

TEST(JobFileParse, RejectsUnknownRecordsAndFields) {
  expect_error_at("jobs v1\nbogus record\n", 2, 1, "unknown record");
  expect_error_at("jobs v1\njob test=\"x\" list=l n=8 nope=1\n", 2, 25,
                  "unknown job field");
}

TEST(JobFileParse, RejectsMissingRequiredFields) {
  expect_error_at("jobs v1\njob list=l n=8\n", 2, 1, "missing the test=");
  expect_error_at("jobs v1\njob test=\"x\" n=8\n", 2, 1, "missing the list=");
  expect_error_at("jobs v1\njob test=\"x\" list=l\n", 2, 1, "missing the n=");
}

TEST(JobFileParse, RejectsDuplicateAndMalformedFields) {
  expect_error_at("jobs v1\njob test=\"x\" test=\"y\" list=l n=8\n", 2, 14,
                  "duplicate test=");
  expect_error_at("jobs v1\njob test=\"x\" list=l n=8 n=9\n", 2, 25,
                  "duplicate n=");
  expect_error_at("jobs v1\njob test=\"x\" list=l n=2\n", 2, 21, ">= 3");
  expect_error_at("jobs v1\njob test=\"x\" list=l n=abc\n", 2, 23,
                  "expected a number");
  expect_error_at("jobs v1\njob test=\"x list=l n=8\n", 2, 23,
                  "unterminated");
}

TEST(JobFileParse, RejectsDirectiveViolations) {
  expect_error_at("jobs v1\nsuite \"a\"\nsuite \"b\"\njob test=\"x\" list=l "
                  "n=8\n",
                  3, 1, "duplicate suite");
  expect_error_at("jobs v1\nfaultlist a \"x\"\nfaultlist a \"y\"\n", 3, 11,
                  "duplicate faultlist alias");
  expect_error_at("jobs v1\njob test=\"x\" list=l n=8\nsuite \"a\"\n", 3, 1,
                  "before the first job");
  expect_error_at("jobs v1\nfaultlist \"missing-alias\"\n", 2, 11,
                  "expected an alias");
}

}  // namespace
}  // namespace mtg
