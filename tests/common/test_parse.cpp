// Validated CLI number parsing (common/parse.hpp), shared by mtg_cli and
// the bench_* front ends.
#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(ParseCount, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_count("0", "x"), 0u);
  EXPECT_EQ(parse_count("4096", "x"), 4096u);
}

TEST(ParseCount, RejectsSignsGarbageAndOverflow) {
  for (const char* bad : {"", "-1", "+3", " 4", "4 ", "0x10", "12k", "1.5"}) {
    EXPECT_THROW(parse_count(bad, "x"), Error) << "'" << bad << "'";
  }
  EXPECT_THROW(parse_count("99999999999999999999999999", "x"), Error);
}

TEST(ParseCount, HandlesTheFullSizeTRange) {
  // parse_count must go through a 64-bit conversion (std::stoull): on LLP64
  // platforms std::stoul is 32-bit and would truncate or reject these.
  EXPECT_EQ(parse_count("4294967295", "x"), 4294967295ull);  // UINT32_MAX
  EXPECT_EQ(parse_count("4294967296", "x"), 4294967296ull);  // UINT32_MAX + 1
  const std::string size_max =
      std::to_string(std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(parse_count(size_max, "x"),
            std::numeric_limits<std::size_t>::max());
  // One digit past SIZE_MAX overflows and must throw, not wrap.
  EXPECT_THROW(parse_count(size_max + "0", "x"), Error);
  EXPECT_THROW(parse_count("18446744073709551616", "x"), Error);  // 2^64
}

TEST(ParseMemorySize, EnforcesTheSimulatorMinimum) {
  EXPECT_EQ(parse_memory_size("3", "n"), 3u);
  for (const char* bad : {"0", "1", "2", "-6", "abc"}) {
    EXPECT_THROW(parse_memory_size(bad, "n"), Error) << "'" << bad << "'";
  }
}

TEST(ParseSizeList, KeepsDuplicatesAndOrder) {
  EXPECT_EQ(parse_size_list("64,8,64", "sweep"),
            (std::vector<std::size_t>{64, 8, 64}));
  EXPECT_EQ(parse_size_list("7", "sweep"), (std::vector<std::size_t>{7}));
}

TEST(ParseSizeList, RejectsEmptyItems) {
  for (const char* bad : {"", ",", "64,", ",64", "64,,256", "64;256"}) {
    EXPECT_THROW(parse_size_list(bad, "sweep"), Error) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace mtg
