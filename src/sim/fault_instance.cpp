#include "sim/fault_instance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "common/error.hpp"

namespace mtg {
namespace {

/// All strictly ascending k-subsets of {0..n-1}.
std::vector<std::vector<std::size_t>> ascending_subsets(std::size_t n,
                                                        std::size_t k) {
  std::vector<std::vector<std::size_t>> result;
  if (k == 0 || k > n) return result;
  std::vector<std::size_t> pick(k);
  for (std::size_t i = 0; i < k; ++i) pick[i] = i;
  while (true) {
    result.push_back(pick);
    std::size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (pick[i] != i + n - k) {
        ++pick[i];
        for (std::size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return result;
  }
}

/// C(n, k), saturating at uint64 max (only compared against small caps).
std::uint64_t subset_count_saturated(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t factor = n - i;
    if (result > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    // Exact at every step: the running product of i+1 consecutive integers
    // is divisible by (i+1)!.
    result = result * factor / (i + 1);
  }
  return result;
}

/// splitmix64 — the same stdlib-independent PRNG as the fuzz harness, so
/// sampled layouts are identical on every platform.
struct SplitMix {
  std::uint64_t state;

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }
};

/// The layouts instantiate() binds: all ascending k-subsets when they fit
/// `cap` (or cap == 0), a deterministic sample otherwise (see the header
/// comment on instantiate()).
std::vector<std::vector<std::size_t>> bounded_subsets(std::size_t n,
                                                      std::size_t k,
                                                      std::size_t cap,
                                                      std::uint64_t seed) {
  const std::uint64_t count = subset_count_saturated(n, k);
  if (cap == 0 || count <= cap) return ascending_subsets(n, k);

  // Moderate overshoot: enumerate fully, keep `cap` evenly spaced layouts
  // (the first and last among them).
  if (count <= 4 * static_cast<std::uint64_t>(cap)) {
    const auto all = ascending_subsets(n, k);
    std::vector<std::vector<std::size_t>> picked;
    picked.reserve(cap);
    for (std::size_t j = 0; j < cap; ++j) {
      picked.push_back(all[cap == 1 ? 0 : j * (all.size() - 1) / (cap - 1)]);
    }
    return picked;
  }

  // Large memories: boundary layouts plus seeded random distinct layouts.
  // A std::set keeps the result lexicographically sorted (the enumeration
  // order of ascending_subsets) and deduplicated.
  std::set<std::vector<std::size_t>> chosen;
  std::vector<std::size_t> lowest(k), highest(k);
  std::iota(lowest.begin(), lowest.end(), 0);
  std::iota(highest.begin(), highest.end(), n - k);
  chosen.insert(lowest);
  chosen.insert(highest);
  SplitMix rng{seed};
  // count > 4·cap, so fresh layouts stay likely; the attempt bound is a
  // safety net, not the expected exit.
  for (std::size_t attempts = 0; chosen.size() < cap && attempts < 64 * cap;
       ++attempts) {
    std::vector<std::size_t> pick;
    pick.reserve(k);
    while (pick.size() < k) {
      const std::size_t v = rng.below(n);
      if (std::find(pick.begin(), pick.end(), v) == pick.end()) {
        pick.push_back(v);
      }
    }
    std::sort(pick.begin(), pick.end());
    chosen.insert(std::move(pick));
  }
  std::vector<std::vector<std::size_t>> result(chosen.begin(), chosen.end());
  if (result.size() > cap) result.resize(cap);  // cap == 1 keeps the lowest
  return result;
}

std::uint64_t layout_seed(std::size_t fault_index, std::size_t n,
                          std::size_t k) {
  return (static_cast<std::uint64_t>(fault_index) + 1) *
             0x9E3779B97F4A7C15ull ^
         (static_cast<std::uint64_t>(n) << 8) ^ static_cast<std::uint64_t>(k);
}

}  // namespace

std::vector<FaultInstance> instantiate(const SimpleFault& fault, std::size_t n,
                                       std::size_t fault_index,
                                       std::size_t max_instances) {
  std::vector<FaultInstance> result;
  const std::size_t k = fault.num_cells();
  require(n >= k, "memory too small for the fault layout");
  for (const auto& cells : bounded_subsets(
           n, k, max_instances, layout_seed(fault_index, n, k))) {
    const std::size_t v = cells[fault.v_pos];
    const std::size_t a = fault.a_pos >= 0 ? cells[fault.a_pos] : v;
    FaultInstance inst;
    inst.fault_index = fault_index;
    inst.fps.push_back(BoundFp(fault.fp, a, v));
    inst.description = fault.name + " @ " + inst.fps[0].to_string();
    result.push_back(std::move(inst));
  }
  return result;
}

std::vector<FaultInstance> instantiate(const LinkedFault& fault, std::size_t n,
                                       std::size_t fault_index,
                                       std::size_t max_instances) {
  std::vector<FaultInstance> result;
  const std::size_t k = fault.num_cells();
  require(n >= k, "memory too small for the fault layout");
  const LinkedLayout& layout = fault.layout();
  for (const auto& cells : bounded_subsets(
           n, k, max_instances, layout_seed(fault_index, n, k))) {
    const std::size_t v = cells[layout.v_pos];
    const std::size_t a1 = layout.a1_pos >= 0 ? cells[layout.a1_pos] : v;
    const std::size_t a2 = layout.a2_pos >= 0 ? cells[layout.a2_pos] : v;
    FaultInstance inst;
    inst.fault_index = fault_index;
    inst.fps.push_back(BoundFp(fault.fp1(), a1, v));
    inst.fps.push_back(BoundFp(fault.fp2(), a2, v));
    inst.description = fault.name() + " @ v=" + std::to_string(v) +
                       " a1=" + std::to_string(a1) + " a2=" + std::to_string(a2);
    result.push_back(std::move(inst));
  }
  return result;
}

std::vector<FaultInstance> instantiate(const DecoderFault& fault,
                                       std::size_t n, std::size_t fault_index,
                                       std::size_t max_instances) {
  std::vector<FaultInstance> result;
  // The broken address line must exist in an n-cell memory; a fault on a
  // line the memory does not have simply has no instances there.
  if (fault.bit >= 63 || (std::size_t{1} << fault.bit) >= n) return result;
  const std::size_t partner_bit = std::size_t{1} << fault.bit;
  const bool two_cell = fault.cls != DecoderFaultClass::NoAccess;
  const auto valid = [&](std::size_t a) {
    return !two_cell || (a ^ partner_bit) < n;
  };

  std::size_t count = 0;
  for (std::size_t a = 0; a < n; ++a) count += valid(a) ? 1 : 0;
  if (count == 0) return result;

  // Deterministic evenly-spaced sample over the valid addresses (first and
  // last always included), mirroring the layout-sampling contract of the
  // FP instantiations: identical across runs and thread counts.
  const std::size_t keep =
      max_instances == 0 ? count : std::min(count, max_instances);
  std::vector<std::size_t> targets;
  targets.reserve(keep);
  for (std::size_t j = 0; j < keep; ++j) {
    targets.push_back(keep == 1 ? 0 : j * (count - 1) / (keep - 1));
  }

  std::size_t ordinal = 0, next = 0;
  for (std::size_t a = 0; a < n && next < targets.size(); ++a) {
    if (!valid(a)) continue;
    if (ordinal++ != targets[next]) continue;
    ++next;
    const std::size_t v = two_cell ? (a ^ partner_bit) : a;
    FaultInstance inst;
    inst.fault_index = fault_index;
    inst.decoders.push_back(BoundDecoder(fault, a, v));
    inst.description = fault.name() + " @ " + inst.decoders[0].to_string();
    result.push_back(std::move(inst));
  }
  return result;
}

std::vector<FaultInstance> instantiate_all(const FaultList& list,
                                           std::size_t n,
                                           std::size_t max_instances_per_fault) {
  std::vector<FaultInstance> result;
  std::size_t index = 0;
  for (const SimpleFault& f : list.simple) {
    auto instances = instantiate(f, n, index++, max_instances_per_fault);
    result.insert(result.end(), instances.begin(), instances.end());
  }
  for (const LinkedFault& f : list.linked) {
    auto instances = instantiate(f, n, index++, max_instances_per_fault);
    result.insert(result.end(), instances.begin(), instances.end());
  }
  for (const DecoderFault& f : list.decoder) {
    auto instances = instantiate(f, n, index++, max_instances_per_fault);
    result.insert(result.end(), instances.begin(), instances.end());
  }
  return result;
}

std::size_t fault_count(const FaultList& list) {
  return list.simple.size() + list.linked.size() + list.decoder.size();
}

std::string fault_name(const FaultList& list, std::size_t index) {
  require(index < fault_count(list), "fault index out of range");
  if (index < list.simple.size()) return list.simple[index].name;
  index -= list.simple.size();
  if (index < list.linked.size()) return list.linked[index].name();
  return list.decoder[index - list.linked.size()].name();
}

}  // namespace mtg
