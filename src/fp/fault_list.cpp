#include "fp/fault_list.hpp"

#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "fp/fp_library.hpp"

namespace mtg {

SimpleFault SimpleFault::single(FaultPrimitive fp) {
  require(!fp.is_two_cell(), "SimpleFault::single needs a single-cell FP");
  std::string name = fp.name() + " [v]";
  return SimpleFault{std::move(fp), -1, 0, std::move(name)};
}

SimpleFault SimpleFault::coupled(FaultPrimitive fp, bool aggressor_below) {
  require(fp.is_two_cell(), "SimpleFault::coupled needs a two-cell FP");
  std::string name = fp.name() + (aggressor_below ? " [a<v]" : " [v<a]");
  return SimpleFault{std::move(fp),
                     static_cast<std::int8_t>(aggressor_below ? 0 : 1),
                     static_cast<std::uint8_t>(aggressor_below ? 1 : 0),
                     std::move(name)};
}

bool is_maskable(const FaultPrimitive& fp) {
  return !fp.is_immediately_detecting();
}

bool can_mask(const FaultPrimitive& fp2, const FaultPrimitive& fp1) {
  return fp2.fault_value() == flip(fp1.fault_value()) &&
         fp2.v_state() == fp1.fault_value();
}

namespace {

/// Appends the linked fault when the full chain check passes.
///
/// Note the chain check prunes more than the static predicates: e.g. a state
/// fault never survives as FP2 because it settles within the very operation
/// that sensitizes FP1, so FP1 produces no lasting deviation to mask, and
/// same-aggressor pairs drop out when FP1's operation leaves the aggressor in
/// a state incompatible with FP2's sensitization (I2 = Fv1 over *all* cells).
void try_add(std::vector<LinkedFault>& out, const FaultPrimitive& fp1,
             const FaultPrimitive& fp2, const LinkedLayout& layout) {
  const LinkCheck check = check_link(fp1, fp2, layout);
  if (check.structurally_linked && check.fp1_fired && check.fp2_fired) {
    out.emplace_back(fp1, fp2, layout);
  }
}

}  // namespace

std::vector<LinkedFault> enumerate_single_cell_linked_faults() {
  std::vector<LinkedFault> result;
  const auto fps = all_single_cell_static_fps();
  for (const FaultPrimitive& fp1 : fps) {
    if (!is_maskable(fp1)) continue;
    for (const FaultPrimitive& fp2 : fps) {
      if (!can_mask(fp2, fp1)) continue;
      try_add(result, fp1, fp2, LinkedLayout::single_cell());
    }
  }
  return result;
}

std::vector<LinkedFault> enumerate_two_cell_linked_faults() {
  std::vector<LinkedFault> result;
  const auto single = all_single_cell_static_fps();
  const auto coupled = all_two_cell_static_fps();

  for (const bool aggressor_below : {true, false}) {
    const std::int8_t a_pos = aggressor_below ? 0 : 1;
    const std::uint8_t v_pos = aggressor_below ? 1 : 0;

    // (a) CF linked with CF, same aggressor cell.
    for (const FaultPrimitive& fp1 : coupled) {
      if (!is_maskable(fp1)) continue;
      for (const FaultPrimitive& fp2 : coupled) {
        if (!can_mask(fp2, fp1)) continue;
        try_add(result, fp1, fp2, LinkedLayout::two_cell(a_pos, a_pos, v_pos));
      }
    }
    // (b) CF linked with a single-cell FP on the victim.
    for (const FaultPrimitive& fp1 : coupled) {
      if (!is_maskable(fp1)) continue;
      for (const FaultPrimitive& fp2 : single) {
        if (!can_mask(fp2, fp1)) continue;
        try_add(result, fp1, fp2, LinkedLayout::two_cell(a_pos, -1, v_pos));
      }
    }
    // (c) single-cell FP linked with a CF sharing the victim.
    for (const FaultPrimitive& fp1 : single) {
      if (!is_maskable(fp1)) continue;
      for (const FaultPrimitive& fp2 : coupled) {
        if (!can_mask(fp2, fp1)) continue;
        try_add(result, fp1, fp2, LinkedLayout::two_cell(-1, a_pos, v_pos));
      }
    }
  }
  return result;
}

std::vector<LinkedFault> enumerate_three_cell_linked_faults() {
  std::vector<LinkedFault> result;
  const auto coupled = all_two_cell_static_fps();
  // All orderings of (a1, a2, v) over three distinct addresses.
  static constexpr std::uint8_t kOrderings[6][3] = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}};
  for (const FaultPrimitive& fp1 : coupled) {
    if (!is_maskable(fp1)) continue;
    for (const FaultPrimitive& fp2 : coupled) {
      if (!can_mask(fp2, fp1)) continue;
      for (const auto& ord : kOrderings) {
        try_add(result, fp1, fp2,
                LinkedLayout::three_cell(ord[0], ord[1], ord[2]));
      }
    }
  }
  return result;
}

std::vector<LinkedFault> enumerate_retention_linked_faults() {
  std::vector<LinkedFault> result;
  std::vector<FaultPrimitive> fps = all_single_cell_static_fps();
  for (Bit s : {Bit::Zero, Bit::One}) fps.push_back(FaultPrimitive::drf(s));
  for (const FaultPrimitive& fp1 : fps) {
    if (!is_maskable(fp1)) continue;
    for (const FaultPrimitive& fp2 : fps) {
      if (!fp1.is_retention() && !fp2.is_retention()) continue;
      if (!can_mask(fp2, fp1)) continue;
      try_add(result, fp1, fp2, LinkedLayout::single_cell());
    }
  }
  return result;
}

bool targets_retention(const FaultList& list) {
  for (const SimpleFault& fault : list.simple) {
    if (fault.fp.is_retention()) return true;
  }
  for (const LinkedFault& fault : list.linked) {
    if (fault.fp1().is_retention() || fault.fp2().is_retention()) return true;
  }
  return false;
}

FaultList fault_list_2() {
  FaultList list;
  list.name = "Fault List #2 (single-cell static linked faults)";
  list.linked = enumerate_single_cell_linked_faults();
  return list;
}

FaultList fault_list_1() {
  FaultList list;
  list.name = "Fault List #1 (single-, two- and three-cell static linked faults)";
  list.linked = enumerate_single_cell_linked_faults();
  auto two = enumerate_two_cell_linked_faults();
  auto three = enumerate_three_cell_linked_faults();
  list.linked.insert(list.linked.end(), two.begin(), two.end());
  list.linked.insert(list.linked.end(), three.begin(), three.end());
  return list;
}

FaultList standard_simple_static_faults() {
  FaultList list;
  list.name = "All simple static faults";
  for (const FaultPrimitive& fp : all_single_cell_static_fps()) {
    list.simple.push_back(SimpleFault::single(fp));
  }
  for (const FaultPrimitive& fp : all_two_cell_static_fps()) {
    list.simple.push_back(SimpleFault::coupled(fp, true));
    list.simple.push_back(SimpleFault::coupled(fp, false));
  }
  return list;
}

FaultList retention_fault_list() {
  FaultList list;
  list.name = "Data-retention faults (DRF/CFrt)";
  for (const FaultPrimitive& fp : all_retention_fps()) {
    if (fp.is_two_cell()) {
      list.simple.push_back(SimpleFault::coupled(fp, true));
      list.simple.push_back(SimpleFault::coupled(fp, false));
    } else {
      list.simple.push_back(SimpleFault::single(fp));
    }
  }
  list.linked = enumerate_retention_linked_faults();
  return list;
}

std::string to_canonical_string(const FaultList& list) {
  // Field-by-field, in list order: the canonical form must not depend on
  // display names (SimpleFault::name, LinkedFault::name carry unicode and
  // could drift cosmetically) — only on what the simulator actually
  // consumes.
  std::ostringstream out;
  out << "faultlist v1\n";
  for (const SimpleFault& fault : list.simple) {
    out << "simple " << fault.fp.notation() << " a_pos=" << int(fault.a_pos)
        << " v_pos=" << int(fault.v_pos) << "\n";
  }
  for (const LinkedFault& fault : list.linked) {
    const LinkedLayout& layout = fault.layout();
    out << "linked " << fault.fp1().notation() << " -> "
        << fault.fp2().notation() << " cells=" << int(layout.num_cells)
        << " a1=" << int(layout.a1_pos) << " a2=" << int(layout.a2_pos)
        << " v=" << int(layout.v_pos) << "\n";
  }
  for (const DecoderFault& fault : list.decoder) {
    out << "decoder cls=" << int(static_cast<unsigned char>(fault.cls))
        << " bit=" << fault.bit
        << " wired=" << (fault.wired == Bit::One ? 1 : 0) << "\n";
  }
  return out.str();
}

std::uint64_t stable_hash(const FaultList& list) {
  return stable_hash64(to_canonical_string(list));
}

FaultList decoder_fault_list(std::size_t max_address_bits) {
  require(max_address_bits >= 1 && max_address_bits < 63,
          "decoder_fault_list: address bit count out of range");
  FaultList list;
  list.name = "Address-decoder faults (" + std::to_string(max_address_bits) +
              " address lines)";
  for (std::size_t bit = 0; bit < max_address_bits; ++bit) {
    list.decoder.push_back(
        DecoderFault{DecoderFaultClass::NoAccess, bit, Bit::Zero});
    list.decoder.push_back(
        DecoderFault{DecoderFaultClass::WrongCell, bit, Bit::Zero});
    list.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleCells, bit, Bit::Zero});
    list.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleCells, bit, Bit::One});
    list.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleAddresses, bit, Bit::Zero});
  }
  return list;
}

}  // namespace mtg
