// Redundancy elimination for generated march tests.
//
// The paper claims the methodology "allows generating non-redundant March
// Tests".  The minimizer enforces this a posteriori: it repeatedly attempts
// to drop whole march elements and individual operations, keeping a removal
// whenever the shortened test remains valid and still detects every target
// fault instance.  The result is locally minimal: no single element or
// operation can be removed without losing coverage.
//
// Trials run on the incremental prefix engine (sim/prefix_sim.hpp): the
// instances are simulated once to the end of the current test with
// per-element checkpoints, and a "drop element i / drop op j" trial restores
// the checkpoint before the edit and replays only the suffix, bailing out at
// the first surviving undetected instance.  Instances detected strictly
// before the edit are skipped outright.  Verdicts — and therefore the
// minimized test — are identical to the from-scratch rescan
// (minimize_test_rescan, kept as the differential-testing reference).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/simulator.hpp"

namespace mtg {

/// True when `test` is valid and detects every instance in `instances`.
bool covers_all(const FaultSimulator& simulator, const MarchTest& test,
                const std::vector<FaultInstance>& instances);

/// Work counters of one minimize_test call.
struct MinimizeStats {
  std::size_t trials = 0;  ///< element/op removal attempts
  /// (instance, element) replays the trials cost.  A from-scratch rescan
  /// would cost ~ trials × instances × test length; checkpointed trials pay
  /// only the replayed suffix of the instances not already detected by the
  /// untouched prefix.
  std::size_t element_replays = 0;
  /// Trials answered by full-test re-simulation — 0 on the incremental
  /// path; counts only when the scalar/unsupported fallback ran.
  std::size_t full_rescans = 0;
};

/// Returns a locally minimal test with the same coverage of `instances`.
/// Appends a human-readable action trace to `log` when non-null; fills
/// `stats` when non-null.  Uses the checkpointed incremental path whenever
/// the simulator options select the packed engine and every instance fits
/// it, and falls back to minimize_test_rescan otherwise.
MarchTest minimize_test(const FaultSimulator& simulator, const MarchTest& test,
                        const std::vector<FaultInstance>& instances,
                        std::vector<std::string>* log = nullptr,
                        MinimizeStats* stats = nullptr);

/// Reference implementation: every trial re-simulates the whole trial test
/// against every instance (FaultSimulator::detects_all).  Kept as the
/// differential-testing oracle for the incremental path.
MarchTest minimize_test_rescan(const FaultSimulator& simulator,
                               const MarchTest& test,
                               const std::vector<FaultInstance>& instances,
                               std::vector<std::string>* log = nullptr,
                               MinimizeStats* stats = nullptr);

}  // namespace mtg
