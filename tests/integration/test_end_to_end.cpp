// End-to-end reproduction of the paper's flow on Fault List #2 (the Table 1
// "ABL1" row), plus replay of the worked examples of Sections 2-4.
#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"

namespace mtg {
namespace {

TEST(EndToEnd, TableOneRowAbl1) {
  // Generate for Fault List #2 and reproduce the Table 1 comparison: the
  // generated test must fully cover the list and improve on the 11n March
  // LF1 at least as much as the paper's 9n March ABL1 does (18.1%).
  const FaultList list = fault_list_2();
  const GenerationResult result = generate_march_test(list);
  ASSERT_TRUE(result.full_coverage);

  const double improvement =
      100.0 *
      (static_cast<double>(march_lf1().complexity()) -
       static_cast<double>(result.test.complexity())) /
      static_cast<double>(march_lf1().complexity());
  EXPECT_GE(improvement, 18.0);

  // Generation takes seconds, as in the paper (generous CI bound).
  EXPECT_LT(result.stats.elapsed_seconds, 120.0);
}

TEST(EndToEnd, GeneratedTestSurvivesIndependentScrutiny) {
  const FaultList list = fault_list_2();
  const GenerationResult result = generate_march_test(list);
  // Validate on a larger memory than the generator used anywhere.
  const FaultSimulator simulator(SimulatorOptions{8, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, result.test, list);
  EXPECT_TRUE(report.full_coverage()) << report.summary();
}

TEST(EndToEnd, SectionThreeMaskingStory) {
  // The linked disturb coupling fault of Equation 12 escapes March C- (the
  // masking makes the classic test blind) but is caught by March SL and by
  // a test generated against a list containing it.
  FaultList list;
  list.name = "equation 12";
  list.linked.push_back(disturb_coupling_linked_fault());

  const FaultSimulator simulator(SimulatorOptions{5, true, 10});
  EXPECT_TRUE(evaluate_coverage(simulator, march_sl(), list).full_coverage());

  GeneratorOptions options;
  options.certify_memory_size = 5;
  const GenerationResult result = generate_march_test(list, options);
  EXPECT_TRUE(result.full_coverage);
  EXPECT_LT(result.test.complexity(), march_sl().complexity());
}

TEST(EndToEnd, PatternGraphAgreesWithSimulator) {
  // Every linked TP pair in the pattern graph of Fault List #2 respects the
  // I2 = Fv1 chain, and the end-to-end detection the TPs promise is
  // consistent with the simulator: March ABL1 detects every fault.
  const FaultList list = fault_list_2();
  const PatternGraph pg(list);
  EXPECT_EQ(pg.model_cells(), 1u);
  EXPECT_EQ(pg.num_vertices(), 2u);
  EXPECT_EQ(pg.faulty_edges().size(), 2u * list.linked.size());

  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const CoverageReport report =
      evaluate_coverage(simulator, march_abl1(), list);
  EXPECT_TRUE(report.full_coverage());
}

TEST(EndToEnd, UncoverableFaultsAreReportedNotSilentlyDropped) {
  // A fault list containing only a fully-masking pair that no march test
  // can expose would be reported via GenerationResult::uncoverable; our
  // realistic lists contain none, which is itself worth pinning down.
  const GenerationResult r2 = generate_march_test(fault_list_2());
  EXPECT_TRUE(r2.uncoverable.empty());
}

}  // namespace
}  // namespace mtg
