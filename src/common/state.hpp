// Memory state vectors.
//
// Two representations are used:
//  * SmallState — a densely packed state of a k-cell *model* memory
//    (k <= 16).  These are the vertices of the memory graph / pattern graph
//    (Section 4): a k-cell memory has 2^k states and SmallState::index()
//    gives the vertex id.  Following the paper's convention (Definition 4),
//    the textual form lists the *lowest address first*.
//  * MemoryState — the dynamically sized state of the simulated n-cell
//    memory used by the fault simulator.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/bit.hpp"
#include "common/packed_bits.hpp"

namespace mtg {

/// Packed state of a model memory with at most 16 one-bit cells.
class SmallState {
 public:
  static constexpr std::size_t kMaxCells = 16;

  SmallState() = default;

  /// Creates an all-zero state over `num_cells` cells.
  explicit SmallState(std::size_t num_cells);

  /// Creates a state over `num_cells` cells from packed `bits`
  /// (bit i of `bits` is the value of cell i).
  SmallState(std::size_t num_cells, std::uint16_t bits);

  /// Parses "010"-style strings; first character = cell 0 (lowest address).
  static SmallState from_string(std::string_view text);

  std::size_t num_cells() const noexcept { return num_cells_; }

  Bit get(std::size_t cell) const;
  void set(std::size_t cell, Bit value);
  void flip(std::size_t cell);

  /// All cells set to `value`.
  static SmallState uniform(std::size_t num_cells, Bit value);

  /// Packed representation; doubles as the graph vertex id in [0, 2^k).
  std::uint16_t index() const noexcept { return bits_; }

  /// Lowest-address-first string, e.g. "01" for cell0=0, cell1=1.
  std::string to_string() const;

  friend bool operator==(const SmallState& a, const SmallState& b) noexcept {
    return a.num_cells_ == b.num_cells_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const SmallState& a, const SmallState& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const SmallState& a, const SmallState& b) noexcept {
    if (a.num_cells_ != b.num_cells_) return a.num_cells_ < b.num_cells_;
    return a.bits_ < b.bits_;
  }

 private:
  std::uint16_t bits_ = 0;
  std::uint8_t num_cells_ = 0;
};

std::ostream& operator<<(std::ostream& os, const SmallState& s);

/// State of the simulated n-cell memory.
class MemoryState {
 public:
  MemoryState() = default;

  /// Creates an n-cell memory initialised to `value` (default 0).
  explicit MemoryState(std::size_t num_cells, Bit value = Bit::Zero);

  std::size_t size() const noexcept { return cells_.size(); }

  Bit get(std::size_t address) const;
  void set(std::size_t address, Bit value);
  void flip(std::size_t address);
  void fill(Bit value);

  /// Cell contents packed into bits 0..n-1 (bit i = cell i), for any n.
  PackedBits packed_bits() const;
  /// Restores a snapshot taken on a memory of the same size.
  void set_packed_bits(const PackedBits& bits);

  std::string to_string() const;

  friend bool operator==(const MemoryState& a, const MemoryState& b) noexcept {
    return a.cells_ == b.cells_;
  }
  friend bool operator!=(const MemoryState& a, const MemoryState& b) noexcept {
    return !(a == b);
  }

 private:
  std::vector<std::uint8_t> cells_;  // 0 or 1 per cell
};

std::ostream& operator<<(std::ostream& os, const MemoryState& s);

}  // namespace mtg
