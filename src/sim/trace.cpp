#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

std::string TraceStep::to_string() const {
  std::ostringstream out;
  out << "e" << element_index << " @" << address << " " << mtg::to_string(op)
      << "  good=" << good_state << " faulty=" << faulty_state;
  if (fired) out << "  [FP fired]";
  if (mismatch) out << "  [MISMATCH]";
  return out.str();
}

std::string Trace::to_string(bool only_interesting) const {
  std::ostringstream out;
  out << "trace of " << (test.name().empty() ? test.to_string() : test.name())
      << " on " << instance << ", power-on " << to_char(power_on) << ":\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const TraceStep& step = steps[i];
    if (only_interesting && !step.fired && !step.mismatch) continue;
    out << "  [" << i << "] " << step.to_string() << "\n";
  }
  out << (detected ? "  => detected at step " + std::to_string(first_mismatch)
                   : "  => NOT detected")
      << " (" << total_fires << " FP firings)\n";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Trace& trace) {
  return os << trace.to_string();
}

Trace trace_run(const MarchTest& test, const FaultInstance& instance,
                std::size_t n, Bit power_on, std::size_t any_order_mask) {
  require(n >= 1, "trace_run: empty memory");
  for (const BoundFp& bound : instance.fps) {
    require(bound.v_cell < n && bound.a_cell < n,
            "trace_run: fault addresses exceed the memory size");
  }

  Trace trace;
  trace.test = test;
  trace.instance =
      instance.description.empty() ? "fault-free run" : instance.description;
  trace.power_on = power_on;

  FaultyMemory faulty(n, instance.fps);
  faulty.power_on_uniform(power_on);
  MemoryState good(n, power_on);

  std::size_t any_index = 0;
  std::size_t fires_before = 0;
  for (std::size_t e = 0; e < test.elements().size(); ++e) {
    const MarchElement& element = test.elements()[e];
    AddressOrder order = element.order();
    if (order == AddressOrder::Any) {
      order = (any_order_mask >> any_index) & 1u ? AddressOrder::Down
                                                 : AddressOrder::Up;
      ++any_index;
    }
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t address =
          order == AddressOrder::Up ? step : n - 1 - step;
      for (std::size_t i = 0; i < element.ops().size(); ++i) {
        const Op op = element.ops()[i];
        TraceStep record;
        record.element_index = e;
        record.address = address;
        record.op_index = i;
        record.op = op;
        if (is_write(op)) {
          const Bit value = written_value(op);
          good.set(address, value);
          faulty.write(address, value);
        } else if (is_read(op)) {
          const Bit expected = good.get(address);
          const Bit observed = faulty.read(address);
          record.mismatch = observed != expected;
        } else {
          faulty.wait(address);
        }
        record.fired = faulty.total_fires() > fires_before;
        fires_before = faulty.total_fires();
        record.good_state = good.to_string();
        record.faulty_state = faulty.state().to_string();
        if (record.mismatch && !trace.detected) {
          trace.detected = true;
          trace.first_mismatch = trace.steps.size();
        }
        trace.steps.push_back(std::move(record));
      }
    }
  }
  trace.total_fires = faulty.total_fires();
  return trace;
}

}  // namespace mtg
