// Ablation of the generator's design choices (DESIGN.md experiment index):
//   * redundancy elimination on/off (the paper's "non-redundant" claim),
//   * working memory size (greedy fidelity vs speed),
//   * candidate element length bound (SO search space).
//
// Fault List #2 is swept fully; Fault List #1 ablates the minimizer only
// (its sweeps dominate runtime on a laptop-class host).
//
// Per-phase wall times (greedy A, persistent-certify-state prep, the
// certification rounds B/B2, minimizer C), certify iterations and dropped
// instance counts are tracked for every run; --json <path|-> writes them as
// a machine-readable summary so the perf trajectory of the generator
// pipeline is diffable across commits.  --quick runs a reduced matrix (CI
// smoke).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"

namespace {

struct RunRecord {
  std::string label;
  std::string list;
  mtg::GenerationResult result;
};

std::vector<RunRecord>& records() {
  static std::vector<RunRecord> all;
  return all;
}

void run(const char* label, const char* list_name, const mtg::FaultList& list,
         const mtg::GeneratorOptions& options) {
  mtg::GenerationResult result = generate_march_test(list, options);
  const mtg::GenerationStats& s = result.stats;
  std::printf(
      "%-34s %5zun %8.2fs  %6.2f%%  rounds=%zu pool=%zu B+B2=%.4fs%s\n",
      label, result.test.complexity(), s.elapsed_seconds,
      result.certification.fault_coverage_percent(), s.greedy_rounds,
      s.candidate_pool, s.phase_b_seconds + s.phase_b2_seconds,
      result.uncoverable.empty() ? "" : "  (uncoverable reported!)");
  records().push_back(RunRecord{label, list_name, std::move(result)});
}

void write_json(std::FILE* out) {
  std::fprintf(out, "{\n  \"runs\": [\n");
  for (std::size_t i = 0; i < records().size(); ++i) {
    const RunRecord& record = records()[i];
    const mtg::GenerationStats& s = record.result.stats;
    std::fprintf(
        out,
        "    {\"label\": \"%s\", \"list\": \"%s\", \"complexity\": %zu, "
        "\"coverage_percent\": %.2f, \"uncoverable\": %zu,\n"
        "     \"elapsed_s\": %.6f, \"phase_a_s\": %.6f, "
        "\"cert_prep_s\": %.6f, \"phase_b_s\": %.6f, \"phase_c_s\": %.6f, "
        "\"phase_b2_s\": %.6f,\n"
        "     \"greedy_rounds\": %zu, \"certify_iterations\": %zu, "
        "\"certify_instances\": %zu, \"instances_dropped\": %zu, "
        "\"minimize_trials\": %zu, \"minimize_element_replays\": %zu}%s\n",
        record.label.c_str(), record.list.c_str(),
        record.result.test.complexity(),
        record.result.certification.fault_coverage_percent(),
        record.result.uncoverable.size(), s.elapsed_seconds,
        s.phase_a_seconds, s.cert_prep_seconds, s.phase_b_seconds,
        s.phase_c_seconds, s.phase_b2_seconds, s.greedy_rounds,
        s.certify_iterations, s.certify_instances, s.instances_dropped,
        s.minimize_trials, s.minimize_element_replays,
        i + 1 < records().size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtg;
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_generation_ablation [--quick] "
                   "[--json <path|->]\n");
      return 2;
    }
  }

  std::printf("%-34s %6s %9s %8s  %s\n", "configuration", "O(n)", "CPU",
              "coverage", "stats");
  std::printf("%s\n", std::string(80, '-').c_str());

  const FaultList list2 = fault_list_2();
  {
    GeneratorOptions options;
    run("L2 default", "list2", list2, options);
  }
  {
    GeneratorOptions options;
    options.minimize = false;
    run("L2 no redundancy elimination", "list2", list2, options);
  }
  if (!quick) {
    for (std::size_t working : {3, 4, 5}) {
      GeneratorOptions options;
      options.working_memory_size = working;
      char label[64];
      std::snprintf(label, sizeof label, "L2 working memory n=%zu", working);
      run(label, "list2", list2, options);
    }
    for (std::size_t len : {4, 5, 6, 7}) {
      GeneratorOptions options;
      options.max_element_length = len;
      char label[64];
      std::snprintf(label, sizeof label, "L2 max element length %zu", len);
      run(label, "list2", list2, options);
    }
  }

  const FaultList list1 = fault_list_1();
  {
    GeneratorOptions options;
    run("L1 default", "list1", list1, options);
  }
  if (!quick) {
    GeneratorOptions options;
    options.minimize = false;
    run("L1 no redundancy elimination", "list1", list1, options);
  }

  if (json_path != nullptr) {
    if (std::strcmp(json_path, "-") == 0) {
      write_json(stdout);
    } else {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
      }
      write_json(out);
      std::fclose(out);
      std::printf("JSON summary written to %s\n", json_path);
    }
  }
  return 0;
}
