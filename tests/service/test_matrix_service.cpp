// MatrixService tests: the robustness contract of the coverage-matrix
// service.  The load-bearing invariant, asserted throughout: a COMPLETED
// job's report is byte-identical (store-codec bytes) to a solo
// evaluate_coverage run of the same (test, list, n, cap) — for every thread
// count, backpressure policy, cancellation schedule, store health and
// scheduler fault injection.  Everything else (cancel, deadline, failure,
// rejection) must terminate with the right status and NO report.
#include "service/matrix_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/coverage.hpp"
#include "store/fault_injection.hpp"
#include "store/storage.hpp"
#include "store/sweep_store.hpp"

namespace mtg {
namespace {

/// The solo reference: what one direct evaluate_coverage call produces for
/// the job's parameters (matching the service's fixed SimulatorOptions).
CoverageReport solo_report(const MarchTest& test, const FaultList& list,
                           std::size_t n, std::size_t cap) {
  SimulatorOptions options;
  options.memory_size = n;
  options.both_power_on_states = true;
  options.max_any_order_elements = 10;
  options.use_packed_engine = true;
  options.coverage_threads = 1;
  return evaluate_coverage(FaultSimulator(options), test, list, cap);
}

/// Byte-level identity of a report: the store codec is the project's
/// canonical byte serialization of a CoverageReport.
std::string report_bytes(const CoverageReport& report) {
  return SweepStore::encode_record(SweepKey{}, report);
}

MatrixJob make_job(const MarchTest& test,
                   const std::shared_ptr<const FaultList>& list,
                   std::size_t n = 6, std::size_t cap = 64) {
  MatrixJob job;
  job.test = test;
  job.list = list;
  job.memory_size = n;
  job.max_instances_per_fault = cap;
  return job;
}

std::shared_ptr<const FaultList> shared_list_1() {
  return std::make_shared<const FaultList>(fault_list_1());
}

/// Spin until the service has dispatched everything it can (queue empty) or
/// the timeout passes — used to sequence backpressure tests without relying
/// on submit/dispatch timing.
void wait_until_queue_empty(const MatrixService& service) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.queued() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.queued(), 0u) << "queue did not drain in 30s";
}

TEST(MatrixService, CompletedReportsAreByteIdenticalAcrossThreadCounts) {
  const auto list = shared_list_1();
  const std::vector<MarchTest> tests = {mats_plus(), march_c_minus(),
                                        march_y(), march_sl()};
  std::vector<std::string> expected;
  for (const MarchTest& test : tests) {
    expected.push_back(report_bytes(solo_report(test, *list, 6, 64)));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0}}) {
    MatrixServiceOptions options;
    options.threads = threads;
    MatrixService service(options);
    std::vector<std::size_t> ids;
    for (const MarchTest& test : tests) {
      const auto submission = service.submit(make_job(test, list));
      EXPECT_FALSE(submission.rejected);
      ids.push_back(submission.job_id);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const MatrixJobResult result = service.wait(ids[i]);
      ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
      EXPECT_EQ(report_bytes(result.report), expected[i])
          << "threads=" << threads << " job " << i;
    }
    const MatrixServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, tests.size());
    EXPECT_EQ(stats.failed, 0u);
  }
}

TEST(MatrixService, DispatchIsFifoOnOneWorker) {
  const auto list = shared_list_1();
  std::mutex order_mutex;
  std::vector<std::size_t> completion_order;
  MatrixServiceOptions options;
  options.threads = 1;
  options.on_result = [&](const MatrixJobResult& result) {
    std::lock_guard<std::mutex> lock(order_mutex);
    completion_order.push_back(result.job_id);
  };
  MatrixService service(options);
  std::vector<std::size_t> submitted;
  for (int i = 0; i < 8; ++i) {
    submitted.push_back(service.submit(make_job(mats_plus(), list)).job_id);
  }
  service.drain();
  std::lock_guard<std::mutex> lock(order_mutex);
  EXPECT_EQ(completion_order, submitted) << "one worker preserves FIFO order";
}

TEST(MatrixService, RejectPolicyBouncesWhenTheQueueIsFull) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.when_full = BackpressurePolicy::Reject;
  // Hold the worker on the first dispatch so the second job stays queued.
  options.scheduler_hook = [](std::size_t index, std::size_t) {
    SchedulerFault fault;
    if (index == 1) {
      fault.action = SchedulerFaultAction::Delay;
      fault.delay = std::chrono::milliseconds(200);
    }
    return fault;
  };
  MatrixService service(options);
  const auto first = service.submit(make_job(mats_plus(), list));
  wait_until_queue_empty(service);  // first job dispatched (and sleeping)
  const auto queued = service.submit(make_job(mats_plus(), list));
  EXPECT_FALSE(queued.rejected);
  const auto bounced = service.submit(make_job(mats_plus(), list));
  EXPECT_TRUE(bounced.rejected);

  EXPECT_EQ(service.wait(bounced.job_id).status, JobStatus::Rejected);
  EXPECT_EQ(service.wait(first.job_id).status, JobStatus::Completed);
  EXPECT_EQ(service.wait(queued.job_id).status, JobStatus::Completed);
  const MatrixServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.submitted, 2u) << "rejected jobs are not admitted";
}

TEST(MatrixService, BlockPolicyWaitsForASlotInsteadOfBouncing) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.when_full = BackpressurePolicy::Block;
  MatrixService service(options);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto submission = service.submit(make_job(mats_plus(), list));
    EXPECT_FALSE(submission.rejected) << "Block never bounces";
    ids.push_back(submission.job_id);
  }
  for (const std::size_t id : ids) {
    EXPECT_EQ(service.wait(id).status, JobStatus::Completed);
  }
}

TEST(MatrixService, CancelledQueuedJobReportsCancelledWithoutEvaluating) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 1;
  options.scheduler_hook = [](std::size_t index, std::size_t) {
    SchedulerFault fault;
    if (index == 1) {
      fault.action = SchedulerFaultAction::Delay;
      fault.delay = std::chrono::milliseconds(100);
    }
    return fault;
  };
  MatrixService service(options);
  const auto running = service.submit(make_job(mats_plus(), list));
  const auto victim = service.submit(make_job(march_sl(), list));
  EXPECT_TRUE(service.cancel(victim.job_id));
  const MatrixJobResult result = service.wait(victim.job_id);
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_TRUE(result.report.entries.empty()) << "never a partial report";
  EXPECT_EQ(service.wait(running.job_id).status, JobStatus::Completed);
  // Cancelling a terminal job is a no-op.
  EXPECT_FALSE(service.cancel(victim.job_id));
  EXPECT_FALSE(service.cancel(9999));
}

TEST(MatrixService, QueueTimeCountsAgainstTheDeadline) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 1;
  options.scheduler_hook = [](std::size_t index, std::size_t) {
    SchedulerFault fault;
    if (index == 1) {
      fault.action = SchedulerFaultAction::Delay;
      fault.delay = std::chrono::milliseconds(150);
    }
    return fault;
  };
  MatrixService service(options);
  service.submit(make_job(mats_plus(), list));
  MatrixJob doomed = make_job(march_sl(), list);
  doomed.deadline = std::chrono::milliseconds(1);  // expires in the queue
  const auto submission = service.submit(doomed);
  const MatrixJobResult result = service.wait(submission.job_id);
  EXPECT_EQ(result.status, JobStatus::DeadlineExceeded);
  EXPECT_TRUE(result.report.entries.empty());
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(MatrixService, DeadlineInterruptsARunningEvaluation) {
  const auto list = std::make_shared<const FaultList>(fault_list_2());
  MatrixServiceOptions options;
  options.threads = 1;
  MatrixService service(options);
  // Full enumeration at n=4096 runs far longer than 1ms.
  MatrixJob job = make_job(march_sl(), list, /*n=*/4096, /*cap=*/0);
  job.deadline = std::chrono::milliseconds(1);
  const auto submission = service.submit(job);
  const MatrixJobResult result = service.wait(submission.job_id);
  EXPECT_EQ(result.status, JobStatus::DeadlineExceeded);
  EXPECT_TRUE(result.report.entries.empty()) << "never a partial report";
}

TEST(MatrixService, InvalidTestFailsTheJobAndTheServiceKeepsServing) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 1;
  MatrixService service(options);
  // r0 against unknown power-on content: statically invalid.
  const auto bad = service.submit(
      make_job(parse_march_test("{^(r0)}", "invalid"), list));
  const auto good = service.submit(make_job(mats_plus(), list));
  const MatrixJobResult bad_result = service.wait(bad.job_id);
  EXPECT_EQ(bad_result.status, JobStatus::Failed);
  EXPECT_FALSE(bad_result.error.empty());
  EXPECT_TRUE(bad_result.report.entries.empty());
  EXPECT_EQ(service.wait(good.job_id).status, JobStatus::Completed);
  const MatrixServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(MatrixService, SharedArtifactsAreComputedOnceAcrossJobs) {
  const auto list = shared_list_1();
  MatrixServiceOptions options;
  options.threads = 4;
  MatrixService service(options);
  constexpr std::size_t kJobs = 12;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kJobs; ++i) {
    ids.push_back(service.submit(make_job(march_c_minus(), list)).job_id);
  }
  const std::string expected =
      report_bytes(solo_report(march_c_minus(), *list, 6, 64));
  for (const std::size_t id : ids) {
    const MatrixJobResult result = service.wait(id);
    ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
    EXPECT_EQ(report_bytes(result.report), expected);
  }
  const MatrixServiceStats stats = service.stats();
  // Single flight: one compilation and one instantiation total, no matter
  // how many jobs raced for them.
  EXPECT_EQ(stats.compiled_cache_misses, 1u);
  EXPECT_EQ(stats.instances_cache_misses, 1u);
  EXPECT_EQ(stats.compiled_cache_hits, kJobs - 1);
  EXPECT_EQ(stats.instances_cache_hits, kJobs - 1);
}

TEST(MatrixService, StoreRoundTripServesVerifiedRecordsWithoutEvaluating) {
  const auto list = shared_list_1();
  InMemoryStorage storage;
  SweepStore store(storage, "matrix-store");
  ASSERT_TRUE(store.open());
  const std::string expected =
      report_bytes(solo_report(mats_plus(), *list, 6, 64));

  {
    MatrixServiceOptions options;
    options.threads = 2;
    options.store = &store;
    MatrixService service(options);
    const auto id = service.submit(make_job(mats_plus(), list)).job_id;
    const MatrixJobResult result = service.wait(id);
    ASSERT_EQ(result.status, JobStatus::Completed);
    EXPECT_FALSE(result.from_store);
    EXPECT_EQ(report_bytes(result.report), expected);
    EXPECT_EQ(service.stats().store_saves, 1u);
  }
  {
    // A second service over the same store: the record is a verified hit,
    // byte-identical to the evaluated run.
    MatrixServiceOptions options;
    options.threads = 2;
    options.store = &store;
    MatrixService service(options);
    const auto id = service.submit(make_job(mats_plus(), list)).job_id;
    const MatrixJobResult result = service.wait(id);
    ASSERT_EQ(result.status, JobStatus::Completed);
    EXPECT_TRUE(result.from_store);
    EXPECT_EQ(report_bytes(result.report), expected)
        << "store hits are byte-identical to fresh evaluations";
    EXPECT_EQ(service.stats().store_hits, 1u);
  }
}

TEST(MatrixService, StickyStoreFailureDegradesTheStoreNotTheService) {
  const auto list = shared_list_1();
  InMemoryStorage base;
  FaultInjectedStorage storage(base);
  SweepStore store(storage, "matrix-store",
                   [] {
                     SweepStoreOptions store_options;
                     store_options.retry_backoff = std::chrono::milliseconds(0);
                     store_options.warn = [](const std::string&) {};
                     return store_options;
                   }());
  ASSERT_TRUE(store.open());
  storage.fail_kth_operation(1, StoreFaultMode::Error, /*sticky=*/true);

  MatrixServiceOptions options;
  options.threads = 2;
  options.store = &store;
  MatrixService service(options);
  const std::vector<MarchTest> tests = {mats_plus(), march_y(),
                                        march_c_minus()};
  std::vector<std::size_t> ids;
  for (const MarchTest& test : tests) {
    ids.push_back(service.submit(make_job(test, list)).job_id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const MatrixJobResult result = service.wait(ids[i]);
    ASSERT_EQ(result.status, JobStatus::Completed)
        << "a dead store must not fail jobs: " << result.error;
    EXPECT_FALSE(result.from_store);
    EXPECT_EQ(report_bytes(result.report),
              report_bytes(solo_report(tests[i], *list, 6, 64)))
        << "results are byte-identical with or without a failing store";
  }
  EXPECT_FALSE(store.enabled()) << "exhausted retries disable the store";
  EXPECT_EQ(service.stats().store_saves, 0u);
}

TEST(MatrixService, SchedulerFaultInjectionsPerturbOnlyTheTargetedJob) {
  const auto list = shared_list_1();
  const std::string expected =
      report_bytes(solo_report(mats_plus(), *list, 6, 64));
  struct Case {
    SchedulerFaultAction action;
    JobStatus expected_status;
  };
  const std::vector<Case> cases = {
      {SchedulerFaultAction::Delay, JobStatus::Completed},
      {SchedulerFaultAction::Fail, JobStatus::Failed},
      {SchedulerFaultAction::CancelBeforeRun, JobStatus::Cancelled},
      {SchedulerFaultAction::CancelMidRun, JobStatus::Cancelled},
  };
  for (const Case& test_case : cases) {
    constexpr std::size_t kJobs = 5;
    constexpr std::size_t kTarget = 3;  // dispatch index of the victim
    MatrixServiceOptions options;
    options.threads = 1;  // dispatch index == submission order
    options.scheduler_hook = [&](std::size_t index, std::size_t) {
      SchedulerFault fault;
      if (index == kTarget) {
        fault.action = test_case.action;
        fault.delay = std::chrono::milliseconds(10);
      }
      return fault;
    };
    MatrixService service(options);
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < kJobs; ++i) {
      ids.push_back(service.submit(make_job(mats_plus(), list)).job_id);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const MatrixJobResult result = service.wait(ids[i]);
      if (i + 1 == kTarget) {
        EXPECT_EQ(result.status, test_case.expected_status)
            << "action " << static_cast<int>(test_case.action);
        if (test_case.expected_status != JobStatus::Completed) {
          EXPECT_TRUE(result.report.entries.empty());
          continue;
        }
      } else {
        ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
      }
      EXPECT_EQ(report_bytes(result.report), expected)
          << "untargeted jobs stay byte-identical";
    }
  }
}

TEST(MatrixService, DestructionCancelsQueuedJobsWithoutHanging) {
  const auto list = shared_list_1();
  std::mutex results_mutex;
  std::vector<JobStatus> statuses;
  {
    MatrixServiceOptions options;
    options.threads = 1;
    options.on_result = [&](const MatrixJobResult& result) {
      std::lock_guard<std::mutex> lock(results_mutex);
      statuses.push_back(result.status);
    };
    MatrixService service(options);
    for (int i = 0; i < 20; ++i) {
      service.submit(make_job(march_sl(), list, /*n=*/16, /*cap=*/0));
    }
    // Destructor: cancel everything, drain, join — must not hang.
  }
  std::lock_guard<std::mutex> lock(results_mutex);
  ASSERT_EQ(statuses.size(), 20u) << "every admitted job reaches a terminal "
                                     "state before destruction completes";
  for (const JobStatus status : statuses) {
    EXPECT_TRUE(status == JobStatus::Completed ||
                status == JobStatus::Cancelled)
        << to_string(status);
  }
}

TEST(MatrixService, ExternalTokenCancelsQueuedAndFutureJobs) {
  const auto list = shared_list_1();
  CancelToken external;
  MatrixServiceOptions options;
  options.threads = 1;
  options.cancel = &external;
  MatrixService service(options);
  external.cancel();
  const auto submission = service.submit(make_job(mats_plus(), list));
  const MatrixJobResult result = service.wait(submission.job_id);
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_TRUE(result.report.entries.empty());
}

TEST(MatrixService, StaticPrefilterServesByteIdenticalReports) {
  // The whole catalog against three built-in lists, prefilter on: every
  // completed report must be byte-identical to the solo simulated run —
  // whether the analyzer served it (full static coverage, e.g. March SS vs
  // simple) or declined and the simulated path ran.  Locked across thread
  // counts because static serving changes which worker produces a report.
  const std::vector<MarchTest> tests = all_catalog_tests();
  const std::vector<std::shared_ptr<const FaultList>> lists = {
      std::make_shared<const FaultList>(fault_list_1()),
      std::make_shared<const FaultList>(standard_simple_static_faults()),
      std::make_shared<const FaultList>(decoder_fault_list())};
  constexpr std::size_t kN = 6;
  constexpr std::size_t kCap = 64;
  std::vector<std::string> expected;
  for (const auto& list : lists) {
    for (const MarchTest& test : tests) {
      expected.push_back(report_bytes(solo_report(test, *list, kN, kCap)));
    }
  }
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    MatrixServiceOptions options;
    options.threads = threads;
    options.static_prefilter = true;
    MatrixService service(options);
    std::vector<std::size_t> ids;
    for (const auto& list : lists) {
      for (const MarchTest& test : tests) {
        ids.push_back(service.submit(make_job(test, list, kN, kCap)).job_id);
      }
    }
    std::size_t served = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const MatrixJobResult result = service.wait(ids[i]);
      ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
      EXPECT_EQ(report_bytes(result.report), expected[i])
          << "threads=" << threads << " job " << i
          << " (served_statically=" << result.served_statically << ")";
      if (result.served_statically) ++served;
    }
    const MatrixServiceStats stats = service.stats();
    EXPECT_EQ(stats.static_served, served);
    // The catalog has pairs with full static coverage (every test vs
    // decoder, March SS/SL vs simple): the tier must actually fire.
    EXPECT_GT(served, 0u) << "threads=" << threads;
    EXPECT_LT(served, ids.size()) << "threads=" << threads;
    EXPECT_EQ(stats.completed, ids.size());
  }
}

TEST(MatrixService, StaticallyServedJobsPopulateTheStore) {
  // A statically served job writes the same store record a simulated run
  // would: a later prefilter-less service must store-hit it and still
  // produce byte-identical content.
  InMemoryStorage storage;
  SweepStoreOptions store_options;
  store_options.warn = [](const std::string&) {};
  const auto list =
      std::make_shared<const FaultList>(standard_simple_static_faults());
  const std::string expected =
      report_bytes(solo_report(march_ss(), *list, 6, 64));

  SweepStore store(storage, "static-store", store_options);
  store.open();
  {
    MatrixServiceOptions options;
    options.threads = 1;
    options.static_prefilter = true;
    options.store = &store;
    MatrixService service(options);
    const MatrixJobResult result =
        service.wait(service.submit(make_job(march_ss(), list)).job_id);
    ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
    EXPECT_TRUE(result.served_statically);
    EXPECT_EQ(report_bytes(result.report), expected);
    EXPECT_EQ(service.stats().store_saves, 1u);
  }
  {
    MatrixServiceOptions options;
    options.threads = 1;
    options.store = &store;
    MatrixService service(options);
    const MatrixJobResult result =
        service.wait(service.submit(make_job(march_ss(), list)).job_id);
    ASSERT_EQ(result.status, JobStatus::Completed) << result.error;
    EXPECT_TRUE(result.from_store);
    EXPECT_FALSE(result.served_statically);
    EXPECT_EQ(report_bytes(result.report), expected);
  }
}

TEST(MatrixService, MisuseThrows) {
  MatrixServiceOptions bad_capacity;
  bad_capacity.queue_capacity = 0;
  EXPECT_THROW(MatrixService{bad_capacity}, Error);

  MatrixService service;
  EXPECT_THROW(service.submit(MatrixJob{}), Error);  // null list
  EXPECT_THROW(service.wait(42), Error);             // unknown id
}

}  // namespace
}  // namespace mtg
