// A bounded thread pool with a blocking parallel_for and a FIFO task queue.
//
// Two scheduling modes share one set of worker threads:
//
//  * parallel_for — work items [0, count) are split into contiguous chunks
//    that workers (and the calling thread, which participates) claim
//    dynamically — simple load balancing without per-item dispatch overhead.
//    One batch runs at a time; concurrent parallel_for calls on the same
//    pool serialize.  Used by sim/coverage.cpp to spread fault instances
//    across cores.
//  * submit — independent tasks dispatched FIFO to whichever worker frees up
//    first; the returned future carries the task's exception back to the
//    submitting thread (a worker never lets one escape).  Used by
//    service/matrix_service.hpp as the job dispatch queue.
//
// Workers prefer queued tasks over joining a pending batch; a parallel_for
// still completes under a task backlog because its caller participates and
// can drain every chunk alone.  Exceptions never escape a worker in either
// mode: parallel_for rethrows the first one on the calling thread (remaining
// chunks drain), submit delivers them through the future.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mtg {

class ThreadPool {
 public:
  /// fn(worker_index, begin, end) — worker_index < num_workers() + 1; the
  /// highest index is the calling thread.  Use it to pick a per-thread
  /// workspace.
  using RangeFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Spawns `num_workers` worker threads (0 is valid: parallel_for then runs
  /// inline on the caller).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Runs fn over [0, count) in chunks of `chunk` items and blocks until
  /// every chunk finished.  The first exception thrown by fn is rethrown
  /// here (remaining chunks still run to completion).
  void parallel_for(std::size_t count, std::size_t chunk, const RangeFn& fn);

  /// Enqueues `task` to run on one worker thread; tasks dispatch in FIFO
  /// order as workers free up.  An exception thrown by the task is captured
  /// and rethrown to whoever waits on the returned future — it never
  /// escapes the worker.  Tasks still queued when the pool is destroyed run
  /// to completion first (drain, not drop).  Requires num_workers() >= 1
  /// (there is no inline fallback: a queued task must not run on the
  /// submitting thread, which may hold locks the task takes).
  std::future<void> submit(std::function<void()> task);

  /// Resolves a requested thread count: 0 → hardware concurrency (≥ 1).
  static std::size_t resolve_thread_count(std::size_t requested);

 private:
  void worker_loop();
  void run_chunks(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::mutex submit_mutex_;  // one batch at a time

  // Current batch (guarded by mutex_ except the atomic claim counter).
  // count_/chunk_/fn_ only change between batches: a new batch cannot start
  // until every participant of the previous one left run_chunks
  // (in_flight_ == 0), so participants read them without the lock.
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  const RangeFn* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t chunk_ = 1;
  std::size_t in_flight_ = 0;  ///< participants currently inside run_chunks
  std::size_t next_worker_index_ = 0;
  std::exception_ptr first_error_;
  std::atomic<std::size_t> next_{0};

  // FIFO task queue (guarded by mutex_); workers drain it before batches.
  std::deque<std::packaged_task<void()>> tasks_;
};

}  // namespace mtg
