#include "gen/generator.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <set>

#include "common/error.hpp"
#include "gen/candidates.hpp"
#include "gen/minimizer.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {
namespace {

/// Greedy coverage engine: keeps, for every fault instance, the state of
/// every (power-on value, ⇕-order assignment) scenario at the end of the
/// current test prefix, so candidate march elements are evaluated
/// incrementally (no prefix re-simulation).
class GreedyEngine {
 public:
  GreedyEngine(std::size_t memory_size, std::vector<FaultInstance> instances,
               const MarchTest& prefix)
      : n_(memory_size), instances_(std::move(instances)) {
    const std::size_t any_count = FaultSimulator::any_order_count(prefix);
    require(any_count <= 10, "too many ⇕ elements in the generation prefix");
    const std::size_t combos = std::size_t{1} << any_count;

    items_.reserve(instances_.size());
    for (const FaultInstance& inst : instances_) {
      Item item;
      item.instance = &inst;
      item.memory = std::make_unique<FaultyMemory>(n_, inst.fps);
      for (Bit power_on : {Bit::Zero, Bit::One}) {
        for (std::size_t mask = 0; mask < combos; ++mask) {
          Scenario s;
          item.memory->power_on_uniform(power_on);
          s.faulty_bits = item.memory->packed_state();
          s.armed = item.memory->packed_armed();
          s.good_bits = power_on == Bit::One ? all_ones() : 0;
          s.detected = false;
          std::size_t any_index = 0;
          for (const MarchElement& element : prefix.elements()) {
            AddressOrder order = element.order();
            if (order == AddressOrder::Any) {
              order = (mask >> any_index) & 1u ? AddressOrder::Down
                                               : AddressOrder::Up;
              ++any_index;
            }
            if (run_element(item, s, element, order, /*commit=*/true)) break;
          }
          item.scenarios.push_back(s);
        }
      }
      item.done = all_detected(item);
      items_.push_back(std::move(item));
    }
  }

  std::size_t undetected_instances() const {
    std::size_t count = 0;
    for (const Item& item : items_) count += item.done ? 0 : 1;
    return count;
  }

  /// Fault-list indices of the instances still undetected.
  std::set<std::size_t> undetected_fault_indices() const {
    std::set<std::size_t> out;
    for (const Item& item : items_) {
      if (!item.done) out.insert(item.instance->fault_index);
    }
    return out;
  }

  /// Marks every instance of the given faults as out of scope (uncoverable).
  void exclude_faults(const std::set<std::size_t>& fault_indices) {
    for (Item& item : items_) {
      if (fault_indices.count(item.instance->fault_index) > 0) item.done = true;
    }
  }

  /// Number of undetected (instance, scenario) pairs.
  std::size_t undetected_scenarios() const {
    std::size_t count = 0;
    for (const Item& item : items_) {
      if (item.done) continue;
      for (const Scenario& s : item.scenarios) count += s.detected ? 0 : 1;
    }
    return count;
  }

  /// Gain of appending the candidate: the number of (instance, scenario)
  /// pairs it newly detects.  Scenario granularity matters: an element can
  /// make progress on one power-on polarity only (the complementary
  /// polarity being handled by a later element), which instance-level
  /// counting would miss and stall on.
  ///
  /// `abort_below(g, remaining)` lets the caller prune hopeless candidates:
  /// it receives the gain so far and the number of unscanned scenarios and
  /// returns true to abandon the evaluation (result is then a lower bound).
  template <typename AbortFn>
  std::size_t gain(const MarchElement& candidate, AbortFn abort_below) {
    std::size_t g = 0;
    std::size_t remaining = undetected_scenarios();
    for (Item& item : items_) {
      if (item.done) continue;
      for (Scenario& s : item.scenarios) {
        if (s.detected) continue;
        --remaining;
        Scenario trial = s;  // plain-data copy
        if (run_element(item, trial, candidate, candidate.order(),
                        /*commit=*/false)) {
          ++g;
        } else if (abort_below(g, remaining)) {
          return g;
        }
      }
    }
    return g;
  }

  /// Appends the candidate to the tracked prefix state.
  void commit(const MarchElement& candidate) {
    for (Item& item : items_) {
      if (item.done) continue;
      for (Scenario& s : item.scenarios) {
        if (s.detected) continue;
        run_element(item, s, candidate, candidate.order(), /*commit=*/true);
      }
      item.done = all_detected(item);
    }
  }

 private:
  struct Scenario {
    std::uint64_t faulty_bits = 0;
    std::uint64_t good_bits = 0;
    std::uint32_t armed = 0;
    bool detected = false;
  };
  struct Item {
    const FaultInstance* instance = nullptr;
    std::unique_ptr<FaultyMemory> memory;  // scratch machine for this fault set
    std::vector<Scenario> scenarios;
    bool done = false;
  };

  std::uint64_t all_ones() const {
    return n_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n_) - 1);
  }

  static bool all_detected(const Item& item) {
    for (const Scenario& s : item.scenarios) {
      if (!s.detected) return false;
    }
    return true;
  }

  /// Runs one march element from the scenario state.  Returns true on
  /// detection.  With commit=true the scenario is updated (state advance or
  /// detected flag); with commit=false the scenario is left untouched
  /// (caller passes a copy).
  bool run_element(Item& item, Scenario& s, const MarchElement& element,
                   AddressOrder order, bool commit) {
    FaultyMemory& memory = *item.memory;
    memory.set_packed_state(s.faulty_bits);
    memory.set_packed_armed(s.armed);
    std::uint64_t good = s.good_bits;
    bool detected = false;

    for (std::size_t step = 0; step < n_ && !detected; ++step) {
      const std::size_t address =
          order == AddressOrder::Down ? n_ - 1 - step : step;
      for (const Op op : element.ops()) {
        if (is_write(op)) {
          const Bit value = written_value(op);
          if (value == Bit::One) {
            good |= std::uint64_t{1} << address;
          } else {
            good &= ~(std::uint64_t{1} << address);
          }
          memory.write(address, value);
        } else if (is_read(op)) {
          const Bit expected =
              (good >> address) & 1u ? Bit::One : Bit::Zero;
          if (memory.read(address) != expected) {
            detected = true;
            break;
          }
        } else {
          memory.wait();
        }
      }
    }

    if (commit) {
      if (detected) {
        s.detected = true;
      } else {
        s.faulty_bits = memory.packed_state();
        s.armed = memory.packed_armed();
        s.good_bits = good;
      }
    }
    return detected;
  }

  std::size_t n_;
  std::vector<FaultInstance> instances_;
  std::vector<Item> items_;
};

/// The greedy loop of Figure 5: append the best-scoring valid SO until the
/// engine's fault set is covered or no candidate helps.  Returns the fault
/// indices reported uncoverable (step d.i).
std::set<std::size_t> greedy_cover(GreedyEngine& engine,
                                   const std::vector<MarchElement>& pool,
                                   MarchTest& test,
                                   const GeneratorOptions& options,
                                   GenerationStats& stats) {
  auto final_value = [&]() -> std::optional<Bit> {
    std::optional<Bit> value;
    for (const MarchElement& e : test.elements()) {
      if (auto v = e.final_value()) value = v;
    }
    return value;
  };

  std::optional<Bit> current_final = final_value();
  std::set<std::size_t> uncoverable;
  std::size_t stalls_in_a_row = 0;

  while (engine.undetected_instances() > 0 &&
         stats.greedy_rounds < options.max_rounds) {
    const MarchElement* best = nullptr;
    std::size_t best_gain = 0;
    double best_score = 0.0;

    for (const MarchElement& candidate : pool) {
      if (auto entry = candidate.required_entry_value()) {
        if (!current_final.has_value() || *entry != *current_final) continue;
      }
      // Prune: abandon a candidate once even detecting every remaining
      // scenario cannot beat the best score seen so far.
      const double cost = static_cast<double>(candidate.cost());
      const std::size_t g = engine.gain(
          candidate, [&](std::size_t so_far, std::size_t remaining) {
            return static_cast<double>(so_far + remaining) / cost <= best_score;
          });
      if (g == 0) continue;
      const double score = static_cast<double>(g) / cost;
      const bool better =
          best == nullptr || score > best_score ||
          (score == best_score &&
           (g > best_gain ||
            (g == best_gain && candidate.cost() < best->cost())));
      if (better) {
        best = &candidate;
        best_gain = g;
        best_score = score;
      }
    }

    if (best == nullptr) {
      // No candidate helps from the current memory polarity.  Some faults
      // are only sensitizable from the complementary uniform value (e.g. a
      // non-transition w0 needs an all-0 memory), so bridge once by
      // flipping the polarity with a plain write element; report the faults
      // uncoverable (step d.i of Figure 5) only when bridging stalls too.
      if (stalls_in_a_row < 2 && current_final.has_value()) {
        const MarchElement bridge(AddressOrder::Up,
                                  {make_write(flip(*current_final))});
        test.append(bridge);
        engine.commit(bridge);
        current_final = flip(*current_final);
        ++stalls_in_a_row;
        ++stats.greedy_rounds;
        stats.log.push_back("stalled; bridging polarity with " +
                            bridge.to_string());
        continue;
      }
      uncoverable = engine.undetected_fault_indices();
      engine.exclude_faults(uncoverable);
      stats.log.push_back("stalled twice; reporting " +
                          std::to_string(uncoverable.size()) +
                          " faults uncoverable");
      break;
    }

    stalls_in_a_row = 0;
    test.append(*best);
    engine.commit(*best);
    if (auto v = best->final_value()) current_final = v;
    ++stats.greedy_rounds;
    stats.log.push_back("appended " + best->to_string() + " (gain " +
                        std::to_string(best_gain) + ", " +
                        std::to_string(engine.undetected_instances()) +
                        " instances left)");
  }
  return uncoverable;
}

}  // namespace

GenerationResult generate_march_test(const FaultList& list,
                                     const GeneratorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  GenerationResult result;
  GenerationStats& stats = result.stats;
  const auto lap = [&](const char* phase) {
    stats.log.push_back(
        std::string(phase) + " done at t=" +
        std::to_string(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count()) +
        " s");
  };

  const std::vector<MarchElement> pool =
      enumerate_march_elements(options.max_element_length);
  stats.candidate_pool = pool.size();

  // Seed: the canonical initialization element ⇕(w0).
  MarchTest test("generated", {MarchElement(AddressOrder::Any, {Op::W0})});

  // -- Phase A: greedy cover on the working memory ----------------------
  std::vector<FaultInstance> working =
      instantiate_all(list, options.working_memory_size);
  stats.working_instances = working.size();
  std::set<std::size_t> uncoverable;
  {
    GreedyEngine engine(options.working_memory_size, working, test);
    stats.log.push_back("phase A: " + std::to_string(working.size()) +
                        " instances at n=" +
                        std::to_string(options.working_memory_size));
    auto stalled = greedy_cover(engine, pool, test, options, stats);
    uncoverable.insert(stalled.begin(), stalled.end());
  }
  lap("phase A (greedy)");

  // -- Phase B: certification loop (CEGIS) ------------------------------
  const FaultSimulator cert_sim(
      SimulatorOptions{options.certify_memory_size, true, 10});
  const std::vector<FaultInstance> cert_instances =
      instantiate_all(list, options.certify_memory_size);
  stats.certify_instances = cert_instances.size();

  auto certify_and_extend = [&]() {
    for (std::size_t iter = 0; iter < options.max_certify_iterations; ++iter) {
      std::vector<FaultInstance> missed;
      for (const FaultInstance& instance : cert_instances) {
        if (uncoverable.count(instance.fault_index) > 0) continue;
        if (!cert_sim.detects(test, instance)) missed.push_back(instance);
      }
      if (missed.empty()) return;
      ++stats.certify_iterations;
      stats.log.push_back("certification found " +
                          std::to_string(missed.size()) +
                          " escaped instances at n=" +
                          std::to_string(options.certify_memory_size));
      GreedyEngine engine(options.certify_memory_size, std::move(missed), test);
      auto stalled = greedy_cover(engine, pool, test, options, stats);
      uncoverable.insert(stalled.begin(), stalled.end());
    }
  };
  certify_and_extend();
  lap("phase B (certification)");

  // -- Phase C: redundancy elimination ----------------------------------
  stats.complexity_before_minimize = test.complexity();
  if (options.minimize) {
    const FaultSimulator min_sim(
        SimulatorOptions{options.minimize_memory_size, true, 10});
    std::vector<FaultInstance> min_instances;
    for (FaultInstance& instance :
         instantiate_all(list, options.minimize_memory_size)) {
      if (uncoverable.count(instance.fault_index) == 0) {
        min_instances.push_back(std::move(instance));
      }
    }
    // Rejected removals dominate the minimizer's cost and bail out at the
    // first surviving instance; scan the binding constraints (the largest,
    // last-enumerated faults) first.
    std::stable_sort(min_instances.begin(), min_instances.end(),
                     [](const FaultInstance& x, const FaultInstance& y) {
                       return x.fault_index > y.fault_index;
                     });
    test = minimize_test(min_sim, test, min_instances, &stats.log);
    lap("phase C (minimizer)");
    certify_and_extend();  // a removal may only matter at certify size
    lap("phase B2 (re-certification)");
  }

  // -- Final report ------------------------------------------------------
  result.certification = evaluate_coverage(cert_sim, test, list);
  result.full_coverage = true;
  for (const CoverageEntry& entry : result.certification.entries) {
    if (uncoverable.count(entry.fault_index) > 0) continue;
    if (!entry.covered) result.full_coverage = false;
  }
  for (std::size_t index : uncoverable) {
    result.uncoverable.push_back(fault_name(list, index));
  }
  test.set_name("Generated(" + list.name + ")");
  result.test = std::move(test);
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace mtg
