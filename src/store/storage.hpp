// Storage — the injectable byte-I/O boundary of the persistence layer.
//
// Every byte the sweep store reads or writes goes through this interface, so
// a test double can observe, fail or tear any individual operation
// (fault_injection.hpp) and prove that the engine layered on top never
// returns a wrong result and never wedges on a damaged store — CalicoDB's
// storage-interface / fake-storage split (SNIPPETS.md §3) is the model.
//
// The interface is whole-file granular on purpose: the sweep store's records
// are small (a serialized CoverageReport) and are always replaced atomically
// as a unit (write-temp + sync + rename), so partial-file cursors would only
// widen the surface the fault harness has to sweep.  The six operations —
// open_dir / read / write / sync / rename / remove — are exactly the failure
// points the harness enumerates.
//
// Error reporting is by status value, not exception: a failed or damaged
// store must degrade the caller gracefully (recompute, retry, fall back to
// store-less operation), never unwind it.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace mtg {

/// Outcome class of a storage operation.
enum class StoreRc : unsigned char {
  Ok,
  NotFound,  ///< the named file does not exist (read/rename/remove source)
  IOError,   ///< anything else: permission, disk, injected fault, ...
};

/// Status of one storage operation; `message` is non-empty on failures.
struct StoreStatus {
  StoreRc rc = StoreRc::Ok;
  std::string message;

  bool ok() const noexcept { return rc == StoreRc::Ok; }
  bool not_found() const noexcept { return rc == StoreRc::NotFound; }

  static StoreStatus okay() { return {}; }
  static StoreStatus not_found_status(std::string message) {
    return {StoreRc::NotFound, std::move(message)};
  }
  static StoreStatus io_error(std::string message) {
    return {StoreRc::IOError, std::move(message)};
  }
};

/// Minimal virtual file-system interface: the only way store/ touches bytes.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Ensures the directory `path` exists (parents included, mkdir -p).
  virtual StoreStatus open_dir(const std::string& path) = 0;

  /// Reads the whole file into `out` (replacing its content).  A file that
  /// vanishes or shrinks mid-read surfaces as IOError or a short `out` —
  /// callers must treat any unexpected length as corruption, not trust it.
  virtual StoreStatus read(const std::string& path, std::string& out) = 0;

  /// Creates/truncates `path` and writes `data`.  Not atomic and not
  /// durable: a crash (or injected tear) can leave any prefix on disk.
  /// Durability needs sync(); atomicity needs the temp + rename protocol.
  virtual StoreStatus write(const std::string& path, std::string_view data) = 0;

  /// Flushes `path`'s content to stable storage (fsync).
  virtual StoreStatus sync(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual StoreStatus rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path`; NotFound when it does not exist.
  virtual StoreStatus remove(const std::string& path) = 0;
};

/// The real thing: POSIX files.  Stateless — safe to share across threads
/// (callers serialize per-path access; the sweep store locks around ops).
class PosixStorage : public Storage {
 public:
  StoreStatus open_dir(const std::string& path) override;
  StoreStatus read(const std::string& path, std::string& out) override;
  StoreStatus write(const std::string& path, std::string_view data) override;
  StoreStatus sync(const std::string& path) override;
  StoreStatus rename(const std::string& from, const std::string& to) override;
  StoreStatus remove(const std::string& path) override;
};

/// Hermetic in-memory storage for tests: a path → content map with POSIX
/// rename/remove semantics.  files() is exposed so tests can corrupt a
/// record in place (flip bytes, truncate) exactly where a torn write or a
/// bit rot would.
class InMemoryStorage : public Storage {
 public:
  StoreStatus open_dir(const std::string& path) override;
  StoreStatus read(const std::string& path, std::string& out) override;
  StoreStatus write(const std::string& path, std::string_view data) override;
  StoreStatus sync(const std::string& path) override;
  StoreStatus rename(const std::string& from, const std::string& to) override;
  StoreStatus remove(const std::string& path) override;

  std::map<std::string, std::string>& files() noexcept { return files_; }
  const std::map<std::string, std::string>& files() const noexcept {
    return files_;
  }

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace mtg
