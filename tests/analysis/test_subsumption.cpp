// Subsumption prover tests: closed-form universe specs round-trip and
// materialize to the exact built-in catalogs; known subsumption
// relationships among the classic tests hold with valid witnesses; the
// configuration-key widening does not move any prover verdict.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/subsumption.hpp"
#include "common/error.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/coverage.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

TEST(FaultUniverse, SpecRoundTripsThroughParse) {
  for (const char* spec :
       {"list1", "list2", "simple", "retention", "simple+retention",
        "simple+decoder[0,12)", "linked1+linked2+linked3+linkedrt",
        "decoder[3,7)"}) {
    const FaultUniverse universe = FaultUniverse::parse(spec);
    EXPECT_EQ(universe.spec(), spec);
    const FaultUniverse again = FaultUniverse::parse(universe.spec());
    EXPECT_EQ(stable_hash(again.materialize()),
              stable_hash(universe.materialize()))
        << spec;
  }
}

TEST(FaultUniverse, BareDecoderIsTheFullBuiltinRange) {
  const FaultUniverse universe = FaultUniverse::parse("decoder");
  EXPECT_EQ(universe.spec(), "decoder[0,12)");
  const FaultList materialized = universe.materialize();
  const FaultList builtin = decoder_fault_list();
  ASSERT_EQ(materialized.size(), builtin.size());
  EXPECT_EQ(stable_hash(materialized), stable_hash(builtin));
}

TEST(FaultUniverse, FamiliesMatchTheBuiltinLists) {
  EXPECT_EQ(stable_hash(FaultUniverse::parse("list1").materialize()),
            stable_hash(fault_list_1()));
  EXPECT_EQ(stable_hash(FaultUniverse::parse("list2").materialize()),
            stable_hash(fault_list_2()));
  EXPECT_EQ(stable_hash(FaultUniverse::parse("simple").materialize()),
            stable_hash(standard_simple_static_faults()));
  EXPECT_EQ(stable_hash(FaultUniverse::parse("retention").materialize()),
            stable_hash(retention_fault_list()));
}

TEST(FaultUniverse, ConcreteUniverseHasNoSpec) {
  const FaultUniverse universe = FaultUniverse::of(fault_list_1());
  EXPECT_EQ(universe.spec(), "");
  EXPECT_EQ(stable_hash(universe.materialize()), stable_hash(fault_list_1()));
}

TEST(FaultUniverse, MalformedSpecsThrow) {
  EXPECT_THROW(FaultUniverse::parse(""), Error);
  EXPECT_THROW(FaultUniverse::parse("simple+"), Error);
  EXPECT_THROW(FaultUniverse::parse("nosuchfamily"), Error);
  EXPECT_THROW(FaultUniverse::parse("decoder[5,3)"), Error);
  EXPECT_THROW(FaultUniverse::parse("decoder[0,99)"), Error);
}

TEST(Subsumption, MarchSsSubsumesMatsPlusOverSimpleStatics) {
  // March SS detects the whole simple static space, so it subsumes
  // anything over that universe.
  const SubsumptionResult result = prove_subsumption(
      march_ss(), mats_plus(), FaultUniverse::parse("simple"), 6);
  EXPECT_EQ(result.verdict, SubsumptionVerdict::Subsumes);
  EXPECT_EQ(result.detected_by_a, result.faults);
  EXPECT_FALSE(result.witness.has_value());
}

TEST(Subsumption, MatsPlusDoesNotSubsumeMarchSsAndTheWitnessIsReal) {
  const FaultList universe =
      FaultUniverse::parse("simple").materialize();
  const SubsumptionResult result =
      prove_subsumption(mats_plus(), march_ss(), universe, 6);
  ASSERT_EQ(result.verdict, SubsumptionVerdict::NotSubsumes);
  ASSERT_TRUE(result.witness.has_value());
  const SubsumptionWitness& witness = *result.witness;
  ASSERT_LT(witness.fault_index, universe.size());
  EXPECT_FALSE(witness.fault_name.empty());
  EXPECT_FALSE(witness.escape.empty());
  ASSERT_TRUE(witness.detection.has_value());

  // The witness must agree with the packed engine: March SS covers the
  // fault, MATS+ does not.
  SimulatorOptions options;
  options.memory_size = 6;
  const FaultSimulator simulator(options);
  const CoverageReport by_a =
      evaluate_coverage(simulator, mats_plus(), universe, 0);
  const CoverageReport by_b =
      evaluate_coverage(simulator, march_ss(), universe, 0);
  EXPECT_TRUE(by_b.entries[witness.fault_index].covered);
  EXPECT_FALSE(by_a.entries[witness.fault_index].covered);
}

TEST(Subsumption, EveryTestSubsumesItselfOverEveryBuiltinFamily) {
  for (const char* spec : {"list1", "list2", "simple", "retention",
                           "decoder[0,4)"}) {
    const FaultUniverse universe = FaultUniverse::parse(spec);
    for (const MarchTest& test : all_catalog_tests()) {
      const SubsumptionResult result =
          prove_subsumption(test, test, universe, 6);
      EXPECT_EQ(result.verdict, SubsumptionVerdict::Subsumes)
          << test.name() << " over " << spec << ": " << result.reason;
      EXPECT_EQ(result.detected_by_a, result.detected_by_b);
    }
  }
}

TEST(Subsumption, WideningDoesNotMoveProverVerdicts) {
  AnalysisOptions widened;
  widened.max_states = 1;
  const FaultUniverse universe = FaultUniverse::parse("simple+retention");
  const MarchTest pairs[][2] = {{march_ss(), mats_plus()},
                                {mats_plus(), march_ss()},
                                {march_g(), march_c_minus()},
                                {march_c_minus(), march_g()}};
  for (const auto& pair : pairs) {
    const SubsumptionResult exact =
        prove_subsumption(pair[0], pair[1], universe, 6);
    const SubsumptionResult walked =
        prove_subsumption(pair[0], pair[1], universe, 6, widened);
    EXPECT_EQ(exact.verdict, walked.verdict)
        << pair[0].name() << " vs " << pair[1].name();
    EXPECT_EQ(exact.detected_by_a, walked.detected_by_a);
    EXPECT_EQ(exact.detected_by_b, walked.detected_by_b);
  }
}

}  // namespace
}  // namespace mtg
