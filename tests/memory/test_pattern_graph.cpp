#include "memory/pattern_graph.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(PatternGraph, PgcfMatchesFigure4) {
  const PatternGraph pgcf = make_pgcf();
  EXPECT_EQ(pgcf.model_cells(), 2u);
  EXPECT_EQ(pgcf.num_vertices(), 4u);
  ASSERT_EQ(pgcf.faulty_edges().size(), 2u);

  const FaultyEdge& tp1 = pgcf.faulty_edges()[0];
  const FaultyEdge& tp2 = pgcf.faulty_edges()[1];
  // Figure 4's bold edges: 00 --w1[i],r0[j]--> 11 and 11 --w0[i],r1[j]--> 00.
  EXPECT_EQ(tp1.from.to_string(), "00");
  EXPECT_EQ(tp1.to.to_string(), "11");
  EXPECT_EQ(tp1.label(), "w1[0],r0[1]");
  EXPECT_EQ(tp2.from.to_string(), "11");
  EXPECT_EQ(tp2.to.to_string(), "00");
  EXPECT_EQ(tp2.label(), "w0[0],r1[1]");
  // Figure 3: TP1's target is TP2's source (I2 = Fv1), same pair.
  EXPECT_EQ(tp1.to, tp2.from);
  EXPECT_EQ(tp1.pair_id, tp2.pair_id);
  EXPECT_EQ(tp1.tp_index, 1);
  EXPECT_EQ(tp2.tp_index, 2);
}

TEST(PatternGraph, RequiredModelCellsIsTheLargestFault) {
  FaultList list;
  list.name = "mixed";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  EXPECT_EQ(PatternGraph::required_model_cells(list), 1u);
  list.simple.push_back(
      SimpleFault::coupled(FaultPrimitive::cfst(Bit::Zero, Bit::One), true));
  EXPECT_EQ(PatternGraph::required_model_cells(list), 2u);
  list.linked.push_back(disturb_coupling_linked_fault());
  EXPECT_EQ(PatternGraph::required_model_cells(list), 2u);
}

TEST(PatternGraph, VertexCountFollowsThePaperFormula) {
  // |Vp| = 2^max(#f-cells) — Section 4.
  FaultList list;
  list.name = "one simple fault";
  list.simple.push_back(
      SimpleFault::coupled(FaultPrimitive::cfst(Bit::Zero, Bit::One), true));
  EXPECT_EQ(PatternGraph(list).num_vertices(), 4u);
  EXPECT_EQ(PatternGraph(list, 3).num_vertices(), 8u);
  EXPECT_THROW(PatternGraph(list, 1), Error);  // too small for a 2-cell fault
}

TEST(PatternGraph, SimpleFaultEmbeddingCount) {
  // A single-cell fault on a 2-cell model: 2 cell choices × 2 backgrounds.
  FaultList list;
  list.name = "tf";
  list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(Bit::Zero)));
  const PatternGraph pg(list, 2);
  EXPECT_EQ(pg.faulty_edges().size(), 4u);
}

TEST(PatternGraph, LinkedPairsShareIds) {
  const PatternGraph pgcf = make_pgcf();
  std::map<std::size_t, int> pairs;
  for (const FaultyEdge& e : pgcf.faulty_edges()) ++pairs[e.pair_id];
  for (const auto& [id, count] : pairs) {
    EXPECT_EQ(count, 2) << "pair " << id;
  }
}

TEST(PatternGraph, DotMarksFaultyEdgesBold) {
  const std::string dot = make_pgcf().to_dot("PGCF");
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  EXPECT_NE(dot.find("w1[0],r0[1]"), std::string::npos);
}

TEST(PatternGraph, LinkedChainInvariantAcrossEmbeddings) {
  // On a 3-cell model the 2-cell linked CF embeds at 3 cell pairs, each with
  // a free background cell: 3 × 2 pairs of faulty edges.
  FaultList list;
  list.name = "linked CF";
  list.linked.push_back(disturb_coupling_linked_fault());
  const PatternGraph pg(list, 3);
  EXPECT_EQ(pg.faulty_edges().size(), 2u * 3u * 2u);
  std::map<std::size_t, std::vector<const FaultyEdge*>> by_pair;
  for (const FaultyEdge& e : pg.faulty_edges()) {
    by_pair[e.pair_id].push_back(&e);
  }
  for (const auto& [id, edges] : by_pair) {
    ASSERT_EQ(edges.size(), 2u) << "pair " << id;
    EXPECT_EQ(edges[0]->to, edges[1]->from);  // I2 = Fv1
    EXPECT_EQ(edges[0]->victim, edges[1]->victim);
  }
}

TEST(PatternGraph, DisturbCouplingFactoryMatchesEquation12) {
  const LinkedFault lf = disturb_coupling_linked_fault();
  EXPECT_EQ(lf.fp1().notation(), "<0w1;0/1/->");
  EXPECT_EQ(lf.fp2().notation(), "<1w0;1/0/->");
  EXPECT_TRUE(lf.fully_masking());
}

}  // namespace
}  // namespace mtg
