// Two- and three-valued logic values used throughout the library.
//
// The paper (Definition 1) works with the state alphabet C = {0, 1, -} where
// '-' is a don't-care.  We model concrete stored values with mtg::Bit and
// pattern values (which may be don't-care) with mtg::Tri.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/error.hpp"

namespace mtg {

/// Number of set bits in a 64-bit word — the one popcount shared by
/// PackedBits and the packed engine's lane words.  The builtin-free
/// implementation is exposed separately so the non-GNU branch can be
/// unit-tested on every toolchain.
inline std::size_t popcount64_portable(std::uint64_t word) noexcept {
  std::size_t count = 0;
  while (word != 0) {
    word &= word - 1;
    ++count;
  }
  return count;
}

inline std::size_t popcount64(std::uint64_t word) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<std::size_t>(__builtin_popcountll(word));
#else
  return popcount64_portable(word);
#endif
}

/// A concrete memory cell value.
enum class Bit : std::uint8_t { Zero = 0, One = 1 };

/// Returns the complementary value (0 <-> 1).
constexpr Bit flip(Bit b) noexcept {
  return b == Bit::Zero ? Bit::One : Bit::Zero;
}

/// Converts a Bit to its integer value (0 or 1).
constexpr int to_int(Bit b) noexcept { return b == Bit::One ? 1 : 0; }

/// Converts 0/1 to a Bit; throws mtg::Error on any other value.
inline Bit bit_from_int(int v) {
  require(v == 0 || v == 1, "bit value must be 0 or 1, got " + std::to_string(v));
  return v == 1 ? Bit::One : Bit::Zero;
}

/// Converts a Bit to '0' or '1'.
constexpr char to_char(Bit b) noexcept { return b == Bit::One ? '1' : '0'; }

/// Parses '0' or '1' into a Bit; throws mtg::Error otherwise.
inline Bit bit_from_char(char c) {
  require(c == '0' || c == '1',
          std::string("bit character must be '0' or '1', got '") + c + "'");
  return c == '1' ? Bit::One : Bit::Zero;
}

std::ostream& operator<<(std::ostream& os, Bit b);

/// A three-valued logic value: 0, 1 or don't-care ('-' in the paper).
enum class Tri : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Lifts a concrete Bit into a Tri.
constexpr Tri to_tri(Bit b) noexcept {
  return b == Bit::One ? Tri::One : Tri::Zero;
}

/// True when `t` is a concrete (non don't-care) value.
constexpr bool is_concrete(Tri t) noexcept { return t != Tri::X; }

/// Extracts the concrete Bit from a Tri; throws on don't-care.
inline Bit to_bit(Tri t) {
  require(is_concrete(t), "cannot convert don't-care Tri to Bit");
  return t == Tri::One ? Bit::One : Bit::Zero;
}

/// True when `t` matches the concrete value `b` (don't-care matches both).
constexpr bool matches(Tri t, Bit b) noexcept {
  return t == Tri::X || (t == Tri::One) == (b == Bit::One);
}

/// Converts a Tri to '0', '1' or '-'.
constexpr char to_char(Tri t) noexcept {
  return t == Tri::One ? '1' : (t == Tri::Zero ? '0' : '-');
}

/// Parses '0', '1' or '-' into a Tri; throws mtg::Error otherwise.
inline Tri tri_from_char(char c) {
  if (c == '-') return Tri::X;
  return to_tri(bit_from_char(c));
}

std::ostream& operator<<(std::ostream& os, Tri t);

}  // namespace mtg
