// Fault simulator throughput (the substrate of the paper's Section 6
// validation, ref. [13]): march execution speed, detection cost per fault
// instance, scaling in the simulated memory size, and the packed engine
// (sim/packed_engine.hpp) against the seed's scalar path.
#include <benchmark/benchmark.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"

namespace {

using namespace mtg;

SimulatorOptions scalar_options(std::size_t n) {
  SimulatorOptions options;
  options.memory_size = n;
  options.use_packed_engine = false;  // the seed's scalar reference path
  return options;
}

SimulatorOptions packed_options(std::size_t n, std::size_t threads = 1) {
  SimulatorOptions options;
  options.memory_size = n;
  options.use_packed_engine = true;
  options.coverage_threads = threads;
  return options;
}

FaultInstance linked_cfds_instance(std::size_t n) {
  FaultInstance inst;
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), 0, n - 1));
  inst.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One), 0, n - 1));
  return inst;
}

void BM_MarchSlSingleInstance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(scalar_options(n));
  const MarchTest test = march_sl();
  const FaultInstance inst = linked_cfds_instance(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.detects(test, inst));
  }
  // Operations applied per detects() call: 41n ops × cells × 4 scenarios.
  state.counters["ops/call"] = static_cast<double>(41 * n * 4);
}
BENCHMARK(BM_MarchSlSingleInstance)->RangeMultiplier(2)->Range(4, 64);

void BM_MarchSlSingleInstancePacked(benchmark::State& state) {
  // The packed twin of BM_MarchSlSingleInstance: all 4 scenarios in one lane
  // block, 2 involved cells + no background sweep — cost independent of n.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(packed_options(n));
  const MarchTest test = march_sl();
  const FaultInstance inst = linked_cfds_instance(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.detects(test, inst));
  }
}
BENCHMARK(BM_MarchSlSingleInstancePacked)->RangeMultiplier(2)->Range(4, 64);

void BM_FaultyMemoryOpThroughput(benchmark::State& state) {
  FaultyMemory memory(8, {BoundFp(FaultPrimitive::cfds(Bit::Zero, SenseOp::W1,
                                                       Bit::Zero),
                                  0, 7),
                          BoundFp::at(FaultPrimitive::sf(Bit::One), 3)});
  memory.power_on_uniform(Bit::Zero);
  std::size_t address = 0;
  for (auto _ : state) {
    memory.write(address & 7, (address & 8) ? Bit::One : Bit::Zero);
    benchmark::DoNotOptimize(memory.read(address & 7));
    ++address;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FaultyMemoryOpThroughput);

void BM_CoverageFaultListTwo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(scalar_options(n));
  const FaultList list = fault_list_2();
  const MarchTest test = march_abl1();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
}
BENCHMARK(BM_CoverageFaultListTwo)->DenseRange(4, 8, 2)->Unit(benchmark::kMillisecond);

void BM_CoverageFaultListTwoPacked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(packed_options(n));
  const FaultList list = fault_list_2();
  const MarchTest test = march_abl1();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
}
BENCHMARK(BM_CoverageFaultListTwoPacked)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);

void BM_CoverageFaultListOneMarchSl(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(scalar_options(n));
  const FaultList list = fault_list_1();
  const MarchTest test = march_sl();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
  state.counters["instances"] =
      static_cast<double>(instantiate_all(list, n).size());
}
BENCHMARK(BM_CoverageFaultListOneMarchSl)
    ->DenseRange(4, 6, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// -- Large-n coverage: the acceptance benchmark -----------------------------
// evaluate_coverage at n = 64, March SL × Fault List #2.  The packed run
// must be ≥ 5× faster than the seed scalar path (it is orders of magnitude
// faster: 64 cells collapse to ≤ 3 involved cells and all scenarios advance
// in one lane block; `threads` adds core scaling on multi-core hosts).

void BM_CoverageLargeNScalar(benchmark::State& state) {
  const FaultSimulator simulator(scalar_options(64));
  const FaultList list = fault_list_2();
  const MarchTest test = march_sl();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
}
BENCHMARK(BM_CoverageLargeNScalar)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_CoverageLargeNPacked(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const FaultSimulator simulator(packed_options(64, threads));
  const FaultList list = fault_list_2();
  const MarchTest test = march_sl();
  for (auto _ : state) {
    const CoverageReport report = evaluate_coverage(simulator, test, list);
    benchmark::DoNotOptimize(report.entries.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_CoverageLargeNPacked)
    ->Arg(1)
    ->Arg(0)  // 0 → hardware concurrency
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
