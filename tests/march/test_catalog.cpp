#include "march/catalog.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace mtg {
namespace {

struct PublishedComplexity {
  const char* name;
  std::size_t complexity;
};

class CatalogComplexity
    : public ::testing::TestWithParam<PublishedComplexity> {};

TEST_P(CatalogComplexity, MatchesPublishedValue) {
  for (const MarchTest& test : all_catalog_tests()) {
    if (test.name() == GetParam().name) {
      EXPECT_EQ(test.complexity(), GetParam().complexity) << test.to_string();
      return;
    }
  }
  FAIL() << "catalog has no test named " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    PublishedValues, CatalogComplexity,
    ::testing::Values(PublishedComplexity{"MATS+", 5},
                      PublishedComplexity{"March X", 6},
                      PublishedComplexity{"March Y", 8},
                      PublishedComplexity{"March C-", 10},
                      PublishedComplexity{"March A", 15},
                      PublishedComplexity{"March B", 17},
                      PublishedComplexity{"March U", 13},
                      PublishedComplexity{"March G", 25},
                      PublishedComplexity{"PMOVI", 13},
                      PublishedComplexity{"March LR", 14},
                      PublishedComplexity{"March LA", 22},
                      PublishedComplexity{"March SS", 22},
                      PublishedComplexity{"March SL", 41},
                      PublishedComplexity{"March LF1", 11},
                      PublishedComplexity{"March ABL", 37},
                      PublishedComplexity{"March RABL", 35},
                      PublishedComplexity{"March ABL1", 9}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class CatalogValidity : public ::testing::TestWithParam<MarchTest> {};

TEST_P(CatalogValidity, ConsistentAndValidOnFaultFreeMemory) {
  const MarchTest& test = GetParam();
  EXPECT_EQ(test.consistency_violation(), "") << test.to_string();
  EXPECT_EQ(FaultSimulator::validity_violation(test), "") << test.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogTests, CatalogValidity,
    ::testing::ValuesIn(all_catalog_tests()),
    [](const ::testing::TestParamInfo<MarchTest>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Catalog, TableOneTestsAreTranscribedVerbatim) {
  EXPECT_EQ(march_abl().to_string(/*ascii=*/true),
            "{c(w0); ^(r0,r0,w0,r0,w1,w1,r1); ^(r1,r1,w1,r1,w0,w0,r0); "
            "v(r0,w1); v(r1,w0); v(r0,r0,w0,r0,w1,w1,r1); "
            "v(r1,r1,w1,r1,w0,w0,r0); ^(r0,w1); ^(r1,w0)}");
  EXPECT_EQ(march_rabl().to_string(/*ascii=*/true),
            "{c(w0); ^(r0,r0,w0,r0); ^(r0,w1,r1,r1,w1,r1,w0,r0); ^(r0,w1); "
            "v(r1,r1,w1,r1,w0,r0,w0,r0); ^(w1); "
            "^(r1,r1,w1,r1,w0,r0,r0,w0,r0,w1,r1)}");
  EXPECT_EQ(march_abl1().to_string(/*ascii=*/true),
            "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0)}");
}

TEST(Catalog, LinkedSubsetIsContainedInFullCatalog) {
  const auto all = all_catalog_tests();
  for (const MarchTest& linked : linked_fault_catalog_tests()) {
    bool found = false;
    for (const MarchTest& test : all) {
      if (test == linked) found = true;
    }
    EXPECT_TRUE(found) << linked.name();
  }
}

TEST(Catalog, AlHarbiGuptaLengthConstant) {
  EXPECT_EQ(kAlHarbiGupta43nComplexity, 43u);
}

}  // namespace
}  // namespace mtg
