#include "analysis/subsumption.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace mtg {
namespace {

constexpr std::size_t kDecoderDefaultBits = 12;  // decoder_fault_list()

/// The five decoder records decoder_fault_list() emits per address line, in
/// its exact order — decoder[0,12) materializes identically to the built-in.
void append_decoder_range(FaultList& out, std::size_t bit_begin,
                          std::size_t bit_end) {
  for (std::size_t bit = bit_begin; bit < bit_end; ++bit) {
    out.decoder.push_back(
        DecoderFault{DecoderFaultClass::NoAccess, bit, Bit::Zero});
    out.decoder.push_back(
        DecoderFault{DecoderFaultClass::WrongCell, bit, Bit::Zero});
    out.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleCells, bit, Bit::Zero});
    out.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleCells, bit, Bit::One});
    out.decoder.push_back(
        DecoderFault{DecoderFaultClass::MultipleAddresses, bit, Bit::Zero});
  }
}

FaultList family_list(const std::string& family) {
  if (family == "simple") return standard_simple_static_faults();
  if (family == "retention") return retention_fault_list();
  if (family == "list1") return fault_list_1();
  if (family == "list2") return fault_list_2();
  FaultList list;
  if (family == "linked1") {
    list.linked = enumerate_single_cell_linked_faults();
  } else if (family == "linked2") {
    list.linked = enumerate_two_cell_linked_faults();
  } else if (family == "linked3") {
    list.linked = enumerate_three_cell_linked_faults();
  } else if (family == "linkedrt") {
    list.linked = enumerate_retention_linked_faults();
  } else {
    throw Error("fault universe: unknown family '" + family +
                "' (expected simple, retention, linked1, linked2, linked3, "
                "linkedrt, list1, list2, or decoder[a,b))");
  }
  return list;
}

FaultUniverse::Term parse_term(std::string_view term_text) {
  const std::string text(term_text);
  FaultUniverse::Term term;
  if (text.rfind("decoder", 0) == 0) {
    term.kind = FaultUniverse::Term::Kind::DecoderRange;
    std::string_view rest = std::string_view(text).substr(7);
    if (rest.empty()) {
      term.bit_begin = 0;
      term.bit_end = kDecoderDefaultBits;
      return term;
    }
    // decoder[a,b): a half-open address-line range.
    if (rest.front() != '[' || rest.back() != ')') {
      throw Error("fault universe: malformed decoder range '" + text +
                  "' (expected decoder[a,b))");
    }
    rest = rest.substr(1, rest.size() - 2);
    const std::size_t comma = rest.find(',');
    if (comma == std::string_view::npos) {
      throw Error("fault universe: malformed decoder range '" + text +
                  "' (expected decoder[a,b))");
    }
    term.bit_begin = parse_count(std::string(rest.substr(0, comma)),
                                 "decoder range begin");
    term.bit_end = parse_count(std::string(rest.substr(comma + 1)),
                               "decoder range end");
    if (term.bit_begin >= term.bit_end || term.bit_end > 62) {
      throw Error("fault universe: decoder range [" +
                  std::to_string(term.bit_begin) + "," +
                  std::to_string(term.bit_end) +
                  ") must be non-empty with end <= 62");
    }
    return term;
  }
  term.kind = FaultUniverse::Term::Kind::Family;
  term.family = text;
  family_list(text);  // validates the keyword
  return term;
}

}  // namespace

FaultUniverse FaultUniverse::parse(std::string_view spec) {
  FaultUniverse universe;
  std::size_t begin = 0;
  if (spec.empty()) {
    throw Error("fault universe: empty spec");
  }
  while (begin <= spec.size()) {
    const std::size_t plus = spec.find('+', begin);
    const std::size_t end = plus == std::string_view::npos ? spec.size() : plus;
    if (end == begin) {
      throw Error("fault universe: empty term in spec '" + std::string(spec) +
                  "'");
    }
    universe.terms.push_back(parse_term(spec.substr(begin, end - begin)));
    if (plus == std::string_view::npos) break;
    begin = plus + 1;
  }
  return universe;
}

FaultUniverse FaultUniverse::of(FaultList list) {
  FaultUniverse universe;
  Term term;
  term.kind = Term::Kind::Concrete;
  term.list = std::move(list);
  universe.terms.push_back(std::move(term));
  return universe;
}

std::string FaultUniverse::spec() const {
  std::string out;
  for (const Term& term : terms) {
    if (term.kind == Term::Kind::Concrete) return std::string();
    if (!out.empty()) out += '+';
    if (term.kind == Term::Kind::Family) {
      out += term.family;
    } else {
      out += "decoder[" + std::to_string(term.bit_begin) + "," +
             std::to_string(term.bit_end) + ")";
    }
  }
  return out;
}

FaultList FaultUniverse::materialize() const {
  FaultList result;
  for (const Term& term : terms) {
    FaultList part;
    switch (term.kind) {
      case Term::Kind::Family:
        part = family_list(term.family);
        break;
      case Term::Kind::DecoderRange:
        append_decoder_range(part, term.bit_begin, term.bit_end);
        break;
      case Term::Kind::Concrete:
        part = term.list;
        break;
    }
    result.simple.insert(result.simple.end(), part.simple.begin(),
                         part.simple.end());
    result.linked.insert(result.linked.end(), part.linked.begin(),
                         part.linked.end());
    result.decoder.insert(result.decoder.end(), part.decoder.begin(),
                          part.decoder.end());
  }
  const std::string canonical = spec();
  if (!canonical.empty()) {
    result.name = canonical;
  } else if (terms.size() == 1 &&
             terms[0].kind == Term::Kind::Concrete) {
    result.name = terms[0].list.name;
  } else {
    result.name = "universe";
  }
  return result;
}

std::string to_string(SubsumptionVerdict verdict) {
  switch (verdict) {
    case SubsumptionVerdict::Subsumes:
      return "subsumes";
    case SubsumptionVerdict::NotSubsumes:
      return "does not subsume";
    case SubsumptionVerdict::Unknown:
      return "unknown";
  }
  return "?";
}

SubsumptionResult prove_subsumption(const MarchTest& a, const MarchTest& b,
                                    const FaultList& universe, std::size_t n,
                                    const AnalysisOptions& options) {
  const StaticCoverage cov_a = analyze_coverage(a, universe, n, options);
  const StaticCoverage cov_b = analyze_coverage(b, universe, n, options);

  SubsumptionResult result;
  result.verdict = SubsumptionVerdict::Subsumes;
  result.faults = cov_a.entries.size();
  result.detected_by_a = cov_a.detected;
  result.detected_by_b = cov_b.detected;

  for (std::size_t i = 0; i < cov_a.entries.size(); ++i) {
    const StaticCoverageEntry& ea = cov_a.entries[i];
    const StaticCoverageEntry& eb = cov_b.entries[i];
    if (eb.verdict == StaticVerdict::Detected &&
        ea.verdict == StaticVerdict::NotDetected) {
      // A concrete counterexample decides the verdict outright — it beats
      // any Unknown found elsewhere in the universe.
      SubsumptionWitness witness;
      witness.fault_index = i;
      witness.fault_name = eb.fault_name;
      witness.escape = ea.reason;
      witness.detection = eb.witness;
      result.verdict = SubsumptionVerdict::NotSubsumes;
      result.witness = std::move(witness);
      result.reason.clear();
      return result;
    }
    const bool needed_unknown =
        (eb.verdict == StaticVerdict::Detected &&
         ea.verdict == StaticVerdict::Unknown) ||
        (eb.verdict == StaticVerdict::Unknown &&
         ea.verdict != StaticVerdict::Detected);
    if (needed_unknown && result.verdict == SubsumptionVerdict::Subsumes) {
      result.verdict = SubsumptionVerdict::Unknown;
      std::ostringstream reason;
      reason << eb.fault_name << ": "
             << (eb.verdict == StaticVerdict::Unknown ? eb.reason : ea.reason);
      result.reason = reason.str();
    }
  }
  return result;
}

SubsumptionResult prove_subsumption(const MarchTest& a, const MarchTest& b,
                                    const FaultUniverse& universe,
                                    std::size_t n,
                                    const AnalysisOptions& options) {
  return prove_subsumption(a, b, universe.materialize(), n, options);
}

}  // namespace mtg
