#include "march/march_test.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"

namespace mtg {

MarchTest::MarchTest(std::string name, std::vector<MarchElement> elements)
    : name_(std::move(name)), elements_(std::move(elements)) {}

std::size_t MarchTest::complexity() const noexcept {
  std::size_t total = 0;
  for (const auto& e : elements_) total += e.cost();
  return total;
}

std::string MarchTest::complexity_label() const {
  return std::to_string(complexity()) + "n";
}

bool MarchTest::contains_wait() const noexcept {
  for (const MarchElement& e : elements_) {
    for (const Op op : e.ops()) {
      if (is_wait(op)) return true;
    }
  }
  return false;
}

std::string MarchTest::consistency_violation() const {
  std::optional<Bit> value;  // uniform memory value between elements; nullopt = unknown
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const MarchElement& e = elements_[i];
    if (auto needed = e.required_entry_value()) {
      if (!value.has_value()) {
        return "element #" + std::to_string(i) + " " + e.to_string() +
               " reads an expected value from an unknown memory state";
      }
      if (*needed != *value) {
        return "element #" + std::to_string(i) + " " + e.to_string() +
               " expects entry value " + std::string(1, to_char(*needed)) +
               " but the memory holds " + std::string(1, to_char(*value));
      }
    }
    if (auto out = e.final_value()) value = out;
    // A write-free element leaves the previous value in place.
  }
  return {};
}

std::string MarchTest::to_string(bool ascii) const {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (i > 0) out << "; ";
    out << elements_[i].to_string(ascii);
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const MarchTest& mt) {
  return os << mt.to_string();
}

std::uint64_t stable_hash(const MarchTest& test) {
  return stable_hash64(test.to_canonical_string());
}

}  // namespace mtg
