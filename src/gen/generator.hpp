// The automatic march test generator (Section 5 of the paper).
//
// The published algorithm (Figure 5) greedily assembles valid Sequences of
// Operations — one per march element — until every faulty edge of the
// pattern graph is covered, reporting faults that cannot be covered.  This
// implementation realizes the same greedy loop with the fault simulator as
// the coverage oracle (the paper itself certifies all generated tests with
// its fault simulator [13]):
//
//   1. Seed the test with the canonical initialization element ⇕(w0).
//   2. Greedy rounds: among all valid SOs (gen/candidates.hpp) that are
//      compatible with the memory state the test leaves behind, append the
//      march element that newly covers the most fault instances per
//      operation; repeat until the working fault set is covered or no
//      candidate helps (the latter faults are reported uncoverable —
//      step d.i of Figure 5).
//   3. Certification (CEGIS loop): re-simulate on a larger memory with every
//      address layout instantiated; feed escaped instances back to the
//      greedy loop.
//   4. Redundancy elimination (gen/minimizer.hpp) — the paper's
//      "non-redundant March Tests" claim — followed by a final
//      certification pass.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/march_test.hpp"
#include "sim/coverage.hpp"

namespace mtg {

struct GeneratorOptions {
  /// Memory size used by the greedy working phase.  Small is fast; escapes
  /// are caught by certification.
  std::size_t working_memory_size = 3;
  /// Memory size used by the certification passes (and reported coverage).
  /// Layout behaviour only depends on relative address order, which n=6
  /// already exercises at every boundary; raise for extra assurance.
  std::size_t certify_memory_size = 6;
  /// Memory size used by the redundancy minimizer.
  std::size_t minimize_memory_size = 4;
  /// Longest candidate march element enumerated.  6 suffices for every
  /// static linked fault list we target (the published 7-op ABL elements
  /// decompose into shorter SOs); raise for exotic user-defined faults.
  std::size_t max_element_length = 6;
  /// Greedy round bound (safety net; generation converges much earlier).
  std::size_t max_rounds = 64;
  /// Certification/extension iterations bound.
  std::size_t max_certify_iterations = 6;
  /// Run the redundancy minimizer.
  bool minimize = true;
  /// Require detection under both power-on contents (all-0 and all-1), like
  /// SimulatorOptions::both_power_on_states; applies to the greedy engine
  /// and the certification/minimization simulators alike.
  bool both_power_on_states = true;
  /// Threads for the greedy engine's candidate gain scan (candidates are
  /// independent; each round spreads them over a bounded pool).  0 picks the
  /// hardware concurrency, 1 runs the scan on the calling thread.  The
  /// generated test is identical for every thread count.
  std::size_t gain_threads = 0;
  /// Threads for the persistent certification engine (building the packed
  /// prefix state and replaying appended suffixes spreads the surviving
  /// instances over a bounded pool).  Same 0/1 convention as gain_threads;
  /// the generated test is identical for every thread count.
  std::size_t certify_threads = 0;
  /// Per-fault layout bound for every instantiation (working, certification,
  /// minimization and the final report); 0 = full enumeration.  Lets the
  /// certify size scale past the O(n²) two-cell layout blow-up — the memory
  /// sizes above pass through unclamped, so certify_memory_size may exceed
  /// 64 freely (the simulators have no n ceiling).
  std::size_t max_instances_per_fault = 0;
  /// Discharge certification statically where the symbolic analyzer
  /// (analysis/static_analyzer.hpp) proves the phase-A test detects a fault:
  /// its certify-size instances never enter the persistent engine, skipping
  /// their full-prefix simulation.  Sound by the analyzer's three-way-locked
  /// contract (definite verdicts agree with both simulation engines); cell
  /// faults stay covered across the minimizer because their detection
  /// depends only on relative cell order (the minimizer re-checks every
  /// instance at its own size), while decoder faults — whose detection is
  /// n-dependent — are only deferred when no minimizer runs.  A post-
  /// minimize static re-check backstops the argument: any deferred fault
  /// whose verdict is no longer Detected is re-certified the ordinary way.
  /// The generated test is identical with the prefilter on or off.
  bool static_prefilter = true;
};

struct GenerationStats {
  std::size_t candidate_pool = 0;
  std::size_t greedy_rounds = 0;
  std::size_t working_instances = 0;
  std::size_t certify_instances = 0;
  std::size_t certify_iterations = 0;
  std::size_t complexity_before_minimize = 0;
  /// Certify-size instances dropped permanently by the persistent
  /// certification engine (detected under every scenario; fault dropping).
  std::size_t instances_dropped = 0;
  /// Faults whose certification the static prefilter discharged (symbolic
  /// Detected verdict on the phase-A test) and the certify-size instances
  /// that therefore never entered the persistent engine.
  std::size_t static_resolved_faults = 0;
  std::size_t static_skipped_instances = 0;
  /// Wall time spent in the symbolic analyzer (prefilter + post-minimize
  /// re-check); part of the cert-prep/B2 windows below.
  double static_seconds = 0.0;
  /// Minimizer trials attempted and (instance, element) suffix replays they
  /// cost — the checkpointed minimizer's work unit (a from-scratch rescan
  /// would cost ~ trials × instances × test length replays).
  std::size_t minimize_trials = 0;
  std::size_t minimize_element_replays = 0;
  double elapsed_seconds = 0.0;
  // Per-phase wall times (see the phase walkthrough in gen/generator.hpp's
  // file comment and README "Generator pipeline").  cert_prep_seconds is
  // the one-time construction of the persistent certification state — the
  // full-prefix simulation every certification scheme pays exactly once;
  // the B/B2 rounds themselves only replay appended suffixes and restored
  // checkpoints.
  double phase_a_seconds = 0.0;
  double cert_prep_seconds = 0.0;
  double phase_b_seconds = 0.0;
  double phase_c_seconds = 0.0;
  double phase_b2_seconds = 0.0;
  std::vector<std::string> log;  ///< human-readable generation trace
};

struct GenerationResult {
  MarchTest test;
  bool full_coverage = false;            ///< over the coverable faults
  std::vector<std::string> uncoverable;  ///< faults reported per Fig. 5 d.i
  CoverageReport certification;          ///< final coverage at certify size
  GenerationStats stats;
};

/// Generates a march test covering `list`.  Deterministic for a given list
/// and options.
GenerationResult generate_march_test(const FaultList& list,
                                     const GeneratorOptions& options = {});

}  // namespace mtg
