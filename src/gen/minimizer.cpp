#include "gen/minimizer.hpp"

#include <functional>

#include "sim/prefix_sim.hpp"

namespace mtg {
namespace {

void note(std::vector<std::string>* log, const std::string& line) {
  if (log != nullptr) log->push_back(line);
}

/// Verdict of one removal attempt: the trial test (element `edit` dropped,
/// or swapped for `replacement`) keeps full coverage.
using TrialFn = std::function<bool(const MarchTest& trial, std::size_t edit,
                                   const MarchElement* replacement)>;

/// Shared greedy removal loop — the one place that defines the trial order
/// (whole elements in position order, then single ops), so the incremental
/// and rescan paths cannot drift apart.  `on_accept` re-syncs path-specific
/// state after a kept removal.
MarchTest minimize_loop(const MarchTest& test, std::vector<std::string>* log,
                        const TrialFn& try_trial,
                        const std::function<void(const MarchTest&)>& on_accept) {
  MarchTest current = test;
  bool changed = true;
  while (changed) {
    changed = false;

    // Try dropping whole elements, in position order.
    for (std::size_t i = 0; i < current.elements().size(); ++i) {
      if (current.elements().size() == 1) break;
      MarchTest trial = current;
      trial.elements().erase(trial.elements().begin() + i);
      if (try_trial(trial, i, nullptr)) {
        note(log, "dropped element " + current.elements()[i].to_string());
        current = std::move(trial);
        on_accept(current);
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // Try dropping single operations.
    for (std::size_t i = 0; i < current.elements().size() && !changed; ++i) {
      const MarchElement& element = current.elements()[i];
      if (element.ops().size() == 1) continue;  // handled by element removal
      for (std::size_t j = 0; j < element.ops().size(); ++j) {
        std::vector<Op> ops = element.ops();
        const Op removed = ops[j];
        ops.erase(ops.begin() + j);
        const MarchElement replacement(element.order(), std::move(ops));
        MarchTest trial = current;
        trial.elements()[i] = replacement;
        if (try_trial(trial, i, &replacement)) {
          note(log, "dropped op " + to_string(removed) + " from " +
                        element.to_string());
          current = std::move(trial);
          on_accept(current);
          changed = true;
          break;
        }
      }
    }
  }
  return current;
}

}  // namespace

bool covers_all(const FaultSimulator& simulator, const MarchTest& test,
                const std::vector<FaultInstance>& instances) {
  if (!FaultSimulator::validity_violation(test).empty()) return false;
  return simulator.detects_all(test, instances);
}

MarchTest minimize_test_rescan(const FaultSimulator& simulator,
                               const MarchTest& test,
                               const std::vector<FaultInstance>& instances,
                               std::vector<std::string>* log,
                               MinimizeStats* stats) {
  return minimize_loop(
      test, log,
      [&](const MarchTest& trial, std::size_t, const MarchElement*) {
        if (stats != nullptr) {
          ++stats->trials;
          ++stats->full_rescans;
        }
        return covers_all(simulator, trial, instances);
      },
      [](const MarchTest&) {});
}

MarchTest minimize_test(const FaultSimulator& simulator, const MarchTest& test,
                        const std::vector<FaultInstance>& instances,
                        std::vector<std::string>* log, MinimizeStats* stats) {
  bool incremental = simulator.options().use_packed_engine;
  for (const FaultInstance& instance : instances) {
    incremental = incremental && PackedFaultSim::supports(instance);
  }
  if (!incremental) {
    return minimize_test_rescan(simulator, test, instances, log, stats);
  }

  // One full simulation of every instance, with per-element checkpoints;
  // every trial below replays only the suffix after its edit point.
  PrefixEngine engine(
      simulator.options().memory_size, &instances, test,
      PrefixEngine::Options{simulator.options().both_power_on_states,
                            /*record_checkpoints=*/true,
                            simulator.options().max_any_order_elements});
  engine.reset_stats();  // report trial/rewind work, not the one-time build
  const MarchTest minimized = minimize_loop(
      test, log,
      // Identical accept/reject decisions to the rescan path: covers_all()
      // rejects invalid trials before simulating, and trial_covers()
      // reproduces detects_all() verdicts (detection replayed from the
      // checkpoint before the edit is exact — the prefix below the edit is
      // untouched).
      [&](const MarchTest& trial, std::size_t edit,
          const MarchElement* replacement) {
        if (stats != nullptr) ++stats->trials;
        if (!FaultSimulator::validity_violation(trial).empty()) return false;
        return engine.trial_covers(edit, replacement);
      },
      [&](const MarchTest& current) {
        engine.advance(current);  // checkpoint rewind + suffix re-record
      });
  if (stats != nullptr) {
    stats->element_replays += engine.stats().element_replays;
  }
  return minimized;
}

}  // namespace mtg
