#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), /*chunk=*/7,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) ++hits[i];
                    });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, WorkerIndicesStayInRange) {
  ThreadPool pool(2);
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(64, 1, [&](std::size_t worker, std::size_t, std::size_t) {
    if (worker > pool.num_workers()) out_of_range = true;
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::size_t sum = 0;  // no synchronisation needed: inline execution
  pool.parallel_for(10, 3, [&](std::size_t, std::size_t begin,
                               std::size_t end) { sum += end - begin; });
  EXPECT_EQ(sum, 10u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(101, 4, [&](std::size_t, std::size_t begin,
                                  std::size_t end) { covered += end - begin; });
    ASSERT_EQ(covered.load(), 101u) << "round " << round;
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t, std::size_t begin, std::size_t) {
                          if (begin == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(32, 4, [&](std::size_t, std::size_t begin,
                               std::size_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 32u);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5u);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);
}

TEST(ThreadPool, SubmitRunsTasksAndFuturesComplete) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { ++ran; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SubmitDeliversExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("task boom"); });
  auto good = pool.submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task poisons only its own future; the pool keeps serving
  // tasks AND batches.
  EXPECT_NO_THROW(good.get());
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(32, 4, [&](std::size_t, std::size_t begin,
                               std::size_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 32u);
}

TEST(ThreadPool, SubmitDispatchesFifoOnOneWorker) {
  // One worker serializes the queue, exposing the dispatch order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i) << "position " << i;
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Destruction is drain-then-join, not drop: every accepted task runs.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, SubmitRequiresWorkers) {
  // The inline (0-worker) configuration has nobody to run a deferred task.
  ThreadPool pool(0);
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  // Tasks and chunk batches share the workers; neither starves the other.
  ThreadPool pool(2);
  std::atomic<int> tasks_ran{0};
  std::vector<std::future<void>> futures;
  for (int round = 0; round < 10; ++round) {
    futures.push_back(pool.submit([&] { ++tasks_ran; }));
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(64, 4, [&](std::size_t, std::size_t begin,
                                 std::size_t end) { covered += end - begin; });
    ASSERT_EQ(covered.load(), 64u) << "round " << round;
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(tasks_ran.load(), 10);
}

}  // namespace
}  // namespace mtg
