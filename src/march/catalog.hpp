// Catalog of published march tests.
//
// Each factory returns the test exactly as published (complexity in the
// function name comment).  Provenance:
//
//  * MATS+, March X, March Y, March C-, March A, March B, March U:
//    classic tests, see van de Goor, "Testing Semiconductor Memories".
//  * March LR [8], March LA [7]: van de Goor et al., tests for (a subset of)
//    linked faults.
//  * March SS: Hamdioui et al., test for all static simple (unlinked) faults.
//  * March SL [9][10]: Hamdioui et al., hand-made 41n test for all static
//    linked faults — the paper's strongest published baseline.
//  * March LF1 [16]: 11n test for single-cell linked faults.  The exact
//    sequence is not printed in the reproduced paper; this is a
//    reconstruction validated by the fault simulator against Fault List #2
//    (see DESIGN.md, "Substitutions").
//  * March ABL (37n), March RABL (35n), March ABL1 (9n): the tests generated
//    by the paper, transcribed verbatim from Table 1.
#pragma once

#include <vector>

#include "march/march_test.hpp"

namespace mtg {

MarchTest mats_plus();      ///< 5n  {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}
MarchTest march_x();        ///< 6n
MarchTest march_y();        ///< 8n
MarchTest march_c_minus();  ///< 10n
MarchTest march_a();        ///< 15n
MarchTest march_b();        ///< 17n
MarchTest march_u();        ///< 13n
MarchTest march_g();        ///< 23n  — classic test incl. retention delays (t)
MarchTest pmovi();          ///< 13n  — pause-free MOVI variant
MarchTest march_lr();       ///< 14n  — linked faults (restricted set)
MarchTest march_la();       ///< 22n  — linked faults (restricted set)
MarchTest march_ss();       ///< 22n  — all static simple (unlinked) faults
MarchTest march_sl();       ///< 41n  — all static linked faults (baseline)
MarchTest march_lf1();      ///< 11n  — single-cell linked faults (reconstruction)
MarchTest march_abl();      ///< 37n  — paper Table 1, Fault List #1
MarchTest march_rabl();     ///< 35n  — paper Table 1, Fault List #1
MarchTest march_abl1();     ///< 9n   — paper Table 1, Fault List #2

/// Complexity (per-cell operation count) of the 43n automatically generated
/// march test of Al-Harbi & Gupta [11].  Only the length is used by the
/// paper's Table 1 comparison; the sequence itself was not published there.
inline constexpr std::size_t kAlHarbiGupta43nComplexity = 43;

/// Every catalog test above, for sweeps/parameterized tests.
std::vector<MarchTest> all_catalog_tests();

/// The subset of catalog tests that target linked faults.
std::vector<MarchTest> linked_fault_catalog_tests();

/// The subset of catalog tests containing wait (`t`) operations — the only
/// ones able to sensitize data-retention faults.
std::vector<MarchTest> retention_catalog_tests();

}  // namespace mtg
