// Figure 2 reproduction: the fault-free memory model G0 (the 2-cell Mealy
// automaton as a labeled graph), plus construction/evaluation throughput
// and its scaling in the number of model cells (|V| = 2^k).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "memory/memory_graph.hpp"

namespace {

void BM_BuildMemoryGraph(benchmark::State& state) {
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mtg::MemoryGraph graph(cells);
    benchmark::DoNotOptimize(graph.edges().data());
  }
  state.counters["vertices"] =
      static_cast<double>(std::size_t{1} << cells);
  state.counters["edges"] =
      static_cast<double>((std::size_t{1} << cells) * (3 * cells + 1));
}
BENCHMARK(BM_BuildMemoryGraph)->DenseRange(1, 10);

void BM_AutomatonDelta(benchmark::State& state) {
  const mtg::MealyAutomaton automaton(3);
  const auto alphabet = automaton.input_alphabet();
  std::size_t i = 0;
  mtg::SmallState q(3);
  for (auto _ : state) {
    q = automaton.delta(q, alphabet[i % alphabet.size()]);
    benchmark::DoNotOptimize(q);
    ++i;
  }
}
BENCHMARK(BM_AutomatonDelta);

void BM_G0DotExport(benchmark::State& state) {
  const mtg::MemoryGraph g0 = mtg::make_g0();
  for (auto _ : state) {
    const std::string dot = g0.to_dot("G0");
    benchmark::DoNotOptimize(dot.data());
  }
}
BENCHMARK(BM_G0DotExport);

}  // namespace

int main(int argc, char** argv) {
  // Print the Figure 2 structure before benchmarking.
  const mtg::MemoryGraph g0 = mtg::make_g0();
  std::printf("Figure 2 — G0, the 2-cell fault-free memory model: %zu states, "
              "%zu labeled edges\n",
              g0.num_vertices(), g0.edges().size());
  for (const mtg::GraphEdge& e : g0.edges_from(mtg::SmallState::from_string("00"))) {
    std::printf("  00 -> %s  [%s]\n", e.to.to_string().c_str(),
                e.label().c_str());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
