#include "march/parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "march/catalog.hpp"

namespace mtg {
namespace {

TEST(Parser, ParsesAsciiNotation) {
  const MarchTest t = parse_march_test("{c(w0); ^(r0,w1); v(r1,w0)}");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.elements()[0].order(), AddressOrder::Any);
  EXPECT_EQ(t.elements()[1].order(), AddressOrder::Up);
  EXPECT_EQ(t.elements()[2].order(), AddressOrder::Down);
  EXPECT_EQ(t.elements()[1].ops(), (std::vector<Op>{Op::R0, Op::W1}));
}

TEST(Parser, ParsesUnicodeArrows) {
  const MarchTest t = parse_march_test("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}");
  EXPECT_EQ(t.elements()[0].order(), AddressOrder::Any);
  EXPECT_EQ(t.elements()[1].order(), AddressOrder::Up);
  EXPECT_EQ(t.elements()[2].order(), AddressOrder::Down);
}

TEST(Parser, BracesAndSemicolonsAreOptional) {
  const MarchTest braced = parse_march_test("{c(w0); ^(r0)}");
  const MarchTest bare = parse_march_test("c(w0) ^(r0)");
  EXPECT_EQ(braced, bare);
}

TEST(Parser, WhitespaceTolerant) {
  const MarchTest t = parse_march_test("  c ( w0 ,  r0 )   ^(r0, w1)  ");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.elements()[0].ops(), (std::vector<Op>{Op::W0, Op::R0}));
}

TEST(Parser, ParsesWaitAndBareRead) {
  const MarchTest t = parse_march_test("{c(w0); c(t,r0); c(r)}");
  EXPECT_EQ(t.elements()[1].ops(), (std::vector<Op>{Op::T, Op::R0}));
  EXPECT_EQ(t.elements()[2].ops(), (std::vector<Op>{Op::R}));
}

TEST(Parser, SingleElement) {
  const MarchElement e = parse_march_element("⇑(r0,w1,r1)");
  EXPECT_EQ(e.order(), AddressOrder::Up);
  EXPECT_EQ(e.cost(), 3u);
  EXPECT_THROW(parse_march_element("^(r0) v(r1)"), Error);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_march_test(""), Error);
  EXPECT_THROW(parse_march_test("{}"), Error);
  EXPECT_THROW(parse_march_test("^()"), Error);
  EXPECT_THROW(parse_march_test("^(r0"), Error);
  EXPECT_THROW(parse_march_test("(r0)"), Error);
  EXPECT_THROW(parse_march_test("^(r2)"), Error);
  EXPECT_THROW(parse_march_test("^(r0,)"), Error);
  EXPECT_THROW(parse_march_test("{c(w0)} trailing"), Error);
}

TEST(Parser, ErrorMessagesCarryOffset) {
  try {
    parse_march_test("^(r0,xx)");
    FAIL() << "expected mtg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

class CatalogRoundTrip : public ::testing::TestWithParam<MarchTest> {};

TEST_P(CatalogRoundTrip, UnicodeNotationRoundTrips) {
  const MarchTest& test = GetParam();
  EXPECT_EQ(parse_march_test(test.to_string()), test);
}

TEST_P(CatalogRoundTrip, AsciiNotationRoundTrips) {
  const MarchTest& test = GetParam();
  EXPECT_EQ(parse_march_test(test.to_string(/*ascii=*/true)), test);
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogTests, CatalogRoundTrip, ::testing::ValuesIn(all_catalog_tests()),
    [](const ::testing::TestParamInfo<MarchTest>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mtg
