// Parser for the textual march notation.
//
// Accepted grammar (whitespace tolerant, ';' between elements optional):
//
//   test    := '{'? element ( ';'? element )* '}'?
//   element := order '(' op ( ',' op )* ')'
//   order   := '^' | 'v' | 'c' | '⇑' | '⇓' | '⇕'
//   op      := 'w0' | 'w1' | 'r0' | 'r1' | 'r' | 't'
//
// Examples:
//   "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}"
//   "c(w0) ^(r0,w1) v(r1,w0)"
//
// Malformed input raises mtg::ParseError (common/text_position.hpp) whose
// message carries the byte offset, the 1-based line:column and an excerpt of
// the offending line.  When the notation is embedded in a larger document
// (a march-suite file, src/format/suite_text.hpp), pass the position of its
// first byte as `origin` so diagnostics come out in whole-document
// coordinates.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/text_position.hpp"
#include "march/march_test.hpp"

namespace mtg {

/// Parses a march test from its textual notation.  Throws mtg::ParseError
/// with a line:column-annotated message on malformed input.  When
/// `element_positions` is non-null it receives the position of each
/// element's address-order marker (in whole-document coordinates via
/// `origin`) — the anchor the catalog linter points its per-element
/// diagnostics at.
MarchTest parse_march_test(std::string_view text, std::string name = {},
                           TextPosition origin = {},
                           std::vector<TextPosition>* element_positions =
                               nullptr);

/// Parses a single march element, e.g. "⇑(r0,w1)".
MarchElement parse_march_element(std::string_view text,
                                 TextPosition origin = {});

}  // namespace mtg
