// Memory-size sweep throughput (sim/sweep.hpp): coverage of one march test
// across n = 64 … 65536 in one call.  The packed engine's per-instance cost
// is independent of n (cell collapsing), so sweep cost tracks the per-fault
// layout cap, not the memory size — the counters make that visible.
//
// Two front ends in one binary:
//
//  * default — the google-benchmark suite below (BM_*), as before;
//  * --json / --quick / --cap — the canonical cold-vs-warm sweep-store
//    measurement the CI bench-smoke job records as BENCH_sweep.json
//    (compared against bench/BENCH_sweep_baseline.json by
//    scripts/compare_bench_sweep.py).  Cold evaluates every point and
//    persists it (store/sweep_store.hpp); warm must load every point back —
//    the run *fails* if the warm pass evaluated anything, which is the
//    resume-from-store acceptance bar, or if warm reports differ from cold.
//
// Usage: bench_memory_sweep [--quick] [--json <path|->] [--cap <k>]
//        bench_memory_sweep [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_store.hpp"

namespace {

using namespace mtg;

const std::vector<std::size_t>& sweep_sizes() {
  static const std::vector<std::size_t> sizes = {64, 256, 4096, 65536};
  return sizes;
}

void BM_SweepMarchSlFaultListTwo(benchmark::State& state) {
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  SweepOptions options;
  options.max_instances_per_fault = static_cast<std::size_t>(state.range(0));
  options.threads = static_cast<std::size_t>(state.range(1));
  std::size_t instances = 0;
  for (auto _ : state) {
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, sweep_sizes(), options);
    instances = 0;
    for (const SweepPoint& point : points) {
      instances += point.report.instances_total();
    }
    benchmark::DoNotOptimize(points);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(instances * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepMarchSlFaultListTwo)
    ->ArgNames({"cap", "threads"})
    ->Args({128, 1})
    ->Args({128, 0})   // 0 = hardware concurrency
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Unit(benchmark::kMillisecond);

void BM_SingleSizeLargeN(benchmark::State& state) {
  // One n = 65536 point in isolation: the multi-word end of the sweep.
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  SweepOptions options;
  options.max_instances_per_fault = 256;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweep_coverage(test, list, {65536}, options));
  }
}
BENCHMARK(BM_SingleSizeLargeN)->Unit(benchmark::kMillisecond);

// --- canonical cold/warm sweep-store measurement ----------------------------

struct PointTiming {
  std::size_t n = 0;
  double cold_ms = 0;
  double warm_ms = 0;
};

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void write_json(std::FILE* out, const MarchTest& test, const FaultList& list,
                std::size_t cap, const std::vector<PointTiming>& timings,
                double cold_ms, double warm_ms, std::size_t instances,
                std::size_t evaluations_cold, std::size_t evaluations_warm) {
  const double evals_per_sec =
      cold_ms > 0 ? static_cast<double>(instances) / (cold_ms / 1000.0) : 0;
  std::fprintf(out,
               "{\n  \"bench\": \"memory_sweep_store\",\n"
               "  \"test\": \"%s\", \"list\": \"%s\", \"cap\": %zu,\n"
               "  \"cold_ms\": %.3f, \"warm_ms\": %.3f,\n"
               "  \"evaluations_cold\": %zu, \"evaluations_warm\": %zu,\n"
               "  \"instances\": %zu, \"instance_evals_per_sec_cold\": %.1f,\n"
               "  \"points\": [\n",
               test.name().c_str(), list.name.c_str(), cap, cold_ms, warm_ms,
               evaluations_cold, evaluations_warm, instances, evals_per_sec);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(out,
                 "    {\"n\": %zu, \"cold_ms\": %.3f, \"warm_ms\": %.3f}%s\n",
                 timings[i].n, timings[i].cold_ms, timings[i].warm_ms,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int run_store_bench(bool quick, std::size_t cap, const char* json_path) {
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{64, 256, 4096}
            : std::vector<std::size_t>{64, 256, 4096, 65536};

#if defined(_WIN32)
  const std::string tag = "bench";
#else
  const std::string tag = std::to_string(::getpid());
#endif
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("mtg_bench_sweep_" + tag);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // a cold store must start empty

  PosixStorage storage;
  SweepStore store(storage, dir.string());
  if (!store.open()) {
    std::fprintf(stderr, "error: cannot open bench store at %s\n",
                 dir.string().c_str());
    return 1;
  }
  SweepOptions options;
  options.max_instances_per_fault = cap;
  options.threads = 1;  // per-point timings need a quiet machine, not a pool
  options.store = &store;

  std::vector<PointTiming> timings;
  std::size_t instances = 0, evaluations_cold = 0, evaluations_warm = 0;
  std::string cold_grid, warm_grid;
  double cold_ms = 0, warm_ms = 0;

  for (const std::size_t n : sizes) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, {n}, options);
    PointTiming timing;
    timing.n = n;
    timing.cold_ms = elapsed_ms_since(t0);
    cold_ms += timing.cold_ms;
    timings.push_back(timing);
    instances += points[0].report.instances_total();
    evaluations_cold += sweep_points_evaluated(points);
    cold_grid += points[0].report.summary();
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<SweepPoint> points =
        sweep_coverage(test, list, {sizes[i]}, options);
    timings[i].warm_ms = elapsed_ms_since(t0);
    warm_ms += timings[i].warm_ms;
    evaluations_warm += sweep_points_evaluated(points);
    warm_grid += points[0].report.summary();
  }
  std::filesystem::remove_all(dir, ec);

  std::printf("%s vs %s (per-fault cap %zu, store-backed)\n",
              test.name().c_str(), list.name.c_str(), cap);
  std::printf("  cold: %8.3f ms  (%zu points evaluated, %zu instances)\n",
              cold_ms, evaluations_cold, instances);
  std::printf("  warm: %8.3f ms  (%zu points evaluated)\n", warm_ms,
              evaluations_warm);

  // The acceptance bar for resume-from-store: a warm re-run over a
  // previously persisted grid performs ZERO coverage evaluations and
  // reproduces the grid byte for byte.
  if (evaluations_warm != 0) {
    std::fprintf(stderr,
                 "error: warm re-run evaluated %zu points — resume from "
                 "store is broken\n",
                 evaluations_warm);
    return 1;
  }
  if (warm_grid != cold_grid) {
    std::fprintf(stderr,
                 "error: warm grid differs from cold grid — store round trip "
                 "is not byte-identical\n");
    return 1;
  }

  if (json_path != nullptr) {
    if (std::strcmp(json_path, "-") == 0) {
      write_json(stdout, test, list, cap, timings, cold_ms, warm_ms, instances,
                 evaluations_cold, evaluations_warm);
    } else {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
      }
      write_json(out, test, list, cap, timings, cold_ms, warm_ms, instances,
                 evaluations_cold, evaluations_warm);
      std::fclose(out);
      std::printf("JSON summary written to %s\n", json_path);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool quick = false, store_mode = false;
  std::size_t cap = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      store_mode = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      store_mode = true;
    } else if (std::strcmp(argv[i], "--cap") == 0 && i + 1 < argc) {
      try {
        cap = mtg::parse_count(argv[++i], "--cap");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      store_mode = true;
    }
  }
  if (store_mode) return run_store_bench(quick, cap, json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
