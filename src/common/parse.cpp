#include "common/parse.hpp"

#include <limits>

#include "common/error.hpp"

namespace mtg {

std::size_t parse_count(const std::string& text, const std::string& what) {
  const bool all_digits =
      !text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos;
  if (!all_digits) throw Error(what + ": bad number '" + text + "'");
  // std::stoull, not std::stoul: unsigned long is 32-bit on LLP64 platforms,
  // where stoul would spuriously reject large-but-valid std::size_t counts.
  // The explicit range check covers the opposite layout (32-bit size_t).
  unsigned long long value = 0;
  try {
    value = std::stoull(text);
  } catch (const std::exception&) {  // out of range
    throw Error(what + ": number out of range '" + text + "'");
  }
  if (value > std::numeric_limits<std::size_t>::max()) {
    throw Error(what + ": number out of range '" + text + "'");
  }
  return static_cast<std::size_t>(value);
}

std::size_t parse_memory_size(const std::string& text,
                              const std::string& what) {
  const std::size_t n = parse_count(text, what);
  if (n < 3) {
    throw Error(what + ": a simulated memory needs at least 3 cells, got '" +
                text + "'");
  }
  return n;
}

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& what) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    sizes.push_back(parse_count(item, what));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return sizes;
}

}  // namespace mtg
