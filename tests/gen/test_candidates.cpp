#include "gen/candidates.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mtg {
namespace {

TEST(Candidates, AllElementsWithinLengthBound) {
  for (const MarchElement& e : enumerate_march_elements(5)) {
    EXPECT_GE(e.cost(), 1u);
    EXPECT_LE(e.cost(), 5u);
  }
}

TEST(Candidates, BothOrdersPresent) {
  std::size_t up = 0, down = 0;
  for (const MarchElement& e : enumerate_march_elements(3)) {
    if (e.order() == AddressOrder::Up) ++up;
    if (e.order() == AddressOrder::Down) ++down;
    EXPECT_NE(e.order(), AddressOrder::Any);
  }
  EXPECT_EQ(up, down);
  EXPECT_GT(up, 0u);
}

TEST(Candidates, NoTripleRuns) {
  for (const MarchElement& e : enumerate_march_elements(6)) {
    const auto& ops = e.ops();
    for (std::size_t i = 2; i < ops.size(); ++i) {
      EXPECT_FALSE(ops[i] == ops[i - 1] && ops[i] == ops[i - 2])
          << e.to_string();
    }
  }
}

TEST(Candidates, ReadsAreValueConsistent) {
  // Within an element, reads after the first write must match the value the
  // preceding writes established (no internally-contradictory elements).
  for (const MarchElement& e : enumerate_march_elements(6)) {
    std::optional<Bit> value;
    for (const Op op : e.ops()) {
      if (is_write(op)) {
        value = written_value(op);
      } else if (is_read(op) && value.has_value()) {
        ASSERT_TRUE(expected_value(op).has_value()) << e.to_string();
        EXPECT_EQ(*expected_value(op), *value) << e.to_string();
      }
    }
  }
}

TEST(Candidates, ReadsBeforeFirstWriteShareOneEntryValue) {
  for (const MarchElement& e : enumerate_march_elements(6)) {
    std::optional<Bit> entry;
    for (const Op op : e.ops()) {
      if (is_write(op)) break;
      if (is_read(op)) {
        ASSERT_TRUE(expected_value(op).has_value());
        if (!entry.has_value()) {
          entry = expected_value(op);
        } else {
          EXPECT_EQ(*entry, *expected_value(op)) << e.to_string();
        }
      }
    }
  }
}

TEST(Candidates, NoDuplicates) {
  std::set<std::pair<int, std::vector<Op>>> seen;
  for (const MarchElement& e : enumerate_march_elements(5)) {
    EXPECT_TRUE(
        seen.insert({static_cast<int>(e.order()), e.ops()}).second)
        << e.to_string();
  }
}

TEST(Candidates, ContainsThePublishedElementShapes) {
  // The pool must contain the building blocks of March SS / ABL-style tests.
  std::set<std::string> shapes;
  for (const MarchElement& e : enumerate_march_elements(7)) {
    if (e.order() == AddressOrder::Up) shapes.insert(to_string(e.ops()));
  }
  EXPECT_TRUE(shapes.count("r0,w1"));
  EXPECT_TRUE(shapes.count("r0,r0,w0,r0,w1"));            // March SS element
  EXPECT_TRUE(shapes.count("r0,r0,w0,r0,w1,w1,r1"));      // March ABL element
  EXPECT_TRUE(shapes.count("w0"));
  EXPECT_FALSE(shapes.count("r0,r1"));  // contradictory reads are impossible
}

TEST(Candidates, PoolGrowsMonotonicallyWithLength) {
  EXPECT_LT(enumerate_march_elements(2).size(),
            enumerate_march_elements(3).size());
  EXPECT_LT(enumerate_march_elements(3).size(),
            enumerate_march_elements(5).size());
}

TEST(Candidates, WaitOpsOnlyWhenRequested) {
  for (const MarchElement& e : enumerate_march_elements(4)) {
    for (const Op op : e.ops()) EXPECT_FALSE(is_wait(op)) << e.to_string();
  }
  std::set<std::string> shapes;
  for (const MarchElement& e :
       enumerate_march_elements(4, /*include_wait=*/true)) {
    // Consecutive waits are pruned (decay is idempotent).
    for (std::size_t i = 1; i < e.ops().size(); ++i) {
      EXPECT_FALSE(is_wait(e.ops()[i]) && is_wait(e.ops()[i - 1]))
          << e.to_string();
    }
    if (e.order() == AddressOrder::Up) shapes.insert(to_string(e.ops()));
  }
  EXPECT_TRUE(shapes.count("t,r0"));        // the DRF detector
  EXPECT_TRUE(shapes.count("w1,t,r1"));     // refresh, pause, observe
  EXPECT_GT(enumerate_march_elements(4, true).size(),
            enumerate_march_elements(4).size());
}

}  // namespace
}  // namespace mtg
