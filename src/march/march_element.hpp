// March elements (Definition 10).
//
// A march element is a finite sequence of memory operations applied to every
// memory cell in a given address order before moving to the next cell.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/address_order.hpp"
#include "common/op.hpp"

namespace mtg {

class MarchElement {
 public:
  MarchElement() = default;
  MarchElement(AddressOrder order, std::vector<Op> ops);

  AddressOrder order() const noexcept { return order_; }
  const std::vector<Op>& ops() const noexcept { return ops_; }

  /// Number of memory operations per cell (the element's contribution to the
  /// march test complexity coefficient).
  std::size_t cost() const noexcept { return ops_.size(); }

  /// The value every cell holds after this element ran on a fault-free
  /// memory, if the element determines one (i.e. it contains a write);
  /// otherwise returns std::nullopt (the element is read/wait only and the
  /// memory keeps its previous uniform value).
  std::optional<Bit> final_value() const;

  /// The uniform value the memory must hold when the element starts, implied
  /// by the element's first read/write with a specified value, if any.
  /// (E.g. "⇑(r1,w0)" requires all cells to be 1.)
  std::optional<Bit> required_entry_value() const;

  void set_order(AddressOrder order) noexcept { order_ = order; }
  void append(Op op) { ops_.push_back(op); }

  /// Notation form, e.g. "⇑(r0,w1)"; with `ascii` = true, "^(r0,w1)".
  std::string to_string(bool ascii = false) const;

  friend bool operator==(const MarchElement& a, const MarchElement& b) {
    return a.order_ == b.order_ && a.ops_ == b.ops_;
  }
  friend bool operator!=(const MarchElement& a, const MarchElement& b) {
    return !(a == b);
  }

 private:
  AddressOrder order_ = AddressOrder::Any;
  std::vector<Op> ops_;
};

std::ostream& operator<<(std::ostream& os, const MarchElement& me);

}  // namespace mtg
