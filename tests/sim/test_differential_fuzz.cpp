// Randomized three-way differential testing: the packed engine, the scalar
// reference machine, and the symbolic static analyzer.
//
// Each case draws a seeded random march test (random orders including ⇕,
// random operations including waits) and a random fault instance (random
// FP bindings over the full static + retention FP space, a random instance
// of a real linked fault, or a random address-decoder fault), then asserts
// that the packed engine and the scalar oracle agree on the verdict *and*
// the diagnostics (first detection event, first escaping scenario), and
// that every *definite* verdict of the static analyzer
// (analysis/static_analyzer.hpp) matches them — the soundness contract that
// licenses the generator's static pre-filter.
//
// Reproducibility: every case derives from a single 64-bit seed printed on
// failure.  Replay one case with MTG_FUZZ_SEED=<seed>; change the case count
// with MTG_FUZZ_CASES=<n> (the sanitizer CI job runs a reduced count).
// Failing cases are shrunk (drop march elements, ops, then fault primitives)
// before being reported.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "analysis/subsumption.hpp"
#include "fp/fault_list.hpp"
#include "fp/fp_library.hpp"
#include "march/march_test.hpp"
#include "sim/coverage.hpp"
#include "sim/fault_instance.hpp"
#include "sim/prefix_sim.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

// splitmix64: tiny, stdlib-independent PRNG so the same seed reproduces the
// same case on every platform (std::uniform_int_distribution is not
// portable across standard libraries).
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform-ish integer in [0, bound); bound must be non-zero.
  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }

  bool coin() { return (next() & 1u) != 0; }
};

struct FuzzCase {
  std::size_t memory_size = 4;
  bool both_power_on_states = true;
  MarchTest test;
  FaultInstance instance;
};

MarchTest random_march_test(Rng& rng) {
  static const Op kOps[] = {Op::W0, Op::W1, Op::R0, Op::R1, Op::R, Op::T};
  static const AddressOrder kOrders[] = {AddressOrder::Up, AddressOrder::Down,
                                         AddressOrder::Any};
  const std::size_t num_elements = 1 + rng.below(5);
  std::vector<MarchElement> elements;
  std::size_t any_count = 0;
  for (std::size_t e = 0; e < num_elements; ++e) {
    AddressOrder order = kOrders[rng.below(3)];
    if (order == AddressOrder::Any && any_count >= 4) order = AddressOrder::Up;
    if (order == AddressOrder::Any) ++any_count;
    const std::size_t num_ops = 1 + rng.below(5);
    std::vector<Op> ops;
    ops.reserve(num_ops);
    for (std::size_t i = 0; i < num_ops; ++i) ops.push_back(kOps[rng.below(6)]);
    elements.emplace_back(order, std::move(ops));
  }
  return MarchTest("fuzz", std::move(elements));
}

/// Random 1- or 2-FP binding over the full FP space (the pair need not form
/// a valid linked fault: the semantics engine accepts arbitrary bound sets
/// and the two paths must agree on all of them).
FaultInstance random_binding(Rng& rng, std::size_t n,
                             const std::vector<FaultPrimitive>& fps) {
  FaultInstance instance;
  const std::size_t count = 1 + rng.below(2);
  for (std::size_t i = 0; i < count; ++i) {
    const FaultPrimitive& fp = fps[rng.below(fps.size())];
    std::size_t v = rng.below(n);
    std::size_t a = v;
    if (fp.is_two_cell()) {
      a = rng.below(n - 1);
      if (a >= v) ++a;  // distinct aggressor
    }
    instance.fps.push_back(BoundFp(fp, a, v));
  }
  std::ostringstream description;
  for (const BoundFp& bound : instance.fps) description << bound.to_string() << "; ";
  instance.description = description.str();
  return instance;
}

/// Random concrete instance of a real linked fault (masking pairs).
FaultInstance random_linked_instance(Rng& rng, std::size_t n,
                                     const std::vector<LinkedFault>& pool) {
  const LinkedFault& lf = pool[rng.below(pool.size())];
  const std::vector<FaultInstance> instances = instantiate(lf, n, 0);
  return instances[rng.below(instances.size())];
}

/// Random address-decoder instance (fp/decoder_fault.hpp): any class, any
/// address line the memory has, any valid corrupted address — the packed
/// engine's address-aware path must match the scalar decoder branches.
FaultInstance random_decoder_instance(Rng& rng, std::size_t n) {
  std::size_t lines = 0;
  while ((std::size_t{1} << lines) < n) ++lines;
  DecoderFault fault;
  fault.bit = rng.below(lines);
  static const DecoderFaultClass kClasses[] = {
      DecoderFaultClass::NoAccess, DecoderFaultClass::WrongCell,
      DecoderFaultClass::MultipleCells, DecoderFaultClass::MultipleAddresses};
  fault.cls = kClasses[rng.below(4)];
  fault.wired = rng.coin() ? Bit::One : Bit::Zero;
  const std::size_t partner_bit = std::size_t{1} << fault.bit;
  std::size_t a = rng.below(n);
  if (fault.cls != DecoderFaultClass::NoAccess) {
    // Both the corrupted address and its partner must fit the memory.
    for (int tries = 0; tries < 16 && (a ^ partner_bit) >= n; ++tries) {
      a = rng.below(n);
    }
    if ((a ^ partner_bit) >= n) a = 0;  // 0's partner is 2^bit < n
  }
  const std::size_t v =
      fault.cls == DecoderFaultClass::NoAccess ? a : a ^ partner_bit;
  FaultInstance instance;
  instance.decoders.push_back(BoundDecoder(fault, a, v));
  instance.description = instance.decoders[0].to_string();
  return instance;
}

FuzzCase make_case(std::uint64_t seed, const std::vector<FaultPrimitive>& fps,
                   const std::vector<LinkedFault>& linked) {
  Rng rng(seed);
  FuzzCase fuzz;
  // n ∈ {3..200}: mostly small memories (dense FP interactions — every cell
  // is involved), with a slice of mid and multi-word sizes so packed ==
  // scalar is locked beyond the old 64-cell snapshot ceiling (word-boundary
  // arithmetic, boundary-cell bindings at n - 1 ≥ 64).
  const std::size_t size_class = rng.below(8);
  if (size_class < 6) {
    fuzz.memory_size = 3 + rng.below(6);  // 3..8 cells
  } else if (size_class == 6) {
    fuzz.memory_size = 9 + rng.below(56);  // 9..64 cells
  } else {
    fuzz.memory_size = 65 + rng.below(136);  // 65..200 cells (multi-word)
  }
  fuzz.both_power_on_states = rng.coin();
  fuzz.test = random_march_test(rng);
  // 3/8 arbitrary FP bindings, 3/8 real linked faults, 2/8 decoder faults.
  const std::size_t kind = rng.below(8);
  if (kind < 3) {
    fuzz.instance = random_binding(rng, fuzz.memory_size, fps);
  } else if (kind < 6) {
    fuzz.instance = random_linked_instance(rng, fuzz.memory_size, linked);
  } else {
    fuzz.instance = random_decoder_instance(rng, fuzz.memory_size);
  }
  return fuzz;
}

/// Canonical string of everything the two paths must agree on.
std::string verdict_string(const DetectionResult& result) {
  std::ostringstream out;
  out << (result.detected ? "detected" : "escaped");
  if (result.first_event.has_value()) {
    out << " | first: " << result.first_event->to_string();
  }
  if (result.escape_scenario.has_value()) {
    out << " | escape: power-on " << to_char(result.escape_scenario->first)
        << " mask " << result.escape_scenario->second;
  }
  return out.str();
}

/// Runs both paths; returns a non-empty explanation on divergence.
std::string divergence(const FuzzCase& fuzz) {
  SimulatorOptions options;
  options.memory_size = fuzz.memory_size;
  options.both_power_on_states = fuzz.both_power_on_states;
  const FaultSimulator simulator(options);

  const DetectionResult packed = simulator.simulate(fuzz.test, fuzz.instance);
  const DetectionResult scalar =
      simulator.simulate_scalar(fuzz.test, fuzz.instance);
  const std::string packed_verdict = verdict_string(packed);
  const std::string scalar_verdict = verdict_string(scalar);
  if (packed_verdict != scalar_verdict) {
    return "simulate mismatch:\n  packed: " + packed_verdict +
           "\n  scalar: " + scalar_verdict;
  }
  // The fast path (early exit at the first escaping block) must agree too.
  if (simulator.detects(fuzz.test, fuzz.instance) !=
      simulator.detects_scalar(fuzz.test, fuzz.instance)) {
    return "detects() disagrees with detects_scalar()";
  }
  // Third leg: a definite verdict from the symbolic analyzer must agree
  // with both engines (static == packed == scalar); Unknown is its licensed
  // fall-back-to-simulation answer and never a divergence.
  AnalysisOptions analysis_options;
  analysis_options.both_power_on_states = fuzz.both_power_on_states;
  const StaticResult statics =
      analyze_instance(fuzz.test, fuzz.instance, analysis_options);
  if (statics.definite() &&
      (statics.verdict == StaticVerdict::Detected) != scalar.detected) {
    return "static analyzer disagrees:\n  static: " +
           to_string(statics.verdict) +
           (statics.witness.has_value()
                ? " | witness: " + statics.witness->to_string()
                : " | reason: " + statics.reason) +
           "\n  scalar: " + scalar_verdict;
  }
  return {};
}

/// Greedy shrink: drop march elements, then single ops, then bound FPs, as
/// long as the divergence persists.
FuzzCase shrink(FuzzCase fuzz) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t e = 0; e < fuzz.test.elements().size(); ++e) {
      if (fuzz.test.elements().size() == 1) break;
      FuzzCase trial = fuzz;
      trial.test.elements().erase(trial.test.elements().begin() + e);
      if (!divergence(trial).empty()) {
        fuzz = std::move(trial);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    for (std::size_t e = 0; e < fuzz.test.elements().size() && !changed; ++e) {
      const MarchElement& element = fuzz.test.elements()[e];
      if (element.ops().size() == 1) continue;
      for (std::size_t i = 0; i < element.ops().size(); ++i) {
        std::vector<Op> ops = element.ops();
        ops.erase(ops.begin() + i);
        FuzzCase trial = fuzz;
        trial.test.elements()[e] = MarchElement(element.order(), std::move(ops));
        if (!divergence(trial).empty()) {
          fuzz = std::move(trial);
          changed = true;
          break;
        }
      }
    }
    if (changed) continue;
    for (std::size_t f = 0; f < fuzz.instance.fps.size(); ++f) {
      if (fuzz.instance.fps.size() == 1) break;
      FuzzCase trial = fuzz;
      trial.instance.fps.erase(trial.instance.fps.begin() + f);
      if (!divergence(trial).empty()) {
        fuzz = std::move(trial);
        changed = true;
        break;
      }
    }
  }
  return fuzz;
}

std::string describe(const FuzzCase& fuzz, std::uint64_t seed) {
  std::ostringstream out;
  out << "seed " << seed << " (replay: MTG_FUZZ_SEED=" << seed << ")\n"
      << "  n = " << fuzz.memory_size
      << ", both_power_on_states = " << fuzz.both_power_on_states << "\n"
      << "  test:  " << fuzz.test.to_string(/*ascii=*/true) << "\n"
      << "  fault: " << fuzz.instance.description;
  return out.str();
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(DifferentialFuzz, PackedMatchesScalarVerdictsAndDiagnostics) {
  const std::vector<FaultPrimitive> fps = all_fps();
  std::vector<LinkedFault> linked = enumerate_single_cell_linked_faults();
  {
    std::vector<LinkedFault> retention = enumerate_retention_linked_faults();
    linked.insert(linked.end(), retention.begin(), retention.end());
    std::vector<LinkedFault> two = enumerate_two_cell_linked_faults();
    linked.insert(linked.end(), two.begin(), two.end());
  }

  // Seeds are sequential from a fixed base so every run covers the same
  // cases; MTG_FUZZ_SEED replays one, MTG_FUZZ_CASES rescales the sweep.
  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_FUZZ_CASES", 1500);

  std::size_t failures = 0;
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : 0xD1FFu + i;
    const FuzzCase fuzz = make_case(seed, fps, linked);
    const std::string failure = divergence(fuzz);
    if (failure.empty()) continue;
    const FuzzCase minimal = shrink(fuzz);
    ADD_FAILURE() << "three-way static/packed/scalar divergence\n"
                  << describe(minimal, seed) << "\n"
                  << divergence(minimal);
    if (++failures >= 3) break;  // enough repro material; stop the sweep
  }
}

TEST(DifferentialFuzz, PrefixEngineCheckpointRestoreMatchesSimulator) {
  // Fuzzes the incremental prefix engine's checkpoint/restore machinery
  // mid-test: for each random (test, instance) case the engine's verdict
  // after construction, after a drop-element / drop-op trial, after
  // accepting the edit (checkpoint rewind + suffix replay) and after
  // rewinding back to the original test must all match the from-scratch
  // simulator.  Random tests freely mix ⇕ elements, so the scenario-lane
  // expansion and trial ordinal renumbering are exercised throughout.
  const std::vector<FaultPrimitive> fps = all_fps();
  std::vector<LinkedFault> linked = enumerate_single_cell_linked_faults();
  {
    std::vector<LinkedFault> retention = enumerate_retention_linked_faults();
    linked.insert(linked.end(), retention.begin(), retention.end());
    std::vector<LinkedFault> two = enumerate_two_cell_linked_faults();
    linked.insert(linked.end(), two.begin(), two.end());
  }

  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_FUZZ_CASES", 1500) / 3;

  std::size_t failures = 0;
  const auto check = [&](bool ok, const FuzzCase& fuzz, std::uint64_t seed,
                         const char* what) {
    if (ok) return true;
    ADD_FAILURE() << "prefix engine divergence (" << what << ")\n"
                  << describe(fuzz, seed);
    return ++failures < 3;
  };
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : 0xC4ECu + i;
    const FuzzCase fuzz = make_case(seed, fps, linked);
    SimulatorOptions options;
    options.memory_size = fuzz.memory_size;
    options.both_power_on_states = fuzz.both_power_on_states;
    const FaultSimulator simulator(options);
    const std::vector<FaultInstance> one = {fuzz.instance};
    PrefixEngine engine(
        fuzz.memory_size, &one, fuzz.test,
        PrefixEngine::Options{fuzz.both_power_on_states, true});

    const bool detected = engine.undetected_instances() == 0;
    if (!check(detected == simulator.detects(fuzz.test, fuzz.instance), fuzz,
               seed, "construction verdict")) {
      break;
    }

    Rng rng(seed ^ 0x5EEDull);
    const std::size_t edit = rng.below(fuzz.test.elements().size());
    MarchTest dropped = fuzz.test;
    dropped.elements().erase(dropped.elements().begin() +
                             static_cast<long>(edit));
    const bool drop_expected =
        dropped.empty() ? false : simulator.detects(dropped, fuzz.instance);
    if (!check(engine.trial_covers(edit, nullptr) == drop_expected, fuzz,
               seed, "drop-element trial")) {
      break;
    }

    const MarchElement& element = fuzz.test.elements()[edit];
    MarchTest edited = fuzz.test;
    if (element.ops().size() > 1) {
      std::vector<Op> ops = element.ops();
      ops.erase(ops.begin() + static_cast<long>(rng.below(ops.size())));
      const MarchElement replacement(element.order(), std::move(ops));
      edited.elements()[edit] = replacement;
      if (!check(engine.trial_covers(edit, &replacement) ==
                     simulator.detects(edited, fuzz.instance),
                 fuzz, seed, "drop-op trial")) {
        break;
      }
    }

    // Accept the op edit (a no-op advance when the element had one op),
    // then rewind back to the original test.
    engine.advance(edited);
    if (!check((engine.undetected_instances() == 0) ==
                   simulator.detects(edited, fuzz.instance),
               fuzz, seed, "accepted-edit sync")) {
      break;
    }
    engine.advance(fuzz.test);
    if (!check((engine.undetected_instances() == 0) == detected, fuzz, seed,
               "rewind to original")) {
      break;
    }
  }
}

TEST(DifferentialFuzz, SubsumptionVerdictsMatchPackedCoverageContainment) {
  // Random test-pair subsumption sweep: a definite prover verdict must
  // match full packed coverage (cap 0 — capped sampling would break the
  // containment implication).  Subsumes(A, B) ⇒ every fault the packed
  // engine says B covers, A covers too; NotSubsumes ⇒ the witness fault is
  // a real counterexample.  Unknown is the prover's licensed answer for
  // out-of-domain random tests and asserts nothing.
  const FaultList universe =
      FaultUniverse::parse("simple+decoder[0,3)").materialize();

  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_FUZZ_CASES", 1500) / 25;

  std::size_t failures = 0;
  for (std::uint64_t i = 0; i < cases && failures < 3; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : 0x5B5E5Eull + i;
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (replay: MTG_FUZZ_SEED=" + std::to_string(seed) + ")");
    Rng rng(seed);
    const MarchTest a = random_march_test(rng);
    const MarchTest b = random_march_test(rng);
    // Mostly the default size, with a multi-word slice: containment is a
    // per-size property and the witness must hold at the proved n.
    const std::size_t n = rng.below(4) == 0 ? 64 : 6;

    const SubsumptionResult result = prove_subsumption(a, b, universe, n);
    ASSERT_EQ(result.faults, universe.size());
    if (result.verdict == SubsumptionVerdict::Unknown) continue;

    SimulatorOptions options;
    options.memory_size = n;
    const FaultSimulator simulator(options);
    CoverageReport by_a, by_b;
    try {
      by_a = evaluate_coverage(simulator, a, universe, 0);
      by_b = evaluate_coverage(simulator, b, universe, 0);
    } catch (const Error&) {
      continue;  // e.g. an over-limit ⇕ mix the engines refuse to run
    }

    if (result.verdict == SubsumptionVerdict::Subsumes) {
      for (std::size_t f = 0; f < universe.size(); ++f) {
        if (by_b.entries[f].covered && !by_a.entries[f].covered) {
          ADD_FAILURE() << "Subsumes verdict broken at fault "
                        << by_b.entries[f].fault << " (n=" << n << ")\n  A: "
                        << a.to_string(true) << "\n  B: " << b.to_string(true);
          ++failures;
          break;
        }
      }
    } else {
      ASSERT_TRUE(result.witness.has_value());
      const SubsumptionWitness& witness = *result.witness;
      ASSERT_LT(witness.fault_index, universe.size());
      if (!by_b.entries[witness.fault_index].covered ||
          by_a.entries[witness.fault_index].covered) {
        ADD_FAILURE() << "NotSubsumes witness not confirmed by the packed "
                      << "engine: " << witness.fault_name << " (n=" << n
                      << ", B covers=" << by_b.entries[witness.fault_index].covered
                      << ", A covers=" << by_a.entries[witness.fault_index].covered
                      << ")\n  A: " << a.to_string(true)
                      << "\n  B: " << b.to_string(true);
        ++failures;
      }
    }
  }
}

}  // namespace
}  // namespace mtg


