// Example: build the memory model graph G0 (Figure 2) and the pattern graph
// PGCF of the linked disturb coupling fault (Figure 4), and export both as
// GraphViz DOT.
//
// Usage: pattern_graph_export [output_dir]
#include <fstream>
#include <iostream>

#include "memory/memory_graph.hpp"
#include "memory/pattern_graph.hpp"

int main(int argc, char** argv) {
  using namespace mtg;

  const std::string dir = argc > 1 ? argv[1] : ".";

  const MemoryGraph g0 = make_g0();
  std::cout << "G0: " << g0.num_vertices() << " states, " << g0.edges().size()
            << " fault-free edges (Figure 2)\n";

  const PatternGraph pgcf = make_pgcf();
  std::cout << "PGCF: " << pgcf.num_vertices() << " states, "
            << pgcf.faulty_edges().size() << " faulty edges (Figure 4):\n";
  for (const FaultyEdge& edge : pgcf.faulty_edges()) {
    std::cout << "  " << edge.from << " -> " << edge.to << "  [" << edge.label()
              << "]  TP" << edge.tp_index << " of " << edge.source << "\n";
  }

  // Write through a checked helper: an unwritable output directory used to
  // produce no files (or empty ones) while still reporting success.
  const auto write_dot = [](const std::string& path,
                            const std::string& content) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot open " << path << " for writing\n";
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      std::cerr << "error: writing " << path << " failed\n";
      return false;
    }
    return true;
  };
  if (!write_dot(dir + "/g0.dot", g0.to_dot("G0")) ||
      !write_dot(dir + "/pgcf.dot", pgcf.to_dot("PGCF"))) {
    return 1;
  }
  std::cout << "Wrote " << dir << "/g0.dot and " << dir << "/pgcf.dot\n";
  return 0;
}
