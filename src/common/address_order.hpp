// Address orders for march elements (Definition 10).
//
// A march element applies its operation sequence to every memory cell in a
// given order: increasing (⇑), decreasing (⇓), or any/irrelevant (⇕).  A
// correct march test must achieve its fault coverage for *every* concrete
// choice of the ⇕ orders, which is how the fault simulator treats them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace mtg {

enum class AddressOrder : std::uint8_t {
  Up,    ///< ⇑ — ascending addresses
  Down,  ///< ⇓ — descending addresses
  Any,   ///< ⇕ — order irrelevant (must work for both)
};

/// Unicode arrow used by the literature: "⇑", "⇓", "⇕".
std::string to_symbol(AddressOrder order);

/// ASCII form accepted and produced by the parser: "^", "v", "c".
char to_ascii(AddressOrder order);

/// Parses "^", "v", "c", "⇑", "⇓", "⇕" (and "up"/"down"/"any").
AddressOrder address_order_from_string(std::string_view token);

std::ostream& operator<<(std::ostream& os, AddressOrder order);

}  // namespace mtg
