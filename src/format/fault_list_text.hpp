// Text format for user-defined fault lists — the reader side of
// to_canonical_string(FaultList) (fp/fault_list.hpp), so coverage matrices,
// sweeps and the generator can run on catalogs the binary has never seen.
//
// Grammar (record per line; blank lines and full-line '#' comments ignored):
//
//   file    := header ( name | simple | linked | decoder )*
//   header  := 'faultlist v1'
//   name    := 'name' <free text>              (display name, metadata only)
//   simple  := 'simple' fp 'a_pos='int 'v_pos='int
//   linked  := 'linked' fp '->' fp 'cells='int 'a1='int 'a2='int 'v='int
//   decoder := 'decoder' 'cls='int 'bit='int 'wired='int
//   fp      := '<' sens ( ';' sens )? '/' F '/' R '>'     (FP notation,
//              e.g. <0w1/0/-> — see fp/fault_primitive.hpp)
//
// The three record kinds mirror the three FaultList sections: simple FPs
// with their address layout, linked faults (re-validated against the
// Definition 6/7 linking conditions on load), and address-decoder faults
// (cls 0..3 = AFna, AFwc, AFmc, AFma; 'wired' selects wired-OR read-back
// for AFmc).  parse_fault_list_text(to_canonical_string(x)) == x exactly;
// external lists therefore produce the same stable_hash() and key into the
// persistent sweep store (store/sweep_store.hpp) like built-in ones — no
// store-schema change.
//
// Every diagnostic is a ParseError carrying "<source>:<line>:<column>".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/text_position.hpp"
#include "fp/fault_list.hpp"

namespace mtg {

/// Document positions of every parsed record, index-aligned with the three
/// FaultList sections — the anchors the catalog linter (analysis/lint.hpp)
/// attaches its path:line:column diagnostics to.
struct FaultListPositions {
  std::vector<TextPosition> simple;
  std::vector<TextPosition> linked;
  std::vector<TextPosition> decoder;
};

/// Parses the fault-list text format.  `source` names the document in
/// diagnostics.  Throws mtg::ParseError (line:column-annotated) on
/// malformed input; the resulting list may be empty (a header-only file).
/// A non-null `positions` receives the position of each record.
FaultList parse_fault_list_text(std::string_view text,
                                const std::string& source = "<string>",
                                FaultListPositions* positions = nullptr);

}  // namespace mtg
