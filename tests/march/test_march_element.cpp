#include "march/march_element.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mtg {
namespace {

TEST(MarchElement, RejectsEmptyOps) {
  EXPECT_THROW(MarchElement(AddressOrder::Up, {}), Error);
}

TEST(MarchElement, Cost) {
  const MarchElement e(AddressOrder::Up, {Op::R0, Op::W1, Op::R1});
  EXPECT_EQ(e.cost(), 3u);
}

TEST(MarchElement, FinalValueIsLastWrite) {
  EXPECT_EQ(MarchElement(AddressOrder::Up, {Op::R0, Op::W1}).final_value(),
            Bit::One);
  EXPECT_EQ(MarchElement(AddressOrder::Up, {Op::W1, Op::W0}).final_value(),
            Bit::Zero);
  EXPECT_EQ(MarchElement(AddressOrder::Up, {Op::R0, Op::R0}).final_value(),
            std::nullopt);
  EXPECT_EQ(MarchElement(AddressOrder::Up, {Op::T}).final_value(), std::nullopt);
}

TEST(MarchElement, RequiredEntryValueIsFirstReadBeforeWrite) {
  EXPECT_EQ(
      MarchElement(AddressOrder::Up, {Op::R1, Op::W0}).required_entry_value(),
      Bit::One);
  EXPECT_EQ(
      MarchElement(AddressOrder::Up, {Op::W0, Op::R0}).required_entry_value(),
      std::nullopt);  // the write determines the value, no entry requirement
  EXPECT_EQ(MarchElement(AddressOrder::Up, {Op::R}).required_entry_value(),
            std::nullopt);  // bare read claims nothing
  EXPECT_EQ(
      MarchElement(AddressOrder::Up, {Op::T, Op::R0}).required_entry_value(),
      Bit::Zero);
}

TEST(MarchElement, ToStringForms) {
  const MarchElement e(AddressOrder::Down, {Op::R1, Op::W0});
  EXPECT_EQ(e.to_string(), "⇓(r1,w0)");
  EXPECT_EQ(e.to_string(/*ascii=*/true), "v(r1,w0)");
}

TEST(MarchElement, Equality) {
  const MarchElement a(AddressOrder::Up, {Op::R0});
  const MarchElement b(AddressOrder::Up, {Op::R0});
  const MarchElement c(AddressOrder::Down, {Op::R0});
  const MarchElement d(AddressOrder::Up, {Op::R1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(MarchElement, AppendAndSetOrder) {
  MarchElement e(AddressOrder::Up, {Op::R0});
  e.append(Op::W1);
  e.set_order(AddressOrder::Any);
  EXPECT_EQ(e.to_string(), "⇕(r0,w1)");
}

}  // namespace
}  // namespace mtg
