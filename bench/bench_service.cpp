// Matrix-service throughput (service/matrix_service.hpp): a saturated batch
// of (test × list × n) coverage jobs pushed through the deadline-aware job
// queue.  Jobs evaluate sequentially on their worker (that is what keeps
// reports byte-identical), so the service's scaling story is ACROSS jobs —
// the thread sweep below is the measurement.
//
// Two front ends in one binary (the repo's bench convention):
//
//  * default — the google-benchmark suite (BM_*);
//  * --json / --quick — the canonical saturation measurement the CI
//    bench-smoke job records as BENCH_service.json (compared against
//    bench/BENCH_service_baseline.json by scripts/compare_bench_service.py).
//    The run *fails* if any job ends in a non-Completed state or the shared
//    caches miss more than once per artifact — those are correctness bars,
//    not timings.
//
// Usage: bench_service [--quick] [--json <path|->]
//        bench_service [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "service/matrix_service.hpp"

namespace {

using namespace mtg;

/// The bench batch: every catalog test crossed with a few memory sizes
/// against one shared list.  Same-test jobs share compiled-test cache
/// entries; same-(list, n) jobs share instantiation cache entries.
struct Batch {
  std::shared_ptr<const FaultList> list;
  std::vector<MatrixJob> jobs;
};

Batch make_batch(std::size_t repeats) {
  Batch batch;
  batch.list = std::make_shared<const FaultList>(fault_list_2());
  const std::vector<MarchTest> tests = {mats_plus(), march_y(),
                                        march_c_minus(), march_sl()};
  const std::vector<std::size_t> sizes = {64, 256, 1024};
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const MarchTest& test : tests) {
      for (const std::size_t n : sizes) {
        MatrixJob job;
        job.test = test;
        job.list = batch.list;
        job.memory_size = n;
        job.max_instances_per_fault = 256;
        batch.jobs.push_back(job);
      }
    }
  }
  return batch;
}

/// Submits the whole batch and drains; returns false if anything failed.
bool run_batch(MatrixService& service, const Batch& batch) {
  for (const MatrixJob& job : batch.jobs) {
    if (service.submit(job).rejected) return false;
  }
  for (const MatrixJobResult& result : service.drain()) {
    if (result.status != JobStatus::Completed) return false;
  }
  return true;
}

void BM_MatrixServiceSaturated(benchmark::State& state) {
  const Batch batch = make_batch(/*repeats=*/2);
  std::uint64_t instances = 0;
  for (auto _ : state) {
    MatrixServiceOptions options;
    options.threads = static_cast<std::size_t>(state.range(0));
    options.queue_capacity = batch.jobs.size();
    MatrixService service(options);
    if (!run_batch(service, batch)) {
      state.SkipWithError("a bench job did not complete");
      return;
    }
    instances = service.stats().instance_evaluations;
  }
  state.counters["jobs"] = static_cast<double>(batch.jobs.size());
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(batch.jobs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["instance_evals/s"] = benchmark::Counter(
      static_cast<double>(instances * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatrixServiceSaturated)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond);

// --- canonical saturation measurement (CI bench-smoke) ----------------------

struct ThreadTiming {
  std::size_t threads = 0;
  double ms = 0;
  double jobs_per_sec = 0;
  double instance_evals_per_sec = 0;
};

void write_json(std::FILE* out, std::size_t jobs,
                const std::vector<ThreadTiming>& timings,
                const MatrixServiceStats& last) {
  std::fprintf(out,
               "{\n  \"bench\": \"matrix_service\",\n"
               "  \"jobs\": %zu,\n"
               "  \"compiled_cache_hits\": %llu,"
               " \"compiled_cache_misses\": %llu,\n"
               "  \"instances_cache_hits\": %llu,"
               " \"instances_cache_misses\": %llu,\n"
               "  \"instance_evaluations\": %llu,\n"
               "  \"threads\": [\n",
               jobs, static_cast<unsigned long long>(last.compiled_cache_hits),
               static_cast<unsigned long long>(last.compiled_cache_misses),
               static_cast<unsigned long long>(last.instances_cache_hits),
               static_cast<unsigned long long>(last.instances_cache_misses),
               static_cast<unsigned long long>(last.instance_evaluations));
  for (std::size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %zu, \"ms\": %.3f, "
                 "\"jobs_per_sec\": %.1f, "
                 "\"instance_evals_per_sec\": %.1f}%s\n",
                 timings[i].threads, timings[i].ms, timings[i].jobs_per_sec,
                 timings[i].instance_evals_per_sec,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int run_saturation_bench(bool quick, const char* json_path) {
  const Batch batch = make_batch(quick ? 2 : 6);
  const std::vector<std::size_t> thread_counts = {1, 2, 0};

  std::vector<ThreadTiming> timings;
  MatrixServiceStats last_stats;
  for (const std::size_t threads : thread_counts) {
    MatrixServiceOptions options;
    options.threads = threads;
    options.queue_capacity = batch.jobs.size();
    MatrixService service(options);
    const auto t0 = std::chrono::steady_clock::now();
    if (!run_batch(service, batch)) {
      std::fprintf(stderr,
                   "error: a bench job did not complete — the service "
                   "dropped or failed work under saturation\n");
      return 1;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    last_stats = service.stats();
    ThreadTiming timing;
    timing.threads = threads;
    timing.ms = ms;
    timing.jobs_per_sec =
        ms > 0 ? static_cast<double>(batch.jobs.size()) / (ms / 1000.0) : 0;
    timing.instance_evals_per_sec =
        ms > 0
            ? static_cast<double>(last_stats.instance_evaluations) /
                  (ms / 1000.0)
            : 0;
    timings.push_back(timing);
    std::printf("threads=%zu: %8.3f ms  (%.1f jobs/s, %.1f instance "
                "evals/s)\n",
                threads, ms, timing.jobs_per_sec,
                timing.instance_evals_per_sec);
  }

  // Correctness bar: the single-flight caches must compute each distinct
  // artifact exactly once per service — 4 tests, 1 (list, n) triple per
  // size.  More misses means the cache key or the single-flight broke.
  const std::uint64_t distinct_tests = 4, distinct_instantiations = 3;
  if (last_stats.compiled_cache_misses != distinct_tests ||
      last_stats.instances_cache_misses != distinct_instantiations) {
    std::fprintf(stderr,
                 "error: cache misses %llu/%llu, expected %llu/%llu — the "
                 "single-flight caches recomputed shared artifacts\n",
                 static_cast<unsigned long long>(
                     last_stats.compiled_cache_misses),
                 static_cast<unsigned long long>(
                     last_stats.instances_cache_misses),
                 static_cast<unsigned long long>(distinct_tests),
                 static_cast<unsigned long long>(distinct_instantiations));
    return 1;
  }

  if (json_path != nullptr) {
    if (std::strcmp(json_path, "-") == 0) {
      write_json(stdout, batch.jobs.size(), timings, last_stats);
    } else {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path);
        return 1;
      }
      write_json(out, batch.jobs.size(), timings, last_stats);
      std::fclose(out);
      std::printf("JSON summary written to %s\n", json_path);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool quick = false, saturation_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      saturation_mode = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      saturation_mode = true;
    }
  }
  if (saturation_mode) return run_saturation_bench(quick, json_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
