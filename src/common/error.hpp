// Error handling utilities shared by all mtg modules.
//
// The library distinguishes two failure classes:
//  * API misuse / malformed inputs  -> mtg::Error (an exception carrying a
//    human readable message).  Examples: parsing an ill-formed march string,
//    constructing a fault primitive with two sensitizing operations.
//  * Internal invariant violations  -> MTG_INTERNAL_CHECK, which throws
//    mtg::InternalError with file/line context.  These indicate bugs in the
//    library itself, never user input problems.
#pragma once

#include <stdexcept>
#include <string>

namespace mtg {

/// Base exception for all user-facing errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an internal invariant does not hold (library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Throws mtg::Error with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Overload avoiding std::string construction on the success path (hot code).
inline void require(bool condition, const char* message) {
  if (!condition) throw Error(message);
}

}  // namespace mtg

#define MTG_INTERNAL_CHECK(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::mtg::InternalError(std::string("internal check failed at ") + \
                                 __FILE__ + ":" + std::to_string(__LINE__) + \
                                 ": " + (msg));                            \
    }                                                                      \
  } while (false)
