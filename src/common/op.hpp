// Memory operations — the input alphabet X of Definition 2.
//
//   X = { r_d, w_d | d in {0,1} } ∪ { t }
//
// A march element is a sequence of these operations.  Read operations carry
// the value expected on a fault-free memory (`r0` / `r1`); the bare read `r`
// (expected value unspecified) is also representable because the paper's
// Definition 2 allows omitting it.  `t` is the wait operation used for data
// retention faults: like reads and writes it is applied to every cell in
// turn, modeling a pause long enough for an un-refreshed faulty cell to
// decay during its visit (see fp/semantics.hpp for the retention semantics).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bit.hpp"

namespace mtg {

/// One memory operation from the alphabet X (Definition 2).
enum class Op : std::uint8_t {
  W0,  ///< write 0
  W1,  ///< write 1
  R0,  ///< read, expecting 0 on a fault-free memory
  R1,  ///< read, expecting 1 on a fault-free memory
  R,   ///< read with unspecified expected value
  T,   ///< wait (data-retention delay)
};

/// All operations, in a stable order (useful for exhaustive sweeps).
inline constexpr Op kAllOps[] = {Op::W0, Op::W1, Op::R0, Op::R1, Op::R, Op::T};

constexpr bool is_write(Op op) noexcept { return op == Op::W0 || op == Op::W1; }
constexpr bool is_read(Op op) noexcept {
  return op == Op::R0 || op == Op::R1 || op == Op::R;
}
constexpr bool is_wait(Op op) noexcept { return op == Op::T; }

/// The value written by a write operation; throws for non-writes.
inline Bit written_value(Op op) {
  require(is_write(op), "written_value: operation is not a write");
  return op == Op::W1 ? Bit::One : Bit::Zero;
}

/// The expected read value, if the operation is a read that specifies one.
inline std::optional<Bit> expected_value(Op op) {
  if (op == Op::R0) return Bit::Zero;
  if (op == Op::R1) return Bit::One;
  return std::nullopt;
}

/// Builds a write of value `d`.
constexpr Op make_write(Bit d) noexcept {
  return d == Bit::One ? Op::W1 : Op::W0;
}

/// Builds a read expecting value `d`.
constexpr Op make_read(Bit d) noexcept {
  return d == Bit::One ? Op::R1 : Op::R0;
}

/// Textual form used by the march notation: "w0", "w1", "r0", "r1", "r", "t".
std::string to_string(Op op);

/// Parses one operation token; throws mtg::Error on unknown tokens.
Op op_from_string(std::string_view token);

std::ostream& operator<<(std::ostream& os, Op op);

/// Renders a comma separated operation list, e.g. "r0,w1,r1".
std::string to_string(const std::vector<Op>& ops);

}  // namespace mtg
