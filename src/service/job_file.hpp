// Text format for coverage-matrix job files ('jobs v1') — the batch input
// of `mtg_cli matrix`.
//
// Grammar (record per line; blank lines and full-line '#' comments ignored):
//
//   file      := header directive* job+
//   header    := 'jobs v1'
//   directive := 'suite' '"' path '"'
//              | 'faultlist' alias '"' path '"'
//   job       := 'job' 'test=' quoted 'list=' name 'n=' int
//                ['cap=' int] ['deadline_ms=' int]
//
// Directives bind catalogs for the jobs below: `suite` (at most one) names a
// 'suite v1' file whose test names become resolvable in test= specs;
// `faultlist` binds an alias to a 'faultlist v1' file, usable in list=
// alongside the built-in list names (list1, list2, simple, retention,
// decoder — the front end resolves names, this parser only records them).
// Relative paths resolve against the job file's own directory, so a job
// file can ship next to its catalogs (examples/catalogs/matrix.jobs does).
//
// A test= spec is march notation when it contains '(' (a '(' is never part
// of a test name), otherwise a test name resolved against the bound suite
// and then the built-in catalog — exactly mtg_cli's coverage rule.
//
// Diagnostics follow the catalog-format convention: every violation throws
// ParseError as "<source>:<line>:<column>: <message>" with the offending
// line excerpted (format/reader.hpp).
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/text_position.hpp"

namespace mtg {

/// One 'job' record, unresolved: specs and names as written (resolution
/// against catalogs is the front end's job — the parser has no file system).
struct JobFileRecord {
  std::string test_spec;  ///< test name or march notation
  std::string list_name;  ///< built-in list name or faultlist alias
  std::size_t memory_size = 0;
  std::size_t max_instances_per_fault = 4096;  ///< cap= (default: no key set)
  std::chrono::milliseconds deadline{0};       ///< deadline_ms= (0 = none)
  /// True when the record spelled out deadline_ms= — the linter needs to
  /// tell an explicit deadline_ms=0 (a no-op worth flagging) from the
  /// default.
  bool deadline_given = false;
  std::size_t line = 0;  ///< 1-based line in the job file (diagnostics)
};

/// Document positions of the job records, index-aligned with JobFile::jobs —
/// the anchors the jobs-file linter (service/job_lint.hpp) attaches
/// diagnostics to.
struct JobFilePositions {
  /// The 'job' keyword of each record.
  std::vector<TextPosition> jobs;
  /// The deadline_ms= key of each record; nullopt when the field is absent.
  std::vector<std::optional<TextPosition>> deadlines;
};

struct JobFile {
  /// suite directive path, resolved against the job file's directory by
  /// load_job_file(); empty when the file binds no suite.
  std::string suite_path;
  /// faultlist directives in order: alias -> resolved path.
  std::vector<std::pair<std::string, std::string>> fault_list_files;
  std::vector<JobFileRecord> jobs;
};

/// Parses the 'jobs v1' text format.  Throws mtg::ParseError
/// (line:column-annotated) on malformed input, duplicate aliases, a second
/// suite directive, a directive after the first job, or an empty job list.
/// Paths are recorded as written (no directory resolution).
/// A non-null `positions` receives one entry per job record.
JobFile parse_job_file_text(std::string_view text,
                            const std::string& source = "<string>",
                            JobFilePositions* positions = nullptr);

/// read_text_file + parse_job_file_text with the path as the source name,
/// then resolves relative directive paths against the job file's directory.
JobFile load_job_file(const std::string& path,
                      JobFilePositions* positions = nullptr);

}  // namespace mtg
