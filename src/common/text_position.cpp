#include "common/text_position.hpp"

namespace mtg {

std::string TextPosition::to_string() const {
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

TextPosition position_at(std::string_view text, std::size_t offset,
                         TextPosition origin) {
  if (offset > text.size()) offset = text.size();
  std::size_t line = 0;           // newlines seen before `offset`
  std::size_t line_start = 0;     // offset of the current line's first byte
  for (std::size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
  }
  TextPosition result;
  result.line = origin.line + line;
  const std::size_t column_in_line = offset - line_start + 1;
  // The origin column only shifts positions on the origin's own line.
  result.column =
      line == 0 ? origin.column + (column_in_line - 1) : column_in_line;
  return result;
}

std::string_view line_excerpt(std::string_view text, std::size_t offset) {
  if (offset > text.size()) offset = text.size();
  std::size_t begin = text.rfind('\n', offset == 0 ? 0 : offset - 1);
  begin = (begin == std::string_view::npos || offset == 0) ? 0 : begin + 1;
  std::size_t end = text.find('\n', offset);
  if (end == std::string_view::npos) end = text.size();
  // Tolerate CRLF input: the excerpt should not drag the '\r' along.
  if (end > begin && text[end - 1] == '\r') --end;
  return text.substr(begin, end - begin);
}

}  // namespace mtg
