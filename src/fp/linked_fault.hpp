// Linked faults — Definitions 6 and 7 of the paper.
//
// A linked fault "FP1 → FP2" is a pair of fault primitives sharing the same
// victim cell where FP2 can mask FP1:
//
//   * F2 = not(F1)                                   (Definition 6)
//   * the AFP chain is consistent: I2 = Fv1, i.e. FP2's sensitizing states
//     hold in the state the faulty memory reaches right after FP1 fires
//     (Definition 7), and
//   * FP1 is maskable (its sensitization does not expose it on the spot).
//
// The *layout* records how the involved cells relate in address order, which
// matters for march address orders: a two-cell linked fault exists in both
// the a<v and a>v versions, a three-cell one in all six orderings of
// (a1, a2, v) — cf. Figure 1 of the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fp/afp.hpp"
#include "fp/fault_primitive.hpp"

namespace mtg {

/// Relative address layout of the cells of a linked fault.  Distinct cells
/// are numbered 0..num_cells-1 in increasing address order.
struct LinkedLayout {
  std::uint8_t num_cells = 1;  ///< number of distinct cells (1, 2 or 3)
  std::int8_t a1_pos = -1;     ///< aggressor of FP1 (-1 when FP1 is 1-cell)
  std::int8_t a2_pos = -1;     ///< aggressor of FP2 (-1 when FP2 is 1-cell)
  std::uint8_t v_pos = 0;      ///< shared victim

  /// Single shared cell (both FPs single-cell).
  static LinkedLayout single_cell();
  /// Two cells: one aggressor role (used by FP1 and/or FP2) plus the victim.
  static LinkedLayout two_cell(std::int8_t a1, std::int8_t a2, std::uint8_t v);
  /// Three cells: two distinct aggressors plus the victim.
  static LinkedLayout three_cell(std::uint8_t a1, std::uint8_t a2, std::uint8_t v);

  /// "v", "a<v", "v<a", "a1<a2<v", ... human-readable layout.
  std::string to_string() const;

  friend bool operator==(const LinkedLayout& x, const LinkedLayout& y) {
    return x.num_cells == y.num_cells && x.a1_pos == y.a1_pos &&
           x.a2_pos == y.a2_pos && x.v_pos == y.v_pos;
  }
};

std::ostream& operator<<(std::ostream& os, const LinkedLayout& layout);

/// Result of checking the linking conditions for an (FP1, FP2, layout) triple.
struct LinkCheck {
  bool structurally_linked = false;  ///< Definition 6/7 conditions hold
  bool fp1_fired = false;            ///< FP1 sensitized in the canonical chain
  bool fp2_fired = false;            ///< FP2 sensitized right after FP1
  bool fully_masked = false;         ///< after the chain: faulty == fault-free
                                     ///< and no read exposed a wrong value
  std::string reason;                ///< first failed condition, for diagnostics
};

/// Evaluates the linking conditions by running the canonical two-step chain
/// (FP1's sensitization, then FP2's) on the FaultyMemory engine.
LinkCheck check_link(const FaultPrimitive& fp1, const FaultPrimitive& fp2,
                     const LinkedLayout& layout);

/// A validated linked fault FP1 → FP2 with its address layout.
class LinkedFault {
 public:
  /// Throws mtg::Error when the triple does not satisfy the structural
  /// linking conditions (Definitions 6/7) or the layout is incoherent.
  LinkedFault(FaultPrimitive fp1, FaultPrimitive fp2, LinkedLayout layout);

  const FaultPrimitive& fp1() const noexcept { return fp1_; }
  const FaultPrimitive& fp2() const noexcept { return fp2_; }
  const LinkedLayout& layout() const noexcept { return layout_; }
  int num_cells() const noexcept { return layout_.num_cells; }

  /// True when the canonical chain fully hides the fault (see LinkCheck).
  bool fully_masking() const noexcept { return fully_masking_; }

  /// "TF↑→WDF0 [v]"-style identifier.
  const std::string& name() const noexcept { return name_; }

  friend bool operator==(const LinkedFault& x, const LinkedFault& y) {
    return x.fp1_ == y.fp1_ && x.fp2_ == y.fp2_ && x.layout_ == y.layout_;
  }

 private:
  FaultPrimitive fp1_;
  FaultPrimitive fp2_;
  LinkedLayout layout_;
  bool fully_masking_ = false;
  std::string name_;
};

std::ostream& operator<<(std::ostream& os, const LinkedFault& lf);

/// A linked pair of AFPs (Definition 7) with the chain invariant I2 = Fv1,
/// plus the linked test patterns TP1 → TP2 covering them (Equation 8).
struct LinkedAfpPair {
  Afp afp1;
  Afp afp2;
  TestPattern tp1;
  TestPattern tp2;
};

/// Expands a linked fault onto a `model_cells`-cell model memory.  `cells`
/// maps layout positions to model cells (ascending, one entry per distinct
/// cell).  Enumerates the free-cell backgrounds like expand_afps.
std::vector<LinkedAfpPair> expand_linked_afps(const LinkedFault& lf,
                                              const std::vector<std::size_t>& cells,
                                              std::size_t model_cells);

}  // namespace mtg
