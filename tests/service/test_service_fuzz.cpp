// Seeded schedule fuzzer for the matrix service: each case draws a random
// service configuration (threads, queue capacity, backpressure policy,
// external token), a random job batch, a random scheduler-fault injection
// schedule and a racing canceller thread, then asserts the service's
// robustness contract:
//
//  * no crash, no exception escaping submit()/wait()/drain()/~MatrixService;
//  * no hang — a watchdog thread aborts the process with the replay seed if
//    a case wedges (the failure mode a lost condition-variable notify or an
//    undrained queue would produce);
//  * every admitted job reaches a terminal state, and every COMPLETED job's
//    report is byte-identical (store-codec bytes) to a solo
//    evaluate_coverage run of the same parameters — cancellation schedules
//    and fault injections may decide WHETHER a job completes, never WHAT a
//    completed job reports.
//
// Reproducibility: every case derives from a single 64-bit seed printed on
// failure.  Replay one case with MTG_FUZZ_SEED=<seed>; rescale the sweep
// with MTG_SERVICE_FUZZ_CASES=<n> (cases here run whole service lifecycles,
// so the default is far below the differential fuzzer's — the sanitizer CI
// jobs reduce it further).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "service/matrix_service.hpp"
#include "sim/coverage.hpp"
#include "store/fault_injection.hpp"
#include "store/storage.hpp"
#include "store/sweep_store.hpp"

namespace mtg {
namespace {

// splitmix64 (the repo's fuzz PRNG): portable, seed-stable.
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }

  bool coin() { return (next() & 1u) != 0; }
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Aborts the whole process if the fuzz sweep wedges: a deadlocked service
/// would otherwise hang CI with no diagnostics.  Disarmed on destruction.
class Watchdog {
 public:
  Watchdog(std::chrono::seconds budget, const std::uint64_t* current_seed)
      : thread_([this, budget, current_seed] {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!done_.wait_for(lock, budget, [this] { return disarmed_; })) {
            std::fprintf(stderr,
                         "service fuzz watchdog: wedged after %llds "
                         "(replay: MTG_FUZZ_SEED=%llu)\n",
                         static_cast<long long>(budget.count()),
                         static_cast<unsigned long long>(*current_seed));
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    done_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  bool disarmed_ = false;
  std::thread thread_;
};

/// The fuzzer's job pool: a few cheap (test, n) combos against one shared
/// list, with solo reference bytes computed once per combo.
struct Combo {
  MarchTest test;
  std::size_t memory_size;
};

std::string solo_bytes(const Combo& combo, const FaultList& list,
                       std::size_t cap) {
  SimulatorOptions options;
  options.memory_size = combo.memory_size;
  options.coverage_threads = 1;
  const CoverageReport report = evaluate_coverage(
      FaultSimulator(options), combo.test, list, cap);
  return SweepStore::encode_record(SweepKey{}, report);
}

TEST(ServiceFuzz, RandomSchedulesNeverCorruptCompletedReports) {
  const std::uint64_t base_seed = env_u64("MTG_FUZZ_SEED", 0);
  const bool replay_single = std::getenv("MTG_FUZZ_SEED") != nullptr;
  const std::uint64_t cases =
      replay_single ? 1 : env_u64("MTG_SERVICE_FUZZ_CASES", 30);

  const auto list = std::make_shared<const FaultList>(fault_list_1());
  constexpr std::size_t kCap = 64;
  // march_sl vs list1 has full static coverage, so the static-prefilter
  // coin below exercises both a combo the analyzer serves and combos it
  // declines back to the simulated path.
  const std::vector<Combo> combos = {
      {mats_plus(), 4}, {mats_plus(), 6},   {march_y(), 4},
      {march_y(), 6},   {march_c_minus(), 6}, {march_sl(), 6},
  };
  std::vector<std::string> reference;
  reference.reserve(combos.size());
  for (const Combo& combo : combos) {
    reference.push_back(solo_bytes(combo, *list, kCap));
  }

  std::uint64_t current_seed = 0;
  Watchdog watchdog(std::chrono::seconds(240), &current_seed);

  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = replay_single ? base_seed : 0x5E4F1CEull + i;
    current_seed = seed;
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (replay: MTG_FUZZ_SEED=" + std::to_string(seed) + ")");
    Rng rng(seed);

    // Random configuration.
    MatrixServiceOptions options;
    options.threads = 1 + rng.below(4);
    options.queue_capacity = 1 + rng.below(8);
    options.when_full = rng.coin() ? BackpressurePolicy::Block
                                   : BackpressurePolicy::Reject;
    // The static serving tier must be invisible to report content under
    // every schedule: flip it per case and hold the same byte references.
    options.static_prefilter = rng.coin();
    CancelToken external;
    const bool use_external = rng.below(4) == 0;
    if (use_external) options.cancel = &external;

    // Random store health: absent, healthy, or failing sticky from the
    // k-th operation.
    InMemoryStorage base_storage;
    FaultInjectedStorage storage(base_storage);
    std::unique_ptr<SweepStore> store;
    const std::size_t store_mode = rng.below(3);
    if (store_mode != 0) {
      SweepStoreOptions store_options;
      store_options.retry_backoff = std::chrono::milliseconds(0);
      store_options.warn = [](const std::string&) {};
      store.reset(new SweepStore(storage, "fuzz-store", store_options));
      store->open();
      if (store_mode == 2) {
        storage.fail_kth_operation(1 + rng.below(20), StoreFaultMode::Error,
                                   /*sticky=*/rng.coin());
      }
      options.store = store.get();
    }

    // Random scheduler-fault schedule: each dispatch index gets an action
    // drawn from the seed (mostly None; delays stay tiny to bound runtime).
    const std::uint64_t hook_seed = rng.next();
    options.scheduler_hook = [hook_seed](std::size_t index, std::size_t) {
      Rng hook_rng(hook_seed ^ (0x9E3779B97F4A7C15ull * index));
      SchedulerFault fault;
      switch (hook_rng.below(8)) {
        case 0:
          fault.action = SchedulerFaultAction::Delay;
          fault.delay = std::chrono::milliseconds(hook_rng.below(3));
          break;
        case 1:
          fault.action = SchedulerFaultAction::Fail;
          break;
        case 2:
          fault.action = SchedulerFaultAction::CancelBeforeRun;
          break;
        case 3:
          fault.action = SchedulerFaultAction::CancelMidRun;
          break;
        default:
          break;
      }
      return fault;
    };

    const std::size_t num_jobs = 4 + rng.below(12);
    std::vector<std::size_t> combo_of_job(num_jobs);
    std::vector<std::size_t> ids;
    ids.reserve(num_jobs);
    {
      MatrixService service(options);

      // Racing canceller: a second thread cancels random job ids (some not
      // yet submitted, some long done — both must be harmless no-ops) and
      // sometimes trips the external token.
      const std::uint64_t cancel_seed = rng.next();
      const bool cancel_externally = use_external && rng.coin();
      std::thread canceller([&service, &external, cancel_seed, num_jobs,
                             cancel_externally] {
        Rng cancel_rng(cancel_seed);
        for (int round = 0; round < 8; ++round) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(cancel_rng.below(2000)));
          service.cancel(cancel_rng.below(num_jobs + 4));
        }
        if (cancel_externally) external.cancel();
      });

      for (std::size_t j = 0; j < num_jobs; ++j) {
        combo_of_job[j] = rng.below(combos.size());
        MatrixJob job;
        job.test = combos[combo_of_job[j]].test;
        job.list = list;
        job.memory_size = combos[combo_of_job[j]].memory_size;
        job.max_instances_per_fault = kCap;
        if (rng.below(4) == 0) {
          // Mix of deadlines that certainly pass and certainly don't.
          job.deadline = rng.coin() ? std::chrono::milliseconds(1)
                                    : std::chrono::seconds(60);
        }
        ids.push_back(service.submit(job).job_id);
      }
      canceller.join();

      const std::vector<MatrixJobResult> results = service.drain();
      ASSERT_EQ(results.size(), num_jobs);
      for (std::size_t j = 0; j < results.size(); ++j) {
        const MatrixJobResult& result = results[j];
        switch (result.status) {
          case JobStatus::Completed:
            EXPECT_EQ(SweepStore::encode_record(SweepKey{}, result.report),
                      reference[combo_of_job[j]])
                << "job " << j << " (from_store=" << result.from_store
                << "): a completed report diverged from the solo run";
            break;
          case JobStatus::Failed:
          case JobStatus::Cancelled:
          case JobStatus::DeadlineExceeded:
          case JobStatus::Rejected:
            EXPECT_TRUE(result.report.entries.empty())
                << "job " << j << ": " << to_string(result.status)
                << " must not carry a partial report";
            break;
          case JobStatus::Queued:
          case JobStatus::Running:
            ADD_FAILURE() << "job " << j << " not terminal after drain(): "
                          << to_string(result.status);
            break;
        }
      }
      // ~MatrixService: cancel, drain, join — the watchdog guards this too.
    }
  }
}

}  // namespace
}  // namespace mtg
