// Cross-test subsumption prover over closed-form fault universes.
//
// Test A *subsumes* test B over a fault universe U at memory size n when
// every fault of U that B detects (all instances, all scenarios) is also
// detected by A.  The prover compares the analyzer's symbolic verdict sets
// fault by fault — no simulation — and the verdict is sound against the
// engines by the analyzer's own soundness contract:
//
//   * Subsumes      — for every fault f: B Detected implies A Detected
//   * NotSubsumes   — a concrete witness fault: B detects it, A lets a
//                     scenario escape (the witness carries both B's
//                     detection and A's escaping scenario)
//   * Unknown       — some fault needed for the comparison came back
//                     Unknown from the analyzer (out-of-domain machines
//                     only; the built-in families are all definite)
//
// A concrete NotSubsumes counterexample beats an Unknown elsewhere in the
// universe: the verdict is NotSubsumes as soon as one witness exists.
//
// The universe itself is expressible in closed form — sums of built-in
// FP-family keywords and decoder address-line ranges — so certificates can
// name it as a short spec string instead of embedding thousands of fault
// records:
//
//   "simple+linked2+decoder[0,12)"
//
// Families: simple, retention, linked1, linked2, linked3, linkedrt, list1,
// list2; decoder[a,b) covers the five classes (AFna, AFwc, AFmc wired-AND,
// AFmc wired-OR, AFma) per address line in [a, b) — decoder[0,12) is
// exactly the built-in decoder_fault_list().  materialize() concatenates
// the terms into one FaultList (instantiate_all's section order: simple,
// then linked, then decoder — fault indices refer to that enumeration).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "fp/fault_list.hpp"
#include "march/march_test.hpp"

namespace mtg {

/// A closed-form fault universe: a sum of family / decoder-range / concrete
/// terms.  Parseable universes round-trip through spec(); universes built
/// from a concrete external list have an empty spec and live only in
/// memory (certificates then pin them by content hash alone).
struct FaultUniverse {
  struct Term {
    enum class Kind : std::uint8_t { Family, DecoderRange, Concrete };
    Kind kind = Kind::Family;
    std::string family;         ///< Family: canonical keyword
    std::size_t bit_begin = 0;  ///< DecoderRange: first broken line
    std::size_t bit_end = 0;    ///< DecoderRange: one past the last line
    FaultList list;             ///< Concrete: the records themselves
  };

  std::vector<Term> terms;

  /// Parses a '+'-separated spec ("simple+decoder[0,12)").  "decoder"
  /// without a range means decoder[0,12).  Throws mtg::Error on unknown
  /// keywords or malformed ranges.
  static FaultUniverse parse(std::string_view spec);

  /// Wraps a concrete list as a single-term universe (spec() == "").
  static FaultUniverse of(FaultList list);

  /// Canonical spec string, parseable by parse(); empty when any term is
  /// concrete.
  std::string spec() const;

  /// Concatenates the terms into one FaultList, named by the spec.
  FaultList materialize() const;
};

enum class SubsumptionVerdict : std::uint8_t {
  Subsumes,     ///< every fault B detects, A detects
  NotSubsumes,  ///< witness fault: B detects it, A does not
  Unknown,      ///< the analyzer could not resolve a needed fault
};

std::string to_string(SubsumptionVerdict verdict);

/// The counterexample attached to a NotSubsumes verdict.
struct SubsumptionWitness {
  std::size_t fault_index = 0;  ///< index in the materialized universe
  std::string fault_name;
  std::string escape;  ///< A's escaping scenario (analyzer NotDetected reason)
  /// How B detects the fault (sensitization + observing read, replayable).
  std::optional<StaticWitness> detection;
};

struct SubsumptionResult {
  SubsumptionVerdict verdict = SubsumptionVerdict::Unknown;
  std::optional<SubsumptionWitness> witness;  ///< iff NotSubsumes
  std::string reason;                         ///< Unknown cause
  std::size_t faults = 0;         ///< universe size at n
  std::size_t detected_by_a = 0;  ///< faults A detects
  std::size_t detected_by_b = 0;  ///< faults B detects

  bool subsumes() const noexcept {
    return verdict == SubsumptionVerdict::Subsumes;
  }
};

/// Does A subsume B over `universe` at memory size n?
SubsumptionResult prove_subsumption(const MarchTest& a, const MarchTest& b,
                                    const FaultList& universe, std::size_t n,
                                    const AnalysisOptions& options = {});

SubsumptionResult prove_subsumption(const MarchTest& a, const MarchTest& b,
                                    const FaultUniverse& universe,
                                    std::size_t n,
                                    const AnalysisOptions& options = {});

}  // namespace mtg
