#include "fp/afp.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mtg {

std::string to_string(const AddressedOp& aop) {
  if (aop.op == Op::T) return "t";  // the wait operation has no address
  return to_string(aop.op) + "[" + std::to_string(aop.cell) + "]";
}

std::string to_string(const std::vector<AddressedOp>& ops) {
  std::ostringstream out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out << ',';
    out << to_string(ops[i]);
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const AddressedOp& aop) {
  return os << to_string(aop);
}

std::string Afp::to_string() const {
  std::ostringstream out;
  out << '(' << initial << ", " << mtg::to_string(sensitize) << ", " << faulty
      << ", " << good << ')';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Afp& afp) {
  return os << afp.to_string();
}

std::string TestPattern::to_string() const {
  std::ostringstream out;
  out << '(' << initial << ", " << mtg::to_string(ops) << ')';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TestPattern& tp) {
  return os << tp.to_string();
}

namespace {

/// The sensitizing operation of `fp` bound to its cell, annotated with the
/// fault-free expected value for reads; std::nullopt for state faults.
std::optional<AddressedOp> sensitizing_op(const FaultPrimitive& fp,
                                          std::size_t a_cell,
                                          std::size_t v_cell) {
  if (fp.is_state_fault()) return std::nullopt;
  const std::size_t cell = fp.op_on_aggressor() ? a_cell : v_cell;
  switch (fp.sense_op()) {
    case SenseOp::W0: return AddressedOp{cell, Op::W0};
    case SenseOp::W1: return AddressedOp{cell, Op::W1};
    case SenseOp::Rd: {
      // A sensitizing read reads the cell's current fault-free value.
      const Bit expected = fp.op_on_aggressor() ? fp.a_state() : fp.v_state();
      return AddressedOp{cell, make_read(expected)};
    }
    case SenseOp::Wt: return AddressedOp{cell, Op::T};
    case SenseOp::None: break;
  }
  throw InternalError("sensitizing_op: unreachable");
}

}  // namespace

std::vector<Afp> expand_afps(const FaultPrimitive& fp, std::size_t a_cell,
                             std::size_t v_cell, std::size_t model_cells) {
  require(model_cells >= 1 && model_cells <= SmallState::kMaxCells,
          "expand_afps: bad model size");
  require(v_cell < model_cells && a_cell < model_cells,
          "expand_afps: cell index out of range");
  if (fp.is_two_cell()) {
    require(a_cell != v_cell, "expand_afps: two-cell FP needs distinct cells");
  } else {
    require(a_cell == v_cell, "expand_afps: single-cell FP has a_cell == v_cell");
  }

  // Cells not constrained by the FP get every possible background value.
  std::vector<std::size_t> free_cells;
  for (std::size_t c = 0; c < model_cells; ++c) {
    if (c != v_cell && !(fp.is_two_cell() && c == a_cell)) free_cells.push_back(c);
  }

  std::vector<Afp> result;
  const std::size_t backgrounds = std::size_t{1} << free_cells.size();
  for (std::size_t bg = 0; bg < backgrounds; ++bg) {
    Afp afp;
    afp.victim = v_cell;
    afp.aggressor = a_cell;
    SmallState initial(model_cells);
    initial.set(v_cell, fp.v_state());
    if (fp.is_two_cell()) initial.set(a_cell, fp.a_state());
    for (std::size_t i = 0; i < free_cells.size(); ++i) {
      initial.set(free_cells[i], (bg >> i) & 1u ? Bit::One : Bit::Zero);
    }
    afp.initial = initial;

    if (auto op = sensitizing_op(fp, a_cell, v_cell)) afp.sensitize = {*op};

    // Fault-free final state Gv: apply the operation normally.
    SmallState good = initial;
    for (const AddressedOp& aop : afp.sensitize) {
      if (is_write(aop.op)) good.set(aop.cell, written_value(aop.op));
    }
    afp.good = good;

    // Faulty final state Fv: operation effect plus the victim forced to F.
    SmallState faulty = good;
    faulty.set(v_cell, fp.fault_value());
    afp.faulty = faulty;

    result.push_back(std::move(afp));
  }
  return result;
}

TestPattern to_test_pattern(const Afp& afp) {
  TestPattern tp;
  tp.initial = afp.initial;
  tp.victim = afp.victim;
  tp.observe = AddressedOp{afp.victim, make_read(afp.good.get(afp.victim))};
  tp.ops = afp.sensitize;
  tp.ops.push_back(tp.observe);
  tp.end_state = afp.faulty;
  return tp;
}

}  // namespace mtg
