// Addressed Fault Primitives (Definition 4) and Test Patterns (Definition 5).
//
// An AFP instantiates a fault primitive on a small k-cell *model* memory with
// explicit addresses and explicit faulty/fault-free final states:
//
//   AFP = (I, Es, Fv, Gv)
//
// A Test Pattern adds the observation read that exposes the fault:
//
//   TP = (I, E, O)
//
// These model-level objects are the labels/edges of the pattern graph
// (Section 4) and the inputs of the generation algorithm (Section 5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/op.hpp"
#include "common/state.hpp"
#include "fp/fault_primitive.hpp"

namespace mtg {

/// A memory operation bound to a model cell.
struct AddressedOp {
  std::size_t cell = 0;
  Op op = Op::R;

  friend bool operator==(const AddressedOp& a, const AddressedOp& b) {
    return a.cell == b.cell && a.op == b.op;
  }
  friend bool operator!=(const AddressedOp& a, const AddressedOp& b) {
    return !(a == b);
  }
};

/// "w1[0]"-style rendering; reads carry the expected fault-free value.
std::string to_string(const AddressedOp& aop);
std::string to_string(const std::vector<AddressedOp>& ops);
std::ostream& operator<<(std::ostream& os, const AddressedOp& aop);

/// Addressed Fault Primitive (Definition 4).
struct Afp {
  SmallState initial;                  ///< I  — state before sensitization
  std::vector<AddressedOp> sensitize;  ///< Es — empty for state faults
  SmallState faulty;                   ///< Fv — state after Es on the faulty memory
  SmallState good;                     ///< Gv — state after Es on a fault-free memory
  std::size_t victim = 0;              ///< address of the victim cell
  std::size_t aggressor = 0;           ///< address of the aggressor (== victim for 1-cell)

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Afp& afp);

/// Test Pattern (Definition 5): sensitization plus the observation read.
struct TestPattern {
  SmallState initial;             ///< I
  std::vector<AddressedOp> ops;   ///< E followed by the observation read O
  AddressedOp observe;            ///< O — read of the victim, expecting Gv[victim]
  SmallState end_state;           ///< faulty-machine state after the pattern
  std::size_t victim = 0;

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const TestPattern& tp);

/// Expands `fp` bound to cells (a_cell, v_cell) of a `model_cells`-cell model
/// memory into AFPs, one per assignment of the uninvolved cells (Definition 4
/// instantiates *every* cell of the model, so a k-cell model and a fault
/// touching m cells yield 2^(k-m) AFPs).
std::vector<Afp> expand_afps(const FaultPrimitive& fp, std::size_t a_cell,
                             std::size_t v_cell, std::size_t model_cells);

/// Builds the Test Pattern covering `afp` (Definition 5): its sensitization
/// followed by a read of the victim expecting the fault-free value.
TestPattern to_test_pattern(const Afp& afp);

}  // namespace mtg
