// Locks the incremental generator pipeline (persistent certification state,
// fault dropping, checkpointed minimization) byte-identical to the
// from-scratch implementation it replaced:
//
//  * Golden tests: the generated march test for every built-in fault list,
//    captured from the pre-incremental implementation (the sequential
//    certification loop re-simulating every instance per CEGIS round and
//    the detects_all-per-trial minimizer).  Any divergence — however the
//    engine is refactored — fails here first.
//  * Thread invariance: gain_threads × certify_threads sweeps produce the
//    same test as the single-threaded run.
//  * Minimizer differential: minimize_test (checkpointed) equals
//    minimize_test_rescan (the retained from-scratch reference) on padded
//    and catalog tests.
#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fp/fault_list.hpp"
#include "gen/minimizer.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

FaultList list_by_name(const std::string& name) {
  if (name == "list1") return fault_list_1();
  if (name == "list2") return fault_list_2();
  if (name == "simple") return standard_simple_static_faults();
  return retention_fault_list();
}

struct Golden {
  const char* list;
  const char* test;  ///< ascii to_string of the pre-incremental generator
};

TEST(IncrementalGenerator, DefaultOptionsMatchPreIncrementalGoldens) {
  // Captured from the from-scratch implementation (commit 2634ec0) with
  // default GeneratorOptions.
  const Golden goldens[] = {
      {"list2", "{c(w0); ^(r0); ^(r0); ^(w1,r1); ^(r1); ^(w1,r1)}"},
      {"simple",
       "{c(w0); ^(r0,w1,r1); ^(r1,w0,r0); v(r0,w1,w1,r1); "
       "v(r1,w1,r1,w0,w0,r0); v(r0,w0,r0,w1); ^(r1)}"},
      {"retention", "{c(w0); ^(w1,t); ^(t,r1,w0); ^(t,r0,w1); ^(w0,t,r0)}"},
      {"list1",
       "{c(w0); ^(r0,w1,r1); ^(r1,w0,r0); ^(r0); v(r0,w1,w1,r1); "
       "v(r1,w1,r1,w0); ^(r0); ^(w0); ^(r0,w0,r0,r0,w1); ^(r1,w0,w0,w1); "
       "^(r1); v(r1,w0,r0,w1); ^(r1)}"},
  };
  for (const Golden& golden : goldens) {
    const GenerationResult result =
        generate_march_test(list_by_name(golden.list));
    EXPECT_EQ(result.test.to_string(/*ascii=*/true), golden.test)
        << golden.list;
    EXPECT_TRUE(result.full_coverage) << golden.list;
    // The persistent engine drops every certify instance it pays for; the
    // static prefilter keeps statically-discharged instances out entirely.
    EXPECT_GT(result.stats.instances_dropped +
                  result.stats.static_skipped_instances,
              0u)
        << golden.list;
  }
}

TEST(IncrementalGenerator, VariantOptionsMatchPreIncrementalGoldens) {
  // working=2 exercises a deliberately weak phase A; no-minimize skips the
  // checkpointed rewind; single power-on state halves the scenario space.
  GeneratorOptions weak;
  weak.working_memory_size = 2;
  weak.certify_memory_size = 6;
  weak.minimize_memory_size = 4;
  weak.max_element_length = 5;
  const GenerationResult weak_simple =
      generate_march_test(list_by_name("simple"), weak);
  EXPECT_EQ(weak_simple.test.to_string(true),
            "{^(w0); v(r0,w1,w1,r1); v(r1,w0,w0,r0); ^(r0,w1,w1,r1); "
            "^(r1,w0,w0,r0); ^(r0)}");

  GeneratorOptions no_minimize;
  no_minimize.minimize = false;
  const GenerationResult raw =
      generate_march_test(list_by_name("simple"), no_minimize);
  EXPECT_EQ(raw.test.to_string(true),
            "{c(w0); ^(r0); ^(r0,w1,r1); ^(r1); ^(r1,w0,r0); ^(r0); "
            "v(r0,w1,w1,r1); ^(r1); v(r1,w1,r1,w0,w0,r0); ^(r0); "
            "v(r0,w0,r0,w1); ^(r1)}");

  GeneratorOptions single;
  single.both_power_on_states = false;
  const GenerationResult sp =
      generate_march_test(list_by_name("list2"), single);
  EXPECT_EQ(sp.test.to_string(true),
            "{c(w0); ^(r0); ^(r0); ^(w1,r1); ^(r1); ^(w0,r0)}");
}

TEST(IncrementalGenerator, ThreadCountsDoNotChangeTheTest) {
  // gain_threads parallelizes the greedy candidate scan, certify_threads
  // the persistent certification engine's item sync; both must keep the
  // generated test byte-identical (per-worker pruning only abandons losing
  // candidates, and certification items are independent with in-order
  // reductions).
  for (const char* name : {"list2", "simple", "retention"}) {
    const FaultList list = list_by_name(name);
    GeneratorOptions sequential;
    sequential.gain_threads = 1;
    sequential.certify_threads = 1;
    const GenerationResult reference = generate_march_test(list, sequential);
    const std::size_t pairs[][2] = {{2, 2}, {0, 0}, {1, 0}, {0, 1}};
    for (const auto& pair : pairs) {
      GeneratorOptions options;
      options.gain_threads = pair[0];
      options.certify_threads = pair[1];
      const GenerationResult result = generate_march_test(list, options);
      EXPECT_EQ(reference.test, result.test)
          << name << " gain_threads=" << pair[0]
          << " certify_threads=" << pair[1];
      EXPECT_EQ(reference.stats.greedy_rounds, result.stats.greedy_rounds);
      EXPECT_EQ(reference.stats.certify_iterations,
                result.stats.certify_iterations);
    }
  }
  // The big list once, hardware-threaded against the golden (which the
  // single-threaded default-options test above already pins).
  GeneratorOptions hw;
  hw.gain_threads = 0;
  hw.certify_threads = 0;
  const GenerationResult list1 =
      generate_march_test(list_by_name("list1"), hw);
  EXPECT_EQ(list1.test.to_string(true),
            "{c(w0); ^(r0,w1,r1); ^(r1,w0,r0); ^(r0); v(r0,w1,w1,r1); "
            "v(r1,w1,r1,w0); ^(r0); ^(w0); ^(r0,w0,r0,r0,w1); "
            "^(r1,w0,w0,w1); ^(r1); v(r1,w0,r0,w1); ^(r1)}");
}

TEST(IncrementalMinimizer, MatchesFromScratchRescanReference) {
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const FaultList list = fault_list_2();
  const auto instances = instantiate_all(list, 4);
  const MarchTest padded = parse_march_test(
      "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0); c(r0,w1); c(r1,w0)}", "padded");
  for (const MarchTest& test :
       {padded, march_abl1(), march_lf1(), march_ss(), march_g()}) {
    std::vector<std::string> log_inc, log_ref;
    const MarchTest incremental =
        minimize_test(simulator, test, instances, &log_inc);
    const MarchTest reference =
        minimize_test_rescan(simulator, test, instances, &log_ref);
    EXPECT_EQ(incremental, reference) << test.name();
    EXPECT_EQ(log_inc, log_ref) << test.name();
  }
}

TEST(IncrementalMinimizer, ScalarSimulatorFallsBackToRescan) {
  SimulatorOptions options;
  options.memory_size = 4;
  options.use_packed_engine = false;
  const FaultSimulator scalar(options);
  const auto instances = instantiate_all(fault_list_2(), 4);
  MinimizeStats stats;
  const MarchTest minimized =
      minimize_test(scalar, march_abl1(), instances, nullptr, &stats);
  EXPECT_GT(stats.full_rescans, 0u);
  const FaultSimulator packed(SimulatorOptions{4, true, 10});
  EXPECT_EQ(minimized, minimize_test(packed, march_abl1(), instances));
}

TEST(IncrementalMinimizer, TrialsNeverFullRescanOnThePackedPath) {
  // The acceptance property: the minimizer no longer answers trials with a
  // full-test detects_all pass — every trial replays only the suffix after
  // its edit (the precise per-trial bound is locked at engine level in
  // tests/sim/test_prefix_sim.cpp).
  const FaultSimulator simulator(SimulatorOptions{4, true, 10});
  const auto instances = instantiate_all(fault_list_2(), 4);
  const MarchTest padded = parse_march_test(
      "{c(w0); c(w0,r0,r0,w1); c(w1,r1,r1,w0); c(r0,w1); c(r1,w0)}", "padded");
  MinimizeStats stats;
  const MarchTest minimized =
      minimize_test(simulator, padded, instances, nullptr, &stats);
  EXPECT_EQ(stats.full_rescans, 0u);
  EXPECT_GT(stats.trials, 0u);
  EXPECT_GT(stats.element_replays, 0u);
  // A from-scratch rescan costs ~ trials × instances × elements replays;
  // the checkpointed path must come in well under that.
  EXPECT_LT(stats.element_replays,
            stats.trials * instances.size() * padded.elements().size() / 2);
  EXPECT_LT(minimized.complexity(), padded.complexity());
}

}  // namespace
}  // namespace mtg
