#include "sim/sweep.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "store/sweep_store.hpp"

namespace mtg {

std::vector<SweepPoint> sweep_coverage(const MarchTest& test,
                                       const FaultList& list,
                                       const std::vector<std::size_t>& sizes,
                                       const SweepOptions& options) {
  FaultSimulator::validate(test);
  for (const std::size_t n : sizes) {
    require(n >= 3, "sweep_coverage: every memory size must be >= 3, got " +
                        std::to_string(n));
  }

  // Content hashes are the store key halves; computed once per sweep, they
  // are what makes a record from a previous process reusable (names are
  // metadata and deliberately not part of the identity).
  const std::uint64_t test_hash = options.store ? stable_hash(test) : 0;
  const std::uint64_t list_hash = options.store ? stable_hash(list) : 0;
  const auto key_for = [&](std::size_t n) {
    SweepKey key;
    key.test_hash = test_hash;
    key.list_hash = list_hash;
    key.memory_size = n;
    key.max_instances_per_fault = options.max_instances_per_fault;
    return key;
  };

  std::vector<SweepPoint> points(sizes.size());
  const auto evaluate = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      points[i].memory_size = sizes[i];
      // A tripped token drains the remaining points immediately; the report
      // stays empty — a cancelled point is absent, never partial.
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        points[i].cancelled = true;
        continue;
      }
      if (options.store != nullptr &&
          options.store->load(key_for(sizes[i]), points[i].report)) {
        // The record stores content, the caller supplies presentation: a
        // cached report must be byte-identical to a fresh evaluation even
        // when the hit comes from a run that named the test differently.
        points[i].report.test_name = test.name();
        points[i].report.list_name = list.name;
        points[i].from_store = true;
        continue;
      }
      SimulatorOptions sim_options;
      sim_options.memory_size = sizes[i];
      sim_options.both_power_on_states = options.both_power_on_states;
      sim_options.max_any_order_elements = options.max_any_order_elements;
      sim_options.use_packed_engine = options.use_packed_engine;
      // Each point evaluates sequentially on its worker: the parallelism
      // lives across sweep points, not inside them.
      sim_options.coverage_threads = 1;
      try {
        points[i].report = evaluate_coverage(FaultSimulator(sim_options),
                                             test, list,
                                             options.max_instances_per_fault,
                                             options.cancel);
      } catch (const CancelledError&) {
        points[i].report = CoverageReport{};
        points[i].cancelled = true;
        continue;
      }
      if (options.store != nullptr) {
        // Persist the point as it lands: an interrupted sweep resumes from
        // every record that completed the atomic-replace protocol.  A save
        // failure only degrades the store, never this result.
        options.store->save(key_for(sizes[i]), points[i].report);
      }
    }
  };

  // The caller participates (coverage.cpp's pattern), so the pool only needs
  // workers for the other sweep points; single-point sweeps and threads == 1
  // skip pool construction entirely.
  const std::size_t threads = ThreadPool::resolve_thread_count(options.threads);
  const std::size_t workers =
      std::min(threads - 1, sizes.size() > 0 ? sizes.size() - 1 : 0);
  if (workers == 0) {
    evaluate(0, 0, sizes.size());
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(sizes.size(), /*chunk=*/1, evaluate);
  }
  return points;
}

std::size_t sweep_points_evaluated(const std::vector<SweepPoint>& points) {
  std::size_t evaluated = 0;
  for (const SweepPoint& point : points) {
    if (!point.from_store) ++evaluated;
  }
  return evaluated;
}

std::string sweep_summary(const std::vector<SweepPoint>& points) {
  std::ostringstream out;
  out << "      n   faults covered   instances detected   coverage\n";
  for (const SweepPoint& point : points) {
    if (point.cancelled) {
      out << std::setw(7) << point.memory_size
          << "   (cancelled before completion)\n";
      continue;
    }
    const CoverageReport& r = point.report;
    out << std::setw(7) << point.memory_size << "   " << std::setw(6)
        << r.faults_covered() << "/" << r.faults_total() << "        "
        << std::setw(8) << r.instances_detected() << "/" << r.instances_total()
        << "        " << std::fixed << std::setprecision(2)
        << r.fault_coverage_percent() << "%\n";
  }
  return out.str();
}

}  // namespace mtg
