// Operational semantics of fault primitives: the faulty-memory machine.
//
// A FaultyMemory is an n-cell memory with a set of *bound* fault primitives
// (FPs instantiated at concrete addresses).  It executes read/write/wait
// operations with the behavioural deviations the FPs describe.  Both the
// fault simulator (sim/) and the linked-fault checker (fp/linked_fault)
// are built on this single engine, so masking between linked FPs emerges
// from the semantics instead of being special-cased.
//
// Semantics:
//  * Operation-sensitized FPs fire when the operation kind, target address
//    and the *pre-operation* states of their cells match the sensitizer.
//    The sensitization is evaluated on the faulty machine (this is what
//    makes Definition 7's I2 = Fv1 chaining work).  A fired FP forces the
//    victim to its fault value F after the operation's normal effect; if the
//    sensitizing operation is a read of the victim, the returned value is R.
//  * The wait operation `t` is addressed like reads and writes: a march
//    element applies it to every cell in turn, so each cell experiences the
//    pause during its own visit.  A wait sensitizes retention FPs (DRF /
//    CFrt, SenseOp::Wt) whose victim is the visited cell: the cell decays to
//    its fault value.  Decay is idempotent (the decayed state no longer
//    matches the sensitizing state), so the number of waits between
//    refreshing writes does not matter — one models "a pause long enough".
//  * State faults (SF / CFst) are edge-triggered: a state fault fires when
//    its state condition *becomes* true; after firing it re-arms only once
//    the condition has been false again.  Each fault instance fires at most
//    once per memory operation (a static fault is sensitized by at most one
//    operation by definition), which keeps mutually-opposing state faults
//    from oscillating forever.
//  * power_on(state) models test start: the memory content is forced and
//    state faults settle once.
//  * Address-decoder faults (fp/decoder_fault.hpp) corrupt the *addressing*
//    instead of the cell behaviour: operations addressed at the bound
//    decoder fault's corrupted address are dropped, redirected or fanned out
//    per its class before they reach any cell.  A faulty machine carries
//    either fault primitives or (at most one) decoder fault, never both —
//    the decoder deviation is in the select path, and combining it with
//    cell-level FPs in one instance is out of scope.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/state.hpp"
#include "fp/decoder_fault.hpp"
#include "fp/fault_primitive.hpp"

namespace mtg {

/// A fault primitive bound to concrete cell addresses.
struct BoundFp {
  FaultPrimitive fp;
  std::size_t a_cell = 0;  ///< aggressor address; equals v_cell for 1-cell FPs
  std::size_t v_cell = 0;  ///< victim address

  BoundFp(FaultPrimitive f, std::size_t a, std::size_t v);

  /// Single-cell convenience binder.
  static BoundFp at(FaultPrimitive f, std::size_t cell) {
    return BoundFp(std::move(f), cell, cell);
  }

  std::string to_string() const;
};

class FaultyMemory {
 public:
  /// Fault-free memory of `num_cells` cells.
  explicit FaultyMemory(std::size_t num_cells)
      : FaultyMemory(num_cells, {}) {}

  /// `decoders` holds at most one bound decoder fault, and only when
  /// `faults` is empty (see the class comment).
  FaultyMemory(std::size_t num_cells, std::vector<BoundFp> faults,
               std::vector<BoundDecoder> decoders = {});

  std::size_t num_cells() const noexcept { return state_.size(); }
  const std::vector<BoundFp>& faults() const noexcept { return faults_; }
  const std::vector<BoundDecoder>& decoder_faults() const noexcept {
    return decoders_;
  }

  /// Forces the memory content (power-on / test start), re-arms every state
  /// fault and lets state faults settle once on the initial content.
  void power_on(const MemoryState& initial);

  /// Convenience: power on with every cell holding `value`.
  void power_on_uniform(Bit value);

  /// Performs a write; fault effects applied per the class comment.
  void write(std::size_t address, Bit value);

  /// Performs a read and returns the (possibly faulty) value.
  Bit read(std::size_t address);

  /// Performs the wait operation `t` on the visited cell: retention FPs
  /// whose victim is `address` decay it to their fault value (no default
  /// content change otherwise).
  void wait(std::size_t address);

  const MemoryState& state() const noexcept { return state_; }

  /// Number of times fault #i fired since the last power_on.
  std::size_t fire_count(std::size_t fault_index) const;

  // -- Compact snapshots (hot path of the generation engine) -----------
  // Valid for memories of any size and at most 32 bound faults; fire
  // counters are not part of the snapshot.

  /// Cell contents packed into bits 0..n-1 (multi-word; any n).
  PackedBits packed_state() const;
  void set_packed_state(const PackedBits& bits);
  /// State-fault armed flags packed into bits 0..#faults-1.
  std::uint32_t packed_armed() const;
  void set_packed_armed(std::uint32_t bits);

  /// Total number of FP firings since the last power_on.
  std::size_t total_fires() const noexcept { return total_fires_; }

 private:
  enum class OpTarget { Write, Read, Wait };

  /// Evaluates operation-sensitized FPs against the pre-op state, applies the
  /// default operation effect, fault overrides and state-fault settling.
  /// Returns the value delivered by a read.  Allocation-free (hot path of
  /// the generation engine).
  Bit apply(OpTarget target, std::size_t address, Bit written);

  /// Must be called on the pre-operation state (before mutation).
  bool op_matches(const BoundFp& bound, OpTarget target, std::size_t address,
                  Bit written) const;
  bool state_condition_holds(const BoundFp& bound) const;
  void settle_state_faults(std::uint32_t& fired_this_op);
  void rearm_state_faults();

  MemoryState state_;
  std::vector<BoundFp> faults_;
  std::vector<BoundDecoder> decoders_;  // at most one; excludes faults_
  std::vector<bool> armed_;             // state faults only (true = may fire)
  std::vector<std::size_t> fire_counts_;
  std::size_t total_fires_ = 0;
};

}  // namespace mtg
