#include "march/analysis.hpp"

#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace mtg {

std::string MarchProfile::to_string() const {
  std::ostringstream out;
  out << complexity << "n, " << elements << " elements (" << reads << "r/"
      << writes << "w/" << waits << "t per cell)";
  const auto flag = [&](const char* name, const bool value[2]) {
    out << "\n  " << name << ": ";
    out << (value[0] ? "0" : "-") << (value[1] ? "1" : "-");
  };
  flag("reads value", reads_value);
  flag("transition write observed (TF)", transition_write_observed);
  flag("non-transition write observed (WDF)", nontransition_write_observed);
  flag("double read (DRDF)", double_read);
  flag("⇑ sensitizing read (a<v CF observation)", up_sensitizing_read);
  flag("⇓ sensitizing read (v<a CF observation)", down_sensitizing_read);
  flag("observed retention wait (DRF)", retention_observed);
  flag("⇑ read then complement write (AF)", up_read_complement_write);
  flag("⇓ read then complement write (AF)", down_read_complement_write);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const MarchProfile& profile) {
  return os << profile.to_string();
}

MarchProfile analyze(const MarchTest& test) {
  require(test.consistency_violation().empty(),
          "analyze: inconsistent march test: " + test.consistency_violation());

  MarchProfile profile;
  profile.elements = test.size();
  profile.complexity = test.complexity();

  // Walk the per-cell operation stream (all elements concatenated; every
  // cell sees the same stream, only the interleaving across cells differs).
  std::optional<Bit> value;       // cell value along the stream
  std::optional<Bit> pending_tf;  // last write was a transition to this value
  std::optional<Bit> pending_wdf; // last write was non-transition on this value
  std::optional<Bit> last_read;   // value seen by the immediately preceding read
  std::optional<Bit> pending_drf; // cell sat through a wait holding this value

  for (const MarchElement& element : test.elements()) {
    bool wrote_in_element = false;
    bool read_in_element[2] = {false, false};  // value d read so far
    const auto note_complement_write = [&](Bit written) {
      // Reading d and later writing d̄ within one element — the classical
      // address-decoder detection structure, credited per sweep direction.
      const int d = to_int(flip(written));
      if (!read_in_element[d]) return;
      if (element.order() != AddressOrder::Down) {
        profile.up_read_complement_write[d] = true;
      }
      if (element.order() != AddressOrder::Up) {
        profile.down_read_complement_write[d] = true;
      }
    };
    for (const Op op : element.ops()) {
      if (is_wait(op)) {
        ++profile.waits;
        // The cell holds `value` through the pause; a later read of that
        // value (before a refreshing write) observes DRF decay.
        if (value.has_value()) pending_drf = value;
        continue;
      }
      if (is_write(op)) {
        ++profile.writes;
        const Bit d = written_value(op);
        note_complement_write(d);
        if (value.has_value()) {
          if (*value == d) {
            pending_wdf = d;
            pending_tf.reset();
          } else {
            pending_tf = d;
            pending_wdf.reset();
          }
        }
        value = d;
        last_read.reset();
        pending_drf.reset();  // a write refreshes the retention state
        wrote_in_element = true;
        continue;
      }
      // Read.
      ++profile.reads;
      const std::optional<Bit> expected =
          expected_value(op).has_value() ? expected_value(op) : value;
      if (expected.has_value()) {
        const int d = to_int(*expected);
        profile.reads_value[d] = true;
        // Only reads *before* any write of the element observe the state
        // the previous element left at other addresses — a read after an
        // intra-element write senses that write back and cannot
        // distinguish address pairs.
        if (!wrote_in_element) read_in_element[d] = true;
        if (pending_tf.has_value() && *pending_tf == *expected) {
          // Reading back a transition write exposes TF toward that value.
          profile.transition_write_observed[d] = true;
        }
        if (pending_wdf.has_value() && *pending_wdf == *expected) {
          profile.nontransition_write_observed[d] = true;
        }
        if (last_read.has_value() && *last_read == *expected) {
          profile.double_read[d] = true;
        }
        if (pending_drf.has_value() && *pending_drf == *expected) {
          profile.retention_observed[d] = true;
        }
        if (!wrote_in_element) {
          // A read before any write of the element observes the victim in
          // the state the previous element left: this is what detects
          // coupling faults sensitized from the other side of the address
          // order.
          if (element.order() != AddressOrder::Down) {
            profile.up_sensitizing_read[d] = true;
          }
          if (element.order() != AddressOrder::Up) {
            profile.down_sensitizing_read[d] = true;
          }
        }
        last_read = expected;
      }
      pending_tf.reset();
      // A WDF stays exposed across consecutive reads (the state is faulty
      // until rewritten), but one observation suffices for the profile:
      pending_wdf.reset();
    }
  }
  return profile;
}

std::vector<std::string> structural_gaps(const MarchTest& test) {
  const MarchProfile profile = analyze(test);
  std::vector<std::string> gaps;
  for (int d = 0; d < 2; ++d) {
    const char polarity = d == 0 ? '0' : '1';
    if (!profile.reads_value[d]) {
      gaps.push_back(std::string("never reads a ") + polarity +
                     ": SF/state faults of that polarity escape");
    }
    if (!profile.transition_write_observed[d]) {
      gaps.push_back(std::string("no observed transition write to ") +
                     polarity + ": TF" + (d == 1 ? "↑" : "↓") + " escapes");
    }
    if (!profile.nontransition_write_observed[d]) {
      gaps.push_back(std::string("no observed non-transition w") + polarity +
                     ": WDF" + polarity + " escapes");
    }
    if (!profile.double_read[d]) {
      gaps.push_back(std::string("no back-to-back reads of ") + polarity +
                     ": DRDF" + polarity + " escapes");
    }
    if (!profile.up_sensitizing_read[d]) {
      gaps.push_back(std::string("no ⇑ element starting with r") + polarity +
                     ": CFs with a<v sensitized at value " + polarity +
                     " escape");
    }
    if (!profile.down_sensitizing_read[d]) {
      gaps.push_back(std::string("no ⇓ element starting with r") + polarity +
                     ": CFs with v<a sensitized at value " + polarity +
                     " escape");
    }
  }
  return gaps;
}

std::vector<std::string> retention_gaps(const MarchTest& test) {
  const MarchProfile profile = analyze(test);
  std::vector<std::string> gaps;
  for (int d = 0; d < 2; ++d) {
    const char polarity = d == 0 ? '0' : '1';
    if (!profile.retention_observed[d]) {
      gaps.push_back(std::string("no observed wait while holding ") +
                     polarity + ": DRF" + polarity + " escapes");
    }
  }
  return gaps;
}

std::vector<std::string> decoder_gaps(const MarchTest& test) {
  const MarchProfile profile = analyze(test);
  std::vector<std::string> gaps;
  for (int d = 0; d < 2; ++d) {
    const char polarity = d == 0 ? '0' : '1';
    const char complement = d == 0 ? '1' : '0';
    if (!profile.up_read_complement_write[d]) {
      gaps.push_back(std::string("no ⇑ element reading ") + polarity +
                     " then writing " + complement +
                     ": decoder faults on address pairs swept low-to-high "
                     "can escape");
    }
    if (!profile.down_read_complement_write[d]) {
      gaps.push_back(std::string("no ⇓ element reading ") + polarity +
                     " then writing " + complement +
                     ": decoder faults on address pairs swept high-to-low "
                     "can escape");
    }
  }
  return gaps;
}

}  // namespace mtg
