// Checksums and stable hashing shared by the persistent layers.
//
// Two distinct needs, two distinct functions:
//
//  * crc32()        — integrity check for on-disk records (store/).  Detects
//    torn writes, bit flips and truncation; IEEE 802.3 polynomial, the same
//    one zlib/PNG use, so records can be cross-checked with external tools.
//  * stable_hash64() — identity of canonical serializations (store keys).
//    FNV-1a, 64-bit: deterministic across runs, platforms and endianness
//    because it consumes bytes in string order.  NOT std::hash, which is
//    explicitly allowed to differ between implementations and processes.
#pragma once

#include <cstdint>
#include <string_view>

namespace mtg {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `data`.
std::uint32_t crc32(std::string_view data);

/// 64-bit FNV-1a of `data`: the stable content hash used for store keys.
std::uint64_t stable_hash64(std::string_view data);

}  // namespace mtg
