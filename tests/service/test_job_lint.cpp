// Jobs-file linter tests: duplicate-job keys, undefined test/list
// references, implausible deadlines — each anchored to the offending
// record's line:column via the positions the parser records.
#include "service/job_lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "march/catalog.hpp"
#include "service/job_file.hpp"

namespace mtg {
namespace {

struct LintedFile {
  JobFile file;
  JobFilePositions positions;
  std::vector<LintFinding> findings;
};

LintedFile lint_text(const std::string& text, const MarchSuite* suite) {
  LintedFile linted;
  linted.file = parse_job_file_text(text, "jobs.txt", &linted.positions);
  linted.findings =
      lint_job_file(linted.file, suite, {}, "jobs.txt", &linted.positions);
  return linted;
}

bool has_category(const std::vector<LintFinding>& findings,
                  const std::string& category) {
  for (const LintFinding& finding : findings) {
    if (finding.category == category) return true;
  }
  return false;
}

TEST(JobLint, CleanFileHasNoFindings) {
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "job test=\"MATS+\" list=simple n=8\n"
      "job test=\"March C-\" list=list1 n=6 cap=64 deadline_ms=60000\n",
      nullptr);
  EXPECT_TRUE(linted.findings.empty());
}

TEST(JobLint, DuplicateJobKeyIsFlaggedAtTheSecondRecord) {
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "job test=\"MATS+\" list=simple n=8\n"
      "job test=\"MATS+\" list=simple n=8\n",
      nullptr);
  ASSERT_EQ(linted.findings.size(), 1u);
  const LintFinding& finding = linted.findings[0];
  EXPECT_EQ(finding.category, "duplicate-job");
  ASSERT_TRUE(finding.position.has_value());
  EXPECT_EQ(finding.position->line, 3u);
  EXPECT_NE(finding.message.find("line 2"), std::string::npos)
      << finding.message;
  EXPECT_NE(finding.format().find("jobs.txt:3:"), std::string::npos)
      << finding.format();
}

TEST(JobLint, DifferentCapOrSizeIsNotADuplicate) {
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "job test=\"MATS+\" list=simple n=8\n"
      "job test=\"MATS+\" list=simple n=6\n"
      "job test=\"MATS+\" list=simple n=8 cap=16\n",
      nullptr);
  EXPECT_FALSE(has_category(linted.findings, "duplicate-job"));
}

TEST(JobLint, UndefinedTestAndListReferencesAreFlagged) {
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "job test=\"No Such Test\" list=nosuchlist n=8\n",
      nullptr);
  ASSERT_EQ(linted.findings.size(), 2u);
  EXPECT_EQ(linted.findings[0].category, "undefined-reference");
  EXPECT_NE(linted.findings[0].message.find("No Such Test"),
            std::string::npos);
  EXPECT_EQ(linted.findings[1].category, "undefined-reference");
  EXPECT_NE(linted.findings[1].message.find("nosuchlist"), std::string::npos);
}

TEST(JobLint, SuiteAndAliasDefinitionsSatisfyReferences) {
  MarchSuite suite;
  suite.tests = {mats_plus()};
  // march notation in test= is never a name reference; the faultlist
  // directive's alias and the suite's test name both resolve.
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "suite \"classic.suite\"\n"
      "faultlist custom \"custom.faults\"\n"
      "job test=\"MATS+\" list=custom n=8\n"
      "job test=\"{c(w0); ^(r0,w1)}\" list=list2 n=6\n",
      &suite);
  EXPECT_TRUE(linted.findings.empty());
}

TEST(JobLint, ImplausibleDeadlinesAnchorToTheDeadlineKey) {
  const LintedFile linted = lint_text(
      "jobs v1\n"
      "job test=\"MATS+\" list=simple n=8 deadline_ms=0\n"
      "job test=\"MATS+\" list=simple n=6 deadline_ms=3\n"
      "job test=\"MATS+\" list=simple n=4 deadline_ms=90000000\n",
      nullptr);
  ASSERT_EQ(linted.findings.size(), 3u);
  for (const LintFinding& finding : linted.findings) {
    EXPECT_EQ(finding.category, "implausible-deadline");
    ASSERT_TRUE(finding.position.has_value());
  }
  // The anchor is the deadline_ms= key, not column 1.
  EXPECT_EQ(linted.findings[0].position->line, 2u);
  EXPECT_GT(linted.findings[0].position->column, 1u);
  EXPECT_NE(linted.findings[0].message.find("deadline_ms=0"),
            std::string::npos);
  EXPECT_NE(linted.findings[1].message.find("expire"), std::string::npos);
  EXPECT_NE(linted.findings[2].message.find("unit"), std::string::npos);
}

TEST(JobLint, PositionsAreOptional) {
  const JobFile file = parse_job_file_text(
      "jobs v1\njob test=\"MATS+\" list=simple n=8 deadline_ms=0\n");
  const std::vector<LintFinding> findings = lint_job_file(file, nullptr);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].position.has_value());
}

}  // namespace
}  // namespace mtg
