// Example: define a custom fault list — the paper's Section 7 highlights
// that the model "possibly add[s] new user-defined faults" — and generate a
// march test for it.
//
// The list built here contains the linked disturb coupling fault of the
// paper's running example (Equations 6 and 12-14) in both address layouts,
// plus the classic unlinked transition and read-destructive faults.
#include <iostream>

#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"

int main() {
  using namespace mtg;

  FaultList list;
  list.name = "custom demo list";

  // Simple faults: transition and read destructive faults on every cell.
  for (Bit s : {Bit::Zero, Bit::One}) {
    list.simple.push_back(SimpleFault::single(FaultPrimitive::tf(s)));
    list.simple.push_back(SimpleFault::single(FaultPrimitive::rdf(s)));
  }

  // The paper's linked disturb coupling fault <0w1;0/1/-> -> <1w0;1/0/->,
  // with the shared aggressor below and above the victim.
  const FaultPrimitive cfds_up =
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero);
  const FaultPrimitive cfds_down =
      FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One);
  list.linked.emplace_back(cfds_up, cfds_down, LinkedLayout::two_cell(0, 0, 1));
  list.linked.emplace_back(cfds_up, cfds_down, LinkedLayout::two_cell(1, 1, 0));

  std::cout << "Faults:\n";
  for (const SimpleFault& f : list.simple) std::cout << "  " << f.name << "\n";
  for (const LinkedFault& f : list.linked) {
    std::cout << "  " << f.name()
              << (f.fully_masking() ? "  (fully masking)" : "") << "\n";
  }

  // Show the linked test patterns on the 2-cell model (Definition 7 / Eq. 14).
  for (const LinkedAfpPair& pair :
       expand_linked_afps(list.linked.front(), {0, 1}, 2)) {
    std::cout << "\nTP1 -> TP2: " << pair.tp1.to_string() << " -> "
              << pair.tp2.to_string() << "\n"
              << "  AFP1 = " << pair.afp1.to_string()
              << ", AFP2 = " << pair.afp2.to_string() << "\n";
  }

  GeneratorOptions options;
  const GenerationResult result = generate_march_test(list, options);
  std::cout << "\nGenerated: " << result.test.to_string() << "  ("
            << result.test.complexity_label() << ", "
            << result.stats.elapsed_seconds << " s)\n";
  std::cout << result.certification.summary() << "\n";
  return 0;
}
