// Unit tests for the symbolic march analyzer: known verdicts on classic
// tests, definiteness (the analyzer must not hide behind Unknown on the
// catalog), analytic instance counts, and witness-explanation round-trips —
// every Detected witness replays on the scalar simulator to the exact
// failing read it names.
#include <gtest/gtest.h>

#include "analysis/static_analyzer.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

AnalysisOptions default_options() { return AnalysisOptions{}; }

TEST(StaticAnalyzer, MarchSsDetectsEverySimpleStaticFault) {
  const MarchTest test = march_ss();
  const StaticCoverage coverage =
      analyze_coverage(test, standard_simple_static_faults(), 6);
  EXPECT_EQ(coverage.unknown, 0u);
  EXPECT_EQ(coverage.not_detected, 0u);
  EXPECT_EQ(coverage.detected, coverage.entries.size());
  for (const StaticCoverageEntry& entry : coverage.entries) {
    ASSERT_TRUE(entry.witness.has_value()) << entry.fault_name;
    EXPECT_FALSE(entry.witness->to_string().empty());
  }
}

TEST(StaticAnalyzer, MarchSlDetectsFaultListOne) {
  const StaticCoverage coverage =
      analyze_coverage(march_sl(), fault_list_1(), 6);
  EXPECT_EQ(coverage.unknown, 0u);
  EXPECT_EQ(coverage.not_detected, 0u);
}

TEST(StaticAnalyzer, MatsPlusMissesCoupledFaults) {
  // MATS+ targets address faults and unlinked SAFs/TFs; the coupled-fault
  // part of the simple static list escapes it.
  const StaticCoverage coverage =
      analyze_coverage(mats_plus(), standard_simple_static_faults(), 6);
  EXPECT_EQ(coverage.unknown, 0u);
  EXPECT_GT(coverage.not_detected, 0u);
  EXPECT_GT(coverage.detected, 0u);
  for (const StaticCoverageEntry& entry : coverage.entries) {
    if (entry.verdict == StaticVerdict::NotDetected) {
      EXPECT_NE(entry.reason.find("escapes"), std::string::npos)
          << entry.fault_name << ": " << entry.reason;
    }
  }
}

TEST(StaticAnalyzer, RetentionFaultsNeedAWaitOp) {
  const SimpleFault drf0 = retention_fault_list().simple.front();
  ASSERT_TRUE(drf0.fp.is_retention());
  const StaticResult without_wait = analyze_fault(march_ss(), drf0, 6);
  EXPECT_EQ(without_wait.verdict, StaticVerdict::NotDetected);
  const StaticResult with_wait = analyze_fault(march_g(), drf0, 6);
  EXPECT_EQ(with_wait.verdict, StaticVerdict::Detected);
}

TEST(StaticAnalyzer, DecoderVerdictsDependOnMemorySize) {
  DecoderFault fault;
  fault.cls = DecoderFaultClass::NoAccess;
  fault.bit = 3;  // 2^3 = 8: no instances below nine cells
  const StaticResult small = analyze_fault(march_ss(), fault, 8);
  EXPECT_EQ(small.verdict, StaticVerdict::NotDetected);
  EXPECT_NE(small.reason.find("no instances"), std::string::npos);
  const StaticResult large = analyze_fault(march_ss(), fault, 9);
  EXPECT_EQ(large.verdict, StaticVerdict::Detected);
}

TEST(StaticAnalyzer, ZeroInstanceFaultsReportNotDetected) {
  // Mirrors evaluate_coverage: a fault with no instances counts uncovered.
  const SimpleFault three_cell = SimpleFault::single(
      FaultPrimitive::single(Bit::Zero, SenseOp::None, Bit::One));
  const StaticResult result = analyze_fault(march_ss(), three_cell, 0);
  EXPECT_EQ(result.verdict, StaticVerdict::NotDetected);
}

TEST(StaticAnalyzer, InstanceCountsMatchEnumeration) {
  const FaultList list = fault_list_1();
  for (std::size_t n : {3u, 4u, 6u, 9u}) {
    std::size_t index = 0;
    for (const SimpleFault& fault : list.simple) {
      EXPECT_EQ(static_instance_count(fault, n),
                instantiate(fault, n, index++, 0).size())
          << fault.name << " n=" << n;
    }
    for (const LinkedFault& fault : list.linked) {
      EXPECT_EQ(static_instance_count(fault, n),
                instantiate(fault, n, index++, 0).size())
          << fault.name() << " n=" << n;
    }
  }
  for (const DecoderFault& fault : decoder_fault_list(5).decoder) {
    for (std::size_t n : {3u, 4u, 6u, 9u, 17u, 32u}) {
      EXPECT_EQ(static_instance_count(fault, n),
                instantiate(fault, n, 0, 0).size())
          << fault.name() << " n=" << n;
    }
  }
}

TEST(StaticAnalyzer, HugeMemoryCountsAreAnalytic) {
  // 2^40 cells: enumeration is impossible, the analytic count is instant.
  const std::size_t n = std::size_t{1} << 40;
  const SimpleFault single = standard_simple_static_faults().simple.front();
  EXPECT_EQ(static_instance_count(single, n), static_cast<std::uint64_t>(n));
  DecoderFault decoder;
  decoder.cls = DecoderFaultClass::WrongCell;
  decoder.bit = 10;
  EXPECT_EQ(static_instance_count(decoder, n), static_cast<std::uint64_t>(n));
}

/// Replays a Detected witness on the scalar simulator: the scenario it
/// names must produce its failing read at the exact element, operation and
/// cell (witness slots are ranks among the instance's involved cells).
void expect_witness_replays(const MarchTest& test, const FaultInstance& inst,
                            const StaticWitness& witness,
                            const std::string& label) {
  std::vector<std::size_t> cells;
  for (const BoundFp& bound : inst.fps) {
    cells.push_back(bound.a_cell);
    cells.push_back(bound.v_cell);
  }
  for (const BoundDecoder& bound : inst.decoders) {
    cells.push_back(bound.a_cell);
    cells.push_back(bound.v_cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  ASSERT_LT(witness.observe_slot, cells.size()) << label;

  SimulatorOptions options;
  options.memory_size = 6;
  const FaultSimulator simulator(options);
  const auto event =
      simulator.run_scenario(test, inst, witness.power_on, witness.any_mask);
  ASSERT_TRUE(event.has_value()) << label << ": witness scenario escaped\n  "
                                 << witness.to_string();
  EXPECT_EQ(event->element_index, witness.observe_element) << label;
  EXPECT_EQ(event->op_index, witness.observe_op) << label;
  EXPECT_EQ(event->address, cells[witness.observe_slot]) << label;
  EXPECT_EQ(event->expected, witness.expected) << label;
  EXPECT_EQ(event->observed, witness.observed) << label;
}

TEST(StaticAnalyzer, WitnessesReplayOnTheScalarSimulator) {
  const std::vector<MarchTest> tests = {march_ss(), march_sl(), march_g(),
                                        mats_plus(), march_abl()};
  FaultList list = fault_list_2();
  for (const SimpleFault& fault : retention_fault_list().simple) {
    list.simple.push_back(fault);
  }
  for (const DecoderFault& fault : decoder_fault_list(2).decoder) {
    list.decoder.push_back(fault);
  }
  for (const MarchTest& test : tests) {
    const std::vector<FaultInstance> instances = instantiate_all(list, 6, 0);
    for (std::size_t i = 0; i < instances.size(); i += 5) {
      const StaticResult result = analyze_instance(test, instances[i]);
      if (result.verdict != StaticVerdict::Detected) continue;
      ASSERT_TRUE(result.witness.has_value());
      expect_witness_replays(test, instances[i], *result.witness,
                             test.name() + " / " + instances[i].description);
    }
  }
}

TEST(StaticAnalyzer, WitnessExplanationNamesTheSensitizer) {
  // Some op-sensitized fault on March SS must produce an explanation that
  // names the firing FP next to the sensitizing and observing op pair.
  bool found = false;
  for (const SimpleFault& fault : standard_simple_static_faults().simple) {
    const StaticResult result = analyze_fault(march_ss(), fault, 6);
    ASSERT_EQ(result.verdict, StaticVerdict::Detected) << fault.name;
    ASSERT_TRUE(result.witness.has_value());
    if (!result.witness->has_sense || result.witness->sense_at_power_on) {
      continue;
    }
    const std::string text = result.witness->to_string();
    EXPECT_NE(text.find("sensitized by"), std::string::npos) << text;
    EXPECT_NE(text.find(fault.fp.notation()), std::string::npos) << text;
    EXPECT_NE(text.find("element #"), std::string::npos) << text;
    EXPECT_NE(text.find("reads"), std::string::npos) << text;
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StaticAnalyzer, UnknownOnOversizedInstances) {
  // Five involved cells exceed the abstract domain: verdict must fall back.
  FaultInstance inst;
  const FaultPrimitive cf = standard_simple_static_faults().simple.back().fp;
  inst.fps.push_back(BoundFp(cf, 0, 4));
  inst.fps.push_back(BoundFp(cf, 1, 3));
  inst.fps.push_back(BoundFp(cf, 2, 4));
  inst.description = "five-cell stress";
  const StaticResult result = analyze_instance(march_ss(), inst);
  EXPECT_EQ(result.verdict, StaticVerdict::Unknown);
  EXPECT_FALSE(result.reason.empty());
}

TEST(StaticAnalyzer, SummaryLineIsStable) {
  const StaticCoverage coverage =
      analyze_coverage(mats_plus(), fault_list_2(), 6, default_options());
  const std::string summary = coverage.summary();
  EXPECT_NE(summary.find("static: "), std::string::npos);
  EXPECT_NE(summary.find("of " + std::to_string(coverage.entries.size()) +
                         " faults"),
            std::string::npos);
}

}  // namespace
}  // namespace mtg
