#!/usr/bin/env python3
"""Compare a fresh BENCH_analysis.json against the committed baseline.

Usage: compare_bench_analysis.py <current.json> <baseline.json> [--factor 2.0]

Hard-fails (exit 1) when the current unknown_rate is nonzero: the zero-
Unknown contract is a correctness gate, not a performance number — every
shipped (test, list) pair must resolve to a definite verdict.  Everything
else follows the service-bench convention: a GitHub Actions `::warning::`
annotation for per-pair analyzer timings that regressed by more than the
factor and for shape drift (pair set, fault counts, detected counts), but
timing warnings never fail the job — CI runners are noisy, so a slowdown is
a flag for a human, not a gate.

Exit codes: 0 = compared (with or without warnings), 1 = unknown_rate != 0,
2 = malformed input.
"""

import argparse
import json
import sys


def warn(message: str) -> None:
    print(f"::warning ::{message}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    if data.get("bench") != "analysis":
        print(f"error: {path} is not an analysis bench summary",
              file=sys.stderr)
        sys.exit(2)
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="regression threshold (default: 2.0x)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    rate = current.get("unknown_rate")
    if not isinstance(rate, (int, float)):
        print(f"error: {args.current} has no numeric unknown_rate",
              file=sys.stderr)
        return 2
    if rate != 0:
        print(f"error: unknown_rate {rate} != 0 — an analyzer verdict "
              "regressed to Unknown", file=sys.stderr)
        return 1

    warnings = 0
    baseline_pairs = {(r["test"], r["list"]): r
                      for r in baseline.get("analyzer", [])}
    for record in current.get("analyzer", []):
        key = (record["test"], record["list"])
        ref = baseline_pairs.pop(key, None)
        label = f"{key[0]} vs {key[1]}"
        if ref is None:
            warn(f"{label}: no baseline to compare against (workload drift "
                 "— refresh the baseline)")
            warnings += 1
            continue
        for field in ("faults", "detected"):
            if record.get(field, 0) != ref.get(field, 0):
                warn(f"{label}: {field} changed: {record.get(field)} vs "
                     f"baseline {ref.get(field)} (verdict drift — refresh "
                     "the baseline)")
                warnings += 1
        cur_s = record.get("seconds", 0.0)
        ref_s = ref.get("seconds", 0.0)
        if ref_s > 0 and cur_s > args.factor * ref_s:
            warn(f"{label}: {1e3 * cur_s:.3f} ms vs baseline "
                 f"{1e3 * ref_s:.3f} ms (>{args.factor:.1f}x regression)")
            warnings += 1
    for key in baseline_pairs:
        warn(f"{key[0]} vs {key[1]}: present in baseline but not in the "
             "current run (workload drift — refresh the baseline)")
        warnings += 1

    if warnings == 0:
        pairs = len(current.get("analyzer", []))
        print(f"OK: unknown_rate 0 over {pairs} (test, list) pairs, timings "
              f"within {args.factor:.1f}x of baseline")
    else:
        print(f"{warnings} warning(s) — see annotations above")
    return 0


if __name__ == "__main__":
    sys.exit(main())
