#include "sim/packed_engine.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"

namespace mtg {
namespace {

constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

/// kAlternating[j]: bit l set ⇔ (l >> j) & 1 — the ⇓-lane pattern of the
/// j-th ⇕ element for j < 6 (the pattern repeats within every 64-aligned
/// block because 2^j divides 64).
constexpr std::uint64_t kAlternating[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

}  // namespace

ElementTrace compile_element_trace(const MarchElement& element) {
  ElementTrace trace;
  trace.pre.reserve(element.ops().size());
  TraceVal current = TraceVal::Prev;
  for (const Op op : element.ops()) {
    trace.pre.push_back(current);
    if (is_write(op)) {
      current = written_value(op) == Bit::One ? TraceVal::One : TraceVal::Zero;
    }
  }
  trace.final_value = current;
  return trace;
}

CompiledTest compile_march_test(const MarchTest& test) {
  CompiledTest compiled;
  compiled.traces.reserve(test.elements().size());
  compiled.any_ordinal.reserve(test.elements().size());
  for (const MarchElement& element : test.elements()) {
    compiled.traces.push_back(compile_element_trace(element));
    if (element.order() == AddressOrder::Any) {
      compiled.any_ordinal.push_back(static_cast<int>(compiled.any_count++));
    } else {
      compiled.any_ordinal.push_back(-1);
    }
  }
  require(compiled.any_count < 32,
          "too many ⇕ elements for packed scenario enumeration");
  return compiled;
}

std::uint64_t scenario_active_word(std::size_t base, std::size_t total) {
  if (base >= total) return 0;
  const std::size_t lanes = std::min<std::size_t>(64, total - base);
  return lanes == 64 ? kAllLanes : ((std::uint64_t{1} << lanes) - 1);
}

std::uint64_t scenario_power1_word(std::size_t base, std::size_t combos) {
  // Lane l powers on all-1 ⇔ base + l >= combos (power-on–major order).
  if (base >= combos) return kAllLanes;
  const std::size_t offset = combos - base;
  return offset >= 64 ? 0 : (kAllLanes << offset);
}

std::uint64_t scenario_down_word(std::size_t base, std::size_t combos,
                                 std::size_t ordinal) {
  // Lane l runs ⇓ ⇔ bit `ordinal` of (base + l) mod combos.  `base` is
  // 64-aligned, so for ordinal < 6 the pattern is position-independent and
  // for ordinal >= 6 it is constant across the block.
  if (ordinal < 6) return kAlternating[ordinal];
  return ((base % combos) >> ordinal) & 1u ? kAllLanes : 0;
}

std::uint64_t element_down_word(const MarchElement& element, int any_ordinal,
                                std::size_t base, std::size_t combos) {
  switch (element.order()) {
    case AddressOrder::Any:
      return scenario_down_word(base, combos,
                                static_cast<std::size_t>(any_ordinal));
    case AddressOrder::Down:
      return kAllLanes;
    case AddressOrder::Up:
    default:
      return 0;
  }
}

std::size_t lane_popcount_portable(std::uint64_t word) noexcept {
  return popcount64_portable(word);
}

std::size_t lowest_lane_portable(std::uint64_t word) noexcept {
  std::size_t lane = 0;
  while (lane < 64 && ((word >> lane) & 1u) == 0) ++lane;
  return lane;
}

std::size_t lane_popcount(std::uint64_t word) noexcept {
  return popcount64(word);
}

std::size_t lowest_lane(std::uint64_t word) noexcept {
  if (word == 0) return 64;  // __builtin_ctzll(0) is undefined behaviour
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<std::size_t>(__builtin_ctzll(word));
#else
  return lowest_lane_portable(word);
#endif
}

void require_addresses_fit(const FaultInstance& instance, std::size_t n) {
  for (const BoundFp& bound : instance.fps) {
    require(bound.v_cell < n && bound.a_cell < n,
            "bound fault addresses exceed the memory size");
  }
  for (const BoundDecoder& bound : instance.decoders) {
    require(bound.a_cell < n && bound.v_cell < n,
            "bound decoder fault addresses exceed the memory size");
  }
}

PackedFaultSim::PackedFaultSim(const FaultInstance& instance) {
  require(supports(instance),
          "fault instance does not fit the packed engine (too many bound "
          "FPs, or a decoder fault combined with FPs)");
  if (!instance.decoders.empty()) {
    // An address-decoder instance: keep the *absolute* involved addresses
    // (the behaviour is address-aware — see the file comment); slots stay
    // address-ascending like the FP path.
    const BoundDecoder& dec = instance.decoders[0];
    has_decoder_ = true;
    decoder_cls_ = dec.fault.cls;
    cells_[num_slots_++] = std::min(dec.a_cell, dec.v_cell);
    if (dec.v_cell != dec.a_cell) {
      cells_[num_slots_++] = std::max(dec.a_cell, dec.v_cell);
    }
    decoder_a_slot_ =
        static_cast<std::uint8_t>(cells_[0] == dec.a_cell ? 0 : 1);
    decoder_v_slot_ =
        static_cast<std::uint8_t>(cells_[0] == dec.v_cell ? 0 : 1);
    decoder_read_one_ =
        dec.fault.cls == DecoderFaultClass::NoAccess
            ? dec.no_access_read_back() == Bit::One
            : dec.fault.wired == Bit::One;
    return;
  }
  // Collect the involved cells, address-ascending, deduplicated.
  std::array<std::size_t, kMaxSlots> addresses{};
  std::size_t count = 0;
  for (const BoundFp& bound : instance.fps) {
    addresses[count++] = bound.v_cell;
    addresses[count++] = bound.a_cell;  // == v_cell for single-cell FPs
  }
  std::sort(addresses.begin(), addresses.begin() + count);
  for (std::size_t i = 0; i < count; ++i) {
    if (num_slots_ == 0 || cells_[num_slots_ - 1] != addresses[i]) {
      cells_[num_slots_++] = addresses[i];
    }
  }
  const auto slot_of = [&](std::size_t address) {
    for (std::size_t s = 0; s < num_slots_; ++s) {
      if (cells_[s] == address) return s;
    }
    throw Error("packed engine: address is not an involved cell");
  };

  for (const BoundFp& bound : instance.fps) {
    Fp fp;
    fp.v_slot = static_cast<std::uint8_t>(slot_of(bound.v_cell));
    fp.a_slot = static_cast<std::uint8_t>(slot_of(bound.a_cell));
    fp.two_cell = bound.fp.is_two_cell();
    fp.state_fault = bound.fp.is_state_fault();
    fp.op_on_victim = bound.fp.op_on_victim();
    fp.sense = bound.fp.sense_op();
    fp.sense_slot = fp.op_on_victim ? fp.v_slot : fp.a_slot;
    fp.v_state_one = bound.fp.v_state() == Bit::One;
    fp.a_state_one = fp.two_cell && bound.fp.a_state() == Bit::One;
    fp.fault_one = bound.fp.fault_value() == Bit::One;
    fp.read_one = fp.op_on_victim && fp.sense == SenseOp::Rd &&
                  to_bit(bound.fp.read_result()) == Bit::One;
    has_state_fault_ = has_state_fault_ || fp.state_fault;
    fps_[num_fps_++] = fp;
  }
}

std::string PackedFaultSim::signature() const {
  // Collapsing-soundness gate: an address-reading machine has no
  // address-free signature (see the header comment).  The assert backs the
  // runtime check in assert-enabled builds.
  assert(address_free() &&
         "signature() called on an address-reading fault instance");
  require(address_free(),
          "PackedFaultSim::signature(): address-decoder instances read "
          "absolute addresses and must not be signature-collapsed");
  std::string out;
  out.reserve(2 + num_fps_ * 5);
  out.push_back(static_cast<char>(num_slots_));
  out.push_back(static_cast<char>(num_fps_));
  for (std::size_t i = 0; i < num_fps_; ++i) {
    const Fp& fp = fps_[i];
    out.push_back(static_cast<char>(fp.v_slot));
    out.push_back(static_cast<char>(fp.a_slot));
    out.push_back(static_cast<char>(fp.sense_slot));
    out.push_back(static_cast<char>(fp.sense));
    out.push_back(static_cast<char>(
        (fp.two_cell ? 1 : 0) | (fp.state_fault ? 2 : 0) |
        (fp.op_on_victim ? 4 : 0) | (fp.v_state_one ? 8 : 0) |
        (fp.a_state_one ? 16 : 0) | (fp.fault_one ? 32 : 0) |
        (fp.read_one ? 64 : 0)));
  }
  return out;
}

std::uint64_t PackedFaultSim::condition_word(const Lanes& lanes,
                                             const Fp& fp) const {
  std::uint64_t cond =
      fp.v_state_one ? lanes.val[fp.v_slot] : ~lanes.val[fp.v_slot];
  if (fp.two_cell) {
    cond &= fp.a_state_one ? lanes.val[fp.a_slot] : ~lanes.val[fp.a_slot];
  }
  return cond;
}

void PackedFaultSim::settle_state_faults(
    Lanes& lanes, std::uint64_t group,
    std::array<std::uint64_t, kMaxFps>& fired) const {
  if (!has_state_fault_) return;
  // Fixpoint over the (≤ kMaxFps) state faults, mirroring the scalar
  // settle loop: a fault fires in the lanes where it is armed, has not
  // fired during this operation, and its state condition holds.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < num_fps_; ++i) {
      const Fp& fp = fps_[i];
      if (!fp.state_fault) continue;
      const std::uint64_t can =
          group & lanes.armed[i] & ~fired[i] & condition_word(lanes, fp);
      if (can == 0) continue;
      lanes.val[fp.v_slot] =
          (lanes.val[fp.v_slot] & ~can) | (fp.fault_one ? can : 0);
      lanes.armed[i] &= ~can;
      fired[i] |= can;
      changed = true;
    }
  }
}

void PackedFaultSim::rearm_state_faults(Lanes& lanes,
                                        std::uint64_t group) const {
  if (!has_state_fault_) return;
  // Scalar re-arm: a disarmed state fault re-arms once its condition is
  // false again (edge-trigger semantics).
  for (std::size_t i = 0; i < num_fps_; ++i) {
    if (!fps_[i].state_fault) continue;
    lanes.armed[i] |= group & ~condition_word(lanes, fps_[i]);
  }
}

void PackedFaultSim::power_on_block(Lanes& lanes, std::size_t base,
                                    std::size_t total, std::size_t combos,
                                    bool both_power_on_states) const {
  const std::uint64_t active = scenario_active_word(base, total);
  const std::uint64_t power1 =
      both_power_on_states ? (scenario_power1_word(base, combos) & active) : 0;
  power_on(lanes, active, power1);
}

void PackedFaultSim::power_on(Lanes& lanes, std::uint64_t active,
                              std::uint64_t power1) const {
  lanes.active = active;
  lanes.detected = 0;
  lanes.uniform = power1 & active;
  for (std::size_t s = 0; s < num_slots_; ++s) lanes.val[s] = lanes.uniform;
  for (std::size_t i = 0; i < num_fps_; ++i) lanes.armed[i] = active;
  std::array<std::uint64_t, kMaxFps> fired{};
  settle_state_faults(lanes, active, fired);
  rearm_state_faults(lanes, active);
}

void PackedFaultSim::apply_decoder_op(Lanes& lanes, Op op, std::size_t slot,
                                      std::uint64_t group,
                                      std::uint64_t expected) const {
  // Decoder instances carry no FPs: every deviation is a rerouting of the
  // operation itself, mirroring the scalar FaultyMemory decoder branches.
  const bool read = is_read(op);
  std::uint64_t out = lanes.val[slot];
  if (slot == decoder_a_slot_) {
    const std::uint64_t a_val = lanes.val[decoder_a_slot_];
    const std::uint64_t v_val = lanes.val[decoder_v_slot_];
    switch (decoder_cls_) {
      case DecoderFaultClass::NoAccess:
        // Writes and waits select no cell; reads sense the address-coupled
        // floating line (a constant per instance, not per lane).
        out = decoder_read_one_ ? ~std::uint64_t{0} : 0;
        break;
      case DecoderFaultClass::WrongCell:
        out = v_val;
        if (is_write(op)) {
          if (op == Op::W1) {
            lanes.val[decoder_v_slot_] |= group;
          } else {
            lanes.val[decoder_v_slot_] &= ~group;
          }
        }
        break;
      case DecoderFaultClass::MultipleCells:
        out = decoder_read_one_ ? (a_val | v_val) : (a_val & v_val);
        if (is_write(op)) {
          if (op == Op::W1) {
            lanes.val[decoder_a_slot_] |= group;
            lanes.val[decoder_v_slot_] |= group;
          } else {
            lanes.val[decoder_a_slot_] &= ~group;
            lanes.val[decoder_v_slot_] &= ~group;
          }
        }
        break;
      case DecoderFaultClass::MultipleAddresses:
        out = a_val;  // the read path is intact; only writes are redirected
        if (is_write(op)) {
          if (op == Op::W1) {
            lanes.val[decoder_v_slot_] |= group;
          } else {
            lanes.val[decoder_v_slot_] &= ~group;
          }
        }
        break;
    }
  } else {
    // The partner cell's own address decodes normally.
    if (is_write(op)) {
      if (op == Op::W1) {
        lanes.val[slot] |= group;
      } else {
        lanes.val[slot] &= ~group;
      }
    }
  }
  if (read) lanes.detected |= group & (out ^ expected);
}

void PackedFaultSim::apply_op(Lanes& lanes, Op op, std::size_t slot,
                              std::uint64_t group,
                              std::uint64_t expected) const {
  if (has_decoder_) {
    apply_decoder_op(lanes, op, slot, group, expected);
    return;
  }
  const bool read = is_read(op);

  // 1. Sensitization on the pre-op state (scalar op_matches).  The op kind
  //    and target address are lane-invariant; only the state condition is a
  //    per-lane word.  Waits sensitize the retention FPs (SenseOp::Wt) of
  //    the visited slot, exactly like the scalar machine's wait(address).
  const SenseOp kind = read ? SenseOp::Rd
                       : is_wait(op)
                           ? SenseOp::Wt
                           : (op == Op::W1 ? SenseOp::W1 : SenseOp::W0);
  std::array<std::uint64_t, kMaxFps> matched{};
  for (std::size_t i = 0; i < num_fps_; ++i) {
    const Fp& fp = fps_[i];
    if (fp.state_fault || fp.sense_slot != slot) continue;
    if (fp.sense != kind) continue;
    matched[i] = group & condition_word(lanes, fp);
  }

  // 2. A read returns the pre-op faulty value unless overridden below.
  std::uint64_t out = lanes.val[slot];

  // 3. Default operation effect (waits leave the content untouched).
  if (is_write(op)) {
    if (op == Op::W1) {
      lanes.val[slot] |= group;
    } else {
      lanes.val[slot] &= ~group;
    }
  }

  // 4. Fault overrides, in FP order (a later FP overrides an earlier one on
  //    a shared victim, matching the scalar loop).
  std::array<std::uint64_t, kMaxFps> fired{};
  for (std::size_t i = 0; i < num_fps_; ++i) {
    if (matched[i] == 0) continue;
    const Fp& fp = fps_[i];
    lanes.val[fp.v_slot] =
        (lanes.val[fp.v_slot] & ~matched[i]) | (fp.fault_one ? matched[i] : 0);
    if (read && fp.op_on_victim && fp.v_slot == slot) {
      out = (out & ~matched[i]) | (fp.read_one ? matched[i] : 0);
    }
    fired[i] = matched[i];
  }

  // 5. State faults settle and re-arm.
  settle_state_faults(lanes, group, fired);
  rearm_state_faults(lanes, group);

  // 6. Detection: the read mismatches the good machine's value.
  if (read) lanes.detected |= group & (out ^ expected);
}

std::uint64_t PackedFaultSim::run_element(Lanes& lanes,
                                          const MarchElement& element,
                                          const ElementTrace& trace,
                                          std::uint64_t down) const {
  const std::uint64_t before = lanes.detected;
  // `uniform` must stay the element's *entry* value while both sweep groups
  // replay it (TraceVal::Prev refers to the pre-element good machine).
  const std::uint64_t entry_uniform = lanes.uniform;
  const auto expected_word = [&](TraceVal value) -> std::uint64_t {
    switch (value) {
      case TraceVal::Zero:
        return 0;
      case TraceVal::One:
        return ~std::uint64_t{0};
      case TraceVal::Prev:
      default:
        return entry_uniform;
    }
  };

  const std::vector<Op>& ops = element.ops();
  const std::uint64_t groups[2] = {lanes.active & ~down, lanes.active & down};
  for (int g = 0; g < 2; ++g) {
    const std::uint64_t group = groups[g];
    if (group == 0) continue;
    const bool ascending = g == 0;
    for (std::size_t step = 0; step < num_slots_; ++step) {
      const std::size_t slot = ascending ? step : num_slots_ - 1 - step;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        apply_op(lanes, ops[i], slot, group, expected_word(trace.pre[i]));
      }
    }
  }

  // The good machine leaves every element uniform.
  switch (trace.final_value) {
    case TraceVal::Zero:
      lanes.uniform = 0;
      break;
    case TraceVal::One:
      lanes.uniform = ~std::uint64_t{0};
      break;
    case TraceVal::Prev:
      break;
  }
  return lanes.detected & ~before;
}

PackedOutcome packed_run(const MarchTest& test, const CompiledTest& compiled,
                         const PackedFaultSim& sim, bool both_power_on_states,
                         bool stop_at_first_escape) {
  const std::size_t combos = std::size_t{1} << compiled.any_count;
  const std::size_t total = (both_power_on_states ? 2 : 1) * combos;
  const auto scenario_of = [&](std::size_t sc) {
    return std::make_pair(sc >= combos ? Bit::One : Bit::Zero, sc % combos);
  };

  PackedOutcome outcome;
  for (std::size_t base = 0; base < total; base += 64) {
    PackedFaultSim::Lanes lanes;
    sim.power_on_block(lanes, base, total, combos, both_power_on_states);

    for (std::size_t e = 0; e < test.elements().size(); ++e) {
      const MarchElement& element = test.elements()[e];
      sim.run_element(
          lanes, element, compiled.traces[e],
          element_down_word(element, compiled.any_ordinal[e], base, combos));
      // Detection is sticky and monotone: a fully detected block is done.
      if (lanes.detected == lanes.active) break;
    }

    if (!outcome.first_detected.has_value() && lanes.detected != 0) {
      outcome.first_detected = scenario_of(base + lowest_lane(lanes.detected));
    }
    const std::uint64_t escaped = lanes.active & ~lanes.detected;
    if (escaped != 0) {
      outcome.all_detected = false;
      if (!outcome.first_escape.has_value()) {
        outcome.first_escape = scenario_of(base + lowest_lane(escaped));
      }
      if (stop_at_first_escape) return outcome;
    }
  }
  return outcome;
}

}  // namespace mtg
