// Memory-size sweep workload: one march test × one fault list evaluated
// across many simulated memory sizes (n ≫ 64 included).
//
// The packed engine's cost per fault instance is independent of n (cell
// collapsing keeps only the ≤ 3 involved cells), so the sweep's cost is
// governed by the number of instantiated layouts, not by the memory size —
// `max_instances_per_fault` bounds that deterministically (instantiate_all).
// Sweep points are independent, so they are spread over the bounded thread
// pool (common/parallel.hpp); each point evaluates sequentially on its
// worker, and results land in size-list order, so the sweep output is
// byte-identical for every thread count.
//
// This is the groundwork the ROADMAP names for address-decoder-style fault
// layouts: coverage of the fault models shipped today depends only on the
// relative order of the involved cells (march elements treat cells
// uniformly), so a sweep over n is flat for them — address-decoder faults,
// whose sensitization depends on address bits, are what will make the curve
// move.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/coverage.hpp"

namespace mtg {

struct SweepOptions {
  /// SimulatorOptions fields shared by every sweep point.
  bool both_power_on_states = true;
  std::size_t max_any_order_elements = 10;
  bool use_packed_engine = true;
  /// Per-fault layout bound per sweep point (0 = full enumeration — beware:
  /// two-cell faults enumerate O(n²) layouts).
  std::size_t max_instances_per_fault = 4096;
  /// Worker threads across sweep points; 0 picks the hardware concurrency.
  std::size_t threads = 0;
};

/// Coverage of one sweep point.
struct SweepPoint {
  std::size_t memory_size = 0;
  CoverageReport report;
};

/// Evaluates `test` against `list` at every memory size of `sizes`
/// (each ≥ 3, the simulator's minimum; duplicates allowed, order kept).
/// Deterministic: the result is identical for every `threads` value.
std::vector<SweepPoint> sweep_coverage(const MarchTest& test,
                                       const FaultList& list,
                                       const std::vector<std::size_t>& sizes,
                                       const SweepOptions& options = {});

/// Compact per-size table (one line per sweep point).
std::string sweep_summary(const std::vector<SweepPoint>& points);

}  // namespace mtg
