// The memory-size sweep workload (sim/sweep.hpp) and the lifted n <= 64
// ceiling: multi-word scalar/packed agreement, deterministic bounded
// instantiation, and sweep results that are byte-identical for every thread
// count.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {
namespace {

SimulatorOptions options_for(std::size_t n, bool packed) {
  SimulatorOptions options;
  options.memory_size = n;
  options.use_packed_engine = packed;
  return options;
}

std::string points_string(const std::vector<SweepPoint>& points) {
  std::string out = sweep_summary(points);
  for (const SweepPoint& point : points) out += point.report.summary() + "\n";
  return out;
}

TEST(Sweep, MatchesDirectCoverageEvaluation) {
  const MarchTest test = march_c_minus();  // partial coverage: real escapes
  const FaultList list = fault_list_2();
  SweepOptions options;
  options.max_instances_per_fault = 0;  // full enumeration at these sizes
  const std::vector<std::size_t> sizes = {4, 6};
  const std::vector<SweepPoint> points = sweep_coverage(test, list, sizes, options);
  ASSERT_EQ(points.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(points[i].memory_size, sizes[i]);
    const CoverageReport direct =
        evaluate_coverage(FaultSimulator(options_for(sizes[i], true)), test, list);
    EXPECT_EQ(points[i].report.summary(), direct.summary()) << "n=" << sizes[i];
  }
}

TEST(Sweep, ByteIdenticalAcrossThreadCounts) {
  const MarchTest test = march_sl();
  const FaultList list = fault_list_2();
  const std::vector<std::size_t> sizes = {4, 6, 70, 130};

  SweepOptions reference_options;
  reference_options.max_instances_per_fault = 48;
  reference_options.threads = 1;
  const std::string reference = points_string(
      sweep_coverage(test, list, sizes, reference_options));

  const std::size_t hardware = std::thread::hardware_concurrency();
  for (const std::size_t threads :
       {std::size_t{2}, hardware == 0 ? std::size_t{4} : hardware}) {
    SweepOptions options = reference_options;
    options.threads = threads;
    EXPECT_EQ(points_string(sweep_coverage(test, list, sizes, options)),
              reference)
        << "threads=" << threads;
  }
}

TEST(Sweep, MultiWordSizesRunAndCover) {
  // March SL fully covers Fault List #2 and detection depends only on the
  // relative order of the involved cells, so the sweep must report full
  // coverage at every n — including far beyond one 64-bit word.
  SweepOptions options;
  options.max_instances_per_fault = 32;
  const std::vector<SweepPoint> points = sweep_coverage(
      march_sl(), fault_list_2(), {64, 256, 4096, 65536}, options);
  for (const SweepPoint& point : points) {
    EXPECT_TRUE(point.report.full_coverage()) << "n=" << point.memory_size;
    for (const CoverageEntry& entry : point.report.entries) {
      EXPECT_GE(entry.instances, 1u);
      EXPECT_LE(entry.instances, 32u);
    }
  }
}

TEST(Sweep, RejectsTooSmallSizes) {
  EXPECT_THROW(
      sweep_coverage(march_sl(), standard_simple_static_faults(), {4, 2}),
      Error);
}

TEST(Sweep, EmptySizeListYieldsNoPoints) {
  EXPECT_TRUE(
      sweep_coverage(march_sl(), standard_simple_static_faults(), {}).empty());
}

// --- bounded instantiation ---------------------------------------------------

TEST(BoundedInstantiation, UncappedAndSmallMemoriesAreUnchanged) {
  const FaultList list = standard_simple_static_faults();
  const auto full = instantiate_all(list, 5);
  const auto capped = instantiate_all(list, 5, 1000);  // above every count
  ASSERT_EQ(capped.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(capped[i].description, full[i].description);
  }
}

TEST(BoundedInstantiation, CapsEveryFaultDeterministically) {
  const FaultList list = fault_list_2();
  const auto a = instantiate_all(list, 500, 64);
  const auto b = instantiate_all(list, 500, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_EQ(a[i].fault_index, b[i].fault_index);
  }
  // Per-fault counts respect the cap.
  std::vector<std::size_t> per_fault(fault_count(list), 0);
  for (const FaultInstance& inst : a) ++per_fault[inst.fault_index];
  for (std::size_t f = 0; f < per_fault.size(); ++f) {
    EXPECT_GE(per_fault[f], 1u) << fault_name(list, f);
    EXPECT_LE(per_fault[f], 64u) << fault_name(list, f);
  }
}

TEST(BoundedInstantiation, SampleIncludesBothBoundaryLayouts) {
  // The lowest ({0..k-1}) and highest ({n-k..n-1}) layouts anchor the
  // sample: march address-order corner cases live at the memory boundary.
  FaultList list;
  list.name = "cfds only";
  list.simple.push_back(SimpleFault::coupled(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero),
      /*aggressor_below=*/true));
  const std::size_t n = 5000;  // C(5000, 2) >> 4 * 16: the sampled branch
  const auto instances = instantiate_all(list, n, 16);
  ASSERT_LE(instances.size(), 16u);
  bool lowest = false, highest = false;
  for (const FaultInstance& inst : instances) {
    std::size_t lo = inst.fps[0].a_cell, hi = inst.fps[0].v_cell;
    if (lo > hi) std::swap(lo, hi);
    if (lo == 0 && hi == 1) lowest = true;
    if (lo == n - 2 && hi == n - 1) highest = true;
  }
  EXPECT_TRUE(lowest);
  EXPECT_TRUE(highest);
}

// --- multi-word scalar/packed agreement -------------------------------------

TEST(MultiWord, ScalarAndPackedAgreeAtN200) {
  // The acceptance bar of the n <= 64 lift: detects_scalar works at n = 200
  // (the old packed_bits() snapshot threw above one word on any
  // save/restore path) and still matches the packed engine bit for bit,
  // including for instances bound at the far memory boundary.
  const std::size_t n = 200;
  const FaultSimulator packed(options_for(n, true));
  const FaultSimulator scalar(options_for(n, false));
  const FaultList list = fault_list_2();
  const auto instances = instantiate_all(list, n, 6);
  ASSERT_FALSE(instances.empty());
  for (const MarchTest& test : {march_sl(), mats_plus()}) {
    for (const FaultInstance& inst : instances) {
      EXPECT_EQ(packed.detects(test, inst), scalar.detects(test, inst))
          << test.name() << " / " << inst.description;
    }
  }
}

TEST(MultiWord, SimulateDiagnosticsAgreeAtN150) {
  const std::size_t n = 150;
  const FaultSimulator packed(options_for(n, true));
  const FaultSimulator scalar(options_for(n, false));
  const MarchTest test = march_c_minus();  // escapes exist: both branches
  for (const FaultInstance& inst :
       instantiate_all(standard_simple_static_faults(), n, 4)) {
    const DetectionResult p = packed.simulate(test, inst);
    const DetectionResult s = scalar.simulate(test, inst);
    ASSERT_EQ(p.detected, s.detected) << inst.description;
    ASSERT_EQ(p.first_event.has_value(), s.first_event.has_value());
    if (p.first_event.has_value()) {
      EXPECT_EQ(p.first_event->to_string(), s.first_event->to_string())
          << inst.description;
    }
    ASSERT_EQ(p.escape_scenario.has_value(), s.escape_scenario.has_value());
    if (p.escape_scenario.has_value()) {
      EXPECT_EQ(*p.escape_scenario, *s.escape_scenario) << inst.description;
    }
  }
}

}  // namespace
}  // namespace mtg
