#include "memory/automaton.hpp"

#include "common/error.hpp"

namespace mtg {

MealyAutomaton::MealyAutomaton(std::size_t num_cells) : num_cells_(num_cells) {
  require(num_cells >= 1 && num_cells <= SmallState::kMaxCells,
          "MealyAutomaton: unsupported cell count");
}

void MealyAutomaton::check_state(const SmallState& q) const {
  require(q.num_cells() == num_cells_, "state does not belong to this automaton");
}

SmallState MealyAutomaton::delta(const SmallState& q,
                                 const AddressedOp& op) const {
  check_state(q);
  if (op.op == Op::T) return q;
  require(op.cell < num_cells_, "delta: cell index out of range");
  if (is_read(op.op)) return q;
  SmallState next = q;
  next.set(op.cell, written_value(op.op));
  return next;
}

std::optional<Bit> MealyAutomaton::lambda(const SmallState& q,
                                          const AddressedOp& op) const {
  check_state(q);
  if (op.op == Op::T) return std::nullopt;
  require(op.cell < num_cells_, "lambda: cell index out of range");
  if (is_read(op.op)) return q.get(op.cell);
  return std::nullopt;
}

std::vector<AddressedOp> MealyAutomaton::input_alphabet() const {
  std::vector<AddressedOp> alphabet;
  for (std::size_t c = 0; c < num_cells_; ++c) {
    alphabet.push_back({c, Op::W0});
    alphabet.push_back({c, Op::W1});
    alphabet.push_back({c, Op::R});
  }
  alphabet.push_back({0, Op::T});
  return alphabet;
}

}  // namespace mtg
