// Differential tests: the packed engine (sim/packed_engine.hpp) against the
// scalar reference machine, across the march catalog and the fault library.
// The packed path must reproduce the scalar verdicts bit for bit — these
// tests are the soundness net under every optimisation the engine applies
// (scenario lanes, cell collapsing, the shared good-machine trace).
#include "sim/packed_engine.hpp"

#include <gtest/gtest.h>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "memory/pattern_graph.hpp"
#include "sim/coverage.hpp"

namespace mtg {
namespace {

SimulatorOptions options_for(std::size_t n, bool packed, bool both = true) {
  SimulatorOptions options;
  options.memory_size = n;
  options.both_power_on_states = both;
  options.use_packed_engine = packed;
  return options;
}

/// Asserts packed and scalar detects() agree on every instance of `list`.
void expect_detection_agreement(const MarchTest& test, const FaultList& list,
                                std::size_t n, std::size_t stride = 1) {
  const FaultSimulator packed(options_for(n, true));
  const FaultSimulator scalar(options_for(n, false));
  const std::vector<FaultInstance> instances = instantiate_all(list, n);
  for (std::size_t i = 0; i < instances.size(); i += stride) {
    const bool expected = scalar.detects(test, instances[i]);
    EXPECT_EQ(packed.detects(test, instances[i]), expected)
        << test.name() << " / " << instances[i].description;
  }
}

TEST(PackedEngine, CatalogAgreesOnSimpleStaticFaults) {
  const FaultList list = standard_simple_static_faults();
  for (const MarchTest& test : all_catalog_tests()) {
    expect_detection_agreement(test, list, 4);
  }
}

TEST(PackedEngine, CatalogAgreesOnLinkedFaultListTwo) {
  const FaultList list = fault_list_2();
  for (const MarchTest& test : all_catalog_tests()) {
    expect_detection_agreement(test, list, 4);
  }
}

TEST(PackedEngine, LinkedFaultListOneSampleAgrees) {
  // Fault List #1 spans two- and three-cell linked faults (the heaviest
  // layouts the library produces); sample it to bound the runtime.
  const FaultList list = fault_list_1();
  for (const MarchTest& test : {march_sl(), march_abl1(), mats_plus()}) {
    expect_detection_agreement(test, list, 5, /*stride=*/7);
  }
}

TEST(PackedEngine, AnyOrderHeavyTestsAgree) {
  // ⇕-heavy tests stress the scenario lanes: 7 ⇕ elements → 128 order
  // assignments × 2 power-ons = 256 scenarios = 4 lane blocks.
  const MarchTest seven_any = parse_march_test(
      "{c(w0); c(r0,w1); c(r1,w0); c(r0,w1); c(r1,w0); c(r0,w1); c(r1)}",
      "seven-any");
  const MarchTest mixed = parse_march_test(
      "{c(w0); ^(r0,w1); c(r1,w0); v(r0,w1,r1); c(r1,w0,r0)}", "mixed-any");
  const FaultList list = standard_simple_static_faults();
  expect_detection_agreement(seven_any, list, 4);
  expect_detection_agreement(mixed, list, 4);
}

TEST(PackedEngine, SimulateDiagnosticsAgree) {
  const FaultSimulator packed(options_for(4, true));
  const FaultSimulator scalar(options_for(4, false));
  const FaultList list = standard_simple_static_faults();
  for (const MarchTest& test : {mats_plus(), march_x(), march_ss()}) {
    for (const FaultInstance& inst : instantiate_all(list, 4)) {
      const DetectionResult p = packed.simulate(test, inst);
      const DetectionResult s = scalar.simulate(test, inst);
      ASSERT_EQ(p.detected, s.detected) << inst.description;
      ASSERT_EQ(p.first_event.has_value(), s.first_event.has_value());
      if (p.first_event.has_value()) {
        EXPECT_EQ(p.first_event->to_string(), s.first_event->to_string())
            << test.name() << " / " << inst.description;
      }
      ASSERT_EQ(p.escape_scenario.has_value(), s.escape_scenario.has_value());
      if (p.escape_scenario.has_value()) {
        EXPECT_EQ(*p.escape_scenario, *s.escape_scenario)
            << test.name() << " / " << inst.description;
      }
    }
  }
}

TEST(PackedEngine, LinkedMaskingPairsAgree) {
  // The WDF0→WDF1 masking pair of test_simulator.cpp plus aggressor-linked
  // pairs: the packed engine must reproduce masking emergent behaviour.
  FaultInstance same_cell;
  same_cell.fps.push_back(BoundFp::at(FaultPrimitive::wdf(Bit::Zero), 1));
  same_cell.fps.push_back(BoundFp::at(FaultPrimitive::wdf(Bit::One), 1));
  FaultInstance cross_cell;
  cross_cell.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::Zero, SenseOp::W1, Bit::Zero), 0, 2));
  cross_cell.fps.push_back(BoundFp(
      FaultPrimitive::cfds(Bit::One, SenseOp::W0, Bit::One), 3, 2));
  const FaultSimulator packed(options_for(4, true));
  const FaultSimulator scalar(options_for(4, false));
  for (const MarchTest& test : all_catalog_tests()) {
    for (const FaultInstance* inst : {&same_cell, &cross_cell}) {
      EXPECT_EQ(packed.detects(test, *inst), scalar.detects(test, *inst))
          << test.name() << " / " << inst->description;
    }
  }
}

TEST(PackedEngine, HonorsSinglePowerOnState) {
  // IRF0 under a bare-read test: detected from all-0 power-on, escapes from
  // all-1 — so the verdict must flip with both_power_on_states.
  const MarchTest bare_read = parse_march_test("{c(r)}", "bare-read");
  FaultInstance irf0;
  irf0.fps.push_back(BoundFp::at(FaultPrimitive::irf(Bit::Zero), 2));
  for (const bool packed : {true, false}) {
    const FaultSimulator single(options_for(4, packed, /*both=*/false));
    const FaultSimulator both(options_for(4, packed, /*both=*/true));
    EXPECT_TRUE(single.detects(bare_read, irf0));
    EXPECT_FALSE(both.detects(bare_read, irf0));
  }
}

TEST(PackedEngine, CoverageReportsAgree) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SimulatorOptions packed_options = options_for(5, true);
    packed_options.coverage_threads = threads;
    const FaultSimulator packed(packed_options);
    const FaultSimulator scalar(options_for(5, false));
    for (const MarchTest& test : {march_ss(), march_sl(), mats_plus()}) {
      const CoverageReport a =
          evaluate_coverage(packed, test, standard_simple_static_faults());
      const CoverageReport b =
          evaluate_coverage(scalar, test, standard_simple_static_faults());
      ASSERT_EQ(a.entries.size(), b.entries.size());
      for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].detected, b.entries[i].detected);
        EXPECT_EQ(a.entries[i].instances, b.entries[i].instances);
        EXPECT_EQ(a.entries[i].covered, b.entries[i].covered);
        EXPECT_EQ(a.entries[i].escape_description,
                  b.entries[i].escape_description);
      }
      EXPECT_EQ(a.summary(), b.summary()) << test.name();
    }
  }
}

TEST(PackedEngine, CoverageParallelIsDeterministic) {
  SimulatorOptions options = options_for(6, true);
  options.coverage_threads = 4;
  const FaultSimulator simulator(options);
  const CoverageReport a =
      evaluate_coverage(simulator, march_sl(), fault_list_2());
  const CoverageReport b =
      evaluate_coverage(simulator, march_sl(), fault_list_2());
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(PackedEngine, ScenarioWordsMatchEnumeration) {
  // combos = 2^7 order assignments, two power-ons → 256 scenarios.
  const std::size_t combos = 128;
  const std::size_t total = 2 * combos;
  for (std::size_t base = 0; base < total; base += 64) {
    const std::uint64_t active = scenario_active_word(base, total);
    const std::uint64_t power1 = scenario_power1_word(base, combos);
    EXPECT_EQ(active, ~std::uint64_t{0});
    for (std::size_t lane = 0; lane < 64; ++lane) {
      const std::size_t sc = base + lane;
      EXPECT_EQ((power1 >> lane) & 1u, sc >= combos ? 1u : 0u);
      for (std::size_t ordinal = 0; ordinal < 7; ++ordinal) {
        const std::uint64_t down = scenario_down_word(base, combos, ordinal);
        EXPECT_EQ((down >> lane) & 1u, ((sc % combos) >> ordinal) & 1u)
            << "base=" << base << " lane=" << lane << " ordinal=" << ordinal;
      }
    }
  }
  // Partial final block and the single-power-on case.
  EXPECT_EQ(scenario_active_word(0, 12), (std::uint64_t{1} << 12) - 1);
  EXPECT_EQ(scenario_power1_word(0, 8) & scenario_active_word(0, 16),
            std::uint64_t{0xFF00});
}

TEST(PackedEngine, OutOfRangeAddressesThrowLikeScalar) {
  FaultInstance oob;
  oob.fps.push_back(BoundFp::at(FaultPrimitive::sf(Bit::One), 100));
  const FaultSimulator packed(options_for(4, true));
  const FaultSimulator scalar(options_for(4, false));
  EXPECT_THROW(packed.detects(mats_plus(), oob), Error);
  EXPECT_THROW(scalar.detects(mats_plus(), oob), Error);
  EXPECT_THROW(packed.simulate(mats_plus(), oob), Error);
  EXPECT_THROW(packed.detects_all(mats_plus(), {oob}), Error);
}

TEST(PackedEngine, DetectsAllMatchesPerInstanceDetects) {
  const FaultSimulator packed(options_for(4, true));
  const FaultSimulator scalar(options_for(4, false));
  const std::vector<FaultInstance> instances =
      instantiate_all(standard_simple_static_faults(), 4);
  for (const MarchTest& test : {mats_plus(), march_ss()}) {
    bool all = true;
    for (const FaultInstance& inst : instances) {
      all = all && scalar.detects(test, inst);
    }
    EXPECT_EQ(packed.detects_all(test, instances), all) << test.name();
  }
}

TEST(PackedEngine, FaultFreeInstanceNeverDetected) {
  const FaultSimulator packed(options_for(4, true));
  FaultInstance none;
  for (const MarchTest& test : all_catalog_tests()) {
    EXPECT_FALSE(packed.detects(test, none)) << test.name();
  }
}

TEST(PackedEngine, CompiledTraceTracksGoodMachine) {
  const MarchTest test =
      parse_march_test("{c(w0); ^(r0,w1,r1,w0); v(r0)}", "trace");
  const CompiledTest compiled = compile_march_test(test);
  ASSERT_EQ(compiled.traces.size(), 3u);
  EXPECT_EQ(compiled.any_count, 1u);
  EXPECT_EQ(compiled.any_ordinal[0], 0);
  EXPECT_EQ(compiled.any_ordinal[1], -1);
  // Element 1 = (r0,w1,r1,w0): the trace is symbolic per element, so the
  // ops before the first write expect the previous element's uniform value.
  const ElementTrace& trace = compiled.traces[1];
  EXPECT_EQ(trace.pre[0], TraceVal::Prev);
  EXPECT_EQ(trace.pre[1], TraceVal::Prev);
  EXPECT_EQ(trace.pre[2], TraceVal::One);
  EXPECT_EQ(trace.pre[3], TraceVal::One);
  EXPECT_EQ(trace.final_value, TraceVal::Zero);
  // First element: reads before any write expect the power-on value.
  EXPECT_EQ(compiled.traces[0].pre[0], TraceVal::Prev);
}

}  // namespace
}  // namespace mtg
