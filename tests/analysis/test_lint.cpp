// Catalog linter tests (analysis/lint.hpp), including the golden output for
// a seeded-redundant suite: the acceptance property that a redundant march
// element is flagged with a position-bearing path:line:column diagnostic.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"

namespace mtg {
namespace {

std::vector<std::string> formatted(const std::vector<LintFinding>& findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const LintFinding& finding : findings) {
    lines.push_back(finding.format());
  }
  return lines;
}

TEST(Lint, GoldenSeededRedundantSuite) {
  // The golden list2 test with one march element triplicated: each ⇑(r0)
  // copy is individually removable, and every diagnostic must carry the
  // element's document position.
  const std::string text =
      "suite v1\n"
      "test \"Seeded\" "
      "{c(w0); ^(r0); ^(r0); ^(r0); ^(w1,r1); ^(r1); ^(w1,r1)}\n";
  std::vector<SuiteTestPosition> positions;
  const MarchSuite suite =
      parse_march_suite_text(text, "seeded.suite", &positions);
  ASSERT_EQ(suite.size(), 1u);
  ASSERT_EQ(positions.size(), 1u);
  ASSERT_EQ(positions[0].elements.size(), suite.tests[0].elements().size());

  const std::vector<LintFinding> findings = lint_march_test(
      suite.tests[0], fault_list_2(), LintOptions{}, "seeded.suite",
      &positions[0]);
  const std::vector<std::string> golden = {
      "seeded.suite:2:23: warning: [redundant-element] element #1 ⇑(r0) "
      "of test 'Seeded' is removable: no static verdict changes against "
      "list 'Fault List #2 (single-cell static linked faults)'",
      "seeded.suite:2:30: warning: [redundant-element] element #2 ⇑(r0) "
      "of test 'Seeded' is removable: no static verdict changes against "
      "list 'Fault List #2 (single-cell static linked faults)'",
      "seeded.suite:2:37: warning: [redundant-element] element #3 ⇑(r0) "
      "of test 'Seeded' is removable: no static verdict changes against "
      "list 'Fault List #2 (single-cell static linked faults)'",
  };
  EXPECT_EQ(formatted(findings), golden);
}

TEST(Lint, GoldenSeededFaultList) {
  // One record of each catalog smell: a duplicate simple fault, two AFwc
  // records differing only in the (ignored) wired field, and a decoder
  // fault on an address line the linted memory size does not have.
  const std::string text =
      "faultlist v1\n"
      "name Seeded list\n"
      "simple <0w1/0/-> a_pos=-1 v_pos=0\n"
      "simple <0w1/0/-> a_pos=-1 v_pos=0\n"
      "decoder cls=1 bit=0 wired=0\n"
      "decoder cls=1 bit=0 wired=1\n"
      "decoder cls=0 bit=10 wired=0\n";
  FaultListPositions positions;
  const FaultList list =
      parse_fault_list_text(text, "seeded.faults", &positions);
  const std::vector<LintFinding> findings =
      lint_fault_list(list, LintOptions{}, "seeded.faults", &positions);
  const std::vector<std::string> golden = {
      "seeded.faults:4:1: warning: [duplicate-fault] simple fault "
      "'TF↑ [v]' duplicates record #0",
      "seeded.faults:6:1: warning: [subsumed-fault] decoder fault 'AFwc@b0' "
      "is subsumed by record #0 ('AFwc@b0'): the AFwc class ignores the "
      "wired field",
      "seeded.faults:7:1: warning: [zero-instances] decoder fault 'AFna@b10' "
      "has no instances at n=6 (first instantiable at n=1025)",
  };
  EXPECT_EQ(formatted(findings), golden);
}

TEST(Lint, CleanTestAndCatalogProduceNoFindings) {
  // The minimized list2 generator output: nothing is removable, and the
  // built-in catalogs carry no duplicate/subsumed/zero-instance records.
  const MarchTest tight = parse_march_test(
      "{c(w0); ^(r0); ^(r0); ^(w1,r1); ^(r1); ^(w1,r1)}", "tight");
  EXPECT_TRUE(lint_march_test(tight, fault_list_2(), LintOptions{}).empty());
  EXPECT_TRUE(lint_fault_list(fault_list_2(), LintOptions{}).empty());
  EXPECT_TRUE(
      lint_fault_list(standard_simple_static_faults(), LintOptions{}).empty());
}

TEST(Lint, FlagsDeadOpsAtOperationGranularity) {
  // March SS against the single-cell list2 leaves whole reads dead inside
  // non-redundant elements; those surface as dead-op, not redundant-element.
  const std::vector<LintFinding> findings =
      lint_march_test(march_ss(), fault_list_2(), LintOptions{});
  bool saw_dead_op = false;
  for (const LintFinding& finding : findings) {
    if (finding.category == "dead-op") saw_dead_op = true;
    EXPECT_FALSE(finding.position.has_value());  // no document to anchor to
    EXPECT_EQ(finding.source, "<test>");
  }
  EXPECT_TRUE(saw_dead_op);
}

TEST(Lint, DeadOpSweepIsOptional) {
  LintOptions options;
  options.check_dead_ops = false;
  for (const LintFinding& finding :
       lint_march_test(march_ss(), fault_list_2(), options)) {
    EXPECT_NE(finding.category, "dead-op");
  }
}

TEST(Lint, PositionlessFindingsFormatWithoutLineColumn) {
  LintFinding finding;
  finding.source = "<test>";
  finding.category = "redundant-element";
  finding.message = "x";
  EXPECT_EQ(finding.format(), "<test>: warning: [redundant-element] x");
  finding.position = TextPosition{7, 31};
  EXPECT_EQ(finding.format(), "<test>:7:31: warning: [redundant-element] x");
}

}  // namespace
}  // namespace mtg
