// The memory fault simulator (rebuild of the paper's in-house simulator
// [13]): executes march tests against an n-cell memory with one injected
// fault instance, in lock-step with a fault-free reference machine.
//
// Detection semantics:
//  * A march test *detects* a fault instance when at least one read returns
//    a value different from the fault-free machine's value.
//  * The memory powers on with unknown content, and ⇕ march elements leave
//    the address order to the tester; a test therefore *covers* an instance
//    only if it detects it for EVERY power-on content in {all-0, all-1} and
//    EVERY assignment of concrete orders to the ⇕ elements.
//
// Masking between linked FPs needs no special handling: both FPs of a
// linked instance are active in the faulty machine (fp/semantics.hpp), so a
// masked sensitization simply produces no read mismatch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/fault_instance.hpp"

namespace mtg {

struct CompiledTest;  // sim/packed_engine.hpp

struct SimulatorOptions {
  std::size_t memory_size = 8;      ///< n — number of simulated cells
  bool both_power_on_states = true; ///< try all-0 and all-1 initial content
  std::size_t max_any_order_elements = 10;  ///< cap on ⇕ elements (2^k runs)
  /// Use the packed engine (sim/packed_engine.hpp) for detects/simulate and
  /// evaluate_coverage.  false selects the scalar reference machine — the
  /// oracle for differential testing and the benchmarks' baseline.
  bool use_packed_engine = true;
  /// Worker threads for evaluate_coverage; 0 picks the hardware concurrency.
  /// The scalar path (use_packed_engine = false) always runs sequentially.
  std::size_t coverage_threads = 0;
};

/// Where a detection happened, for diagnostics.
struct DetectionEvent {
  std::size_t element_index = 0;  ///< march element
  std::size_t address = 0;        ///< cell being visited
  std::size_t op_index = 0;       ///< operation within the element
  Bit expected = Bit::Zero;       ///< fault-free value
  Bit observed = Bit::Zero;       ///< faulty machine value

  std::string to_string() const;
};

/// Outcome of simulating one fault instance against one march test.
struct DetectionResult {
  bool detected = false;  ///< detected in every power-on/order scenario
  /// Detection event of the first scenario (diagnostics), if any.
  std::optional<DetectionEvent> first_event;
  /// Scenario that escaped detection (diagnostics), when !detected:
  /// power-on value and ⇕-order assignment bitmask.
  std::optional<std::pair<Bit, std::size_t>> escape_scenario;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(SimulatorOptions options = {});

  const SimulatorOptions& options() const noexcept { return options_; }

  /// Checks the test against the fault-free machine with unknown power-on
  /// content: every r0/r1 must read a cell whose value is determined and
  /// matching.  Returns an explanation of the first violation, or an empty
  /// string for a valid test.
  static std::string validity_violation(const MarchTest& test);

  /// Throws mtg::Error when the test is invalid (see validity_violation).
  static void validate(const MarchTest& test);

  /// Full detection semantics (all power-on states, all ⇕ orders).  Runs on
  /// the packed engine when options allow it, the scalar machine otherwise;
  /// both produce identical results.
  DetectionResult simulate(const MarchTest& test,
                           const FaultInstance& instance) const;

  /// Convenience: simulate(...).detected (with an early-exit fast path).
  bool detects(const MarchTest& test, const FaultInstance& instance) const;

  /// Batch variant of detects(): true iff every instance is detected.  The
  /// compiled test is shared across the whole batch (detects() recompiles
  /// it per call), and the scan stops at the first undetected instance —
  /// the shape of the minimizer's and certification's inner loops.
  bool detects_all(const MarchTest& test,
                   const std::vector<FaultInstance>& instances) const;

  /// detects() against a pre-compiled test (compile_march_test): the one
  /// packed-vs-scalar dispatch shared by detects_all, evaluate_coverage and
  /// the generator's certification loop, so batch callers compile once.
  bool detects_compiled(const MarchTest& test, const CompiledTest& compiled,
                        const FaultInstance& instance) const;

  /// Scalar reference implementations (one FaultyMemory run per scenario),
  /// kept as the differential-testing oracle for the packed engine.
  DetectionResult simulate_scalar(const MarchTest& test,
                                  const FaultInstance& instance) const;
  bool detects_scalar(const MarchTest& test,
                      const FaultInstance& instance) const;

  /// Single scenario run: fixed power-on value and a bitmask choosing the
  /// concrete order of each ⇕ element (bit i = 1 → the i-th ⇕ element runs
  /// Down).  Returns the first detection event, if any.
  std::optional<DetectionEvent> run_scenario(const MarchTest& test,
                                             const FaultInstance& instance,
                                             Bit power_on,
                                             std::size_t any_order_mask) const;

  /// Number of ⇕ elements in the test (scenario mask width).
  static std::size_t any_order_count(const MarchTest& test);

 private:
  SimulatorOptions options_;
};

}  // namespace mtg
