#include "common/op.hpp"

#include <gtest/gtest.h>

namespace mtg {
namespace {

TEST(Op, Classification) {
  EXPECT_TRUE(is_write(Op::W0));
  EXPECT_TRUE(is_write(Op::W1));
  EXPECT_FALSE(is_write(Op::R0));
  EXPECT_TRUE(is_read(Op::R0));
  EXPECT_TRUE(is_read(Op::R1));
  EXPECT_TRUE(is_read(Op::R));
  EXPECT_FALSE(is_read(Op::T));
  EXPECT_TRUE(is_wait(Op::T));
  EXPECT_FALSE(is_wait(Op::W0));
}

TEST(Op, WrittenValue) {
  EXPECT_EQ(written_value(Op::W0), Bit::Zero);
  EXPECT_EQ(written_value(Op::W1), Bit::One);
  EXPECT_THROW(written_value(Op::R0), Error);
  EXPECT_THROW(written_value(Op::T), Error);
}

TEST(Op, ExpectedValue) {
  EXPECT_EQ(expected_value(Op::R0), Bit::Zero);
  EXPECT_EQ(expected_value(Op::R1), Bit::One);
  EXPECT_EQ(expected_value(Op::R), std::nullopt);
  EXPECT_EQ(expected_value(Op::W0), std::nullopt);
  EXPECT_EQ(expected_value(Op::T), std::nullopt);
}

TEST(Op, Builders) {
  EXPECT_EQ(make_write(Bit::Zero), Op::W0);
  EXPECT_EQ(make_write(Bit::One), Op::W1);
  EXPECT_EQ(make_read(Bit::Zero), Op::R0);
  EXPECT_EQ(make_read(Bit::One), Op::R1);
}

class OpRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(OpRoundTrip, StringRoundTrip) {
  const Op op = GetParam();
  EXPECT_EQ(op_from_string(to_string(op)), op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpRoundTrip, ::testing::ValuesIn(kAllOps));

TEST(Op, ParseRejectsUnknownTokens) {
  EXPECT_THROW(op_from_string("w2"), Error);
  EXPECT_THROW(op_from_string("read"), Error);
  EXPECT_THROW(op_from_string(""), Error);
  EXPECT_THROW(op_from_string("W0"), Error);  // case sensitive
}

TEST(Op, SequenceFormatting) {
  const std::vector<Op> ops = {Op::R0, Op::W1, Op::R1};
  EXPECT_EQ(to_string(ops), "r0,w1,r1");
  EXPECT_EQ(to_string(std::vector<Op>{}), "");
}

}  // namespace
}  // namespace mtg
