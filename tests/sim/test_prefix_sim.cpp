// Differential tests of the incremental prefix engine (sim/prefix_sim.hpp)
// against the from-scratch simulator: element-by-element advance, scenario
// lane expansion at mid-test ⇕ elements, checkpointed trials and rewinds,
// undetected-item cloning, weighted instance collapsing, and thread-count
// invariance of the parallel sync.
#include "sim/prefix_sim.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"
#include "march/parser.hpp"
#include "sim/simulator.hpp"

namespace mtg {
namespace {

MarchTest prefix_of(const MarchTest& test, std::size_t length) {
  return MarchTest(test.name() + "/prefix",
                   std::vector<MarchElement>(test.elements().begin(),
                                             test.elements().begin() +
                                                 static_cast<long>(length)));
}

/// (undetected instance count, undetected fault indices) per the
/// from-scratch simulator — the oracle the engine must reproduce.
std::pair<std::size_t, std::set<std::size_t>> undetected_by_simulator(
    const FaultSimulator& simulator, const MarchTest& test,
    const std::vector<FaultInstance>& instances) {
  std::size_t count = 0;
  std::set<std::size_t> faults;
  for (const FaultInstance& instance : instances) {
    if (!simulator.detects(test, instance)) {
      ++count;
      faults.insert(instance.fault_index);
    }
  }
  return {count, faults};
}

/// A test with ⇕ elements mid-test, so advance() must expand scenario lanes
/// (each existing scenario splits into its ⇑ and ⇓ reading).
MarchTest any_heavy_test() {
  return parse_march_test(
      "{c(w0); ^(r0,w1); c(r1,w0); v(r0,w1); c(r1,w0); ^(r0)}", "any-heavy");
}

TEST(PrefixSim, AdvanceMatchesFromScratchAfterEveryElement) {
  const std::size_t n = 5;
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  for (const MarchTest& test :
       {march_abl1(), march_g(), any_heavy_test()}) {
    for (const FaultList& list :
         {fault_list_2(), retention_fault_list()}) {
      const auto instances = instantiate_all(list, n);
      PrefixEngine engine(n, &instances, prefix_of(test, 1),
                          PrefixEngine::Options{true, false});
      for (std::size_t len = 1; len <= test.elements().size(); ++len) {
        const MarchTest prefix = prefix_of(test, len);
        engine.advance(prefix);
        const auto expected =
            undetected_by_simulator(simulator, prefix, instances);
        EXPECT_EQ(engine.undetected_instances(), expected.first)
            << test.name() << " vs " << list.name << " at length " << len;
        EXPECT_EQ(engine.undetected_fault_indices(), expected.second)
            << test.name() << " vs " << list.name << " at length " << len;
      }
    }
  }
}

TEST(PrefixSim, SinglePowerOnStateMatchesFromScratch) {
  const std::size_t n = 4;
  SimulatorOptions options;
  options.memory_size = n;
  options.both_power_on_states = false;
  const FaultSimulator simulator(options);
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = any_heavy_test();
  PrefixEngine engine(n, &instances, prefix_of(test, 1),
                      PrefixEngine::Options{false, false});
  for (std::size_t len = 1; len <= test.elements().size(); ++len) {
    engine.advance(prefix_of(test, len));
    EXPECT_EQ(
        engine.undetected_instances(),
        undetected_by_simulator(simulator, prefix_of(test, len), instances)
            .first)
        << "length " << len;
  }
}

TEST(PrefixSim, TrialCoversMatchesFromScratchCoversAll) {
  const std::size_t n = 4;
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  for (const MarchTest& test : {march_abl1(), any_heavy_test()}) {
    const auto instances = instantiate_all(fault_list_2(), n);
    PrefixEngine engine(n, &instances, test,
                        PrefixEngine::Options{true, true});

    // Drop-element trials at every position.
    for (std::size_t i = 0; i < test.elements().size(); ++i) {
      MarchTest trial = test;
      trial.elements().erase(trial.elements().begin() + static_cast<long>(i));
      EXPECT_EQ(engine.trial_covers(i, nullptr),
                simulator.detects_all(trial, instances))
          << test.name() << " drop element " << i;
    }

    // Drop-op trials at every position.
    for (std::size_t i = 0; i < test.elements().size(); ++i) {
      const MarchElement& element = test.elements()[i];
      if (element.ops().size() == 1) continue;
      for (std::size_t j = 0; j < element.ops().size(); ++j) {
        std::vector<Op> ops = element.ops();
        ops.erase(ops.begin() + static_cast<long>(j));
        const MarchElement replacement(element.order(), std::move(ops));
        MarchTest trial = test;
        trial.elements()[i] = replacement;
        EXPECT_EQ(engine.trial_covers(i, &replacement),
                  simulator.detects_all(trial, instances))
            << test.name() << " drop op " << j << " of element " << i;
      }
    }
  }
}

TEST(PrefixSim, RewindToEditedTestMatchesFromScratch) {
  const std::size_t n = 4;
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const MarchTest test = any_heavy_test();
  const auto instances = instantiate_all(fault_list_2(), n);
  PrefixEngine engine(n, &instances, test, PrefixEngine::Options{true, true});

  // Drop every element in turn (fresh engine state each time via rewind
  // back to the full test), including the ⇕ ones — the scenario space
  // shrinks and the tail's ⇕ ordinals shift down.
  for (std::size_t i = 0; i < test.elements().size(); ++i) {
    MarchTest edited = test;
    edited.elements().erase(edited.elements().begin() + static_cast<long>(i));
    engine.advance(edited);
    const auto expected = undetected_by_simulator(simulator, edited, instances);
    EXPECT_EQ(engine.undetected_instances(), expected.first) << "edit " << i;
    EXPECT_EQ(engine.undetected_fault_indices(), expected.second)
        << "edit " << i;
    engine.advance(test);  // restore for the next round
    EXPECT_EQ(engine.undetected_instances(),
              undetected_by_simulator(simulator, test, instances).first);
  }
}

TEST(PrefixSim, CloneUndetectedMatchesFreshEngineOverMissedInstances) {
  const std::size_t n = 4;
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  // A prefix that covers only part of the list, so some instances survive.
  const MarchTest prefix =
      parse_march_test("{c(w0); ^(r0,w1,r1)}", "partial");
  const auto instances = instantiate_all(fault_list_2(), n);
  PrefixEngine engine(n, &instances, prefix,
                      PrefixEngine::Options{true, false});
  ASSERT_GT(engine.undetected_instances(), 0u);

  std::vector<FaultInstance> missed;
  for (const FaultInstance& instance : instances) {
    if (!simulator.detects(prefix, instance)) missed.push_back(instance);
  }
  ASSERT_EQ(engine.undetected_instances(), missed.size());

  PrefixEngine fresh(n, std::move(missed), prefix,
                     PrefixEngine::Options{true, false});
  PrefixEngine clone = engine.clone_undetected();
  EXPECT_EQ(clone.undetected_instances(), fresh.undetected_instances());
  EXPECT_EQ(clone.undetected_scenarios(), fresh.undetected_scenarios());
  EXPECT_EQ(clone.undetected_fault_indices(),
            fresh.undetected_fault_indices());

  // Candidate gains agree — the greedy extension sees the same scores
  // whether it starts from a clone or from a from-scratch rebuild.
  const auto no_abort = [](std::size_t, std::size_t) { return false; };
  for (const char* notation : {"^(r0)", "v(r1)", "^(r0,w1,r1)", "v(r1,w0,r0)",
                               "^(w1,r1)", "v(w0,r0)"}) {
    const MarchTest one = parse_march_test(
        std::string("{") + notation + "}", "candidate");
    const MarchElement& candidate = one.elements()[0];
    const ElementTrace trace = compile_element_trace(candidate);
    const std::size_t remaining = clone.undetected_scenarios();
    EXPECT_EQ(clone.gain(candidate, trace, remaining, no_abort),
              fresh.gain(candidate, trace, remaining, no_abort))
        << notation;
  }

  // Committing to the clone must not disturb the parent's exact state.
  const MarchTest bridge = parse_march_test("{^(r0,w1)}", "bridge");
  clone.commit(bridge.elements()[0],
               compile_element_trace(bridge.elements()[0]));
  EXPECT_EQ(engine.undetected_instances(),
            undetected_by_simulator(simulator, prefix, instances).first);
}

TEST(PrefixSim, CollapsesEquivalentLayoutsExactly) {
  const std::size_t n = 6;
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = march_abl1();
  PrefixEngine engine(n, &instances, test, PrefixEngine::Options{true, false});
  // Weighted totals see every instance; the simulated representatives are
  // the distinct (fault, relative layout order) classes — far fewer.
  EXPECT_EQ(engine.num_instances(), instances.size());
  EXPECT_LT(engine.num_representatives(), instances.size() / 2);
  // Weighted undetected counts equal the per-instance oracle.
  const FaultSimulator simulator(SimulatorOptions{n, true, 10});
  const MarchTest partial = prefix_of(test, 2);
  PrefixEngine partial_engine(n, &instances, partial,
                              PrefixEngine::Options{true, false});
  EXPECT_EQ(partial_engine.undetected_instances(),
            undetected_by_simulator(simulator, partial, instances).first);
}

TEST(PrefixSim, ParallelSyncMatchesSequential) {
  const std::size_t n = 5;
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = any_heavy_test();
  ThreadPool pool(3);

  PrefixEngine sequential(n, &instances, prefix_of(test, 2),
                          PrefixEngine::Options{true, true});
  PrefixEngine parallel(n, &instances, prefix_of(test, 2),
                        PrefixEngine::Options{true, true}, &pool);
  EXPECT_EQ(sequential.undetected_instances(),
            parallel.undetected_instances());

  sequential.advance(test);
  parallel.advance(test, &pool);
  EXPECT_EQ(sequential.undetected_instances(), parallel.undetected_instances());
  EXPECT_EQ(sequential.undetected_scenarios(), parallel.undetected_scenarios());
  EXPECT_EQ(sequential.undetected_fault_indices(),
            parallel.undetected_fault_indices());

  // Trial verdicts agree after the parallel sync.
  for (std::size_t i = 0; i < test.elements().size(); ++i) {
    EXPECT_EQ(sequential.trial_covers(i, nullptr),
              parallel.trial_covers(i, nullptr))
        << "edit " << i;
  }
}

TEST(PrefixSim, ExcludedFaultsStayDroppedAcrossSyncs) {
  const std::size_t n = 4;
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = any_heavy_test();
  PrefixEngine engine(n, &instances, prefix_of(test, 2),
                      PrefixEngine::Options{true, true});
  const std::set<std::size_t> excluded = {0, 1};
  engine.exclude_faults(excluded);
  engine.advance(test);
  for (std::size_t fault : excluded) {
    EXPECT_EQ(engine.undetected_fault_indices().count(fault), 0u);
  }
  // Rewind to a shorter test: excluded faults must not resurface.
  engine.advance(prefix_of(test, 3));
  for (std::size_t fault : excluded) {
    EXPECT_EQ(engine.undetected_fault_indices().count(fault), 0u);
  }
}

TEST(PrefixSim, CommitPoisonsExactness) {
  const std::size_t n = 4;
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = march_abl1();
  PrefixEngine engine(n, &instances, prefix_of(test, 2),
                      PrefixEngine::Options{true, true});
  const MarchElement candidate(AddressOrder::Up, {Op::R0});
  engine.commit(candidate, compile_element_trace(candidate));
  EXPECT_THROW(engine.advance(test), Error);
  EXPECT_THROW(engine.trial_covers(0, nullptr), Error);
  EXPECT_THROW(engine.clone_undetected(), Error);
}

TEST(PrefixSim, TrialCostIsProportionalToTheReplayedSuffix) {
  // The minimizer acceptance property at engine level: a trial at the last
  // element replays at most one element per live instance — not the whole
  // test — and instances detected before the edit are skipped outright.
  const std::size_t n = 4;
  const auto instances = instantiate_all(fault_list_2(), n);
  const MarchTest test = march_abl1();
  PrefixEngine engine(n, &instances, test, PrefixEngine::Options{true, true});
  const std::size_t last = test.elements().size() - 1;

  engine.reset_stats();
  engine.trial_covers(last, nullptr);
  EXPECT_LE(engine.stats().element_replays, engine.num_representatives())
      << "a last-element trial must replay at most the dropped element's "
         "suffix (nothing) per live instance";

  engine.reset_stats();
  engine.trial_covers(last - 1, nullptr);
  EXPECT_LE(engine.stats().element_replays, 2 * engine.num_representatives());
}

}  // namespace
}  // namespace mtg
