// Example: the paper's main experiment — generate march tests for Fault
// List #1 and Fault List #2 and compare them with the published baselines
// (the rows of Table 1).
//
// Usage: generate_linked_tests [list#]   (default: both)
#include <iostream>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "fp/fault_list.hpp"
#include "gen/generator.hpp"
#include "march/catalog.hpp"
#include "sim/coverage.hpp"

namespace {

void run(const mtg::FaultList& list, const std::vector<mtg::MarchTest>& baselines,
         const mtg::GeneratorOptions& options = {}) {
  using namespace mtg;
  std::cout << "=== " << list.name << " (" << list.size() << " faults) ===\n";

  const GenerationResult result = generate_march_test(list, options);
  std::cout << "generated " << result.test.to_string() << "\n"
            << "  complexity " << result.test.complexity_label() << " ("
            << result.stats.complexity_before_minimize
            << "n before redundancy elimination)\n"
            << "  CPU time " << result.stats.elapsed_seconds << " s, "
            << result.stats.greedy_rounds << " greedy rounds, pool "
            << result.stats.candidate_pool << ", "
            << result.stats.working_instances << " working / "
            << result.stats.certify_instances << " certification instances\n";
  for (const std::string& line : result.stats.log) {
    if (line.rfind("phase", 0) == 0 || line.rfind("stalled", 0) == 0 ||
        line.rfind("certification", 0) == 0) {
      std::cout << "  [log] " << line << "\n";
    }
  }
  if (!result.uncoverable.empty()) {
    std::cout << "  uncoverable faults reported: " << result.uncoverable.size()
              << "\n";
    for (const auto& name : result.uncoverable) std::cout << "    " << name << "\n";
  }
  std::cout << "  certification: " << result.certification.summary() << "\n";

  const FaultSimulator simulator;
  for (const MarchTest& baseline : baselines) {
    const CoverageReport report = evaluate_coverage(simulator, baseline, list);
    const double reduction =
        100.0 *
        (static_cast<double>(baseline.complexity()) -
         static_cast<double>(result.test.complexity())) /
        static_cast<double>(baseline.complexity());
    std::cout << "  vs " << baseline.name() << " (" << baseline.complexity_label()
              << ", covers " << report.fault_coverage_percent()
              << "%): length reduction " << reduction << "%\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtg;
  try {
    const std::size_t which =
        argc > 1 ? parse_count(argv[1], "list selector") : 0;
    if (which > 2) throw Error("list selector: use 0 (both), 1 or 2");
    GeneratorOptions options;
    if (argc > 2) {
      options.working_memory_size =
          parse_memory_size(argv[2], "working memory size");
    }
    if (argc > 3) {
      options.max_element_length = parse_count(argv[3], "max element length");
    }
    if (which == 0 || which == 2) {
      run(fault_list_2(), {march_lf1(), march_abl1()}, options);
    }
    if (which == 0 || which == 1) {
      run(fault_list_1(), {march_sl(), march_abl(), march_rabl()}, options);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
