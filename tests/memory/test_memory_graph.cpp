#include "memory/memory_graph.hpp"

#include <gtest/gtest.h>

namespace mtg {
namespace {

TEST(MemoryGraph, G0MatchesFigure2Structure) {
  const MemoryGraph g0 = make_g0();
  EXPECT_EQ(g0.num_cells(), 2u);
  EXPECT_EQ(g0.num_vertices(), 4u);
  // Per state: w0/w1/read on each of two cells plus t = 7 edges.
  EXPECT_EQ(g0.edges().size(), 4u * 7u);
}

TEST(MemoryGraph, EdgesFromAState) {
  const MemoryGraph g0 = make_g0();
  const auto edges = g0.edges_from(SmallState::from_string("00"));
  EXPECT_EQ(edges.size(), 7u);
  // Check one specific Figure 2 edge: 00 --w1[i]/- --> 10.
  bool found = false;
  for (const GraphEdge& e : edges) {
    if (e.op.cell == 0 && e.op.op == Op::W1) {
      EXPECT_EQ(e.to.to_string(), "10");
      EXPECT_EQ(e.output, std::nullopt);
      EXPECT_EQ(e.label(), "w1[0] / -");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MemoryGraph, ReadEdgesAreSelfLoopsWithTheStoredValue) {
  const MemoryGraph g0 = make_g0();
  for (const GraphEdge& e : g0.edges()) {
    if (!is_read(e.op.op)) continue;
    EXPECT_EQ(e.from, e.to);
    ASSERT_TRUE(e.output.has_value());
    EXPECT_EQ(*e.output, e.from.get(e.op.cell));
    // Reads are annotated with the value they return (Figure 2's "r/0", "r/1").
    EXPECT_EQ(expected_value(e.op.op), e.output);
  }
}

TEST(MemoryGraph, WaitEdgesAreSelfLoops) {
  const MemoryGraph g0 = make_g0();
  std::size_t waits = 0;
  for (const GraphEdge& e : g0.edges()) {
    if (e.op.op != Op::T) continue;
    EXPECT_EQ(e.from, e.to);
    EXPECT_EQ(e.label(), "t / -");
    ++waits;
  }
  EXPECT_EQ(waits, 4u);  // one per state
}

TEST(MemoryGraph, EveryStateIsFullyConnectedByWrites) {
  // From any state, writes reach every state (memory is controllable).
  const MemoryGraph g(3);
  for (std::size_t s = 0; s < g.num_vertices(); ++s) {
    const SmallState from(3, static_cast<std::uint16_t>(s));
    std::size_t distinct_targets = 0;
    for (const GraphEdge& e : g.edges_from(from)) {
      if (is_write(e.op.op) && e.to != from) ++distinct_targets;
    }
    // Exactly 3 writes flip one cell each (the other 3 are no-ops).
    EXPECT_EQ(distinct_targets, 3u);
  }
}

TEST(MemoryGraph, DotExportContainsAllStatesAndLabels) {
  const std::string dot = make_g0().to_dot("G0");
  EXPECT_NE(dot.find("digraph G0"), std::string::npos);
  for (const char* state : {"\"00\"", "\"01\"", "\"10\"", "\"11\""}) {
    EXPECT_NE(dot.find(state), std::string::npos);
  }
  EXPECT_NE(dot.find("w1[0] / -"), std::string::npos);
  EXPECT_NE(dot.find("r1[1] / 1"), std::string::npos);
}

}  // namespace
}  // namespace mtg
