// Certificate tests: 'certificate v1' round-trips byte-exactly through the
// canonical writer, optimize_suite's greedy sub-suite re-verifies against
// the packed engine, and tampered certificates are rejected with named
// problems — the prove-then-cross-check discipline end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "analysis/subsumption.hpp"
#include "common/error.hpp"
#include "common/text_position.hpp"
#include "fp/fault_list.hpp"
#include "march/catalog.hpp"

namespace mtg {
namespace {

MarchSuite classic_suite() {
  MarchSuite suite;
  suite.tests = {mats_plus(), march_y(), march_c_minus(), march_ss()};
  return suite;
}

Certificate optimized(const char* spec, std::size_t n = 6) {
  const FaultUniverse universe = FaultUniverse::parse(spec);
  return optimize_suite(classic_suite(), universe.materialize(),
                        universe.spec(), n);
}

TEST(Certificate, ParseWriteRoundTripIsExact) {
  const Certificate cert = optimized("simple");
  const std::string text = to_canonical_string(cert);
  const Certificate parsed = parse_certificate_text(text, "<round-trip>");
  EXPECT_EQ(parsed, cert);
  EXPECT_EQ(to_canonical_string(parsed), text);
}

TEST(Certificate, OptimizedSuiteVerifiesAgainstThePackedEngine) {
  for (const char* spec : {"simple", "list2", "simple+decoder[0,3)"}) {
    const Certificate cert = optimized(spec);
    ASSERT_FALSE(cert.kept.empty()) << spec;
    // The greedy pass must actually shrink this suite: March SS alone
    // covers the simple static space.
    EXPECT_FALSE(cert.dropped.empty()) << spec;
    const CertificateCheck check = verify_certificate(
        cert, FaultUniverse::parse(spec).materialize());
    EXPECT_TRUE(check.ok) << spec << ": "
                          << (check.problems.empty() ? "<no problems>"
                                                     : check.problems[0]);
    EXPECT_GT(check.faults_checked, 0u);
  }
}

TEST(Certificate, KeptSubSuitePreservesUnionStaticCoverage) {
  const FaultList universe = FaultUniverse::parse("simple").materialize();
  const Certificate cert = optimized("simple");
  // Union coverage of the kept tests equals the union of the full suite,
  // fault by fault, on the analyzer's own verdicts.
  const MarchSuite full = classic_suite();
  for (std::size_t f = 0; f < universe.size(); ++f) {
    bool full_covers = false, kept_covers = false;
    for (const MarchTest& test : full.tests) {
      full_covers = full_covers ||
                    analyze_coverage(test, universe, cert.memory_size)
                            .entries[f]
                            .verdict == StaticVerdict::Detected;
    }
    for (const MarchTest& test : cert.kept) {
      kept_covers = kept_covers ||
                    analyze_coverage(test, universe, cert.memory_size)
                            .entries[f]
                            .verdict == StaticVerdict::Detected;
    }
    EXPECT_EQ(full_covers, kept_covers) << "fault " << f;
  }
}

TEST(Certificate, HashMismatchIsRejected) {
  Certificate cert = optimized("simple");
  cert.list_hash ^= 1;
  const CertificateCheck check =
      verify_certificate(cert, FaultUniverse::parse("simple").materialize());
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.problems.empty());
  EXPECT_NE(check.problems[0].find("hash"), std::string::npos);
}

TEST(Certificate, MissingCoverRowIsRejected) {
  Certificate cert = optimized("simple");
  ASSERT_FALSE(cert.dropped.empty());
  ASSERT_FALSE(cert.dropped[0].covers.empty());
  cert.dropped[0].covers.pop_back();
  const CertificateCheck check =
      verify_certificate(cert, FaultUniverse::parse("simple").materialize());
  EXPECT_FALSE(check.ok);
}

TEST(Certificate, CoverRowNamingAMissingKeptTestIsRejected) {
  Certificate cert = optimized("simple");
  ASSERT_FALSE(cert.dropped.empty());
  ASSERT_FALSE(cert.dropped[0].covers.empty());
  cert.dropped[0].covers[0].kept_test = "No Such Test";
  const CertificateCheck check =
      verify_certificate(cert, FaultUniverse::parse("simple").materialize());
  EXPECT_FALSE(check.ok);
}

TEST(Certificate, CoverRowWithWrongFaultNameIsRejected) {
  Certificate cert = optimized("simple");
  ASSERT_FALSE(cert.dropped.empty());
  ASSERT_FALSE(cert.dropped[0].covers.empty());
  cert.dropped[0].covers[0].fault_name = "bogus fault";
  const CertificateCheck check =
      verify_certificate(cert, FaultUniverse::parse("simple").materialize());
  EXPECT_FALSE(check.ok);
}

TEST(Certificate, DuplicateCoverRowIsRejected) {
  Certificate cert = optimized("simple");
  ASSERT_FALSE(cert.dropped.empty());
  ASSERT_FALSE(cert.dropped[0].covers.empty());
  cert.dropped[0].covers.push_back(cert.dropped[0].covers.front());
  const CertificateCheck check =
      verify_certificate(cert, FaultUniverse::parse("simple").materialize());
  EXPECT_FALSE(check.ok);
}

TEST(Certificate, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(parse_certificate_text("", "<t>"), ParseError);
  EXPECT_THROW(parse_certificate_text("certificate v2\n", "<t>"), ParseError);
  // A cover row before any drop record has no owner.
  EXPECT_THROW(
      parse_certificate_text("certificate v1\n"
                             "universe \"simple\"\n"
                             "list-hash 0000000000000000\n"
                             "n 6\n"
                             "keep \"A\" {c(w0)}\n"
                             "cover 0 \"SF0\" by \"A\"\n",
                             "<t>"),
      ParseError);
  // keep after the first drop breaks canonical order.
  EXPECT_THROW(
      parse_certificate_text("certificate v1\n"
                             "universe \"simple\"\n"
                             "list-hash 0000000000000000\n"
                             "n 6\n"
                             "keep \"A\" {c(w0)}\n"
                             "drop \"B\" {c(w1)}\n"
                             "keep \"C\" {c(w0)}\n",
                             "<t>"),
      ParseError);
}

TEST(Certificate, ParseErrorsCarryPositions) {
  try {
    parse_certificate_text("certificate v1\nbogus record\n", "cert.txt");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position().line, 2u);
    EXPECT_NE(std::string(e.what()).find("cert.txt:2:"), std::string::npos)
        << e.what();
  }
}

TEST(Certificate, OptimizeRejectsUnnamedAndDuplicateTests) {
  MarchSuite unnamed;
  unnamed.tests = {MarchTest("", mats_plus().elements())};
  const FaultList universe = FaultUniverse::parse("simple").materialize();
  EXPECT_THROW(optimize_suite(unnamed, universe, "simple", 6), Error);

  MarchSuite duplicated;
  duplicated.tests = {mats_plus(), mats_plus()};
  EXPECT_THROW(optimize_suite(duplicated, universe, "simple", 6), Error);
}

}  // namespace
}  // namespace mtg
