#include "store/fault_injection.hpp"

namespace mtg {

void FaultInjectedStorage::fail_kth_operation(std::uint64_t k,
                                              StoreFaultMode mode,
                                              bool sticky) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_ = k;
  mode_ = mode;
  sticky_ = sticky;
  ops_since_schedule_ = 0;
}

void FaultInjectedStorage::clear_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_ = 0;
  sticky_ = false;
  ops_since_schedule_ = 0;
}

StorageOpCounts FaultInjectedStorage::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

void FaultInjectedStorage::reset_counts() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_ = StorageOpCounts{};
}

bool FaultInjectedStorage::should_fail_locked() {
  ++ops_since_schedule_;
  if (fail_at_ == 0) return false;
  const bool fail = sticky_ ? ops_since_schedule_ >= fail_at_
                            : ops_since_schedule_ == fail_at_;
  if (fail) ++counts_.faults_injected;
  return fail;
}

StoreStatus FaultInjectedStorage::open_dir(const std::string& path) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.open_dirs;
    if (!should_fail_locked()) return base_.open_dir(path);
    mode = mode_;
  }
  // Torn modes are write-specific; Silent passes through, the rest fail.
  if (mode == StoreFaultMode::TornWriteSilent) return base_.open_dir(path);
  return StoreStatus::io_error("injected fault: open_dir " + path);
}

StoreStatus FaultInjectedStorage::read(const std::string& path,
                                       std::string& out) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.reads;
    if (!should_fail_locked()) return base_.read(path, out);
    mode = mode_;
  }
  if (mode == StoreFaultMode::TornWriteSilent) return base_.read(path, out);
  return StoreStatus::io_error("injected fault: read " + path);
}

StoreStatus FaultInjectedStorage::write(const std::string& path,
                                        std::string_view data) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.writes;
    if (!should_fail_locked()) return base_.write(path, data);
    mode = mode_;
  }
  switch (mode) {
    case StoreFaultMode::Error:
      return StoreStatus::io_error("injected fault: write " + path);
    case StoreFaultMode::TornWriteError: {
      // Crash mid-write the writer observes: half the bytes land.
      base_.write(path, data.substr(0, data.size() / 2));
      return StoreStatus::io_error("injected fault: torn write " + path);
    }
    case StoreFaultMode::TornWriteSilent: {
      // Crash after the ack: half the bytes land, success is reported.
      return base_.write(path, data.substr(0, data.size() / 2));
    }
  }
  return StoreStatus::io_error("injected fault: write " + path);
}

StoreStatus FaultInjectedStorage::sync(const std::string& path) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.syncs;
    if (!should_fail_locked()) return base_.sync(path);
    mode = mode_;
  }
  if (mode == StoreFaultMode::TornWriteSilent) return base_.sync(path);
  return StoreStatus::io_error("injected fault: sync " + path);
}

StoreStatus FaultInjectedStorage::rename(const std::string& from,
                                         const std::string& to) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.renames;
    if (!should_fail_locked()) return base_.rename(from, to);
    mode = mode_;
  }
  if (mode == StoreFaultMode::TornWriteSilent) return base_.rename(from, to);
  return StoreStatus::io_error("injected fault: rename " + from + " -> " + to);
}

StoreStatus FaultInjectedStorage::remove(const std::string& path) {
  StoreFaultMode mode;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.removes;
    if (!should_fail_locked()) return base_.remove(path);
    mode = mode_;
  }
  if (mode == StoreFaultMode::TornWriteSilent) return base_.remove(path);
  return StoreStatus::io_error("injected fault: remove " + path);
}

}  // namespace mtg
