// The incremental prefix-state coverage engine: persistent packed lane state
// for a set of fault instances at the end of a march-test prefix.
//
// This is the promoted generator GreedyEngine (formerly an anonymous class in
// src/gen/generator.cpp), grown into the substrate for all three generator
// phases:
//
//  * Greedy construction (phase A): candidate march elements are scored
//    incrementally against the tracked prefix state (gain/commit), exactly as
//    before.  ⇕ candidates are committed in their ⇑ reading — the greedy
//    approximation the certification pass repairs.
//  * Incremental certification (phase B, CEGIS): advance() replays only the
//    elements appended since the last sync, with *exact* ⇕ resolution — when
//    the suffix contains a ⇕ element the scenario lanes are expanded in
//    place (every existing scenario splits into its ⇑ and ⇓ reading of the
//    new element), which is sound because march tests only grow at the end:
//    the new scenarios agree with their parent scenario on the entire
//    already-simulated prefix.  Instances detected under every scenario are
//    dropped permanently (classic fault dropping — detection is sticky and
//    appended elements can only add detections), so each CEGIS round scans
//    only the survivors.  The scan spreads items over a bounded ThreadPool;
//    items are independent and the reduction runs in item order, so results
//    are identical for every thread count.
//  * Checkpointed minimization (phase C): with record_checkpoints the engine
//    snapshots every item's lane blocks at each element boundary (cheap
//    plain-data copies).  A "drop element i / drop op j" trial restores the
//    checkpoint before the edit and replays only the suffix
//    (trial_covers()), bailing out at the first surviving undetected
//    instance; an accepted edit re-syncs via rewind().  Items that were
//    fully detected strictly before the edit point are skipped outright:
//    their detection only depends on the unchanged prefix.
//
// Exactness: advance()/rewind()/trial_covers() reproduce the packed full-run
// verdicts (sim/packed_engine.hpp packed_run) bit for bit.  Fully detected
// blocks are frozen (not advanced further) exactly like the full runner;
// their stale cell values are unobservable because detection is sticky.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "march/march_test.hpp"
#include "sim/fault_instance.hpp"
#include "sim/packed_engine.hpp"

namespace mtg {

class ThreadPool;  // common/parallel.hpp

class PrefixEngine {
 public:
  /// "Not detected (yet)" marker for element indices.
  static constexpr std::size_t kNever = ~std::size_t{0};

  struct Options {
    /// Require detection under both power-on contents (all-0 and all-1).
    bool both_power_on_states = true;
    /// Record per-element lane snapshots (required by trial_covers/rewind).
    bool record_checkpoints = false;
    /// Cap on ⇕ elements (the scenario set is P·2^count lanes).
    std::size_t max_any_order_elements = 10;
  };

  /// Work counters, cumulative since construction (or reset_stats()).
  struct Stats {
    /// March elements replayed, counted per (instance, element) — the unit
    /// the minimizer's trial-cost guarantee is stated in: a from-scratch
    /// rescan of t trials costs ~ t × items × elements replays, a
    /// checkpointed trial only the replayed suffix of the surviving items.
    std::size_t element_replays = 0;
    /// Scenario-lane block expansions performed for ⇕ elements.
    std::size_t lane_expansions = 0;
    /// trial_covers() calls.
    std::size_t trials = 0;
  };

  /// Builds the engine owning `instances`, simulated to the end of `prefix`.
  /// Every instance must fit the packed representation
  /// (PackedFaultSim::supports) and address an `n`-cell memory.  `pool`
  /// spreads construction over worker threads when non-null (the result is
  /// identical for every thread count).
  PrefixEngine(std::size_t memory_size, std::vector<FaultInstance> instances,
               const MarchTest& prefix, Options options,
               ThreadPool* pool = nullptr);

  /// As above, borrowing `instances` (must outlive the engine).
  PrefixEngine(std::size_t memory_size,
               const std::vector<FaultInstance>* instances,
               const MarchTest& prefix, Options options,
               ThreadPool* pool = nullptr);

  // -- Prefix bookkeeping ----------------------------------------------------

  /// The march-test prefix the lane state corresponds to.  commit() appends
  /// greedy candidates to the state *without* extending this recorded prefix
  /// (the greedy ⇕-as-⇑ reading is an approximation, see the file comment);
  /// once commit() has been called the exact entry points below refuse to
  /// run.
  const MarchTest& prefix() const noexcept { return prefix_; }

  // -- Greedy interface (phase A and CEGIS extension rounds) -----------------

  std::size_t undetected_instances() const;

  /// Fault-list indices of the instances still undetected.
  std::set<std::size_t> undetected_fault_indices() const;

  /// Marks every instance of the given faults as out of scope (uncoverable).
  /// Excluded faults stay dropped across advance()/rewind().
  void exclude_faults(const std::set<std::size_t>& fault_indices);

  /// Number of undetected (instance, scenario) pairs.
  std::size_t undetected_scenarios() const;

  /// Gain of appending the candidate: the number of (instance, scenario)
  /// pairs it newly detects.  Scenario granularity matters: an element can
  /// make progress on one power-on polarity only (the complementary
  /// polarity being handled by a later element), which instance-level
  /// counting would miss and stall on.  ⇕ candidates are evaluated in their
  /// ⇑ reading (as the scalar engine did); certification re-resolves ⇕
  /// orders exactly.
  ///
  /// `remaining_start` is undetected_scenarios() — hoisted to the caller
  /// because it is identical for every candidate of a gain scan and O(items)
  /// to recompute.  `abort_below(g, remaining)` lets the caller prune
  /// hopeless candidates: it receives the gain so far and the number of
  /// unscanned scenarios and returns true to abandon the evaluation (the
  /// result is then a lower bound).
  template <typename AbortFn>
  std::size_t gain(const MarchElement& candidate, const ElementTrace& trace,
                   std::size_t remaining_start, AbortFn abort_below) const {
    const std::uint64_t down =
        candidate.order() == AddressOrder::Down ? ~std::uint64_t{0} : 0;
    std::size_t g = 0;
    std::size_t remaining = remaining_start;
    for (const Item& item : items_) {
      if (item.done) continue;
      for (const PackedFaultSim::Lanes& block : item.blocks) {
        const std::size_t undetected =
            lane_popcount(block.active & ~block.detected);
        if (undetected == 0) continue;
        remaining -= undetected * item.weight;
        PackedFaultSim::Lanes trial = block;  // plain-data copy
        const std::size_t newly = lane_popcount(
            item.sim.run_element(trial, candidate, trace, down));
        g += newly * item.weight;
        // Match the scalar engine's abort placement: only after a failure.
        // A candidate that detects everything must return its exact gain,
        // or it could lose the score-tie g tie-break it deserves to win.
        if (newly < undetected && abort_below(g, remaining)) return g;
      }
    }
    return g;
  }

  /// Appends the candidate to the tracked lane state in the greedy reading
  /// (⇕ runs ⇑).  Marks the engine approximate: the recorded prefix no
  /// longer matches the lane state exactly, so advance()/rewind()/
  /// trial_covers() refuse to run afterwards.
  void commit(const MarchElement& candidate, const ElementTrace& trace);

  // -- Incremental certification (phase B) -----------------------------------

  /// Syncs the lane state to `test`.  The fast path is the CEGIS shape —
  /// `test` extends the recorded prefix and only the appended suffix is
  /// replayed (with exact ⇕ expansion).  When `test` diverges from the
  /// recorded prefix (the minimizer removed elements or operations), items
  /// are restored from the checkpoint at the longest common prefix and the
  /// remainder is replayed; this requires record_checkpoints.  Items fully
  /// detected within the common prefix stay dropped: their detection
  /// replays unchanged.  `pool` spreads items over worker threads; results
  /// are identical for every thread count.
  void advance(const MarchTest& test, ThreadPool* pool = nullptr);

  /// Clones the still-undetected (and non-excluded) items into a scratch
  /// engine for a greedy extension round, sharing this engine's instances
  /// (the clone must not outlive the parent).  The clone starts exact at
  /// the recorded prefix but does not record checkpoints.
  PrefixEngine clone_undetected() const;

  /// Instances dropped because every scenario detected (excluded faults not
  /// counted).
  std::size_t dropped_instances() const;

  /// Tracked instances (collapsed duplicates counted at their weight — this
  /// equals the size of the instance set the engine was built from).
  std::size_t num_instances() const;

  /// Simulated representatives after collapsing equal-signature layout
  /// instances (the engine's actual per-element workload).
  std::size_t num_representatives() const noexcept { return items_.size(); }

  // -- Checkpointed trials (phase C) -----------------------------------------

  /// True iff every tracked (non-excluded) instance is detected in every
  /// scenario by the trial test
  ///
  ///     prefix()[0, edit) + (replacement ? *replacement : nothing)
  ///                       + prefix()[edit + 1, ...)
  ///
  /// i.e. element `edit` is dropped (replacement == nullptr) or swapped for
  /// `replacement` (the minimizer's drop-op-j trials).  Restores each item's
  /// checkpoint at `edit` and replays only the suffix, skipping items that
  /// were fully detected strictly before `edit` and bailing out at the
  /// first surviving undetected instance.  Requires record_checkpoints and
  /// an exact engine; the tracked state is left untouched.
  bool trial_covers(std::size_t edit, const MarchElement* replacement);

  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Item {
    const FaultInstance* instance = nullptr;
    PackedFaultSim sim;  ///< the instance compiled to involved-cell slots
    /// Number of collapsed layout instances this item stands for: instances
    /// of one fault whose packed signatures match (equal relative layout
    /// order) have bit-identical lane evolutions, so one representative is
    /// simulated and every count is weighted — sums over items equal the
    /// sums the uncollapsed instance set would produce, term for term.
    std::size_t weight = 1;
    std::vector<PackedFaultSim::Lanes> blocks;  ///< scenario lane state
    bool done = false;      ///< dropped: detected everywhere, or excluded
    bool excluded = false;  ///< dropped as uncoverable (never revisited)
    /// Element index whose replay completed detection, kNever otherwise.
    std::size_t detected_at = kNever;
    /// checkpoints[e] = `blocks` before element e (recorded while the item
    /// was live), in the scenario layout of prefix elements [0, e).
    std::vector<std::vector<PackedFaultSim::Lanes>> checkpoints;
  };

  /// One element of a replay plan: the element, its compiled trace, and its
  /// ⇕ ordinal (-1 for fixed orders) in the plan's scenario numbering.
  struct Step {
    const MarchElement* element = nullptr;
    const ElementTrace* trace = nullptr;
    int ordinal = -1;
  };

  static bool all_detected(const std::vector<PackedFaultSim::Lanes>& blocks);

  std::size_t power_states() const noexcept {
    return options_.both_power_on_states ? 2 : 1;
  }

  /// Duplicates every scenario of `blocks` into its ⇑/⇓ reading of a new ⇕
  /// element (ordinal = log2(old combos relative)), i.e. grows the scenario
  /// set from P·combos to P·2·combos lanes while preserving the power-on
  /// major, ⇕-mask minor numbering.
  void expand_blocks(std::vector<PackedFaultSim::Lanes>& blocks,
                     std::size_t old_combos) const;

  /// Replays `steps[0, count)` over `blocks` (layout entry: `combos` ⇕
  /// combinations), expanding at ⇕ steps and freezing fully detected
  /// blocks.  Returns the step offset whose replay completed detection, or
  /// kNever.  With `checkpoints` non-null, snapshots `blocks` before every
  /// step.  `local` accumulates work counters (merged into stats_ by the
  /// caller — run_steps runs on worker threads).
  std::size_t run_steps(
      const Item& item, std::vector<PackedFaultSim::Lanes>& blocks,
      std::size_t& combos, const Step* steps, std::size_t count,
      std::vector<std::vector<PackedFaultSim::Lanes>>* checkpoints,
      Stats& local) const;

  /// Clone/internal constructor: prefix bookkeeping filled by the caller.
  PrefixEngine(std::size_t memory_size, Options options);

  /// Builds items and simulates them to the end of `prefix`.
  void initialize(const std::vector<FaultInstance>& instances,
                  const MarchTest& prefix, ThreadPool* pool);

  /// Appends bookkeeping (trace, ordinal) for the elements of test[from..].
  void append_plan(const MarchTest& test, std::size_t from);

  /// Shared advance/rewind core: re-syncs every live item from element
  /// `common` (restoring checkpoints when the item's state is past it) and
  /// replays the recorded plan's tail, in parallel over items.
  /// `previous_length` is the element count of the prefix before the sync.
  void sync_items(std::size_t common, std::size_t previous_length,
                  ThreadPool* pool);

  std::size_t memory_size_ = 0;
  Options options_;
  bool approximate_ = false;  ///< a commit() happened; exact APIs refuse

  MarchTest prefix_;
  std::vector<ElementTrace> traces_;  ///< per prefix element
  std::vector<int> ordinals_;         ///< per prefix element: ⇕ ordinal or -1
  std::vector<std::size_t> any_before_;  ///< #⇕ in elements [0, e), e ≤ size

  std::vector<FaultInstance> owned_;  ///< backing store (owning constructor)
  std::vector<Item> items_;
  Stats stats_;
};

}  // namespace mtg
