// Example: print the catalog of published march tests with complexity,
// validity status and the structural detection-capability gaps the
// analyzer derives (why a cheap test cannot cover the static fault space).
#include <iomanip>
#include <iostream>

#include "march/analysis.hpp"
#include "march/catalog.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace mtg;

  std::cout << std::left << std::setw(12) << "Test" << std::setw(6) << "O(n)"
            << "Notation\n";
  std::cout << std::string(90, '-') << "\n";
  for (const MarchTest& test : all_catalog_tests()) {
    const std::string violation = FaultSimulator::validity_violation(test);
    std::cout << std::left << std::setw(12) << test.name() << std::setw(6)
              << test.complexity_label() << test.to_string() << "\n";
    if (!violation.empty()) {
      std::cout << "  INVALID: " << violation << "\n";
    }
    for (const std::string& gap : structural_gaps(test)) {
      std::cout << "    gap: " << gap << "\n";
    }
  }
  return 0;
}
